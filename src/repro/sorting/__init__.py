"""Input sorts (Definition 7) and the paper's sorting heuristics."""

from repro.sorting.input_sort import InputSort
from repro.sorting.heuristics import (
    heuristic1_sort,
    heuristic2_sort,
    pin_order_sort,
    random_sort,
)

__all__ = [
    "InputSort",
    "heuristic1_sort",
    "heuristic2_sort",
    "pin_order_sort",
    "random_sort",
]
