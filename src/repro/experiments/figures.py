"""Figures 1-5: the paper's running example, reproduced mechanically.

The figures are circuit schematics; their *content* is a set of facts
this module recomputes and renders as text:

* Fig. 1 — the three stabilizing systems for input 111;
* Fig. 2 — the complete stabilizing assignment of Example 2 (system per
  input vector, |LP(σ)| = 6, exactly one path not robustly testable);
* Fig. 3 — the hierarchy ``T(C) ⊂ LP(σ) ⊂ FS(C)``;
* Fig. 4 — the alternative system for input 000 giving σ' with
  |LP(σ')| = 5 and 100% robust fault coverage (Example 3);
* Fig. 5 — the optimum input sort π with ``σ^π = σ'``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.examples import paper_example_circuit
from repro.circuit.netlist import Circuit
from repro.classify.conditions import Criterion
from repro.classify.exact import exact_path_set
from repro.delaytest.testability import is_robustly_testable
from repro.paths.path import LogicalPath
from repro.sorting.input_sort import InputSort
from repro.stabilize.assignment import (
    CompleteStabilizingAssignment,
    assignment_from_sort,
)
from repro.stabilize.system import all_stabilizing_systems


def _sort_by_pin_preference(
    circuit: Circuit, preferences: dict
) -> InputSort:
    """An input sort from per-gate pin preference lists, e.g.
    ``{"g_or": [0, 2, 1]}`` (unlisted gates keep pin order)."""
    rank = [0] * circuit.num_leads
    for gid in range(circuit.num_gates):
        leads = list(circuit.input_leads(gid))
        order = preferences.get(circuit.gate_name(gid))
        if order is None:
            order = list(range(len(leads)))
        if sorted(order) != list(range(len(leads))):
            raise ValueError(f"bad preference list for {circuit.gate_name(gid)}")
        for position, pin in enumerate(order):
            rank[leads[pin]] = position
    return InputSort(circuit, rank)


def example2_sort(circuit: Circuit) -> InputSort:
    """Example 2's σ as an input sort: OR prefers a, then c, then the
    AND; the AND prefers b over c."""
    return _sort_by_pin_preference(circuit, {"g_or": [0, 2, 1], "g_and": [0, 1]})


def example3_sort(circuit: Circuit) -> InputSort:
    """Figure 5's optimum sort: OR prefers a, then c; AND prefers c."""
    return _sort_by_pin_preference(circuit, {"g_or": [0, 2, 1], "g_and": [1, 0]})


@dataclass
class FigureReport:
    title: str
    lines: list = field(default_factory=list)

    def render(self) -> str:
        return "\n".join([self.title] + [f"  {line}" for line in self.lines])


def figure1() -> FigureReport:
    """The three stabilizing systems for v = 111."""
    circuit = paper_example_circuit()
    systems = list(all_stabilizing_systems(circuit, circuit.outputs[0], (1, 1, 1)))
    report = FigureReport(
        title=f"Figure 1: stabilizing systems for input 111 ({len(systems)} found)"
    )
    for i, system in enumerate(systems, start=1):
        leads = ", ".join(sorted(circuit.lead_name(l) for l in system.leads))
        report.lines.append(f"S{i}: {leads}")
    return report


def _assignment_report(
    circuit: Circuit,
    sigma: CompleteStabilizingAssignment,
    title: str,
) -> tuple[FigureReport, set]:
    paths = sigma.logical_paths()
    report = FigureReport(title=title)
    for (po, vector), system in sorted(sigma.systems.items()):
        bits = "".join(map(str, vector))
        leads = ", ".join(sorted(circuit.lead_name(l) for l in system.leads))
        report.lines.append(f"v={bits}: {leads}")
    untestable = sorted(
        lp.describe(circuit)
        for lp in paths
        if not is_robustly_testable(circuit, lp)
    )
    report.lines.append(f"|LP(sigma)| = {len(paths)}")
    report.lines.append(
        f"not robustly testable: {untestable if untestable else 'none'}"
    )
    return report, paths


def figure2() -> tuple[FigureReport, set]:
    """Example 2's assignment: 6 selected paths, one untestable."""
    circuit = paper_example_circuit()
    sigma = assignment_from_sort(circuit, example2_sort(circuit))
    return _assignment_report(
        circuit, sigma, "Figure 2: complete stabilizing assignment (Example 2)"
    )


def figure4() -> tuple[FigureReport, set]:
    """Example 3's σ': the 000 system re-chosen, 5 paths, 100% coverage."""
    circuit = paper_example_circuit()
    sigma = assignment_from_sort(circuit, example3_sort(circuit))
    return _assignment_report(
        circuit, sigma, "Figure 4: improved assignment for input 000 (Example 3)"
    )


def figure3() -> FigureReport:
    """The hierarchy T(C) ⊂ LP(σ) ⊂ FS(C) on the example circuit."""
    circuit = paper_example_circuit()
    t_set = exact_path_set(circuit, Criterion.NR)
    fs_set = exact_path_set(circuit, Criterion.FS)
    sigma2 = assignment_from_sort(circuit, example2_sort(circuit)).logical_paths()
    sigma3 = assignment_from_sort(circuit, example3_sort(circuit)).logical_paths()
    report = FigureReport(title="Figure 3: hierarchy of logical path sets")
    report.lines.append(f"|T(C)| = {len(t_set)} (non-robustly testable)")
    report.lines.append(f"|LP(sigma_ex2)| = {len(sigma2)}, |LP(sigma_ex3)| = {len(sigma3)}")
    report.lines.append(f"|FS(C)| = {len(fs_set)} (functionally sensitizable)")
    report.lines.append(
        "T subset of LP(sigma): "
        f"{t_set <= sigma2 and t_set <= sigma3}; "
        "LP(sigma) subset of FS: "
        f"{sigma2 <= fs_set and sigma3 <= fs_set}"
    )
    return report


def figure5() -> FigureReport:
    """The optimum input sort recovers σ' (Figure 5)."""
    circuit = paper_example_circuit()
    sort = example3_sort(circuit)
    sigma = assignment_from_sort(circuit, sort)
    paths = sigma.logical_paths()
    report = FigureReport(title="Figure 5: optimum input sort")
    for gid in range(circuit.num_gates):
        leads = list(circuit.input_leads(gid))
        if len(leads) < 2:
            continue
        ordered = sorted(leads, key=sort.rank)
        names = " < ".join(circuit.lead_name(l) for l in ordered)
        report.lines.append(f"{circuit.gate_name(gid)}: {names}")
    report.lines.append(f"|LP(sigma^pi)| = {len(paths)} (optimum: 5)")
    return report


def all_figures() -> str:
    parts = [figure1().render()]
    fig2, _ = figure2()
    parts.append(fig2.render())
    parts.append(figure3().render())
    fig4, _ = figure4()
    parts.append(fig4.render())
    parts.append(figure5().render())
    return "\n\n".join(parts)


def main() -> None:
    print(all_figures())


if __name__ == "__main__":
    main()


# Re-exported for tests that assert the exact Example-2/3 path sets.
__all__ = [
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "all_figures",
    "example2_sort",
    "example3_sort",
    "LogicalPath",
]
