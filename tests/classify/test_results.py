"""Unit tests for the classification result container."""

from repro.classify.conditions import Criterion
from repro.classify.results import ClassificationResult


def make(total=100, accepted=40):
    return ClassificationResult(
        circuit_name="c",
        criterion=Criterion.FS,
        total_logical=total,
        accepted=accepted,
        elapsed=1.5,
    )


def test_rd_count_and_fraction():
    r = make()
    assert r.rd_count == 60
    assert r.rd_fraction == 0.6
    assert r.rd_percent == 60.0


def test_zero_total():
    r = make(total=0, accepted=0)
    assert r.rd_fraction == 0.0


def test_str_mentions_everything():
    text = str(make())
    assert "c" in text and "FS" in text and "60.00%" in text
