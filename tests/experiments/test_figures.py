"""The figure reproductions must state the paper's numbers."""

from repro.experiments.figures import (
    all_figures,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
)


def test_figure1_three_systems():
    report = figure1()
    assert "3 found" in report.title
    assert len(report.lines) == 3


def test_figure2_six_paths_one_untestable():
    report, paths = figure2()
    assert len(paths) == 6
    assert any("|LP(sigma)| = 6" in line for line in report.lines)
    assert any("b -> g_and -> g_or -> out [1->0]" in line for line in report.lines)


def test_figure3_hierarchy():
    report = figure3()
    text = report.render()
    assert "|T(C)| = 5" in text
    assert "|FS(C)| = 8" in text
    assert "True" in text and "False" not in text


def test_figure4_optimum():
    report, paths = figure4()
    assert len(paths) == 5
    assert any("not robustly testable: none" in line for line in report.lines)


def test_figure5_sort_and_optimum():
    report = figure5()
    text = report.render()
    assert "|LP(sigma^pi)| = 5" in text
    # The optimum sort prefers c over b at the AND gate.
    assert "c->g_and.1 < b->g_and.0" in text


def test_all_figures_renders():
    text = all_figures()
    for marker in ("Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5"):
        assert marker in text
