"""Seeded random reconvergent logic (the "everything else" workload).

The generator grows a DAG gate by gate, biasing source selection towards
recent gates (locality) so that realistic reconvergent fanout appears.
Gates driving nothing at the end are wired to POs, so all logic is
observable.
"""

from __future__ import annotations

import random

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit

_GATE_CHOICES = (
    GateType.AND,
    GateType.OR,
    GateType.NAND,
    GateType.NOR,
    GateType.NOT,
)


def random_dag(
    num_inputs: int,
    num_gates: int,
    seed: int = 0,
    max_fanin: int = 3,
    locality: float = 0.7,
    name: str | None = None,
) -> Circuit:
    """A random combinational circuit with ``num_inputs`` PIs and
    ``num_gates`` internal gates.

    ``locality`` ∈ [0, 1]: probability that a fanin source is drawn from
    the most recent quarter of the netlist (creates depth) rather than
    uniformly (creates fanout/reconvergence).
    """
    if num_inputs < 1 or num_gates < 1:
        raise ValueError("need at least one input and one gate")
    if max_fanin < 2:
        raise ValueError("max_fanin must be >= 2")
    rng = random.Random(seed)
    circuit = Circuit(name or f"rand_i{num_inputs}_g{num_gates}_s{seed}")
    nodes = [circuit.add_gate(GateType.PI, f"x{i}") for i in range(num_inputs)]

    def pick_source() -> int:
        if rng.random() < locality and len(nodes) > 4:
            lo = max(0, len(nodes) - max(4, len(nodes) // 4))
            return nodes[rng.randrange(lo, len(nodes))]
        return nodes[rng.randrange(len(nodes))]

    for g in range(num_gates):
        gtype = rng.choice(_GATE_CHOICES)
        if gtype is GateType.NOT:
            fanin = [pick_source()]
        else:
            k = rng.randint(2, max_fanin)
            fanin = []
            while len(fanin) < k:
                src = pick_source()
                if src not in fanin:
                    fanin.append(src)
                elif len(set(nodes)) < k:
                    break
            if len(fanin) < 2:
                gtype = GateType.NOT
                fanin = fanin[:1]
        nodes.append(circuit.add_gate(gtype, f"g{g}", fanin))
    # Attach POs to every sink gate (gates nothing reads).
    read = set()
    for gid in range(circuit.num_gates):
        read.update(circuit.fanin(gid))
    sinks = [
        gid
        for gid in range(circuit.num_gates)
        if gid not in read and circuit.gate_type(gid) is not GateType.PI
    ]
    if not sinks:
        sinks = [nodes[-1]]
    for k, gid in enumerate(sinks):
        circuit.add_gate(GateType.PO, f"out{k}", [gid])
    return circuit.freeze()
