"""The analysis service's wire protocol: JSON lines over a stream.

Both directions carry one JSON object per ``\\n``-terminated line
(UTF-8, no embedded newlines — ``json.dumps`` escapes them).  Requests
carry an ``op`` plus op-specific fields and an optional ``id`` the
server echoes into everything it sends back for that request::

    -> {"id": 1, "op": "classify", "circuit": "c17", "criterion": "sigma"}
    <- {"id": 1, "event": "start", "name": "c17", "fingerprint": "rdfp1:..."}
    <- {"id": 1, "ok": true, "result": {"accepted": 10, ...}}

A failed request answers with a *structured error* on the same open
connection — the connection is only dropped for unrecoverable framing
problems (an oversized line)::

    <- {"id": 2, "ok": false,
        "error": {"type": "TaskTimeout", "message": "..."}}

``error.type`` is the server-side exception class name
(``CircuitError``, ``ClassifyError``, ``TaskTimeout``, ...), which the
client rehydrates as :class:`repro.errors.RemoteError`.

Ops:

``classify``
    Fields: ``circuit`` (suite generator name) *or* ``bench`` (.bench
    source text); optional ``criterion`` (``fs``/``nr``/``sigma``,
    default ``sigma``), ``sort`` (``pin``/``heu1``/``heu2``/``heu2inv``,
    default ``heu2``; ``sigma`` only), ``max_accepted`` (int),
    ``deadline`` (seconds; default derived from the circuit's exact
    path count via the supervisor budget rule), ``cones`` (bool,
    default ``false``).  With ``"cones": true`` the pass runs at cone
    granularity against the store's schema-v2 cone table (the ECO
    path): ``sort`` must be ``pin``/``heu1``/``heu2`` (derived per
    cone), ``max_accepted`` becomes a per-cone budget, and the result
    carries an extra ``"cone_stats"`` object —
    ``{"cones": N, "reused": n, "computed": m, "reuse_ratio": r}`` —
    describing how much of the answer came from stored cone rows.
``tightness``
    Exact-vs-approximate verdict counts for one circuit (the Lemma-2
    gap, via :mod:`repro.verdict`).  Fields: ``circuit`` *or* ``bench``
    as for ``classify``; optional ``criterion`` / ``sort`` (same
    domains and defaults), ``max_accepted`` (int — a circuit whose
    classifier accepts more paths answers a structured
    ``ClassifyError``) and ``deadline``.  The result is one tightness
    row: ``total_logical``, ``approx_accepted``, ``exact_accepted``,
    ``refuted``, both RD percentages, ``witness_replays`` and solver
    diagnostics, plus ``fingerprint`` and ``session`` stats.
``signoff``
    K-longest (or above-slack) robustly-testable paths of one circuit
    under an annotated delay assignment (:mod:`repro.signoff`).
    Fields: ``circuit`` *or* ``bench`` as for ``classify``; exactly one
    of ``k`` (int >= 1) / ``slack`` (number); optional ``delays``
    (sidecar-format annotation text — ``<gate> <rise> <fall>`` lines —
    which must cover every non-PI gate: the wire never falls back so
    client and server cannot disagree), ``seed`` (int, used only when
    ``delays`` is absent: the deterministic fallback assignment),
    ``exact`` (bool — escalate survivors through the SAT oracle) and
    ``deadline``.  The result carries the canonical row list
    (``capture``/``source``/``transition``/``delay``/``path``), the
    stage counters, ``delays_digest``, ``source``
    (``"computed"``/``"store"`` — rows are cached under store kind
    ``"signoff"``, keyed by the circuit fingerprint plus the canonical
    delay digest and query), ``fingerprint`` and ``session`` stats.
    Scan-domain fan-out is client-side: each cone of a
    :class:`~repro.circuit.sequential.ScanCircuit` arrives as its own
    independently-fingerprinted (hence independently hashed, coalesced
    and cached) ``signoff`` request.
``ping``
    Liveness + version handshake.
``stats``
    Server counters and, when the server has one, result-store stats.
``metrics``
    Full telemetry snapshot from the server's :mod:`repro.obs`
    registry: request counters, latency histograms, the in-flight
    gauge, store hit/miss counters and deadline aborts (rendered by
    ``repro-rd metrics --remote``).

Every server message for a request additionally carries the
server-assigned ``request_id`` (``"req-<n>"``) alongside the client's
echoed ``id`` — the correlation key tying a ``start`` event, its final
result (or error) and the server's logs/metrics together.

Fleet additions (:mod:`repro.service.fleet`) — same ops, three extra
fields when the daemon runs with ``--workers N``:

* classify results carry ``"worker"`` (the shard index that computed
  the answer) and ``"coalesced"`` (``true`` when this response was
  satisfied by another in-flight identical request through the
  front-end's single-flight cache, ``false`` for the request that did
  the computation).  Coalesced followers receive the final response
  only — the ``start`` event streams to the computing request alone.
* a shed request answers ``error.type == "Overloaded"`` with an extra
  ``error.retry_after`` field — the front-end's backoff hint in
  seconds.  Any exception carrying a numeric ``retry_after`` attribute
  serializes the same way; the client surfaces it on
  :class:`~repro.errors.RemoteError` as ``retry_after``.
"""

from __future__ import annotations

import json

from repro.errors import ProtocolError

__all__ = [
    "MAX_LINE",
    "decode_line",
    "encode_line",
    "error_response",
    "event",
    "ok_response",
]

#: longest accepted wire line — generously above any realistic ``.bench``
MAX_LINE = 8 * 1024 * 1024

_VALID_OPS = ("classify", "metrics", "ping", "signoff", "stats", "tightness")


def encode_line(message: dict) -> bytes:
    """One protocol message as a complete wire line (with newline)."""
    return json.dumps(
        message, sort_keys=True, separators=(",", ":")
    ).encode("utf-8") + b"\n"


def decode_line(raw: bytes) -> dict:
    """Parse one wire line into a message, or raise :class:`ProtocolError`."""
    if len(raw) > MAX_LINE:
        raise ProtocolError(f"line exceeds {MAX_LINE} bytes")
    try:
        message = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"invalid JSON line: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"expected a JSON object, got {type(message).__name__}"
        )
    return message


def validate_request(message: dict) -> str:
    """Check a decoded request and return its ``op``."""
    op = message.get("op")
    if not isinstance(op, str):
        raise ProtocolError("request is missing a string 'op' field")
    if op not in _VALID_OPS:
        raise ProtocolError(
            f"unknown op {op!r}; valid: {', '.join(_VALID_OPS)}"
        )
    return op


def ok_response(request_id, result: dict, server_request_id: "str | None" = None) -> dict:
    message = {"id": request_id, "ok": True, "result": result}
    if server_request_id is not None:
        message["request_id"] = server_request_id
    return message


def error_response(
    request_id, exc: BaseException, server_request_id: "str | None" = None
) -> dict:
    message = {
        "id": request_id,
        "ok": False,
        "error": {"type": type(exc).__name__, "message": str(exc)},
    }
    retry_after = getattr(exc, "retry_after", None)
    if isinstance(retry_after, (int, float)):
        message["error"]["retry_after"] = round(float(retry_after), 3)
    if server_request_id is not None:
        message["request_id"] = server_request_id
    return message


def event(
    request_id, kind: str, server_request_id: "str | None" = None, **fields
) -> dict:
    """A streamed progress event (anything before the final response).

    ``fields`` are the event's payload; they must not collide with the
    reserved keys ``id`` / ``event`` / ``request_id`` (the last carries
    the server's correlation key when ``server_request_id`` is given).
    """
    message = {"id": request_id, "event": kind}
    if server_request_id is not None:
        message["request_id"] = server_request_id
    message.update(fields)
    return message
