"""Seeded benchmark-circuit generators.

Stand-ins for the ISCAS-85 / MCNC workloads of the paper's evaluation
(see DESIGN.md "Substitutions"): the generators reproduce the structural
features that drive the paper's numbers — XOR-dominated parity/ECC
networks (c499/c1355-like), ALU control logic (c880-like), adders,
array multipliers (c6288-like path explosion), random reconvergent
logic, and factored two-level covers (MCNC-like).
"""

from repro.gen.adders import ripple_carry_adder, carry_lookahead_adder, carry_select_adder
from repro.gen.multiplier import array_multiplier
from repro.gen.parity import parity_tree, ecc_encoder
from repro.gen.alu import simple_alu
from repro.gen.mux import mux_tree, decoder
from repro.gen.random_logic import random_dag
from repro.gen.datapath import barrel_shifter, magnitude_comparator, priority_encoder
from repro.gen.twolevel import random_cover, factored_circuit
from repro.gen.suite import table1_suite, table3_suite, get_circuit, SUITE

__all__ = [
    "ripple_carry_adder",
    "carry_lookahead_adder",
    "carry_select_adder",
    "array_multiplier",
    "parity_tree",
    "ecc_encoder",
    "simple_alu",
    "mux_tree",
    "decoder",
    "random_dag",
    "barrel_shifter",
    "magnitude_comparator",
    "priority_encoder",
    "random_cover",
    "factored_circuit",
    "table1_suite",
    "table3_suite",
    "get_circuit",
    "SUITE",
]
