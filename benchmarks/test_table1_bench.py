"""Table I bench: RD percentages (FUS / Heu1 / Heu2 / inverse) per
suite circuit.

Each test measures the *whole* Table-I pipeline for one circuit (path
counting, FS+NR passes, both sorts, three SIGMA_PI passes) — one round,
these are full experiments.  The regenerated table prints at session
end.  The paper's qualitative shape is asserted per row:

* Heu1/Heu2/inverse all dominate FUS (Lemma 1);
* the inverted sort never beats Heuristic 2 (the Heu2-bar column
  collapsing towards FUS is the paper's key control result).
"""

import pytest

from repro.experiments.harness import run_table1_row
from repro.gen.suite import table1_suite

from benchmarks.conftest import TABLE1_ROWS

_CIRCUITS = {c.name: c for c in table1_suite()}


@pytest.mark.parametrize("name", sorted(_CIRCUITS))
def test_table1_row(benchmark, name, circuit_sessions):
    circuit = _CIRCUITS[name]
    row = benchmark.pedantic(
        run_table1_row,
        args=(circuit,),
        kwargs={"session": circuit_sessions(circuit)},
        rounds=1,
        iterations=1,
    )
    TABLE1_ROWS[name] = row
    problems = row.check_expected_shape()
    assert problems == [], f"{name}: {problems}"
    # The new approach must identify at least as many RD paths as plain
    # functional unsensitizability (its entire point).
    assert row.heu2_percent >= row.fus_percent - 1e-9


def test_table1_aggregate_shape(benchmark):
    """Across the suite: Heu2 beats Heu1 on average (the paper reports a
    mean improvement of 2.51%), and at least one circuit has a large RD
    fraction while another has a small one (the ISCAS spread)."""
    rows = benchmark.pedantic(lambda: list(TABLE1_ROWS.values()), rounds=1, iterations=1)
    assert len(rows) == len(_CIRCUITS)
    mean_h1 = sum(r.heu1_percent for r in rows) / len(rows)
    mean_h2 = sum(r.heu2_percent for r in rows) / len(rows)
    assert mean_h2 >= mean_h1 - 1e-9
    assert max(r.heu2_percent for r in rows) > 50.0
    assert min(r.heu2_percent for r in rows) < 20.0
