"""Record the timing-signoff query benchmark (K-longest robust paths).

For a representative slice of the suite: run the layered signoff query
(lazy slowest-first enumeration -> Lemma-2 prefilter -> robust-test
verdict) under the deterministic seeded delay assignment and write
``BENCH_timing.json`` at the repo root with per-circuit wall times,
stage counters and the reported critical robust paths — the committed
baseline for the query layer's cost:

    PYTHONPATH=src python benchmarks/record_signoff_bench.py

``--smoke`` is the CI guard: the annotated scan example is driven
through the ``repro-rd signoff`` command line with ``--json``,
asserting K results in non-increasing delay order, byte-identical
tables at ``--jobs 1`` / ``--jobs 2``, a warm second pass served from
the store, and ``--remote`` parity against a freshly spawned 2-worker
fleet.  It writes no file and finishes in seconds:

    PYTHONPATH=src python benchmarks/record_signoff_bench.py --smoke
"""

from __future__ import annotations

import contextlib
import io
import json
import os
import platform
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_timing.json"
EXAMPLE = ROOT / "examples" / "s27_timing.bench"

#: the recorded slice: small enough to brute-force-audit, large enough
#: to exercise the prefilter
CIRCUITS = ["c17", "apex-a", "misex-f", "bw-d", "xcmp16", "seq-g"]

K = 10
SEED = 0


def main() -> int:
    from repro.signoff import signoff

    rows = []
    for name in CIRCUITS:
        report = signoff(name, k=K, seed=SEED)
        rows.append(
            {
                "circuit": name,
                "domains": len(report.domains),
                "paths": len(report.rows),
                "critical_delay": (
                    round(report.rows[0].delay, 4) if report.rows else None
                ),
                "delays_digest": report.delays_digest,
                "counters": dict(report.counters),
                "wall_s": round(report.wall_seconds, 4),
            }
        )
        print(
            f"{name}: {len(report.rows)} robust paths across "
            f"{len(report.domains)} domains in {report.wall_seconds:.2f}s "
            f"({report.counters['candidates']} candidates, "
            f"{report.counters['prefilter_rejects']} prefilter rejects)"
        )
    doc = {
        "benchmark": "timing-signoff",
        "unit": "wall seconds per circuit (enumerate + filter + verdict)",
        "k": K,
        "seed": SEED,
        "python": platform.python_version(),
        "totals": {
            "circuits": len(rows),
            "candidates": sum(r["counters"]["candidates"] for r in rows),
            "prefilter_rejects": sum(
                r["counters"]["prefilter_rejects"] for r in rows
            ),
            "robust_confirmed": sum(
                r["counters"]["robust_confirmed"] for r in rows
            ),
            "wall_s": round(sum(r["wall_s"] for r in rows), 2),
        },
        "rows": rows,
    }
    OUT.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    print(f"\n{len(rows)} circuits -> {OUT}")
    return 0


def _cli_json(argv: list) -> dict:
    """Run the repro-rd CLI in-process and parse its --json output."""
    from repro.cli import main as cli_main

    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = cli_main(argv)
    if code not in (0, None):
        raise AssertionError(f"repro-rd {argv[0]} exited {code}")
    return json.loads(buffer.getvalue())


def _table(result: dict) -> dict:
    """The deterministic slice of a signoff --json document."""
    return {
        k: v
        for k, v in result.items()
        if k not in ("exact", "counters", "sources", "wall_seconds")
    }


@contextlib.contextmanager
def _fleet(socket_path: str, workers: int = 2):
    """A 2-worker fleet subprocess, ready when the socket appears."""
    env = dict(os.environ, PYTHONPATH=str(ROOT / "src"))
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--socket", socket_path, "--workers", str(workers),
        ],
        env=env,
    )
    try:
        for _ in range(300):
            if Path(socket_path).exists():
                break
            if proc.poll() is not None:
                raise AssertionError("fleet exited before serving")
            time.sleep(0.1)
        else:
            raise AssertionError("fleet socket never appeared")
        yield socket_path
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


def smoke() -> int:
    """CI guard: the signoff command line works end to end."""
    bench = str(EXAMPLE)
    with tempfile.TemporaryDirectory() as tmp:
        store_path = str(Path(tmp) / "signoff.sqlite")
        cold = _cli_json(
            ["signoff", bench, "--k", "5", "--store", store_path, "--json"]
        )
        assert cold["mode"] == "k" and cold["k"] == 5, cold
        assert cold["paths"] == len(cold["rows"]) <= 5, cold
        assert cold["rows"], "annotated s27 must have robust paths"
        delays = [row["delay"] for row in cold["rows"]]
        assert delays == sorted(delays, reverse=True), delays
        assert set(cold["sources"].values()) == {"computed"}, cold["sources"]

        # warm pass: every domain served from the store, same table
        warm = _cli_json(
            ["signoff", bench, "--k", "5", "--store", store_path, "--json"]
        )
        assert set(warm["sources"].values()) == {"store"}, warm["sources"]
        assert _table(warm) == _table(cold)

        # job-count determinism
        fanned = _cli_json(["signoff", bench, "--k", "5", "--jobs", "2", "--json"])
        assert _table(fanned) == _table(cold)

        # remote parity against a real 2-worker fleet
        with _fleet(str(Path(tmp) / "fleet.sock")) as sock:
            remote = _cli_json(
                ["signoff", bench, "--k", "5", "--remote", sock, "--json"]
            )
        assert _table(remote) == _table(cold)
    print(
        f"signoff smoke ok: {len(cold['rows'])} robust paths across "
        f"{len(cold['domains'])} scan domains; store warm hit and "
        f"2-worker remote parity verified"
    )
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(ROOT / "src"))
    sys.exit(smoke() if "--smoke" in sys.argv[1:] else main())
