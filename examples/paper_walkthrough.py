"""The paper's running example, end to end (Figures 1-5, Examples 1-3).

Recomputes every fact the paper states about its example circuit
``out = OR(a, AND(b, c), c)``:

* the three stabilizing systems for input 111 (Figure 1);
* Example 2's complete stabilizing assignment — 6 of 8 logical paths
  selected, exactly one of them not robustly testable (Figure 2);
* the hierarchy T(C) ⊂ LP(σ) ⊂ FS(C) (Figure 3);
* the improved choice for input 000 — 5 paths, all robustly testable,
  100% fault coverage (Example 3 / Figure 4);
* the optimum input sort recovering that assignment (Figure 5), and the
  fact that Heuristic 2 finds it automatically.

Run:  python examples/paper_walkthrough.py
"""

from repro import Criterion, classify, heuristic2_sort, paper_example_circuit
from repro.experiments.figures import all_figures


def main():
    print(all_figures())
    circuit = paper_example_circuit()
    sort = heuristic2_sort(circuit)
    result = classify(circuit, Criterion.SIGMA_PI, sort=sort)
    print(
        "\nHeuristic 2 rediscovers the optimum automatically: "
        f"{result.accepted} paths to test, {result.rd_count} robust "
        f"dependent ({result.rd_percent:.1f}% RD)"
    )


if __name__ == "__main__":
    main()
