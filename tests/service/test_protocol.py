"""The JSON-lines wire protocol: framing, validation, message shapes."""

import pytest

from repro.errors import ProtocolError, TaskTimeout
from repro.service import protocol


class TestFraming:
    def test_encode_decode_roundtrip(self):
        message = {"id": 3, "op": "classify", "circuit": "c17"}
        line = protocol.encode_line(message)
        assert line.endswith(b"\n")
        assert b"\n" not in line[:-1]
        assert protocol.decode_line(line) == message

    def test_newlines_in_strings_stay_escaped(self):
        bench = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n"
        line = protocol.encode_line({"op": "classify", "bench": bench})
        assert line.count(b"\n") == 1
        assert protocol.decode_line(line)["bench"] == bench

    def test_invalid_json_raises(self):
        with pytest.raises(ProtocolError):
            protocol.decode_line(b"{nope\n")

    def test_non_object_raises(self):
        with pytest.raises(ProtocolError):
            protocol.decode_line(b"[1, 2]\n")

    def test_invalid_utf8_raises(self):
        with pytest.raises(ProtocolError):
            protocol.decode_line(b"\xff\xfe\n")

    def test_oversized_line_raises(self):
        with pytest.raises(ProtocolError):
            protocol.decode_line(b"x" * (protocol.MAX_LINE + 1))


class TestValidation:
    def test_valid_ops(self):
        for op in ("classify", "metrics", "ping", "stats"):
            assert protocol.validate_request({"op": op}) == op

    def test_missing_op(self):
        with pytest.raises(ProtocolError):
            protocol.validate_request({"circuit": "c17"})

    def test_non_string_op(self):
        with pytest.raises(ProtocolError):
            protocol.validate_request({"op": 7})

    def test_unknown_op(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            protocol.validate_request({"op": "frobnicate"})


class TestShapes:
    def test_ok_response(self):
        assert protocol.ok_response(4, {"x": 1}) == {
            "id": 4,
            "ok": True,
            "result": {"x": 1},
        }

    def test_error_response_carries_type_name(self):
        message = protocol.error_response(9, TaskTimeout("c17", 5.0))
        assert message["ok"] is False
        assert message["error"]["type"] == "TaskTimeout"
        assert "5" in message["error"]["message"]

    def test_event(self):
        message = protocol.event(2, "start", name="c17")
        assert message == {"id": 2, "event": "start", "name": "c17"}

    def test_server_request_id_on_every_shape(self):
        ok = protocol.ok_response(4, {"x": 1}, "req-7")
        assert ok["request_id"] == "req-7"
        err = protocol.error_response(9, TaskTimeout("c17", 5.0), "req-8")
        assert err["request_id"] == "req-8"
        ev = protocol.event(2, "start", server_request_id="req-9", name="c17")
        assert ev["request_id"] == "req-9"
        assert ev["name"] == "c17"

    def test_request_id_omitted_when_absent(self):
        assert "request_id" not in protocol.ok_response(1, {})
        assert "request_id" not in protocol.event(1, "start")
