"""SAT-exact testability of logical paths.

Conditions per on-path gate with on-path lead ``l`` (simple gates; ``c``
is the controlling value, ``nc`` its complement; ``val2(l)`` is the
final stable value the transition carries into ``l``):

=====================  =========================  =========================
test class             val2(l) = nc ("to-nc")     val2(l) = c ("to-c")
=====================  =========================  =========================
functionally sens.     sides nc under v2          —
non-robust (Def 5)     sides nc under v2          sides nc under v2
robust (Lin–Reddy)     sides nc under v2          sides nc under v1 AND v2
=====================  =========================  =========================

For robust tests the to-c side inputs must be *steady* non-controlling —
otherwise the gate output shows no transition (masking), which is the
classical robust sensitization rule.  All three classes are decided
exactly with one SAT query over one (FS/NR) or two (robust) time frames;
the queries are per explicit path and therefore meant for small/medium
circuits (the fast classifier in :mod:`repro.classify` is the scalable
approximation).
"""

from __future__ import annotations

from repro.atpg.cnf import CNF
from repro.atpg.sat import Solver
from repro.atpg.tseitin import tseitin_encode
from repro.circuit.gates import (
    controlling_value,
    has_controlling_value,
    is_inverting,
)
from repro.circuit.netlist import Circuit
from repro.paths.path import LogicalPath


def _on_path_values(circuit: Circuit, lp: LogicalPath) -> list[tuple[int, int]]:
    """(lead, final value carried into the lead) for every path lead."""
    val = lp.final_value
    out = []
    for lead in lp.path.leads:
        out.append((lead, val))
        if is_inverting(circuit.gate_type(circuit.lead_dst(lead))):
            val = 1 - val
    return out


def _unit(var: int, value: int) -> list[int]:
    return [var if value else -var]


def _side_sources(circuit: Circuit, lead: int) -> list[int]:
    dst = circuit.lead_dst(lead)
    pin = circuit.lead_pin(lead)
    fanin = circuit.fanin(dst)
    return [src for p, src in enumerate(fanin) if p != pin]


def fs_vector(circuit: Circuit, lp: LogicalPath):
    """A vector functionally sensitizing ``lp`` (Definition 4), or None."""
    cnf = CNF()
    enc = tseitin_encode(circuit, cnf)
    pi = lp.path.source(circuit)
    cnf.add_clause(_unit(enc.var(pi), lp.final_value))
    for lead, val in _on_path_values(circuit, lp):
        dst = circuit.lead_dst(lead)
        gtype = circuit.gate_type(dst)
        if not has_controlling_value(gtype):
            continue
        c = controlling_value(gtype)
        if val != c:
            for src in _side_sources(circuit, lead):
                cnf.add_clause(_unit(enc.var(src), 1 - c))
    result = Solver(cnf).solve()
    if not result.sat:
        return None
    return enc.decode_inputs(circuit, result.model)


def nonrobust_test(circuit: Circuit, lp: LogicalPath):
    """The second vector of a non-robust test (Definition 5), or None."""
    cnf = CNF()
    enc = tseitin_encode(circuit, cnf)
    pi = lp.path.source(circuit)
    cnf.add_clause(_unit(enc.var(pi), lp.final_value))
    for lead, _val in _on_path_values(circuit, lp):
        dst = circuit.lead_dst(lead)
        gtype = circuit.gate_type(dst)
        if not has_controlling_value(gtype):
            continue
        c = controlling_value(gtype)
        for src in _side_sources(circuit, lead):
            cnf.add_clause(_unit(enc.var(src), 1 - c))
    result = Solver(cnf).solve()
    if not result.sat:
        return None
    return enc.decode_inputs(circuit, result.model)


def robust_test(circuit: Circuit, lp: LogicalPath):
    """A robust two-pattern test ``(v1, v2)`` for ``lp``, or None.

    Encodes two frames sharing nothing but the constraints: frame 2 must
    non-robustly sensitize the path, and at every to-controlling on-path
    gate the side inputs must additionally be non-controlling in frame 1
    (steady sides).  Frame 1 sets the path PI to the initial value.
    """
    cnf = CNF()
    enc1 = tseitin_encode(circuit, cnf)
    enc2 = tseitin_encode(circuit, cnf)
    pi = lp.path.source(circuit)
    cnf.add_clause(_unit(enc1.var(pi), 1 - lp.final_value))
    cnf.add_clause(_unit(enc2.var(pi), lp.final_value))
    for lead, val in _on_path_values(circuit, lp):
        dst = circuit.lead_dst(lead)
        gtype = circuit.gate_type(dst)
        if not has_controlling_value(gtype):
            continue
        c = controlling_value(gtype)
        for src in _side_sources(circuit, lead):
            cnf.add_clause(_unit(enc2.var(src), 1 - c))
            if val == c:
                cnf.add_clause(_unit(enc1.var(src), 1 - c))
    result = Solver(cnf).solve()
    if not result.sat:
        return None
    return (
        enc1.decode_inputs(circuit, result.model),
        enc2.decode_inputs(circuit, result.model),
    )


def is_robustly_testable(circuit: Circuit, lp: LogicalPath) -> bool:
    return robust_test(circuit, lp) is not None


def is_nonrobustly_testable(circuit: Circuit, lp: LogicalPath) -> bool:
    return nonrobust_test(circuit, lp) is not None


def coverage(circuit: Circuit, selected_paths) -> tuple[int, int, float]:
    """Robust fault coverage of a selected path set (Theorem 1's notion:
    testable / |LP(σ)|).  Returns (testable, total, fraction)."""
    paths = list(selected_paths)
    testable = sum(1 for lp in paths if is_robustly_testable(circuit, lp))
    total = len(paths)
    return testable, total, (testable / total if total else 1.0)


__all__ = [
    "fs_vector",
    "nonrobust_test",
    "robust_test",
    "is_robustly_testable",
    "is_nonrobustly_testable",
    "coverage",
]
