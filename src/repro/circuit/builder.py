"""A fluent construction API for circuits.

Example::

    b = CircuitBuilder("half_adder")
    a, c = b.pi("a"), b.pi("c")
    s = b.or_(b.and_(a, b.not_(c)), b.and_(b.not_(a), c), name="s")
    b.po(s, name="sum")
    circuit = b.build()
"""

from __future__ import annotations

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit


class CircuitBuilder:
    """Builds a :class:`Circuit` gate by gate, returning gate ids."""

    def __init__(self, name: str = "circuit") -> None:
        self._circuit = Circuit(name)

    def pi(self, name: str | None = None) -> int:
        return self._circuit.add_gate(GateType.PI, name)

    def po(self, src: int, name: str | None = None) -> int:
        return self._circuit.add_gate(GateType.PO, name, [src])

    def and_(self, *srcs: int, name: str | None = None) -> int:
        return self._circuit.add_gate(GateType.AND, name, list(srcs))

    def or_(self, *srcs: int, name: str | None = None) -> int:
        return self._circuit.add_gate(GateType.OR, name, list(srcs))

    def nand(self, *srcs: int, name: str | None = None) -> int:
        return self._circuit.add_gate(GateType.NAND, name, list(srcs))

    def nor(self, *srcs: int, name: str | None = None) -> int:
        return self._circuit.add_gate(GateType.NOR, name, list(srcs))

    def not_(self, src: int, name: str | None = None) -> int:
        return self._circuit.add_gate(GateType.NOT, name, [src])

    def buf(self, src: int, name: str | None = None) -> int:
        return self._circuit.add_gate(GateType.BUF, name, [src])

    def xor(self, a: int, b: int, name: str | None = None) -> int:
        """2-input XOR expanded into simple gates (AND/OR/NOT)."""
        prefix = name or f"xor{self._circuit.num_gates}"
        na = self.not_(a, f"{prefix}_na")
        nb = self.not_(b, f"{prefix}_nb")
        t0 = self.and_(a, nb, name=f"{prefix}_t0")
        t1 = self.and_(na, b, name=f"{prefix}_t1")
        return self.or_(t0, t1, name=prefix)

    def xor_nand(self, a: int, b: int, name: str | None = None) -> int:
        """2-input XOR in the 4-NAND realisation::

            x = NAND(a, b); out = NAND(NAND(a, x), NAND(x, b))

        Unlike the SOP expansion, the shared node ``x`` reconverges, so
        some logical paths through it are functionally unsensitizable —
        the structure responsible for the large FUS fractions of the
        NAND-based ISCAS circuits (c499/c1355).
        """
        prefix = name or f"xorn{self._circuit.num_gates}"
        x = self.nand(a, b, name=f"{prefix}_x")
        l = self.nand(a, x, name=f"{prefix}_l")
        r = self.nand(x, b, name=f"{prefix}_r")
        return self.nand(l, r, name=prefix)

    def xnor(self, a: int, b: int, name: str | None = None) -> int:
        """2-input XNOR expanded into simple gates."""
        prefix = name or f"xnor{self._circuit.num_gates}"
        na = self.not_(a, f"{prefix}_na")
        nb = self.not_(b, f"{prefix}_nb")
        t0 = self.and_(a, b, name=f"{prefix}_t0")
        t1 = self.and_(na, nb, name=f"{prefix}_t1")
        return self.or_(t0, t1, name=prefix)

    def mux(self, sel: int, a: int, b: int, name: str | None = None) -> int:
        """2:1 multiplexer: ``sel ? b : a`` expanded into simple gates."""
        prefix = name or f"mux{self._circuit.num_gates}"
        ns = self.not_(sel, f"{prefix}_ns")
        t0 = self.and_(ns, a, name=f"{prefix}_t0")
        t1 = self.and_(sel, b, name=f"{prefix}_t1")
        return self.or_(t0, t1, name=prefix)

    def build(self) -> Circuit:
        return self._circuit.freeze()

    @property
    def circuit(self) -> Circuit:
        """The (possibly not yet frozen) circuit under construction."""
        return self._circuit
