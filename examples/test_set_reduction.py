"""Path selection with RD filtering (Section VI's closing discussion).

For circuits whose non-RD path set is still too large to test fully, the
paper suggests composing RD identification with classical selection
strategies: test only the slowest paths, but skip the robust dependent
ones.  This example runs that flow on a carry-select adder:

1. classify all logical paths (Heuristic 2);
2. estimate each path's delay under a unit-delay model;
3. select the above-threshold slice, before and after RD filtering —
   the RD filter shrinks the test set at zero coverage cost.

Run:  python examples/test_set_reduction.py
"""

from repro import Criterion, classify, heuristic2_sort
from repro.gen.adders import carry_select_adder
from repro.paths.enumerate import enumerate_logical_paths
from repro.timing.delays import unit_delays
from repro.timing.pathdelay import logical_path_delay


def main():
    circuit = carry_select_adder(8, block=4)
    sort = heuristic2_sort(circuit)
    must_test = set()
    result = classify(
        circuit, Criterion.SIGMA_PI, sort=sort, on_path=must_test.add
    )
    print(f"{circuit.name}: {result.total_logical} logical paths, "
          f"{result.rd_percent:.1f}% robust dependent")

    delays = unit_delays(circuit)
    scored = [
        (logical_path_delay(circuit, lp, delays), lp)
        for lp in enumerate_logical_paths(circuit)
    ]
    max_delay = max(d for d, _ in scored)
    print(f"longest path delay (unit model): {max_delay:.0f}\n")
    print(f"{'threshold':>9s} {'all paths':>10s} {'non-RD only':>11s} "
          f"{'saved':>6s}")
    for fraction in (0.5, 0.6, 0.7, 0.8, 0.9):
        threshold = fraction * max_delay
        slow = [lp for d, lp in scored if d >= threshold]
        slow_non_rd = [lp for lp in slow if lp in must_test]
        saved = len(slow) - len(slow_non_rd)
        print(f"{threshold:9.1f} {len(slow):10d} {len(slow_non_rd):11d} "
              f"{saved:6d}")
    print("\nevery skipped path is provably covered by the tested ones "
          "(Theorem 1), so the reduction is free.")


if __name__ == "__main__":
    main()
