"""Stabilizing systems and Algorithm 1 of the paper.

A stabilizing system ``S`` of circuit ``C`` for input ``v`` (w.r.t. one
primary output) is a subcircuit that stabilizes the PO on its final value
``f(v)`` regardless of the circuitry outside ``S``.  Algorithm 1 computes
one by walking backwards from the PO:

* NOT (and BUF) gates: include the single input lead;
* simple gates whose stable inputs are all non-controlling: include every
  input lead (each one is needed to hold the output);
* simple gates with controlling stable inputs ``L``: include exactly one
  lead from ``L`` (a single controlling value suffices) — the *choice*
  among ``L`` is what makes stabilizing systems non-unique, and is
  delegated to a pluggable policy.

The resulting system is minimum in the sense of the paper: removing any
lead breaks the stabilization guarantee.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.circuit.gates import (
    GateType,
    controlling_value,
    evaluate_gate,
    has_controlling_value,
)
from repro.circuit.netlist import Circuit
from repro.logic.simulate import simulate
from repro.paths.path import LogicalPath, PhysicalPath

#: Resolves Step 2(b): given the gate, the candidate pins (all carrying
#: controlling stable values) and the full stable-value table, return the
#: chosen pin.
ChoicePolicy = Callable[[Circuit, int, Sequence[int], Sequence[int]], int]


def first_pin_policy(
    circuit: Circuit, gate: int, pins: Sequence[int], values: Sequence[int]
) -> int:
    """Deterministic default: the lowest-numbered candidate pin."""
    return min(pins)


@dataclass(frozen=True)
class StabilizingSystem:
    """The output of Algorithm 1 for one (PO, input vector) pair."""

    circuit: Circuit
    po: int
    vector: tuple[int, ...]
    leads: frozenset
    gates: frozenset

    def logical_paths(self) -> set[LogicalPath]:
        """``LP(v, S)``: the logical paths of the system — every PI→PO
        path inside ``S``, with the transition whose final value is the
        PI's stable value under ``v`` (Section III)."""
        circuit = self.circuit
        pi_value = dict(zip(circuit.inputs, self.vector))
        # Adjacency restricted to S: for each gate, the S-leads it drives.
        drives: dict[int, list[int]] = {}
        for lead in self.leads:
            drives.setdefault(circuit.lead_src(lead), []).append(lead)
        paths: set[LogicalPath] = set()
        stack: list[int] = []

        def walk(gate: int) -> None:
            if circuit.gate_type(gate) is GateType.PO:
                pi = circuit.lead_src(stack[0])
                paths.add(LogicalPath(PhysicalPath(tuple(stack)), pi_value[pi]))
                return
            for lead in drives.get(gate, ()):
                stack.append(lead)
                walk(circuit.lead_dst(lead))
                stack.pop()

        for pi in circuit.inputs:
            if pi in self.gates:
                walk(pi)
        return paths

    def stabilizes(self, trials: int = 16, seed: int = 0) -> bool:
        """Randomised check of the defining property: values outside the
        system never change the PO value.

        Every gate outside ``S`` gets a random output value; every input
        pin of an ``S``-gate whose lead is *not* in ``S`` reads that
        random value; ``S``-gates then re-evaluate in topological order.
        The PO must always equal ``f(v)``.
        """
        circuit = self.circuit
        stable = simulate(circuit, self.vector)
        expected = stable[self.po]
        rng = random.Random(seed)
        for _ in range(trials):
            values = [rng.randint(0, 1) for _ in range(circuit.num_gates)]
            for gid in circuit.topo_order:
                if gid not in self.gates:
                    continue
                gtype = circuit.gate_type(gid)
                if gtype is GateType.PI:
                    values[gid] = stable[gid]
                    continue
                ins = []
                for pin, src in enumerate(circuit.fanin(gid)):
                    if circuit.lead_index(gid, pin) in self.leads:
                        ins.append(values[src])
                    else:
                        ins.append(rng.randint(0, 1))
                values[gid] = evaluate_gate(gtype, ins)
            if values[self.po] != expected:
                return False
        return True

    def describe(self) -> str:
        circuit = self.circuit
        lead_names = sorted(circuit.lead_name(l) for l in self.leads)
        bits = "".join(str(b) for b in self.vector)
        return f"S(v={bits}, {circuit.gate_name(self.po)}): " + ", ".join(lead_names)


def compute_stabilizing_system(
    circuit: Circuit,
    po: int,
    vector: Sequence[int],
    policy: ChoicePolicy = first_pin_policy,
) -> StabilizingSystem:
    """Algorithm 1: compute a stabilizing system for ``vector`` w.r.t.
    primary output ``po`` using ``policy`` to resolve Step 2(b)."""
    if circuit.gate_type(po) is not GateType.PO:
        raise ValueError(f"gate {po} is not a PO")
    values = simulate(circuit, vector)
    leads: set[int] = set()
    gates: set[int] = {po}
    leads.add(circuit.lead_index(po, 0))
    frontier = [circuit.fanin(po)[0]]
    while frontier:
        gate = frontier.pop()
        if gate in gates:
            continue
        gates.add(gate)
        gtype = circuit.gate_type(gate)
        if gtype is GateType.PI:
            continue
        if gtype in (GateType.NOT, GateType.BUF):
            chosen_pins: Sequence[int] = (0,)
        elif has_controlling_value(gtype):
            c = controlling_value(gtype)
            ctrl_pins = [
                pin
                for pin, src in enumerate(circuit.fanin(gate))
                if values[src] == c
            ]
            if ctrl_pins:
                chosen_pins = (policy(circuit, gate, ctrl_pins, values),)
                if chosen_pins[0] not in ctrl_pins:
                    raise ValueError(
                        "choice policy returned a pin without a controlling value"
                    )
            else:
                chosen_pins = range(len(circuit.fanin(gate)))
        else:
            raise ValueError(f"unsupported gate type {gtype.name} in Algorithm 1")
        for pin in chosen_pins:
            leads.add(circuit.lead_index(gate, pin))
            frontier.append(circuit.fanin(gate)[pin])
    return StabilizingSystem(
        circuit=circuit,
        po=po,
        vector=tuple(vector),
        leads=frozenset(leads),
        gates=frozenset(gates),
    )


def all_stabilizing_systems(
    circuit: Circuit, po: int, vector: Sequence[int], limit: int = 10_000
) -> Iterator[StabilizingSystem]:
    """Enumerate *every* stabilizing system Algorithm 1 can produce for
    ``vector`` (all resolutions of Step 2(b)).

    Exponential in the number of choice gates; guarded by ``limit``.
    Used by the exact baseline and to reproduce Figure 1.
    """
    values = simulate(circuit, vector)
    produced = 0

    def extend(
        frontier: list[int], leads: frozenset, gates: frozenset
    ) -> Iterator[StabilizingSystem]:
        nonlocal produced
        while frontier:
            gate = frontier[-1]
            if gate in gates:
                frontier.pop()
                continue
            break
        if not frontier:
            produced += 1
            if produced > limit:
                raise RuntimeError(f"more than {limit} stabilizing systems")
            yield StabilizingSystem(
                circuit=circuit, po=po, vector=tuple(values_vector), leads=leads,
                gates=gates,
            )
            return
        gate = frontier.pop()
        gates = gates | {gate}
        gtype = circuit.gate_type(gate)
        if gtype is GateType.PI:
            yield from extend(list(frontier), leads, gates)
        elif gtype in (GateType.NOT, GateType.BUF):
            lead = circuit.lead_index(gate, 0)
            yield from extend(
                frontier + [circuit.fanin(gate)[0]], leads | {lead}, gates
            )
        elif has_controlling_value(gtype):
            c = controlling_value(gtype)
            ctrl_pins = [
                pin
                for pin, src in enumerate(circuit.fanin(gate))
                if values[src] == c
            ]
            if ctrl_pins:
                for pin in ctrl_pins:
                    lead = circuit.lead_index(gate, pin)
                    yield from extend(
                        frontier + [circuit.fanin(gate)[pin]],
                        leads | {lead},
                        gates,
                    )
            else:
                new_leads = set(leads)
                new_frontier = list(frontier)
                for pin, src in enumerate(circuit.fanin(gate)):
                    new_leads.add(circuit.lead_index(gate, pin))
                    new_frontier.append(src)
                yield from extend(new_frontier, frozenset(new_leads), gates)
        else:
            raise ValueError(f"unsupported gate type {gtype.name}")

    values_vector = tuple(vector)
    start_lead = circuit.lead_index(po, 0)
    yield from extend(
        [circuit.fanin(po)[0]], frozenset({start_lead}), frozenset({po})
    )
