"""``repro.obs`` — the zero-dependency observability layer.

One telemetry spine for the whole system:

* :mod:`repro.obs.metrics` — a per-process :class:`MetricsRegistry` of
  counters, gauges and histograms.  Lock-free writes, JSON-safe
  snapshots, and an order-independent :meth:`~MetricsRegistry.merge` so
  the process-pool harness folds worker metrics into the parent.
* :mod:`repro.obs.trace` — nested :func:`span` context managers with
  monotonic timings, buffered in a bounded ring and exportable as JSON
  lines (the CLI's ``--trace-out``).

The instrumented layers — classify sessions, ``count_paths``, the
result store, the supervisor, the analysis service — all write into the
process registry via these entry points; the daemon's ``metrics`` op
and ``repro-rd metrics --remote`` read it back out.

Worker processes use the task-scoped trio
:func:`task_observation_begin` / :func:`task_observation_collect` /
:func:`merge_observation`: the supervisor resets worker telemetry at
task entry, ships the task's delta back with its result, and folds it
into the parent — so a ``--jobs N`` run reports the same counter totals
as the equivalent serial run, deterministically.
"""

from __future__ import annotations

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_metrics,
    get_registry,
    histogram_quantile,
    reset_registry,
)
from repro.obs.trace import (
    Span,
    TraceBuffer,
    export_jsonl,
    get_buffer,
    reset_buffer,
    span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TraceBuffer",
    "export_jsonl",
    "format_metrics",
    "get_buffer",
    "get_registry",
    "histogram_quantile",
    "merge_observation",
    "reset_buffer",
    "reset_registry",
    "span",
    "task_observation_begin",
    "task_observation_collect",
]


def task_observation_begin() -> None:
    """Reset this process's telemetry so the next collect is a clean
    per-task delta (called by pool workers at task entry)."""
    reset_registry()
    reset_buffer()


def task_observation_collect() -> dict:
    """Drain this process's telemetry into one picklable payload."""
    return {
        "metrics": get_registry().snapshot(),
        "trace": get_buffer().drain(),
    }


def merge_observation(observation: "dict | None") -> None:
    """Fold a worker's :func:`task_observation_collect` payload into
    this process's registry and trace buffer (no-op on ``None``)."""
    if not observation:
        return
    metrics = observation.get("metrics")
    if isinstance(metrics, dict):
        get_registry().merge(metrics)
    trace = observation.get("trace")
    if isinstance(trace, list):
        get_buffer().extend(trace)
