"""Unit tests for sequential (scan) circuit expansion."""

import pytest

from repro.circuit.bench import BenchParseError
from repro.circuit.sequential import (
    S27_LIKE,
    parse_sequential_bench,
)


@pytest.fixture
def s27():
    return parse_sequential_bench(S27_LIKE, name="s27_like")


class TestExpansion:
    def test_counts(self, s27):
        assert s27.num_flipflops == 3
        assert len(s27.primary_inputs) == 4
        assert len(s27.primary_outputs) == 1
        assert len(s27.core.inputs) == 7  # 4 PIs + 3 pseudo
        assert len(s27.core.outputs) == 4  # 1 PO + 3 pseudo

    def test_pseudo_io_disjoint_from_primary(self, s27):
        assert not set(s27.pseudo_inputs) & set(s27.primary_inputs)
        assert not set(s27.pseudo_outputs) & set(s27.primary_outputs)

    def test_ff_names_resolve(self, s27):
        for ff_name, (pi, po) in s27.flipflops.items():
            assert s27.core.gate_name(pi) == ff_name
            assert s27.core.gate_name(po).endswith("_po")

    def test_no_dff_rejected(self):
        with pytest.raises(BenchParseError):
            parse_sequential_bench("INPUT(a)\nOUTPUT(a)\n")

    def test_multi_input_dff_rejected(self):
        with pytest.raises(BenchParseError):
            parse_sequential_bench(
                "INPUT(a)\nOUTPUT(q)\nq = DFF(a, a)\n"
            )

    def test_ff_feeding_declared_output_reuses_po(self):
        text = """
        INPUT(a)
        OUTPUT(n)
        q = DFF(n)
        n = NOT(a)
        x = AND(q, a)
        OUTPUT(x)
        """
        scan = parse_sequential_bench(text)
        # n is both a primary output and the FF's capture point: one PO.
        assert len(scan.core.outputs) == 2
        (_pi, po), = [scan.flipflops["q"]]
        assert scan.core.gate_name(po) == "n_po"


class TestNextState:
    def test_next_state_function(self, s27):
        # All-zero state and inputs: compute one tick by hand-simulating.
        vector = tuple(0 for _ in s27.core.inputs)
        nxt = s27.next_state(vector)
        assert len(nxt) == 3
        assert all(v in (0, 1) for v in nxt)

    def test_state_sequence_is_deterministic(self, s27):
        order = list(s27.core.inputs)
        state = {pi: 0 for pi in s27.pseudo_inputs}
        seen = []
        for _ in range(4):
            vector = tuple(
                state.get(pi, 1) if pi in state else 0 for pi in order
            )
            nxt = s27.next_state(vector)
            seen.append(nxt)
            for (pi, _po), value in zip(s27.flipflops.values(), nxt):
                state[pi] = value
        assert len(seen) == 4


class TestDelayAnalysisOnCore:
    def test_rd_classification_applies(self, s27):
        from repro.classify.conditions import Criterion
        from repro.classify.engine import classify
        from repro.sorting.heuristics import heuristic2_sort

        sort = heuristic2_sort(s27.core)
        result = classify(s27.core, Criterion.SIGMA_PI, sort=sort)
        assert result.total_logical > 0
        assert 0 <= result.accepted <= result.total_logical

    def test_paths_span_pseudo_io(self, s27):
        """State-to-state paths (pseudo-PI to pseudo-PO) exist — the
        paths a scan-based launch/capture test exercises."""
        from repro.paths.enumerate import enumerate_physical_paths

        pseudo_in = set(s27.pseudo_inputs)
        pseudo_out = set(s27.pseudo_outputs)
        kinds = set()
        for p in enumerate_physical_paths(s27.core):
            src = p.source(s27.core)
            dst = p.sink(s27.core)
            kinds.add((src in pseudo_in, dst in pseudo_out))
        assert (True, True) in kinds  # state -> state
        assert (False, True) in kinds  # pi -> state


class TestPseudoPoCollision:
    def test_colliding_input_name_rejected(self):
        text = """\
INPUT(a)
INPUT(d_po)
OUTPUT(x)
q = DFF(d)
d = AND(a, q)
x = OR(d_po, d)
"""
        with pytest.raises(BenchParseError, match="d_po"):
            parse_sequential_bench(text, name="clash")

    def test_message_names_the_flip_flop_data_net(self):
        text = """\
INPUT(a)
OUTPUT(x)
q = DFF(d)
d_po = NOT(a)
d = AND(a, q)
x = OR(d_po, q)
"""
        with pytest.raises(BenchParseError, match="data net 'd'"):
            parse_sequential_bench(text, name="clash2")
