"""Unit and fuzz tests for the CDCL SAT solver."""

import random

import pytest

from repro.atpg.cnf import CNF
from repro.atpg.sat import Solver, brute_force_sat


class TestBasics:
    def test_trivial_sat(self):
        cnf = CNF(1)
        cnf.add_clause([1])
        result = Solver(cnf).solve()
        assert result.sat
        assert result.model[1] is True

    def test_trivial_unsat(self):
        cnf = CNF(1)
        cnf.add_clause([1])
        cnf.add_clause([-1])
        assert not Solver(cnf).solve().sat

    def test_tautology_clause_dropped(self):
        cnf = CNF(2)
        cnf.add_clause([1, -1])
        cnf.add_clause([2])
        result = Solver(cnf).solve()
        assert result.sat and result.model[2]

    def test_empty_formula_sat(self):
        assert Solver(CNF(3)).solve().sat

    def test_bool_conversion(self):
        cnf = CNF(1)
        cnf.add_clause([1])
        assert Solver(cnf).solve()

    def test_requires_learning(self):
        """Pigeonhole PHP(3,2): 3 pigeons, 2 holes — small but forces
        genuine conflict analysis."""
        cnf = CNF(6)  # var(p,h) = 2*p + h + 1 for p in 0..2, h in 0..1
        v = lambda p, h: 2 * p + h + 1
        for p in range(3):
            cnf.add_clause([v(p, 0), v(p, 1)])
        for h in range(2):
            for p1 in range(3):
                for p2 in range(p1 + 1, 3):
                    cnf.add_clause([-v(p1, h), -v(p2, h)])
        assert not Solver(cnf).solve().sat


class TestAssumptions:
    def test_assumptions_restrict_models(self):
        cnf = CNF(2)
        cnf.add_clause([1, 2])
        result = Solver(cnf).solve(assumptions=[-1])
        assert result.sat and result.model[2]

    def test_conflicting_assumptions(self):
        cnf = CNF(2)
        cnf.add_clause([1])
        assert not Solver(cnf).solve(assumptions=[-1]).sat

    def test_assumption_pair_unsat(self):
        cnf = CNF(2)
        cnf.add_clause([-1, -2])
        assert not Solver(cnf).solve(assumptions=[1, 2]).sat


class TestFuzzAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_formulas(self, seed):
        rng = random.Random(seed)
        for _ in range(60):
            nv = rng.randint(3, 11)
            cnf = CNF(nv)
            for _ in range(rng.randint(2, 40)):
                k = rng.randint(1, 4)
                cnf.add_clause(
                    [
                        (v if rng.random() < 0.5 else -v)
                        for v in (rng.randint(1, nv) for _ in range(k))
                    ]
                )
            expected = brute_force_sat(cnf)
            result = Solver(cnf).solve()
            assert result.sat == expected
            if result.sat:
                assert cnf.evaluate(result.model)


def test_conflict_budget():
    # An unsatisfiable pigeonhole with a tiny conflict budget must raise.
    cnf = CNF(12)
    v = lambda p, h: 3 * p + h + 1
    for p in range(4):
        cnf.add_clause([v(p, 0), v(p, 1), v(p, 2)])
    for h in range(3):
        for p1 in range(4):
            for p2 in range(p1 + 1, 4):
                cnf.add_clause([-v(p1, h), -v(p2, h)])
    with pytest.raises(RuntimeError):
        Solver(cnf).solve(max_conflicts=1)


def test_brute_force_refuses_wide():
    with pytest.raises(ValueError):
        brute_force_sat(CNF(30))
