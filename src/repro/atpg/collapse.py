"""Structural stuck-at fault collapsing (equivalence + dominance).

Classical rules on the lead-fault universe:

*Equivalence* — faults indistinguishable by any test:
  - every input s-a-c of a simple gate ≡ its output s-a-(controlled
    output) — we keep one representative input fault per gate;
  - NOT/BUF/PO input faults ≡ the corresponding output-side fault of the
    driver, folded through inversion.

*Dominance* — a test for the dominated fault always detects the
dominating one, so the dominating fault may be dropped from the target
list:
  - a simple gate's output s-a-(uncontrolled output) dominates each
    input s-a-nc; since our universe is lead (input-pin) faults, this
    appears when a stem's single fanout branch repeats downstream.

The collapsed set returned here keeps, for every fault in the full lead
universe, at least one collapsed representative whose detection implies
the original's — verified exhaustively in the tests via fault
simulation.
"""

from __future__ import annotations

from repro.atpg.stuckat import StuckAtFault
from repro.circuit.gates import (
    GateType,
    controlling_value,
    has_controlling_value,
)
from repro.circuit.netlist import Circuit


def all_lead_faults(circuit: Circuit) -> list:
    """The full (uncollapsed) lead stuck-at fault universe."""
    return [
        StuckAtFault(lead, value)
        for lead in range(circuit.num_leads)
        for value in (0, 1)
    ]


def equivalence_classes(circuit: Circuit) -> "list[list[StuckAtFault]]":
    """Partition the lead-fault universe into structural equivalence
    classes.

    Two lead faults are merged when the standard local rules prove them
    indistinguishable: all controlling-value input faults of a gate are
    equivalent to each other **iff the gate has exactly one fanout**
    consumer chain... we use the safe local core of the rule: the
    controlling-value input faults of one gate are pairwise equivalent
    (they all force the same gate output and nothing else differs
    *through that gate* — and input pins have no other observers).
    Single-input gates (NOT/BUF/PO) chain: their input fault is
    equivalent to the (inverted) fault on the driver's unique fanout
    lead when the driver has fanout 1.
    """
    parent: dict = {}

    def find(x):
        while parent.setdefault(x, x) != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a, b):
        parent[find(a)] = find(b)

    for gid in range(circuit.num_gates):
        gtype = circuit.gate_type(gid)
        leads = list(circuit.input_leads(gid))
        if has_controlling_value(gtype) and len(leads) > 1:
            c = controlling_value(gtype)
            first = (leads[0], c)
            for lead in leads[1:]:
                union((lead, c), first)
        # Chain through single-input gates: the input fault of g is
        # equivalent to the same-effect fault on g's unique fanout lead.
        if gtype in (GateType.NOT, GateType.BUF):
            fanout = circuit.fanout(gid)
            if len(fanout) == 1:
                dst, pin = fanout[0]
                out_lead = circuit.lead_index(dst, pin)
                in_lead = leads[0]
                for value in (0, 1):
                    downstream = 1 - value if gtype is GateType.NOT else value
                    union((in_lead, value), (out_lead, downstream))
    classes: dict = {}
    for lead in range(circuit.num_leads):
        for value in (0, 1):
            root = find((lead, value))
            classes.setdefault(root, []).append(StuckAtFault(lead, value))
    return list(classes.values())


def collapse_faults(circuit: Circuit) -> list:
    """One representative per structural equivalence class."""
    return [
        min(cls, key=lambda f: (f.lead, f.value))
        for cls in equivalence_classes(circuit)
    ]


def collapse_ratio(circuit: Circuit) -> float:
    """Collapsed / total fault count (the classic 40-60% for random
    logic)."""
    total = 2 * circuit.num_leads
    if not total:
        return 1.0
    return len(collapse_faults(circuit)) / total
