"""The combinational netlist data structure.

A :class:`Circuit` is a DAG of gates.  Following the paper's model
(Section II), the edges of the DAG are *leads*: a lead connects the output
pin of a gate to exactly one input pin of a successor gate, so a fanout
stem of degree *k* contributes *k* distinct leads.  Leads are first-class
(they carry dense integer ids) because every algorithm in the paper —
path counting, input sorts, side-input conditions — is formulated on
leads, not on nets.

Construction is mutable (``add_gate``); calling :meth:`Circuit.freeze`
validates the structure, assigns lead ids, and computes fanout lists,
topological order and levels.  All analysis code requires a frozen
circuit.
"""

from __future__ import annotations

from typing import Iterable, Iterator, NamedTuple, Sequence

from repro.circuit.gates import GateType
from repro.errors import CircuitError

__all__ = ["Circuit", "CircuitError", "Lead"]


class Lead(NamedTuple):
    """A wire from the output pin of ``src`` to input pin ``pin`` of ``dst``."""

    index: int
    src: int
    dst: int
    pin: int


class Circuit:
    """A combinational circuit of simple gates, PIs and POs.

    Gates are referred to by dense integer ids in insertion order.  PO
    gates have exactly one fanin and no fanout; PI gates have no fanin.
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self._types: list[GateType] = []
        self._names: list[str] = []
        self._fanin: list[tuple[int, ...]] = []
        self._by_name: dict[str, int] = {}
        self._frozen = False
        # Populated by freeze():
        self._fanout: list[tuple[tuple[int, int], ...]] = []
        self._inputs: tuple[int, ...] = ()
        self._outputs: tuple[int, ...] = ()
        self._topo: tuple[int, ...] = ()
        self._level: tuple[int, ...] = ()
        self._lead_base: list[int] = []
        self._lead_src: list[int] = []
        self._lead_dst: list[int] = []
        self._lead_pin: list[int] = []
        self._flat = None
        self._cone_index = None  # repro.incremental.conefp cache slot

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_gate(
        self,
        gate_type: GateType,
        name: str | None = None,
        fanin: Sequence[int] = (),
    ) -> int:
        """Add a gate and return its id.

        ``fanin`` lists the *source gate ids* in pin order; the order is
        significant (it is the default input sort of the gate).
        """
        if self._frozen:
            raise CircuitError("circuit is frozen; no more gates may be added")
        gid = len(self._types)
        for src in fanin:
            if not 0 <= src < gid:
                raise CircuitError(
                    f"gate {name or gid}: fanin id {src} does not refer to an "
                    "already-added gate (circuits are built in topological order)"
                )
        if gate_type is GateType.PI:
            if fanin:
                raise CircuitError("a PI cannot have fanin")
        elif gate_type in (GateType.PO, GateType.NOT, GateType.BUF):
            if len(fanin) != 1:
                raise CircuitError(f"{gate_type.name} requires exactly one fanin")
        else:
            if len(fanin) < 1:
                raise CircuitError(f"{gate_type.name} requires at least one fanin")
        if name is None:
            name = f"{gate_type.name.lower()}{gid}"
        if name in self._by_name:
            raise CircuitError(f"duplicate gate name {name!r}")
        self._types.append(gate_type)
        self._names.append(name)
        self._fanin.append(tuple(fanin))
        self._by_name[name] = gid
        return gid

    def replace_gate(
        self,
        name: str,
        gate_type: GateType,
        fanin: Sequence[int | str] = (),
    ) -> int:
        """Rewire one existing gate in place (an ECO edit) and return its id.

        ``fanin`` entries may be gate ids or gate names; the gate keeps
        its name and id.  The same structural rules as :meth:`add_gate`
        apply — in particular every fanin id must be smaller than the
        gate's own id, because insertion order is the circuit's
        topological order.  A gate cannot change to or from ``PI``/``PO``
        status (that would change the circuit's interface, not edit it).

        On a frozen circuit the derived structure (fanout, leads, levels,
        the cached flat IR and cone index) is rebuilt; the edit is
        transactional — an invalid replacement raises
        :class:`CircuitError` and leaves the circuit unchanged.
        """
        if name not in self._by_name:
            raise CircuitError(f"no gate named {name!r}")
        gid = self._by_name[name]
        old_type, old_fanin = self._types[gid], self._fanin[gid]
        resolved = tuple(
            self._by_name[src] if isinstance(src, str) else src for src in fanin
        )
        for src in resolved:
            if not 0 <= src < gid:
                raise CircuitError(
                    f"gate {name!r}: fanin id {src} must refer to an earlier "
                    "gate (circuits are kept in topological order)"
                )
        if (gate_type is GateType.PI) != (old_type is GateType.PI) or (
            gate_type is GateType.PO
        ) != (old_type is GateType.PO):
            raise CircuitError(
                f"gate {name!r}: replace_gate cannot change PI/PO status"
            )
        if gate_type is GateType.PI:
            if resolved:
                raise CircuitError("a PI cannot have fanin")
        elif gate_type in (GateType.PO, GateType.NOT, GateType.BUF):
            if len(resolved) != 1:
                raise CircuitError(f"{gate_type.name} requires exactly one fanin")
        elif len(resolved) < 1:
            raise CircuitError(f"{gate_type.name} requires at least one fanin")
        was_frozen = self._frozen
        self._types[gid] = gate_type
        self._fanin[gid] = resolved
        if was_frozen:
            self._frozen = False
            self._flat = None
            self._cone_index = None
            try:
                self.freeze()
            except CircuitError:
                self._types[gid], self._fanin[gid] = old_type, old_fanin
                self._frozen = False
                self.freeze()
                raise
        return gid

    def freeze(self) -> "Circuit":
        """Validate and index the circuit.  Returns ``self`` for chaining."""
        if self._frozen:
            return self
        n = len(self._types)
        if n == 0:
            raise CircuitError("circuit has no gates")
        fanout: list[list[tuple[int, int]]] = [[] for _ in range(n)]
        for dst in range(n):
            for pin, src in enumerate(self._fanin[dst]):
                fanout[src].append((dst, pin))
        inputs = []
        outputs = []
        for gid in range(n):
            gtype = self._types[gid]
            if gtype is GateType.PI:
                inputs.append(gid)
            elif gtype is GateType.PO:
                outputs.append(gid)
                if fanout[gid]:
                    raise CircuitError(
                        f"PO {self._names[gid]!r} must not drive other gates"
                    )
        if not inputs:
            raise CircuitError("circuit has no primary inputs")
        if not outputs:
            raise CircuitError("circuit has no primary outputs")
        self._fanout = [tuple(f) for f in fanout]
        self._inputs = tuple(inputs)
        self._outputs = tuple(outputs)
        # Gates were added in topological order (enforced by add_gate), so
        # insertion order *is* a topological order.
        self._topo = tuple(range(n))
        level = [0] * n
        for gid in range(n):
            if self._fanin[gid]:
                level[gid] = 1 + max(level[src] for src in self._fanin[gid])
        self._level = tuple(level)
        # Lead ids: dense, grouped by destination gate, ordered by pin.
        self._lead_base = [0] * (n + 1)
        for gid in range(n):
            self._lead_base[gid + 1] = self._lead_base[gid] + len(self._fanin[gid])
        num_leads = self._lead_base[n]
        self._lead_src = [0] * num_leads
        self._lead_dst = [0] * num_leads
        self._lead_pin = [0] * num_leads
        for dst in range(n):
            base = self._lead_base[dst]
            for pin, src in enumerate(self._fanin[dst]):
                self._lead_src[base + pin] = src
                self._lead_dst[base + pin] = dst
                self._lead_pin[base + pin] = pin
        self._frozen = True
        return self

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def frozen(self) -> bool:
        return self._frozen

    @property
    def flat(self):
        """The flat struct-of-arrays IR of this circuit, built once and
        cached (:class:`repro.circuit.flat.FlatCircuit`)."""
        self._require_frozen()
        flat = self._flat
        if flat is None:
            from repro.circuit.flat import FlatCircuit

            flat = self._flat = FlatCircuit(self)
        return flat

    # ------------------------------------------------------------------
    # Pickling
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle as the flat construction arrays, not the object graph.

        Process-pool payloads ship circuits to workers constantly; sending
        only ``(types, names, fanin)`` and re-freezing on the receiving
        side is both smaller and faster than serialising the derived
        fanout/lead/flat structures, which each worker can rebuild in
        microseconds.
        """
        return {
            "name": self.name,
            "types": bytes(self._types),
            "names": tuple(self._names),
            "fanin": tuple(self._fanin),
            "frozen": self._frozen,
        }

    def __setstate__(self, state: dict) -> None:
        Circuit.__init__(self, state["name"])
        self._types = [GateType(b) for b in state["types"]]
        self._names = list(state["names"])
        self._fanin = [tuple(f) for f in state["fanin"]]
        self._by_name = {nm: gid for gid, nm in enumerate(self._names)}
        if state["frozen"]:
            self.freeze()

    @property
    def num_gates(self) -> int:
        return len(self._types)

    @property
    def num_leads(self) -> int:
        self._require_frozen()
        return self._lead_base[-1]

    @property
    def inputs(self) -> tuple[int, ...]:
        self._require_frozen()
        return self._inputs

    @property
    def outputs(self) -> tuple[int, ...]:
        self._require_frozen()
        return self._outputs

    @property
    def topo_order(self) -> tuple[int, ...]:
        self._require_frozen()
        return self._topo

    def gate_type(self, gid: int) -> GateType:
        return self._types[gid]

    def gate_name(self, gid: int) -> str:
        return self._names[gid]

    def gate_by_name(self, name: str) -> int:
        return self._by_name[name]

    def fanin(self, gid: int) -> tuple[int, ...]:
        return self._fanin[gid]

    def fanout(self, gid: int) -> tuple[tuple[int, int], ...]:
        """Fanout branches of gate ``gid`` as ``(dst_gate, dst_pin)`` pairs."""
        self._require_frozen()
        return self._fanout[gid]

    def level(self, gid: int) -> int:
        self._require_frozen()
        return self._level[gid]

    # -- leads ----------------------------------------------------------
    def lead_index(self, dst: int, pin: int) -> int:
        """Dense id of the lead entering pin ``pin`` of gate ``dst``."""
        self._require_frozen()
        if not 0 <= pin < len(self._fanin[dst]):
            raise IndexError(f"gate {dst} has no input pin {pin}")
        return self._lead_base[dst] + pin

    def lead(self, index: int) -> Lead:
        self._require_frozen()
        return Lead(
            index, self._lead_src[index], self._lead_dst[index], self._lead_pin[index]
        )

    def lead_src(self, index: int) -> int:
        return self._lead_src[index]

    def lead_dst(self, index: int) -> int:
        return self._lead_dst[index]

    def lead_pin(self, index: int) -> int:
        return self._lead_pin[index]

    def leads(self) -> Iterator[Lead]:
        """Iterate over all leads of the circuit."""
        self._require_frozen()
        for i in range(self.num_leads):
            yield self.lead(i)

    def input_leads(self, gid: int) -> range:
        """Lead ids entering gate ``gid``, in pin order."""
        self._require_frozen()
        return range(self._lead_base[gid], self._lead_base[gid + 1])

    def lead_name(self, index: int) -> str:
        """Human-readable ``src->dst.pin`` label for error messages/reports."""
        lead = self.lead(index)
        return f"{self._names[lead.src]}->{self._names[lead.dst]}.{lead.pin}"

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    def gates_of_type(self, gate_type: GateType) -> list[int]:
        return [g for g, t in enumerate(self._types) if t is gate_type]

    def cone_of(self, po: int) -> set[int]:
        """All gate ids in the transitive fanin of ``po`` (inclusive)."""
        self._require_frozen()
        seen = {po}
        stack = [po]
        while stack:
            gid = stack.pop()
            for src in self._fanin[gid]:
                if src not in seen:
                    seen.add(src)
                    stack.append(src)
        return seen

    def reachable_pos(self, gid: int) -> set[int]:
        """All POs in the transitive fanout of gate ``gid``."""
        self._require_frozen()
        seen = {gid}
        stack = [gid]
        pos = set()
        while stack:
            g = stack.pop()
            if self._types[g] is GateType.PO:
                pos.add(g)
            for dst, _pin in self._fanout[g]:
                if dst not in seen:
                    seen.add(dst)
                    stack.append(dst)
        return pos

    def is_simple(self) -> bool:
        """True if the circuit contains only the paper's gate repertoire."""
        return all(t in GateType.__members__.values() for t in self._types)

    def __repr__(self) -> str:
        state = "frozen" if self._frozen else "building"
        return (
            f"Circuit({self.name!r}, gates={self.num_gates}, "
            f"inputs={len(self._inputs)}, outputs={len(self._outputs)}, {state})"
        )

    def _require_frozen(self) -> None:
        if not self._frozen:
            raise CircuitError("circuit must be frozen before analysis")

    def as_core(self) -> "Circuit":
        """The combinational circuit the analyses run on — itself.

        Part of the loading protocol (:mod:`repro.loading`): every
        analysis surface calls ``as_core()`` on whatever it was handed,
        so a :class:`Circuit` and a scan-expanded sequential design
        (``ScanCircuit.as_core()`` → its core) are interchangeable."""
        return self

    # ------------------------------------------------------------------
    # Copying / subcircuits
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "Circuit":
        """A structural deep copy (returned frozen if self is frozen)."""
        out = Circuit(name or self.name)
        for gid in range(self.num_gates):
            out.add_gate(self._types[gid], self._names[gid], self._fanin[gid])
        if self._frozen:
            out.freeze()
        return out

    def extract_cone(self, po: int, name: str | None = None) -> tuple["Circuit", dict[int, int]]:
        """Extract the single-output subcircuit feeding PO ``po``.

        Returns the new circuit plus a mapping from old gate ids to new
        gate ids.  The paper applies its (single-output) theory to each
        output cone separately; this is the supporting transform.
        """
        self._require_frozen()
        if self._types[po] is not GateType.PO:
            raise CircuitError(f"gate {po} is not a PO")
        cone = self.cone_of(po)
        mapping: dict[int, int] = {}
        out = Circuit(name or f"{self.name}.{self._names[po]}")
        for gid in range(self.num_gates):
            if gid not in cone:
                continue
            new_fanin = tuple(mapping[s] for s in self._fanin[gid])
            mapping[gid] = out.add_gate(self._types[gid], self._names[gid], new_fanin)
        out.freeze()
        return out, mapping


def circuit_from_spec(
    name: str,
    spec: Iterable[tuple[str, GateType, Sequence[str]]],
) -> Circuit:
    """Build a circuit from ``(name, type, fanin-names)`` triples.

    The triples may appear in any order; this helper topologically sorts
    them, which is convenient for parsers and tests.
    """
    items = list(spec)
    fanin_names = {nm: tuple(fi) for nm, _t, fi in items}
    types = {nm: t for nm, t, _fi in items}
    if len(types) != len(items):
        raise CircuitError("duplicate gate names in spec")
    order: list[str] = []
    state: dict[str, int] = {}

    def visit(nm: str, chain: tuple[str, ...]) -> None:
        st = state.get(nm, 0)
        if st == 2:
            return
        if st == 1:
            raise CircuitError(f"combinational cycle through {nm!r}: {chain}")
        if nm not in types:
            raise CircuitError(f"gate {nm!r} referenced but never defined")
        state[nm] = 1
        for src in fanin_names[nm]:
            visit(src, chain + (nm,))
        state[nm] = 2
        order.append(nm)

    for nm, _t, _fi in items:
        visit(nm, ())
    circuit = Circuit(name)
    ids: dict[str, int] = {}
    for nm in order:
        ids[nm] = circuit.add_gate(types[nm], nm, [ids[s] for s in fanin_names[nm]])
    return circuit.freeze()
