"""End-to-end tests of the CLI."""

import pytest

from repro.cli import build_parser, load_circuit, main


class TestLoadCircuit:
    def test_suite_name(self):
        assert load_circuit("s432-rand").name == "s432-rand"

    def test_bench_file(self, tmp_path):
        path = tmp_path / "c.bench"
        path.write_text("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
        circuit = load_circuit(str(path))
        assert circuit.name == "c"

    def test_pla_file(self, tmp_path):
        path = tmp_path / "c.pla"
        path.write_text(".i 2\n.o 1\n11 1\n.e\n")
        circuit = load_circuit(str(path))
        assert len(circuit.inputs) == 2

    def test_unknown(self):
        with pytest.raises(KeyError):
            load_circuit("never-heard-of-it")


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "s499-ecc" in out

    def test_info(self, capsys):
        assert main(["info", "s432-rand"]) == 0
        out = capsys.readouterr().out
        assert "logical paths" in out

    def test_classify_fs(self, capsys, tmp_path):
        path = tmp_path / "c.bench"
        path.write_text(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n"
            "m = AND(b, c)\ny = OR(a, m, c)\n"
        )
        assert main(["classify", str(path), "--criterion", "fs"]) == 0
        out = capsys.readouterr().out
        assert "FS" in out

    def test_classify_sigma_sorts(self, capsys, tmp_path):
        path = tmp_path / "c.bench"
        path.write_text(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n"
            "m = AND(b, c)\ny = OR(a, m, c)\n"
        )
        for sort in ("pin", "heu1", "heu2", "heu2inv", "random"):
            assert main(["classify", str(path), "--sort", sort]) == 0
        out = capsys.readouterr().out
        assert "SIGMA_PI" in out

    def test_baseline(self, capsys, tmp_path):
        path = tmp_path / "c.bench"
        path.write_text(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n"
            "m = AND(b, c)\ny = OR(a, m, c)\n"
        )
        assert main(["baseline", str(path), "--method", "exact"]) == 0
        out = capsys.readouterr().out
        assert "37.50% RD" in out

    def test_testgen(self, capsys, tmp_path):
        path = tmp_path / "c.bench"
        path.write_text(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n"
            "m = AND(b, c)\ny = OR(a, m, c)\n"
        )
        assert main(["testgen", str(path)]) == 0
        out = capsys.readouterr().out
        assert "robust tests" in out
        assert "<" in out  # at least one two-pattern test printed

    def test_select(self, capsys, tmp_path):
        path = tmp_path / "c.bench"
        path.write_text(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n"
            "m = AND(b, c)\ny = OR(a, m, c)\n"
        )
        assert main(["select", str(path), "--fraction", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "RD filtering" in out

    def test_sta(self, capsys):
        assert main(["sta", "xcmp16", "-k", "3"]) == 0
        out = capsys.readouterr().out
        assert "critical delay" in out
        assert "slowest logical paths" in out

    def test_atpg(self, capsys, tmp_path):
        path = tmp_path / "c.bench"
        path.write_text(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n"
            "m = AND(b, c)\ny = OR(a, m, c)\n"
        )
        assert main(["atpg", str(path), "--show-redundant"]) == 0
        out = capsys.readouterr().out
        assert "patterns detect" in out
        assert "redundant:" in out

    def test_dot(self, capsys, tmp_path):
        path = tmp_path / "c.bench"
        path.write_text(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n"
            "m = AND(b, c)\ny = OR(a, m, c)\n"
        )
        assert main(["dot", str(path), "--stabilize", "111"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "color=red" in out

    def test_dot_bad_vector(self, tmp_path):
        path = tmp_path / "c.bench"
        path.write_text("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
        with pytest.raises(SystemExit):
            main(["dot", str(path), "--stabilize", "10"])

    def test_table1_json_flag_parses(self):
        parser = build_parser()
        args = parser.parse_args(["table1", "--json"])
        assert args.json

    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out

    def test_parser_help_lists_subcommands(self):
        parser = build_parser()
        text = parser.format_help()
        for cmd in ("info", "classify", "baseline", "table1"):
            assert cmd in text


class TestSupervisionFlags:
    @pytest.mark.parametrize("bad", ["0", "-1", "-8"])
    def test_nonpositive_jobs_rejected_by_argparse(self, bad, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["table1", "--jobs", bad])
        assert excinfo.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    def test_non_integer_jobs_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--jobs", "two"])
        assert "invalid" in capsys.readouterr().err

    @pytest.mark.parametrize("table", ["table1", "table2", "table3"])
    def test_supervision_flags_parse(self, table):
        args = build_parser().parse_args(
            [
                table,
                "--jobs", "4",
                "--checkpoint", "rows.jsonl",
                "--resume",
                "--task-timeout", "90",
                "--max-retries", "5",
            ]
        )
        assert args.jobs == 4
        assert args.checkpoint == "rows.jsonl"
        assert args.resume
        assert args.task_timeout == 90.0
        assert args.max_retries == 5

    def test_resume_requires_checkpoint(self):
        with pytest.raises(SystemExit):
            main(["table1", "--resume"])

    def test_keyboard_interrupt_exits_130(self, monkeypatch, capsys):
        import repro.experiments.table1 as table1_mod

        def interrupted(**_kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(table1_mod, "main", interrupted)
        assert main(["table1"]) == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "--resume" in err
