"""Scaling study: tens of millions of paths (the paper's Table II story).

Sweeps array multipliers (the c6288 family) and NAND-parity trees:

* exact big-integer path counting stays instant at any size — this is
  how the paper's Heuristic 1 sorts inputs on circuits with 10^20 paths;
* classification cost tracks the number of *accepted* paths, not the
  total — prime-segment pruning skips robust dependent subtrees, so
  RD-heavy circuits classify far faster than their path count suggests.

Run:  python examples/scaling_study.py
"""

import time

from repro import Criterion, classify, count_paths
from repro.gen.multiplier import array_multiplier
from repro.gen.parity import parity_tree
from repro.timing.delays import random_delays
from repro.timing.kpaths import k_longest_paths
from repro.timing.sta import static_timing


def main():
    print("exact path counting (array multipliers):")
    for width in (2, 4, 8, 16, 24, 32):
        circuit = array_multiplier(width)
        t0 = time.perf_counter()
        counts = count_paths(circuit)
        dt = time.perf_counter() - t0
        print(f"  {width:2d}x{width:<2d}: {counts.total_logical:.3e} "
              f"logical paths, counted in {dt * 1000:.1f} ms")

    print("\nclassification with prime-segment pruning (NAND parity trees):")
    print(f"  {'width':>5s} {'total paths':>12s} {'accepted':>9s} "
          f"{'RD %':>6s} {'time':>7s}")
    for width in (8, 16, 32, 48, 64):
        circuit = parity_tree(width, style="nand")
        result = classify(circuit, Criterion.FS)
        print(f"  {width:5d} {result.total_logical:12,d} "
              f"{result.accepted:9,d} {result.rd_percent:6.1f} "
              f"{result.elapsed:6.2f}s")
    print("\nthe RD fraction grows with depth, so cost grows far slower "
          "than the path count — the paper's core scalability claim.")

    # Lazy k-longest paths: the slow slice of an un-enumerable circuit.
    circuit = array_multiplier(16)
    delays = random_delays(circuit, seed=1)
    t0 = time.perf_counter()
    report = static_timing(circuit, delays)
    top = k_longest_paths(circuit, delays, 5)
    dt = time.perf_counter() - t0
    print(f"\n5 slowest logical paths of {circuit.name} "
          f"({count_paths(circuit).total_logical:.2e} paths) in {dt:.2f}s "
          f"(critical delay {report.critical_delay:.2f}):")
    for delay, lp in top:
        gates = lp.path.gates(circuit)
        print(f"  {delay:7.2f}  {circuit.gate_name(gates[0])} "
              f"-> ... {len(gates) - 2} gates ... -> "
              f"{circuit.gate_name(gates[-1])} [{lp.transition}]")


if __name__ == "__main__":
    main()
