"""Golden regression numbers for the deterministic benchmark suite.

Every generator is seeded, so these exact values are reproducible; a
change here means either a deliberate suite re-calibration (update the
table *and* EXPERIMENTS.md) or a behavioural regression in the
classifier / counting / generators.

Columns: (circuit, gate count, total logical paths, |FS^sup|,
|LP^sup(σ^heu1)|).
"""

import pytest

from repro.classify.conditions import Criterion
from repro.classify.engine import classify
from repro.gen.suite import get_circuit
from repro.paths.count import count_paths
from repro.sorting.heuristics import heuristic1_sort

GOLDEN = [
    ("s432-rand", 120, 124230, 6091, 1146),
    ("s880-alu", 235, 1190, 1062, 1062),
    ("s1355-par", 197, 47952, 13616, 13616),
    ("s1908-csel", 490, 9728, 8396, 8396),
    ("s5315-rca", 514, 12930, 10882, 10882),
    ("s7552-mix", 419, 171126, 28464, 4808),
    ("apex-a", 75, 166, 166, 160),
    ("z5xp-b", 72, 202, 202, 194),
    ("bw-d", 91, 338, 338, 320),
    ("xshift32", 711, 3680, 3440, 3440),
    ("xcmp16", 226, 2176, 2116, 2060),
    ("xprienc16", 70, 696, 696, 689),
]


@pytest.mark.parametrize(
    "name,gates,total,fs_sup,heu1_sup",
    GOLDEN,
    ids=[row[0] for row in GOLDEN],
)
def test_golden(name, gates, total, fs_sup, heu1_sup):
    circuit = get_circuit(name)
    assert circuit.num_gates == gates
    assert count_paths(circuit).total_logical == total
    assert classify(circuit, Criterion.FS).accepted == fs_sup
    sort = heuristic1_sort(circuit)
    assert classify(circuit, Criterion.SIGMA_PI, sort=sort).accepted == heu1_sup


def test_golden_hierarchy_consistency():
    """Sanity over the golden table itself: σ^π counts never exceed FS
    counts (Lemma 1 at the superset level)."""
    for _name, _gates, total, fs_sup, heu1_sup in GOLDEN:
        assert heu1_sup <= fs_sup <= total
