"""Remote signoff: per-domain fan-out over the analysis service.

The client-side half of the wire contract in
:mod:`repro.service.protocol`: the *client* decomposes the design into
capture domains (:func:`repro.signoff.query.domain_circuits`), ships
each cone as its own ``signoff`` request — independently fingerprinted,
hence independently hashed across fleet shards, coalesced with
identical in-flight queries, and store-cached — and merges the answers
with the same :func:`~repro.signoff.report.merge_rows` used by the
local path.  Every request carries the cone's full delay assignment as
sidecar-format annotation text, so client and server can never disagree
about a fallback.

Parity caveat: the wire ships cones as ``.bench`` text, and the
``write_bench``/``parse_bench`` round trip renames PO sink gates to
``<driver>_po``.  For bench-origin circuits (including every expanded
:class:`~repro.circuit.sequential.ScanCircuit`) PO sinks already follow
that convention, so remote rows are byte-identical to local ones.
"""

from __future__ import annotations

import time

from repro.timing.annotate import (
    delays_digest,
    materialize_delays,
    parse_delay_annotations,
    parse_delays_file,
    sidecar_path,
    write_delay_annotations,
)

from repro.signoff.query import _resolve_query, domain_circuits
from repro.signoff.report import SignoffReport, SignoffRow, merge_rows

__all__ = ["signoff_remote"]


def signoff_remote(
    source,
    client,
    *,
    k: "int | None" = None,
    slack: "float | None" = None,
    exact: bool = False,
    scan: "bool | None" = None,
    delays=None,
    annotations: "dict | None" = None,
    seed: int = 0,
    base: str = "random",
    deadline: "float | None" = None,
    on_event=None,
) -> SignoffReport:
    """Answer a signoff query through a connected
    :class:`~repro.service.client.ServiceClient`.

    Accepts the same ``source`` / query / delay arguments as
    :func:`repro.signoff.signoff` and returns the same
    :class:`SignoffReport` — the table is byte-identical to a local run
    (see the module docstring for the ``.bench`` round-trip caveat).
    ``deadline`` is a per-domain budget in seconds.
    """
    from pathlib import Path

    from repro.loading import load

    start = time.perf_counter()
    k, slack = _resolve_query(k, slack)
    file_annotations: dict = {}
    if isinstance(source, (str, Path)):
        path = Path(source)
        if path.suffix == ".bench" and path.exists():
            file_annotations.update(
                parse_delay_annotations(path.read_text(), source=str(path))
            )
            sidecar = sidecar_path(path)
            if sidecar.exists():
                file_annotations.update(parse_delays_file(sidecar))
    loaded = load(source, scan=scan)
    core = loaded.as_core()
    if delays is None:
        merged = dict(file_annotations)
        merged.update(annotations or {})
        delays = materialize_delays(core, merged, seed=seed, base=base)
    elif delays.circuit is not core:
        raise ValueError("delay assignment belongs to a different circuit")
    digest = delays_digest(delays)

    domains = domain_circuits(core)
    counters: dict = {}
    sources: dict = {}
    row_lists = []
    for capture, cone, map_delays in domains:
        result = client.signoff(
            circuit=cone,
            k=k,
            slack=slack,
            exact=exact,
            delays=write_delay_annotations(map_delays(delays)),
            deadline=deadline,
            on_event=on_event,
        )
        row_lists.append(
            [SignoffRow.from_table_row(row) for row in result["rows"]]
        )
        sources[capture] = result["source"]
        for name, value in result["counters"].items():
            counters[name] = counters.get(name, 0) + value
    return SignoffReport(
        circuit=core.name,
        mode="k" if k is not None else "slack",
        k=k,
        slack=slack,
        exact=exact,
        delays_digest=digest,
        domains=tuple(sorted(capture for capture, _c, _m in domains)),
        rows=merge_rows(row_lists, k),
        counters=counters,
        sources=sources,
        wall_seconds=time.perf_counter() - start,
    )
