"""Table generators exercised on small custom circuit lists (the full
suite runs live in benchmarks/)."""

from repro.circuit.examples import mux_circuit, paper_example_circuit
from repro.experiments import table1, table2, table3


def _circuits():
    return [paper_example_circuit(), mux_circuit()]


def test_table1_runs_and_renders():
    table, rows = table1.run(_circuits())
    text = table.render()
    assert "paper_example" in text
    assert "FUS" in text and "Heu2" in text
    assert len(rows) == 2
    for row in rows:
        assert row.check_expected_shape() == []


def test_table2_reuses_rows():
    _table, rows = table1.run(_circuits())
    text = table2.run(rows=rows, include_count_only=False).render()
    assert "paper_example" in text
    assert "8" in text  # the path count


def test_table2_count_only_rows():
    text = table2.run(circuits=_circuits(), include_count_only=True).render()
    assert "(count only)" in text
    assert "s6288-mult" in text


def test_table3_runs_and_renders():
    table, rows = table3.run(_circuits())
    text = table.render()
    assert "baseline RD%" in text
    for row in rows:
        assert row.quality_gap >= -1e-9
