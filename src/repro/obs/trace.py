"""Tracing spans: nested, monotonic-clock timings in a bounded buffer.

A span measures one named region of work::

    from repro.obs import span

    with span("classify.pass", circuit="c432-ish", criterion="FS"):
        ...

Spans nest: a span opened while another is active records that span as
its parent (per thread), so a trace of a Table-I row shows the
``table1.row`` span containing its ``classify.pass`` children, each
containing ``store.get`` spans.  Timings use ``time.perf_counter`` —
wall-clock jumps cannot corrupt durations.

Finished spans land in a process-wide bounded ring buffer
(:func:`get_buffer`); once full, the oldest spans are dropped and
counted, never blocking the instrumented code.  The buffer exports as
JSON lines (:func:`export_jsonl` — the CLI's ``--trace-out``): one
``{"type": "span", ...}`` object per line, closed by one
``{"type": "metrics", ...}`` summary record carrying the registry
snapshot.  Pool workers drain their buffer per task; the supervisor
folds those events back into the parent buffer, so a ``--jobs 4`` trace
still contains every worker's spans.

Every span completion also feeds the duration histogram
``span.<name>`` in the metrics registry, so snapshots aggregate span
totals even when the ring buffer has rotated.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any

from repro.obs.metrics import get_registry

__all__ = [
    "Span",
    "TraceBuffer",
    "export_jsonl",
    "get_buffer",
    "reset_buffer",
    "span",
]

#: finished spans retained per process before the oldest are dropped
DEFAULT_CAPACITY = 4096

_state = threading.local()  # per-thread stack of open Span objects


def _stack() -> list:
    stack = getattr(_state, "stack", None)
    if stack is None:
        stack = _state.stack = []
    return stack


class TraceBuffer:
    """A bounded ring of finished-span records (JSON-safe dicts)."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self._events: "deque[dict]" = deque(maxlen=capacity)
        self.dropped = 0
        self._lock = threading.Lock()

    def append(self, event: dict) -> None:
        with self._lock:
            if len(self._events) == self._events.maxlen:
                self.dropped += 1
            self._events.append(event)

    def extend(self, events: "list[dict]") -> None:
        """Fold drained worker events in (harness merge path)."""
        for event in events:
            if isinstance(event, dict):
                self.append(event)

    def drain(self) -> "list[dict]":
        """Remove and return everything buffered (oldest first)."""
        with self._lock:
            events = list(self._events)
            self._events.clear()
            self.dropped = 0
        return events

    def snapshot(self) -> "list[dict]":
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


class Span:
    """One open region; use via the :func:`span` context manager."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "_t0", "start")

    def __init__(self, name: str, attrs: "dict[str, Any]"):
        self.name = name
        self.attrs = attrs
        self.span_id = ""
        self.parent_id: "str | None" = None
        self._t0 = 0.0
        self.start = 0.0

    def __enter__(self) -> "Span":
        stack = _stack()
        self.parent_id = stack[-1].span_id if stack else None
        self.span_id = _next_span_id()
        stack.append(self)
        self.start = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, *exc_info) -> None:
        duration = time.perf_counter() - self._t0
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        record = {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": os.getpid(),
            "start": round(self.start, 6),
            "duration": round(duration, 9),
        }
        if exc_type is not None:
            record["error"] = exc_type.__name__
        if self.attrs:
            record["attrs"] = self.attrs
        get_buffer().append(record)
        get_registry().histogram("span." + self.name).observe(duration)


def span(name: str, **attrs: Any) -> Span:
    """Open a traced region; attributes must be JSON-safe scalars."""
    return Span(name, attrs)


_id_lock = threading.Lock()
_id_counter = 0


def _next_span_id() -> str:
    global _id_counter
    with _id_lock:
        _id_counter += 1
        return f"{os.getpid():x}-{_id_counter:x}"


_BUFFER = TraceBuffer()


def get_buffer() -> TraceBuffer:
    """The process-wide ring buffer finished spans land in."""
    return _BUFFER


def reset_buffer() -> None:
    """Drop all buffered spans (tests; worker-task entry)."""
    _BUFFER.drain()


def export_jsonl(path: "str | os.PathLike", events: "list[dict] | None" = None) -> int:
    """Write spans (default: drain the process buffer) as JSON lines.

    The file ends with one ``{"type": "metrics", ...}`` record holding
    the registry snapshot at export time, so a single ``--trace-out``
    file carries both the span timeline and the aggregated totals.
    Returns the number of span records written.
    """
    if events is None:
        events = get_buffer().drain()
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event, sort_keys=True) + "\n")
        fh.write(
            json.dumps(
                {"type": "metrics", "metrics": get_registry().snapshot()},
                sort_keys=True,
            )
            + "\n"
        )
    return len(events)
