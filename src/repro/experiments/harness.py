"""Per-circuit experiment pipelines shared by the table generators.

A Table-I/II row runs the full paper pipeline on one circuit:

1. exact path counting (the "total no. of logical paths" column);
2. one FS pass — its RD side is the FUS column of Table I;
3. Heuristic 1: path-count input sort + one SIGMA_PI pass;
4. Heuristic 2 (Algorithm 3): FS and NR passes with per-lead counts,
   the induced sort, + one SIGMA_PI pass;
5. the inverted-Heuristic-2 control (the paper's "Heu2-bar" column).

All passes of one row run through a single
:class:`~repro.classify.session.CircuitSession`, so the exact path
counts are computed once and the implication engine is reused.  Timings
follow the paper's accounting: Heu1 = sort + one classification pass;
Heu2 = three classification passes + sort.

Multi-circuit runs fan out across a ``ProcessPoolExecutor`` when
``jobs > 1`` (one session per worker process); ``jobs=1`` is the
deterministic in-process fallback.  Results are identical either way —
only wall-clock changes — because every pass is deterministic and
``executor.map`` preserves input order.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.baseline.exact_assignment import BaselineResult, baseline_rd
from repro.circuit.netlist import Circuit
from repro.classify.conditions import Criterion
from repro.classify.results import ClassificationResult
from repro.classify.session import CircuitSession
from repro.sorting.heuristics import heuristic1_sort, heuristic2_analysis
from repro.sorting.input_sort import InputSort
from repro.util.timer import Stopwatch


def _pool_size(jobs: int, tasks: int) -> int:
    return max(1, min(jobs, tasks))


@dataclass
class Table1Row:
    """All measurements of one circuit for Tables I and II."""

    name: str
    total_logical: int
    fus_percent: float
    heu1_percent: float
    heu2_percent: float
    heu2_inverse_percent: float
    time_heu1: float
    time_heu2: float

    def check_expected_shape(self) -> list[str]:
        """The paper's qualitative claims, as violated-claim strings
        (empty = all hold).  Heu2 ≥ Heu1 is a strong trend in the paper
        (it holds for every circuit in Table I), both dominate FUS by
        Lemma 1, and the inverted sort collapses towards FUS."""
        problems = []
        if self.heu1_percent + 1e-9 < self.fus_percent:
            problems.append("Heu1 below FUS (violates Lemma 1)")
        if self.heu2_percent + 1e-9 < self.fus_percent:
            problems.append("Heu2 below FUS (violates Lemma 1)")
        if self.heu2_inverse_percent + 1e-9 < self.fus_percent:
            problems.append("inverse Heu2 below FUS (violates Lemma 1)")
        if self.heu2_inverse_percent > self.heu2_percent + 1e-9:
            problems.append("inverse sort beats Heu2")
        return problems


def run_table1_row(
    circuit: Circuit,
    max_accepted: int | None = None,
    session: CircuitSession | None = None,
) -> Table1Row:
    """The full pipeline on one circuit (see module docstring).

    Exactly one ``count_paths`` runs per circuit: the session computes
    it lazily and every pass (including the Heuristic-1 sort) reuses it.
    """
    if session is None:
        session = CircuitSession(circuit)
    counts = session.counts
    # --- Heuristic 1 -----------------------------------------------------
    with Stopwatch() as sw1:
        sort1 = heuristic1_sort(circuit, counts=counts)
        res1 = session.classify(
            Criterion.SIGMA_PI, sort=sort1, max_accepted=max_accepted
        )
    # --- Heuristic 2 (Algorithm 3: FS pass + NR pass + final pass) -------
    with Stopwatch() as sw2:
        analysis = heuristic2_analysis(
            circuit, max_accepted=max_accepted, session=session
        )
        res2 = session.classify(
            Criterion.SIGMA_PI,
            sort=analysis.sort,
            max_accepted=max_accepted,
        )
    # --- inverse control --------------------------------------------------
    res2_inv = session.classify(
        Criterion.SIGMA_PI,
        sort=analysis.sort.inverted(),
        max_accepted=max_accepted,
    )
    return Table1Row(
        name=circuit.name,
        total_logical=counts.total_logical,
        fus_percent=analysis.fs_result.rd_percent,
        heu1_percent=res1.rd_percent,
        heu2_percent=res2.rd_percent,
        heu2_inverse_percent=res2_inv.rd_percent,
        time_heu1=sw1.elapsed,
        time_heu2=sw2.elapsed,
    )


def _table1_task(payload: "tuple[Circuit, int | None]") -> Table1Row:
    """Top-level worker (must be picklable for the process pool)."""
    circuit, max_accepted = payload
    return run_table1_row(circuit, max_accepted=max_accepted)


def run_table1_rows(
    circuits: Iterable[Circuit],
    max_accepted: int | None = None,
    jobs: int = 1,
) -> list[Table1Row]:
    """Table-I rows for several circuits, optionally in parallel.

    ``jobs=1`` runs in-process; ``jobs > 1`` fans circuits out across a
    process pool.  Row order always follows ``circuits``, and all
    RD-percentage columns are bit-identical across job counts.
    """
    work = [(circuit, max_accepted) for circuit in circuits]
    if jobs <= 1 or len(work) <= 1:
        return [_table1_task(payload) for payload in work]
    with ProcessPoolExecutor(max_workers=_pool_size(jobs, len(work))) as pool:
        return list(pool.map(_table1_task, work))


@dataclass
class Table3Row:
    """Baseline-of-[1] vs Heuristic 2 on one small multi-level circuit."""

    name: str
    total_logical: int
    baseline_percent: float
    baseline_time: float
    heu2_percent: float
    heu2_time: float

    @property
    def quality_gap(self) -> float:
        """Baseline RD%% minus Heu2 RD%% (the paper reports 2.05%% mean)."""
        return self.baseline_percent - self.heu2_percent

    @property
    def speedup(self) -> float:
        """Baseline time / Heu2 time (the paper's headline is >10-1000x)."""
        if self.heu2_time <= 0:
            return float("inf")
        return self.baseline_time / self.heu2_time


def run_table3_row(
    circuit: Circuit,
    baseline_method: str = "greedy",
    session: CircuitSession | None = None,
) -> Table3Row:
    if session is None:
        session = CircuitSession(circuit)
    baseline: BaselineResult = baseline_rd(circuit, method=baseline_method)
    with Stopwatch() as sw:
        analysis = heuristic2_analysis(circuit, session=session)
        res2 = session.classify(Criterion.SIGMA_PI, sort=analysis.sort)
    return Table3Row(
        name=circuit.name,
        total_logical=baseline.total_logical,
        baseline_percent=baseline.rd_percent,
        baseline_time=baseline.elapsed,
        heu2_percent=res2.rd_percent,
        heu2_time=sw.elapsed,
    )


def _table3_task(payload: "tuple[Circuit, str]") -> Table3Row:
    circuit, baseline_method = payload
    return run_table3_row(circuit, baseline_method=baseline_method)


def run_table3_rows(
    circuits: Iterable[Circuit],
    baseline_method: str = "greedy",
    jobs: int = 1,
) -> list[Table3Row]:
    """Table-III rows for several circuits, optionally in parallel."""
    work = [(circuit, baseline_method) for circuit in circuits]
    if jobs <= 1 or len(work) <= 1:
        return [_table3_task(payload) for payload in work]
    with ProcessPoolExecutor(max_workers=_pool_size(jobs, len(work))) as pool:
        return list(pool.map(_table3_task, work))


def _cone_task(
    payload: "tuple[Circuit, int, Criterion, Callable[[Circuit], InputSort] | None]",
) -> ClassificationResult:
    circuit, po, criterion, sort_builder = payload
    cone, _mapping = circuit.extract_cone(po)
    session = CircuitSession(cone)
    sort = sort_builder(cone) if sort_builder is not None else None
    return session.classify(criterion, sort=sort)


def classify_cones(
    circuit: Circuit,
    criterion: Criterion,
    sort_builder: "Callable[[Circuit], InputSort] | None" = None,
    jobs: int = 1,
) -> ClassificationResult:
    """Classify per extracted PO cone and combine (the paper applies its
    single-output theory cone by cone; every PI→PO path lies in exactly
    one cone, so the accepted counts add up).

    ``sort_builder`` builds the per-cone sort for ``SIGMA_PI`` (e.g.
    :func:`~repro.sorting.heuristics.heuristic1_sort`); for ``jobs > 1``
    it must be picklable (a module-level function, not a lambda).
    ``elapsed`` sums per-cone CPU time — the paper's accounting — not
    pool wall-clock.
    """
    work = [(circuit, po, criterion, sort_builder) for po in circuit.outputs]
    if jobs <= 1 or len(work) <= 1:
        parts = [_cone_task(payload) for payload in work]
    else:
        with ProcessPoolExecutor(
            max_workers=_pool_size(jobs, len(work))
        ) as pool:
            parts = list(pool.map(_cone_task, work))
    return ClassificationResult(
        circuit_name=circuit.name,
        criterion=criterion,
        total_logical=sum(p.total_logical for p in parts),
        accepted=sum(p.accepted for p in parts),
        elapsed=sum(p.elapsed for p in parts),
        edges_visited=sum(p.edges_visited for p in parts),
    )


def sigma_pi_percent(
    circuit: Circuit,
    sort: InputSort,
    session: CircuitSession | None = None,
) -> float:
    """RD%% of one SIGMA_PI pass (ablation helper)."""
    if session is None:
        session = CircuitSession(circuit)
    return session.classify(Criterion.SIGMA_PI, sort=sort).rd_percent
