"""Reference Algorithm-2 implementation (trail-based, object-graph walk).

This is the original enumeration core that :mod:`repro.classify.engine`
replaced with the word-parallel bitset kernel over the flat IR.  It walks
the :class:`~repro.circuit.netlist.Circuit` object graph and injects the
criterion's side-input conditions one ``assume`` at a time into a
trail-based :class:`~repro.logic.implication.ImplicationEngine`.

It is kept (and exercised by the equivalence tests) as the *differential
oracle*: both engines perform exactly the same deduction per extension —
the bitset kernel just precomputes the closure of the unconditional rules
— so ``accepted``, ``edges_visited``, ``lead_ctrl_counts`` and the DFS
acceptance order must match bit for bit on every circuit.  A mismatch
means a bug in the fast kernel, never an accepted difference.

Roughly an order of magnitude slower than the production engine; use only
in tests and cross-checks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.circuit.gates import GateType, controlling_value, has_controlling_value
from repro.circuit.netlist import Circuit
from repro.classify.conditions import Criterion, required_side_pins
from repro.classify.results import ClassificationResult
from repro.errors import ClassifyError
from repro.logic.implication import ImplicationEngine
from repro.logic.values import controlled_output, uncontrolled_output
from repro.paths.count import PathCounts, count_paths
from repro.paths.path import LogicalPath
from repro.util.timer import Stopwatch

if TYPE_CHECKING:  # annotation-only; avoids a classify <-> sorting cycle
    from repro.sorting.input_sort import InputSort

_K_PO = 0
_K_WIRE = 1  # BUF
_K_NOT = 2
_K_SIMPLE = 3


class _ReferenceTables:
    """Static per-lead tables for one (circuit, criterion, sort) run."""

    def __init__(
        self, circuit: Circuit, criterion: Criterion, sort: InputSort | None
    ) -> None:
        if criterion.needs_sort and sort is None:
            raise ValueError("SIGMA_PI classification requires an input sort")
        n = circuit.num_gates
        self.kind = [0] * n
        self.ctrl = [-2] * n
        self.out_ctrl = [0] * n
        self.out_nc = [0] * n
        self.nc = [0] * n
        for g in range(n):
            t = circuit.gate_type(g)
            if t is GateType.PO:
                self.kind[g] = _K_PO
            elif t is GateType.BUF:
                self.kind[g] = _K_WIRE
            elif t is GateType.NOT:
                self.kind[g] = _K_NOT
            elif has_controlling_value(t):
                self.kind[g] = _K_SIMPLE
                self.ctrl[g] = controlling_value(t)
                self.nc[g] = 1 - self.ctrl[g]
                self.out_ctrl[g] = controlled_output(t)
                self.out_nc[g] = uncontrolled_output(t)
            elif t is not GateType.PI:
                raise ValueError(f"unsupported gate type {t.name}")
        # For every lead into a simple gate: source nets that must be
        # non-controlling when the on-path value is non-controlling
        # (side_nc_all) vs controlling (side_nc_ctrl, criterion-specific).
        m = circuit.num_leads
        self.side_all: list[tuple[int, ...]] = [()] * m
        self.side_ctrl: list[tuple[int, ...]] = [()] * m
        for lead in range(m):
            dst = circuit.lead_dst(lead)
            if self.kind[dst] != _K_SIMPLE:
                continue
            fanin = circuit.fanin(dst)
            all_pins = required_side_pins(criterion, circuit, lead, False, sort)
            ctrl_pins = required_side_pins(criterion, circuit, lead, True, sort)
            self.side_all[lead] = tuple(fanin[p] for p in all_pins)
            self.side_ctrl[lead] = tuple(fanin[p] for p in ctrl_pins)
        # Fanout adjacency: (lead, dst) pairs per gate.
        self.fanout: list[tuple[tuple[int, int], ...]] = [
            tuple(
                (circuit.lead_index(dst, pin), dst)
                for dst, pin in circuit.fanout(g)
            )
            for g in range(n)
        ]


def _run_reference(
    circuit: Circuit,
    criterion: Criterion,
    tables: _ReferenceTables,
    engine: ImplicationEngine,
    counts: PathCounts,
    collect_lead_counts: bool,
    max_accepted: int | None,
    on_path: Callable[[LogicalPath], None] | None,
) -> ClassificationResult:
    """The reference enumeration core.

    Iterative DFS with an explicit frame stack; a frame is the mutable
    list ``[branches, next_index, value, entry_mark, entered_via_lead]``
    — the fanout branches still to try at the current gate, the on-path
    value at its output, and the trail mark / path bookkeeping to unwind
    when the frame is exhausted.  The engine's trail is restored to its
    entry state even on exceptions, so engines may be reused across runs.
    """
    accepted = 0
    edges = 0
    lead_counts = [0] * circuit.num_leads if collect_lead_counts else []
    # Stack of (lead, final value at lead equals dst's controlling value).
    ctrl_stack: list[tuple[int, bool]] = []
    path_stack: list[int] = []

    kind = tables.kind
    ctrl = tables.ctrl
    out_ctrl = tables.out_ctrl
    out_nc = tables.out_nc
    nc = tables.nc
    side_all = tables.side_all
    side_ctrl = tables.side_ctrl
    fanout = tables.fanout
    assume = engine.assume
    mark = engine.mark
    undo = engine.undo_to
    if on_path is not None:
        from repro.paths.path import PhysicalPath  # local: rarely used

    base = mark()
    with Stopwatch() as sw:
        try:
            for pi in circuit.inputs:
                for x in (1, 0):
                    m0 = mark()
                    if assume(pi, x):
                        frames = [[fanout[pi], 0, x, m0, False]]
                        while frames:
                            frame = frames[-1]
                            branches = frame[0]
                            i = frame[1]
                            if i == len(branches):
                                frames.pop()
                                if frame[4]:
                                    path_stack.pop()
                                    ctrl_stack.pop()
                                    undo(frame[3])
                                continue
                            frame[1] = i + 1
                            lead, dst = branches[i]
                            edges += 1
                            k = kind[dst]
                            if k == _K_PO:
                                accepted += 1
                                if (
                                    max_accepted is not None
                                    and accepted > max_accepted
                                ):
                                    raise ClassifyError(
                                        f"more than {max_accepted} paths "
                                        "accepted; raise max_accepted or use "
                                        "a smaller circuit"
                                    )
                                if collect_lead_counts:
                                    for l2, is_c in ctrl_stack:
                                        if is_c:
                                            lead_counts[l2] += 1
                                if on_path is not None:
                                    on_path(
                                        LogicalPath(
                                            PhysicalPath(
                                                tuple(path_stack) + (lead,)
                                            ),
                                            x,
                                        )
                                    )
                                continue
                            val = frame[2]
                            m = mark()
                            if k == _K_SIMPLE:
                                is_ctrl = val == ctrl[dst]
                                if is_ctrl:
                                    sides = side_ctrl[lead]
                                    newval = out_ctrl[dst]
                                else:
                                    sides = side_all[lead]
                                    newval = out_nc[dst]
                                ok = True
                                ncv = nc[dst]
                                for src in sides:
                                    if not assume(src, ncv):
                                        ok = False
                                        break
                                if ok:
                                    ok = assume(dst, newval)
                            elif k == _K_NOT:
                                is_ctrl = False
                                newval = 1 - val
                                ok = assume(dst, newval)
                            else:  # _K_WIRE
                                is_ctrl = False
                                newval = val
                                ok = assume(dst, newval)
                            if ok:
                                ctrl_stack.append((lead, is_ctrl))
                                path_stack.append(lead)
                                frames.append(
                                    [fanout[dst], 0, newval, m, True]
                                )
                            else:
                                undo(m)
                    undo(m0)
        finally:
            undo(base)
    return ClassificationResult(
        circuit_name=circuit.name,
        criterion=criterion,
        total_logical=counts.total_logical,
        accepted=accepted,
        elapsed=sw.elapsed,
        lead_ctrl_counts=lead_counts,
        edges_visited=edges,
    )


def classify_reference(
    circuit: Circuit,
    criterion: Criterion,
    sort: InputSort | None = None,
    collect_lead_counts: bool = False,
    max_accepted: int | None = None,
    on_path: Callable[[LogicalPath], None] | None = None,
    counts: PathCounts | None = None,
) -> ClassificationResult:
    """Count ``|LP^sup|`` with the reference trail-based engine.

    Same contract as :func:`repro.classify.engine.classify` (minus the
    ``session`` parameter); exists so tests can cross-check the bitset
    kernel against an independent implementation.
    """
    tables = _ReferenceTables(circuit, criterion, sort)
    engine = ImplicationEngine(circuit)
    if counts is None:
        counts = count_paths(circuit)
    return _run_reference(
        circuit,
        criterion,
        tables,
        engine,
        counts,
        collect_lead_counts,
        max_accepted,
        on_path,
    )


def check_logical_path_reference(
    circuit: Circuit,
    criterion: Criterion,
    logical_path: LogicalPath,
    sort: InputSort | None = None,
) -> bool:
    """Trail-based check of one explicit logical path (reference)."""
    tables = _ReferenceTables(circuit, criterion, sort)
    engine = ImplicationEngine(circuit)
    pi = logical_path.path.source(circuit)
    val = logical_path.final_value
    if not engine.assume(pi, val):
        return False
    for lead in logical_path.path.leads:
        dst = circuit.lead_dst(lead)
        k = tables.kind[dst]
        if k == _K_PO:
            return True
        if k == _K_SIMPLE:
            if val == tables.ctrl[dst]:
                sides = tables.side_ctrl[lead]
                newval = tables.out_ctrl[dst]
            else:
                sides = tables.side_all[lead]
                newval = tables.out_nc[dst]
            ncv = tables.nc[dst]
            for src in sides:
                if not engine.assume(src, ncv):
                    return False
            if not engine.assume(dst, newval):
                return False
            val = newval
        elif k == _K_NOT:
            val = 1 - val
            if not engine.assume(dst, val):
                return False
        else:
            if not engine.assume(dst, val):
                return False
    raise ValueError("path does not terminate at a PO")
