"""Command-line interface: ``repro-rd`` / ``python -m repro``.

Subcommands::

    repro-rd list                         # suite circuits
    repro-rd info s499-ecc --json         # stats + path counts
    repro-rd classify s1355-par --criterion sigma --sort heu2
    repro-rd classify c17 --store results.sqlite   # persistent cache
    repro-rd classify c17 --remote 127.0.0.1:7463  # via the daemon
    repro-rd baseline apex-a --method exact
    repro-rd compare-sorts c17 --sorts pin,heu2    # coverage per sort
    repro-rd sweep ripple_carry --params 2,4,8     # scaling study
    repro-rd table1 / table2 / table3 / figures
    repro-rd serve --port 7463 --store results.sqlite
    repro-rd metrics --remote 127.0.0.1:7463       # daemon telemetry
    repro-rd cache stats results.sqlite   # also: gc, clear
    repro-rd info my_circuit.bench        # file inputs work everywhere

Run-style subcommands (classify, baseline, compare-sorts, sweep,
table1/2/3) share one flag family — ``--jobs``, ``--store``,
``--checkpoint``, ``--resume``, ``--trace-out``, ``-v`` plus the
supervision budget/retry knobs — declared once in a parent parser, so
every command spells every option the same way.  The old spellings
``--task-timeout`` and ``--max-retries`` still parse as deprecated
aliases of ``--task-budget`` / ``--retries`` (they warn once).
"""

from __future__ import annotations

import argparse
import os
import sys
import warnings
from pathlib import Path

from repro import loading
from repro.baseline.exact_assignment import baseline_rd
from repro.circuit.netlist import Circuit
from repro.circuit.stats import circuit_stats, internal_fanout_count
from repro.classify.conditions import Criterion
from repro.classify.session import CircuitSession
from repro.gen.suite import SUITE
from repro.obs import export_jsonl, format_metrics, get_registry
from repro.sorting.heuristics import (
    heuristic1_sort,
    heuristic2_sort,
    pin_order_sort,
    random_sort,
)
from repro.util.serialize import classification_payload, info_payload, to_json

_CRITERIA = {
    "fs": Criterion.FS,
    "nr": Criterion.NR,
    "sigma": Criterion.SIGMA_PI,
}


def package_version() -> str:
    """The installed distribution's version, falling back to the
    package constant for source-tree (PYTHONPATH) runs."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        from repro import __version__

        return __version__


def load_circuit(spec: str) -> Circuit:
    """A suite name, a ``.bench`` file, or a ``.pla`` file — resolved by
    the unified adapter; sequential ``.bench`` netlists are auto
    scan-expanded to their combinational core."""
    return loading.as_core(spec)


def _make_sort(
    circuit: Circuit, kind: str, seed: int,
    session: "CircuitSession | None" = None,
):
    """Build a named sort, reusing ``session`` caches for the heuristic
    sorts (the heu2 variants cost two classification passes)."""
    if kind == "pin":
        return pin_order_sort(circuit)
    if kind == "heu1":
        counts = session.counts if session is not None else None
        return heuristic1_sort(circuit, counts=counts)
    if kind == "heu2":
        return heuristic2_sort(circuit, session=session)
    if kind == "heu2inv":
        return heuristic2_sort(circuit, session=session).inverted()
    if kind == "random":
        return random_sort(circuit, seed=seed)
    raise ValueError(f"unknown sort {kind!r}")


# -- shared flag family -----------------------------------------------------

_warned_aliases: set = set()


class _DeprecatedAlias(argparse.Action):
    """An old flag spelling that still parses but warns once per process."""

    def __init__(self, option_strings, dest, preferred="", **kwargs):
        self.preferred = preferred
        super().__init__(option_strings, dest, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        if option_string not in _warned_aliases:
            _warned_aliases.add(option_string)
            message = (
                f"{option_string} is deprecated; use {self.preferred}"
            )
            warnings.warn(message, DeprecationWarning, stacklevel=2)
            print(f"warning: {message}", file=sys.stderr)
        setattr(namespace, self.dest, values)


def _shared_run_parent() -> argparse.ArgumentParser:
    """The flag family every run-style subcommand accepts (classify,
    baseline, compare-sorts, sweep, table1/2/3)."""
    parent = argparse.ArgumentParser(add_help=False)
    g = parent.add_argument_group("shared run options")
    g.add_argument(
        "--jobs", type=_positive_int, default=1,
        help="worker processes (work fans out; 1 = in-process)",
    )
    g.add_argument(
        "--store", metavar="FILE", default=None,
        help="persistent result store shared by all workers "
        "(SQLite; created if missing)",
    )
    g.add_argument(
        "--checkpoint", metavar="FILE", default=None,
        help="stream completed rows to this JSONL file",
    )
    g.add_argument(
        "--resume", action="store_true",
        help="skip work already recorded in --checkpoint",
    )
    g.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="write tracing spans plus a merged metrics snapshot as "
        "JSON lines when the command finishes",
    )
    g.add_argument(
        "-v", "--verbose", action="store_true",
        help="print telemetry (session cache counters, metrics summary)",
    )
    g.add_argument(
        "--task-budget", dest="task_timeout", type=float, default=None,
        metavar="SECONDS",
        help="flat per-task wall-clock budget (default: derived from "
        "each circuit's exact path count; jobs > 1 only)",
    )
    g.add_argument(
        "--task-timeout", dest="task_timeout", type=float,
        metavar="SECONDS", action=_DeprecatedAlias,
        preferred="--task-budget", help=argparse.SUPPRESS,
    )
    g.add_argument(
        "--retries", dest="max_retries", type=int, default=None,
        metavar="N",
        help="pool retries per task before the in-process rerun",
    )
    g.add_argument(
        "--max-retries", dest="max_retries", type=int, metavar="N",
        action=_DeprecatedAlias, preferred="--retries",
        help=argparse.SUPPRESS,
    )
    return parent


def _warn_ignored(args: argparse.Namespace, command: str, *flags: str) -> None:
    """Tell the user a shared flag has no effect for this subcommand."""
    for flag in flags:
        dest = flag.lstrip("-").replace("-", "_")
        if getattr(args, dest, None):
            print(
                f"warning: {flag} has no effect for '{command}'",
                file=sys.stderr,
            )


def _print_metrics_summary() -> None:
    print("-- metrics --")
    print(format_metrics(get_registry().snapshot()))


# -- subcommands ------------------------------------------------------------

def cmd_list(_args: argparse.Namespace) -> int:
    for name in sorted(SUITE):
        print(name)
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    circuit = load_circuit(args.circuit)
    counts = CircuitSession(circuit).counts
    if args.json:
        print(to_json(info_payload(
            circuit, counts, internal_fanout_count(circuit)
        )))
        return 0
    print(circuit_stats(circuit))
    print(f"internal fanout stems: {internal_fanout_count(circuit)}")
    print(f"physical paths: {counts.total_physical:,}")
    print(f"logical paths:  {counts.total_logical:,}")
    flat = circuit.flat
    histogram = ", ".join(
        f"{name}={count}" for name, count in flat.gate_type_histogram().items()
    )
    print(f"flat IR: {histogram}")
    print(
        f"flat IR: {flat.num_leads} leads, "
        f"{flat.bitset_words} bitset word(s) per lead condition, "
        f"built in {flat.build_s * 1000:.2f} ms"
    )
    return 0


def cmd_classify(args: argparse.Namespace) -> int:
    if args.remote is not None:
        return _classify_remote(args)
    _warn_ignored(args, "classify", "--checkpoint", "--resume")
    circuit = load_circuit(args.circuit)
    criterion = _CRITERIA[args.criterion]
    session = None
    sort_used = None
    if args.jobs > 1 and criterion is not Criterion.SIGMA_PI:
        # FS/NR decompose per PO cone (every path lies in exactly one
        # cone), so --jobs fans the cones out across a supervised pool
        from repro.experiments.harness import classify_cones

        result = classify_cones(circuit, criterion, jobs=args.jobs)
    else:
        if args.jobs > 1:
            print(
                "warning: --jobs has no effect for --criterion sigma "
                "(the input sort is global); running in-process",
                file=sys.stderr,
            )
        session = CircuitSession(circuit, store=args.store)
        sort = None
        if criterion is Criterion.SIGMA_PI:
            sort = _make_sort(circuit, args.sort, args.seed, session=session)
            sort_used = args.sort
        result = session.classify(
            criterion, sort=sort, max_accepted=args.max_accepted
        )
    if args.json:
        print(to_json(classification_payload(
            result,
            fingerprint=session.fingerprint if session is not None else None,
            sort_kind=sort_used,
            session_stats=(
                session.stats.to_dict() if session is not None else None
            ),
        )))
        return 0
    print(result)
    if args.verbose:
        from repro.classify.session import format_session_stats

        if session is not None:
            print(format_session_stats(session.stats.to_dict()))
        _print_metrics_summary()
    return 0


def _classify_remote(args: argparse.Namespace) -> int:
    """``classify --remote``: send the request to a running daemon.

    Suite names travel by name (the server's generator builds the
    circuit); file inputs are serialized to ``.bench`` text.
    """
    from repro.classify.session import format_session_stats
    from repro.errors import ReproError
    from repro.service.client import RetryPolicy, ServiceClient

    path = Path(args.circuit)
    spec: "Circuit | str"
    if path.suffix in (".bench", ".pla") and path.exists():
        spec = load_circuit(args.circuit)
    else:
        spec = args.circuit
    events = []
    try:
        # bounded retry with jittered backoff: a fleet worker respawning
        # (or a daemon restart) is invisible to the CLI user
        with ServiceClient.connect(args.remote, retry=RetryPolicy()) as client:
            result = client.classify(
                circuit=spec,
                criterion=args.criterion,
                sort=args.sort,
                max_accepted=args.max_accepted,
                on_event=events.append if args.verbose else None,
            )
    except ReproError as exc:
        print(f"remote classify failed: {exc}", file=sys.stderr)
        return 1
    if getattr(args, "json", False):
        print(to_json(result))
        return 0
    print(
        f"{result['name']} [{result['criterion']}]: "
        f"{result['accepted']}/{result['total_logical']} accepted, "
        f"{result['rd_percent']:.2f}% RD, {result['elapsed']:.2f}s "
        f"(remote {args.remote})"
    )
    if args.verbose:
        for event in events:
            print(f"  event: {event}")
        print(f"  {format_session_stats(result['session'])}")
        print(f"  fingerprint: {result['fingerprint']}")
    return 0


def cmd_baseline(args: argparse.Namespace) -> int:
    _warn_ignored(
        args, "baseline", "--jobs", "--store", "--checkpoint", "--resume"
    )
    circuit = load_circuit(args.circuit)
    result = baseline_rd(circuit, method=args.method)
    print(result)
    if args.verbose:
        _print_metrics_summary()
    return 0


def cmd_compare_sorts(args: argparse.Namespace) -> int:
    """Sampled robust fault coverage per input sort (Section III)."""
    from repro.experiments.coverage_study import compare_sorts
    from repro.experiments.supervisor import RowFailure

    _warn_ignored(args, "compare-sorts", "--checkpoint", "--resume", "--store")
    circuit = load_circuit(args.circuit)
    kinds = [kind.strip() for kind in args.sorts.split(",") if kind.strip()]
    session = CircuitSession(circuit)
    sorts = {
        kind: _make_sort(circuit, kind, args.seed, session=session)
        for kind in kinds
    }
    estimates = compare_sorts(
        circuit,
        sorts,
        sample_size=args.sample_size,
        seed=args.seed,
        jobs=args.jobs,
        task_timeout=args.task_timeout,
        max_retries=args.max_retries,
    )
    failed = 0
    for label in kinds:
        estimate = estimates[label]
        if isinstance(estimate, RowFailure):
            failed += 1
            print(f"!! {estimate}")
        else:
            print(estimate)
    if args.verbose:
        _print_metrics_summary()
    return 1 if failed else 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Scaling sweep over one generator family (the Table-II narrative)."""
    from repro.experiments.supervisor import RowFailure
    from repro.experiments.sweep import FAMILIES, SweepPoint, sweep_family
    from repro.util.tables import TextTable

    _warn_ignored(args, "sweep", "--store")
    try:
        parameters = [int(p) for p in args.params.split(",") if p.strip()]
    except ValueError:
        raise SystemExit(f"--params must be comma-separated ints: {args.params!r}")
    if not parameters:
        raise SystemExit("--params needs at least one value")
    extra = {} if args.max_retries is None else {"max_retries": args.max_retries}
    points = sweep_family(
        FAMILIES[args.family],
        parameters,
        classification_budget=args.budget,
        jobs=args.jobs,
        checkpoint=args.checkpoint,
        resume=args.resume,
        task_timeout=args.task_timeout,
        **extra,
    )
    table = TextTable(
        ["param", "gates", "logical paths", "accepted", "classify time"],
        title=f"Sweep: {args.family}",
    )
    for parameter, point in zip(parameters, points):
        if isinstance(point, RowFailure):
            table.add_row([str(parameter)] + ["FAILED"] * 4)
            continue
        assert isinstance(point, SweepPoint)
        table.add_row([
            str(point.parameter),
            f"{point.gates:,}",
            f"{point.total_logical:,}",
            "(skipped)" if point.accepted is None else f"{point.accepted:,}",
            "-" if point.classify_seconds is None
            else f"{point.classify_seconds:.3f}s",
        ])
    print(table.render())
    if args.verbose:
        _print_metrics_summary()
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Render a telemetry snapshot — the daemon's (``--remote``) or this
    process's registry (mostly useful under ``--json`` for tooling)."""
    if args.remote is not None:
        from repro.errors import ServiceError
        from repro.service.client import ServiceClient

        try:
            with ServiceClient.connect(args.remote) as client:
                result = client.metrics()
        except ServiceError as exc:
            print(f"remote metrics failed: {exc}", file=sys.stderr)
            return 1
        if args.json:
            print(to_json(result))
            return 0
        print(
            f"repro-rd {result.get('version', '?')} at {args.remote}, "
            f"up {result.get('uptime', 0.0):.1f}s"
        )
        print(format_metrics(result.get("metrics") or {}))
        return 0
    snapshot = get_registry().snapshot()
    if args.json:
        print(to_json({"metrics": snapshot}))
        return 0
    print(format_metrics(snapshot))
    return 0


def cmd_testgen(args: argparse.Namespace) -> int:
    """Generate robust delay tests for the non-RD paths of a circuit."""
    from repro.delaytest.testability import robust_test

    circuit = load_circuit(args.circuit)
    session = CircuitSession(circuit)
    sort = _make_sort(circuit, args.sort, 0, session=session)
    must_test: list = []
    result = session.classify(
        Criterion.SIGMA_PI, sort=sort,
        max_accepted=args.max_accepted, on_path=must_test.append,
    )
    print(result)
    shown = 0
    untestable = 0
    for lp in must_test:
        if args.limit is not None and shown + untestable >= args.limit:
            remaining = len(must_test) - shown - untestable
            print(f"... {remaining} more paths (raise --limit)")
            break
        pair = robust_test(circuit, lp)
        if pair is None:
            untestable += 1
            print(f"UNTESTABLE  {lp.describe(circuit)}")
            continue
        shown += 1
        v1 = "".join(map(str, pair[0]))
        v2 = "".join(map(str, pair[1]))
        print(f"<{v1},{v2}>  {lp.describe(circuit)}")
    print(f"{shown} robust tests, {untestable} robustly untestable")
    return 0


def cmd_select(args: argparse.Namespace) -> int:
    """Threshold path selection with RD filtering (Section VI)."""
    from repro.selection.strategies import select_by_threshold
    from repro.timing.delays import unit_delays
    from repro.timing.pathdelay import logical_path_delay

    circuit = load_circuit(args.circuit)
    session = CircuitSession(circuit)
    sort = _make_sort(circuit, args.sort, 0, session=session)
    must_test: set = set()
    session.classify(
        Criterion.SIGMA_PI, sort=sort,
        max_accepted=args.max_accepted, on_path=must_test.add,
    )
    delays = unit_delays(circuit)
    from repro.paths.enumerate import enumerate_logical_paths

    max_delay = max(
        logical_path_delay(circuit, lp, delays)
        for lp in enumerate_logical_paths(circuit)
    )
    threshold = args.fraction * max_delay
    selection = select_by_threshold(circuit, delays, threshold, must_test)
    print(f"longest path delay (unit model): {max_delay:g}")
    print(selection)
    return 0


def cmd_sta(args: argparse.Namespace) -> int:
    """Static timing analysis + the k slowest logical paths."""
    from repro.timing.delays import random_delays, unit_delays
    from repro.timing.kpaths import k_longest_paths
    from repro.timing.sta import static_timing

    circuit = load_circuit(args.circuit)
    if args.delays == "unit":
        delays = unit_delays(circuit)
    else:
        delays = random_delays(circuit, seed=args.seed)
    report = static_timing(circuit, delays)
    print(f"critical delay: {report.critical_delay:g}")
    for po in circuit.outputs:
        print(f"  {circuit.gate_name(po)}: arrival {report.po_arrival(po):g}")
    if args.k:
        print(f"{args.k} slowest logical paths:")
        for delay, lp in k_longest_paths(circuit, delays, args.k):
            print(f"  {delay:10.3f}  {lp.describe(circuit)}")
    return 0


def cmd_atpg(args: argparse.Namespace) -> int:
    """Run the full stuck-at ATPG flow (collapse/generate/simulate)."""
    from repro.atpg.flow import run_atpg

    circuit = load_circuit(args.circuit)
    result = run_atpg(
        circuit,
        engine=args.engine,
        random_burst=args.random_burst,
        seed=args.seed,
    )
    print(result)
    if args.show_redundant:
        for fault in sorted(result.redundant, key=lambda f: (f.lead, f.value)):
            print(f"  redundant: {fault.describe(circuit)}")
    return 0


def cmd_dot(args: argparse.Namespace) -> int:
    """Export a circuit (optionally a stabilizing system) as DOT."""
    from repro.circuit.dot import to_dot
    from repro.stabilize.system import compute_stabilizing_system

    circuit = load_circuit(args.circuit)
    highlight = None
    if args.stabilize is not None:
        bits = args.stabilize
        if len(bits) != len(circuit.inputs) or set(bits) - set("01"):
            raise SystemExit(
                f"--stabilize needs {len(circuit.inputs)} bits of 0/1"
            )
        vector = tuple(int(b) for b in bits)
        system = compute_stabilizing_system(
            circuit, circuit.outputs[args.po], vector
        )
        highlight = system.leads
    print(to_dot(circuit, highlight_leads=highlight), end="")
    return 0


def cmd_version(_args: argparse.Namespace) -> int:
    print(f"repro-rd {package_version()}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the analysis daemon (or, with --workers, the sharded fleet)
    until SIGTERM/SIGINT."""
    import asyncio

    if (args.socket is None) == (args.port is None):
        raise SystemExit("serve needs exactly one of --socket PATH or --port N")

    def announce(address: str) -> None:
        where = address if args.socket else f"tcp://{address}"
        what = (
            f"fleet ({args.workers} workers)" if args.workers else "serving"
        )
        print(
            f"repro-rd {package_version()} {what} on {where}", flush=True
        )

    if args.workers is not None:
        from repro.service.fleet import serve_fleet

        return asyncio.run(
            serve_fleet(
                host=args.host,
                port=args.port,
                socket_path=args.socket,
                store=args.store,
                workers=args.workers,
                concurrency=args.concurrency,
                default_deadline=args.deadline,
                max_accepted=args.max_accepted,
                max_pending=args.max_pending,
                ready=announce,
            )
        )
    from repro.service.server import serve

    return asyncio.run(
        serve(
            host=args.host,
            port=args.port,
            socket_path=args.socket,
            store=args.store,
            concurrency=args.concurrency,
            default_deadline=args.deadline,
            max_accepted=args.max_accepted,
            ready=announce,
        )
    )


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect and maintain a persistent result store."""
    from repro.store.db import ResultStore

    if args.action != "stats" and not Path(args.store).exists():
        raise SystemExit(f"no store at {args.store!r}")
    with ResultStore(args.store) as store:
        if args.action == "stats":
            print(store.stats().render())
        elif args.action == "gc":
            removed = store.gc(max_age_days=args.max_age_days)
            print(f"removed {removed} entries")
        else:  # clear
            removed = store.clear()
            print(f"removed {removed} entries")
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    """Cone-level structural diff of two netlists (the ECO preview)."""
    from repro.incremental import diff_circuits

    diff = diff_circuits(load_circuit(args.base), load_circuit(args.edited))
    if args.json:
        print(to_json(diff.to_dict()))
    else:
        print(diff.render())
    return 0


def cmd_reanalyze(args: argparse.Namespace) -> int:
    """The ECO flow: reuse every CLEAN cone's stored results, recompute
    only DIRTY cones, report the reuse ratio."""
    from repro.incremental import reanalyze

    if args.store is None:
        raise SystemExit("reanalyze requires --store FILE")
    _warn_ignored(args, "reanalyze", "--checkpoint", "--resume")
    base = load_circuit(args.base)
    edited = load_circuit(args.edited)
    criterion = _CRITERIA[args.criterion]
    sort = args.sort if criterion is Criterion.SIGMA_PI else None
    report = reanalyze(
        base,
        edited,
        args.store,
        criterion=criterion,
        sort=sort,
        max_accepted=args.max_accepted,
        jobs=args.jobs,
    )
    if args.json:
        print(to_json(report.to_dict()))
        return 0
    print(report.render())
    if args.verbose:
        _print_metrics_summary()
    return 0


def cmd_tightness(args: argparse.Namespace) -> int:
    """Exact vs. approximate RD% (the Lemma-2 gap) via repro.verdict."""
    if args.remote is not None:
        return _tightness_remote(args)
    from repro.experiments.supervisor import TaskRunner
    from repro.verdict import run_tightness

    _warn_ignored(args, "tightness", "--checkpoint", "--resume")
    criterion = _CRITERIA[args.criterion]
    circuits = None
    if args.circuits:
        circuits = [load_circuit(spec) for spec in args.circuits]
    runner_kwargs: dict = {"jobs": args.jobs}
    if args.max_retries is not None:
        runner_kwargs["max_retries"] = args.max_retries
    report = run_tightness(
        circuits,
        criterion,
        args.sort,
        store=args.store,
        runner=TaskRunner(**runner_kwargs),
        max_inputs=args.max_inputs,
        max_accepted=args.max_accepted,
    )
    if args.json:
        print(to_json(report.to_dict()))
        return 0
    print(report.render())
    if args.verbose:
        _print_metrics_summary()
    return 0


def _tightness_remote(args: argparse.Namespace) -> int:
    """``tightness --remote``: one daemon request per circuit."""
    from repro.errors import ReproError
    from repro.service.client import RetryPolicy, ServiceClient
    from repro.verdict.tightness import default_suite_circuits

    specs = list(args.circuits) or default_suite_circuits(args.max_inputs)
    rows = []
    try:
        with ServiceClient.connect(args.remote, retry=RetryPolicy()) as client:
            for name in specs:
                path = Path(name)
                spec: "Circuit | str"
                if path.suffix in (".bench", ".pla") and path.exists():
                    spec = load_circuit(name)
                else:
                    spec = name
                rows.append(client.tightness(
                    circuit=spec,
                    criterion=args.criterion,
                    sort=args.sort,
                    max_accepted=args.max_accepted,
                ))
    except ReproError as exc:
        print(f"remote tightness failed: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(to_json({"rows": rows}))
        return 0
    for row in rows:
        print(
            f"{row['circuit']} [{row['criterion']}]: "
            f"approx {row['approx_rd_percent']:.2f}% vs exact "
            f"{row['exact_rd_percent']:.2f}% RD "
            f"({row['refuted']} refuted of {row['approx_accepted']} "
            f"accepted; remote {args.remote})"
        )
    return 0


def _signoff_delays(args: argparse.Namespace) -> "tuple[str, dict | None]":
    """Resolve ``--delays`` into ``(base, annotations)``.

    ``unit`` / ``random`` pick the fallback family; a path reads a
    sidecar-format annotation file that overlays (and, when complete,
    fully replaces) the fallback.
    """
    spec = args.delays
    if spec in ("random", "unit"):
        return spec, None
    from repro.timing.annotate import parse_delays_file

    return "random", parse_delays_file(spec)


def cmd_signoff(args: argparse.Namespace) -> int:
    """K-longest / above-slack robustly-testable paths (repro.signoff)."""
    if args.remote is not None:
        return _signoff_remote(args)
    from repro.signoff import signoff

    _warn_ignored(args, "signoff", "--checkpoint", "--resume")
    base, annotations = _signoff_delays(args)
    report = signoff(
        args.circuit,
        k=args.k,
        slack=args.slack,
        exact=args.exact,
        scan=True if args.scan else None,
        annotations=annotations,
        seed=args.seed,
        base=base,
        store=args.store,
        jobs=args.jobs,
    )
    if args.json:
        print(to_json(report.to_dict()))
        return 0
    print(report.render())
    if args.verbose:
        _print_metrics_summary()
    return 0


def _signoff_remote(args: argparse.Namespace) -> int:
    """``signoff --remote``: one daemon request per capture domain."""
    from repro.errors import ReproError
    from repro.service.client import RetryPolicy, ServiceClient
    from repro.signoff import signoff_remote

    base, annotations = _signoff_delays(args)
    try:
        with ServiceClient.connect(args.remote, retry=RetryPolicy()) as client:
            report = signoff_remote(
                args.circuit,
                client,
                k=args.k,
                slack=args.slack,
                exact=args.exact,
                scan=True if args.scan else None,
                annotations=annotations,
                seed=args.seed,
                base=base,
            )
    except ReproError as exc:
        print(f"remote signoff failed: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(to_json(report.to_dict()))
        return 0
    print(report.render())
    return 0


def _supervision_kwargs(args: argparse.Namespace) -> dict:
    """The shared table1/2/3 supervision options, as keyword arguments."""
    if getattr(args, "resume", False) and getattr(args, "checkpoint", None) is None:
        raise SystemExit("--resume requires --checkpoint FILE")
    return {
        "jobs": getattr(args, "jobs", 1),
        "checkpoint": getattr(args, "checkpoint", None),
        "resume": getattr(args, "resume", False),
        "task_timeout": getattr(args, "task_timeout", None),
        "max_retries": getattr(args, "max_retries", None),
        "store": getattr(args, "store", None),
    }


def cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments import table1

    kwargs = _supervision_kwargs(args)
    if getattr(args, "json", False):
        from repro.experiments.report import table1_to_dict, to_json

        _table, rows = table1.run(**kwargs)
        print(to_json(table1_to_dict(rows)))
        return 0
    table1.main(**kwargs, verbose=getattr(args, "verbose", False))
    if getattr(args, "verbose", False):
        _print_metrics_summary()
    return 0


def cmd_table2(args: argparse.Namespace) -> int:
    from repro.experiments import table2

    table2.main(**_supervision_kwargs(args))
    if getattr(args, "verbose", False):
        _print_metrics_summary()
    return 0


def cmd_table3(args: argparse.Namespace) -> int:
    from repro.experiments import table3

    kwargs = _supervision_kwargs(args)
    if getattr(args, "json", False):
        from repro.experiments.report import table3_to_dict, to_json

        _table, rows = table3.run(**kwargs)
        print(to_json(table3_to_dict(rows)))
        return 0
    table3.main(**kwargs, verbose=getattr(args, "verbose", False))
    if getattr(args, "verbose", False):
        _print_metrics_summary()
    return 0


def cmd_figures(_args: argparse.Namespace) -> int:
    from repro.experiments import figures

    figures.main()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-rd",
        description="Robust dependent path delay fault identification (DAC'95)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro-rd {package_version()}"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    shared = _shared_run_parent()

    sub.add_parser("list", help="list suite circuits").set_defaults(fn=cmd_list)

    sub.add_parser(
        "version", help="print the package version"
    ).set_defaults(fn=cmd_version)

    p = sub.add_parser("info", help="circuit statistics and path counts")
    p.add_argument("circuit", help="suite name or .bench/.pla file")
    p.add_argument("--json", action="store_true", help="emit JSON")
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser(
        "classify", parents=[shared], help="run the RD classifier"
    )
    p.add_argument("circuit")
    p.add_argument(
        "--criterion", choices=sorted(_CRITERIA), default="sigma",
        help="fs = functional sensitizability, nr = non-robust "
        "testability, sigma = LP(sigma^pi) (default)",
    )
    p.add_argument(
        "--sort", choices=["pin", "heu1", "heu2", "heu2inv", "random"],
        default="heu2", help="input sort for --criterion sigma",
    )
    p.add_argument("--seed", type=int, default=0, help="seed for --sort random")
    p.add_argument(
        "--max-accepted", type=int, default=None,
        help="abort after this many accepted paths",
    )
    p.add_argument(
        "--remote", metavar="HOST:PORT|SOCKET", default=None,
        help="send the request to a running 'repro-rd serve' daemon",
    )
    p.add_argument("--json", action="store_true", help="emit JSON")
    p.set_defaults(fn=cmd_classify)

    p = sub.add_parser(
        "baseline", parents=[shared], help="run the exact baseline of [1]"
    )
    p.add_argument("circuit")
    p.add_argument("--method", choices=["greedy", "exact"], default="greedy")
    p.set_defaults(fn=cmd_baseline)

    p = sub.add_parser(
        "compare-sorts", parents=[shared],
        help="sampled robust fault coverage per input sort",
    )
    p.add_argument("circuit")
    p.add_argument(
        "--sorts", default="pin,heu1,heu2,heu2inv",
        help="comma-separated sort names to compare",
    )
    p.add_argument(
        "--sample-size", type=int, default=100,
        help="paths SAT-sampled per sort",
    )
    p.add_argument("--seed", type=int, default=0, help="sampling seed")
    p.set_defaults(fn=cmd_compare_sorts)

    from repro.experiments.sweep import FAMILIES

    p = sub.add_parser(
        "sweep", parents=[shared],
        help="scaling sweep over one generator family",
    )
    p.add_argument("family", choices=sorted(FAMILIES))
    p.add_argument(
        "--params", required=True, metavar="N,N,...",
        help="comma-separated family parameters (e.g. widths)",
    )
    p.add_argument(
        "--budget", type=int, default=500_000,
        help="max accepted paths before a point degrades to count-only",
    )
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser(
        "testgen", help="robust two-pattern tests for the non-RD paths"
    )
    p.add_argument("circuit")
    p.add_argument(
        "--sort", choices=["pin", "heu1", "heu2", "heu2inv", "random"],
        default="heu2",
    )
    p.add_argument("--limit", type=int, default=20,
                   help="max paths to print tests for")
    p.add_argument("--max-accepted", type=int, default=100_000)
    p.set_defaults(fn=cmd_testgen)

    p = sub.add_parser(
        "select", help="threshold path selection with RD filtering"
    )
    p.add_argument("circuit")
    p.add_argument("--fraction", type=float, default=0.8,
                   help="threshold as a fraction of the longest path delay")
    p.add_argument(
        "--sort", choices=["pin", "heu1", "heu2", "heu2inv", "random"],
        default="heu2",
    )
    p.add_argument("--max-accepted", type=int, default=100_000)
    p.set_defaults(fn=cmd_select)

    p = sub.add_parser("sta", help="static timing + k slowest paths")
    p.add_argument("circuit")
    p.add_argument("--delays", choices=["unit", "random"], default="unit")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-k", type=int, default=5, help="paths to list (0 = none)")
    p.set_defaults(fn=cmd_sta)

    p = sub.add_parser("atpg", help="full stuck-at ATPG flow")
    p.add_argument("circuit")
    p.add_argument("--engine", choices=["podem", "sat"], default="podem")
    p.add_argument("--random-burst", type=int, default=64)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--show-redundant", action="store_true")
    p.set_defaults(fn=cmd_atpg)

    p = sub.add_parser("dot", help="Graphviz export")
    p.add_argument("circuit")
    p.add_argument(
        "--stabilize", metavar="BITS", default=None,
        help="highlight the stabilizing system for this input vector",
    )
    p.add_argument("--po", type=int, default=0, help="output index for --stabilize")
    p.set_defaults(fn=cmd_dot)

    p = sub.add_parser("table1", parents=[shared], help="regenerate Table I")
    p.add_argument("--json", action="store_true", help="emit JSON")
    p.set_defaults(fn=cmd_table1)
    p = sub.add_parser("table2", parents=[shared], help="regenerate Table II")
    p.set_defaults(fn=cmd_table2)
    p = sub.add_parser("table3", parents=[shared], help="regenerate Table III")
    p.add_argument("--json", action="store_true", help="emit JSON")
    p.set_defaults(fn=cmd_table3)
    sub.add_parser("figures", help="regenerate Figures 1-5").set_defaults(
        fn=cmd_figures
    )

    p = sub.add_parser(
        "serve", help="run the analysis daemon (or a sharded fleet)",
        epilog="exit status: 0 after a drained SIGTERM; 130 after "
        "SIGINT (Ctrl-C) — both drain in-flight requests first",
    )
    p.add_argument("--socket", metavar="PATH", default=None,
                   help="listen on a unix socket")
    p.add_argument("--port", type=int, default=None,
                   help="listen on TCP (0 = ephemeral)")
    p.add_argument("--host", default="127.0.0.1", help="TCP bind address")
    p.add_argument(
        "--store", metavar="FILE", default=None,
        help="persistent result store backing the session pool",
    )
    p.add_argument(
        "--concurrency", type=_positive_int, default=8,
        help="max classifications in flight per process (default 8)",
    )
    p.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="flat per-request wall-clock budget (default: derived "
        "from each circuit's exact path count)",
    )
    p.add_argument(
        "--max-accepted", type=int, default=None,
        help="server-wide abort threshold on accepted paths",
    )
    p.add_argument(
        "--workers", type=_positive_int, default=None, metavar="N",
        help="run a supervised fleet of N worker processes sharded by "
        "circuit fingerprint, with single-flight request coalescing "
        "(default: one in-process server, no fleet)",
    )
    p.add_argument(
        "--max-pending", type=_positive_int, default=64, metavar="N",
        help="fleet only: bounded pending queue per worker; beyond it "
        "requests are shed with a structured 'Overloaded' error "
        "(default 64)",
    )
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "metrics", help="render a telemetry snapshot (daemon or local)"
    )
    p.add_argument(
        "--remote", metavar="HOST:PORT|SOCKET", default=None,
        help="fetch the snapshot from a running 'repro-rd serve' daemon",
    )
    p.add_argument("--json", action="store_true", help="emit JSON")
    p.set_defaults(fn=cmd_metrics)

    p = sub.add_parser(
        "diff", help="cone-level structural diff of two netlists"
    )
    p.add_argument("base", help="suite name or .bench/.pla file")
    p.add_argument("edited", help="suite name or .bench/.pla file")
    p.add_argument("--json", action="store_true", help="emit JSON")
    p.set_defaults(fn=cmd_diff)

    p = sub.add_parser(
        "reanalyze", parents=[shared],
        help="incremental (ECO) re-classification via the cone store",
    )
    p.add_argument("base", help="suite name or .bench/.pla file")
    p.add_argument("edited", help="suite name or .bench/.pla file")
    p.add_argument(
        "--criterion", choices=sorted(_CRITERIA), default="sigma",
        help="classification criterion (default sigma)",
    )
    p.add_argument(
        "--sort", choices=["pin", "heu1", "heu2"], default="heu2",
        help="per-cone input sort for --criterion sigma",
    )
    p.add_argument(
        "--max-accepted", type=int, default=None,
        help="per-cone acceptance budget (part of the cone store key)",
    )
    p.add_argument("--json", action="store_true", help="emit JSON")
    p.set_defaults(fn=cmd_reanalyze)

    p = sub.add_parser(
        "tightness", parents=[shared],
        help="exact vs. approximate RD%% per circuit (SAT-backed verdicts)",
    )
    p.add_argument(
        "circuits", nargs="*", metavar="CIRCUIT",
        help="suite names or .bench/.pla files (default: every suite "
        "circuit within --max-inputs PIs)",
    )
    p.add_argument(
        "--criterion", choices=sorted(_CRITERIA), default="sigma",
        help="criterion to decide exactly (default sigma)",
    )
    p.add_argument(
        "--sort", choices=["pin", "heu1", "heu2", "heu2inv"], default="heu2",
        help="input sort for --criterion sigma (default heu2)",
    )
    p.add_argument(
        "--max-inputs", type=_positive_int, default=20, metavar="N",
        help="PI ceiling for the default sweep — keeps verdicts "
        "cross-checkable against the brute-force oracle (default 20)",
    )
    p.add_argument(
        "--max-accepted", type=int, default=50_000, metavar="N",
        help="SKIP circuits whose classifier accepts more paths than "
        "this (bounds SAT queries per circuit; default 50000)",
    )
    p.add_argument(
        "--remote", metavar="HOST:PORT|SOCKET", default=None,
        help="send tightness requests to a running 'repro-rd serve'",
    )
    p.add_argument("--json", action="store_true", help="emit JSON")
    p.set_defaults(fn=cmd_tightness)

    p = sub.add_parser(
        "signoff", parents=[shared],
        help="K-longest / above-slack robustly-testable paths under "
        "annotated delays",
    )
    p.add_argument(
        "circuit", metavar="CIRCUIT",
        help="suite name or .bench/.pla file; a sequential .bench is "
        "scan-expanded and fanned out per capture domain, and its "
        "'# delay:' annotations plus any <stem>.delays sidecar apply",
    )
    query = p.add_mutually_exclusive_group()
    query.add_argument(
        "--k", type=_positive_int, default=None, metavar="N",
        help="report the N longest robustly-testable paths (default 10)",
    )
    query.add_argument(
        "--slack", type=float, default=None, metavar="T",
        help="report every robustly-testable path with delay >= T",
    )
    p.add_argument(
        "--scan", action="store_true",
        help="require scan (sequential) interpretation of CIRCUIT",
    )
    p.add_argument(
        "--exact", action="store_true",
        help="escalate prefilter survivors through the SAT verdict "
        "oracle (rows are identical either way; only stage counters "
        "move)",
    )
    p.add_argument(
        "--delays", default="random", metavar="FILE|unit|random",
        help="delay assignment: 'random' (deterministic from --seed, "
        "default), 'unit', or a sidecar-format annotation file",
    )
    p.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="seed for the deterministic fallback delays (default 0)",
    )
    p.add_argument(
        "--remote", metavar="HOST:PORT|SOCKET", default=None,
        help="send one signoff request per capture domain to a "
        "running 'repro-rd serve'",
    )
    p.add_argument("--json", action="store_true", help="emit JSON")
    p.set_defaults(fn=cmd_signoff)

    p = sub.add_parser("cache", help="inspect/maintain a result store")
    p.add_argument("action", choices=["stats", "gc", "clear"])
    p.add_argument("store", metavar="FILE", help="store file")
    p.add_argument(
        "--max-age-days", type=float, default=None,
        help="for gc: also drop entries unused for this long",
    )
    p.set_defaults(fn=cmd_cache)
    return parser


def _positive_int(text: str) -> int:
    """argparse type for ``--jobs``: reject 0 and negatives loudly."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}"
        )
    return value


def main(argv: list | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # stdout went away (e.g. `repro-rd cache stats f | head`); die
        # quietly like cat(1) instead of tracebacking
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141
    except KeyboardInterrupt:
        # checkpoint records are flushed+fsynced as rows complete, so
        # whatever finished before ^C is already safe on disk
        print(
            "interrupted — completed rows (if --checkpoint was given) are "
            "on disk; rerun with --resume to continue",
            file=sys.stderr,
        )
        return 130
    finally:
        # one central exit point for --trace-out: whatever the command
        # recorded (including metrics merged back from pool workers)
        # lands in the file even on ^C
        trace_out = getattr(args, "trace_out", None)
        if trace_out:
            try:
                spans = export_jsonl(trace_out)
                print(
                    f"trace: {spans} spans + metrics snapshot -> {trace_out}",
                    file=sys.stderr,
                )
            except OSError as exc:
                print(f"trace export failed: {exc}", file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
