"""Robust test-set generation with fault-simulation compaction.

The classical ATPG outer loop, specialised to robust path delay faults:

1. take the target list (normally the non-RD paths from
   :func:`repro.classify.engine.classify`), slowest/longest first;
2. generate a robust two-pattern test for the next uncovered target
   (SAT, :func:`repro.delaytest.testability.robust_test`);
3. *fault-simulate* the pair (:mod:`repro.delaytest.simulator`) and
   strike every target it robustly covers — each pattern pair usually
   covers many paths, which is where the compaction comes from;
4. repeat until every target is covered or proven robustly untestable.

Untestable targets are reported separately: per the paper (Section III),
they are exactly the candidates for design-for-testability rework.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.circuit.netlist import Circuit
from repro.delaytest.simulator import sensitized_paths
from repro.delaytest.testability import robust_test
from repro.paths.path import LogicalPath
from repro.util.timer import Stopwatch


@dataclass
class TestSet:
    """Result of one test-set generation run."""

    circuit_name: str
    pairs: list = field(default_factory=list)
    covered: dict = field(default_factory=dict)  # LogicalPath -> pair index
    untestable: list = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def num_targets(self) -> int:
        return len(self.covered) + len(self.untestable)

    @property
    def coverage(self) -> float:
        """Robust fault coverage over the targets (Theorem 1's notion)."""
        if not self.num_targets:
            return 1.0
        return len(self.covered) / self.num_targets

    @property
    def compaction(self) -> float:
        """Average number of targets each pattern pair covers."""
        if not self.pairs:
            return 0.0
        return len(self.covered) / len(self.pairs)

    def __str__(self) -> str:
        return (
            f"{self.circuit_name}: {len(self.pairs)} test pairs cover "
            f"{len(self.covered)}/{self.num_targets} target paths "
            f"({100 * self.coverage:.1f}% robust coverage, "
            f"{self.compaction:.1f} paths/pair); "
            f"{len(self.untestable)} robustly untestable"
        )


def generate_test_set(
    circuit: Circuit,
    targets: "Iterable[LogicalPath] | Sequence[LogicalPath]",
    fault_simulate: bool = True,
    max_sim_paths: int = 1_000_000,
) -> TestSet:
    """Generate a compact robust test set for ``targets``.

    ``fault_simulate=False`` disables step 3 (one pair per testable
    target) — the ablation baseline showing what compaction buys.
    """
    ordered = sorted(set(targets), key=lambda lp: (-len(lp.path), lp.path.leads,
                                                   lp.final_value))
    result = TestSet(circuit_name=circuit.name)
    remaining = set(ordered)
    with Stopwatch() as sw:
        for lp in ordered:
            if lp not in remaining:
                continue
            pair = robust_test(circuit, lp)
            if pair is None:
                result.untestable.append(lp)
                remaining.discard(lp)
                continue
            index = len(result.pairs)
            result.pairs.append(pair)
            if fault_simulate:
                covered_now = sensitized_paths(
                    circuit, *pair, max_paths=max_sim_paths
                ).robust
                for other in covered_now & remaining:
                    result.covered[other] = index
                    remaining.discard(other)
            else:
                result.covered[lp] = index
                remaining.discard(lp)
    result.elapsed = sw.elapsed
    return result
