"""Path selection strategies with RD filtering (Section VI).

For circuits whose non-RD path set is still too large to test, the paper
points to classical selection strategies [18], [19] and notes they
compose with RD identification: among the paths a strategy would pick,
only the non-robust-dependent ones need tests.
"""

from repro.selection.strategies import (
    PathSelection,
    select_by_threshold,
    select_by_threshold_lazy,
    select_per_lead_limit,
    select_longest_per_po,
)

__all__ = [
    "PathSelection",
    "select_by_threshold",
    "select_by_threshold_lazy",
    "select_per_lead_limit",
    "select_longest_per_po",
]
