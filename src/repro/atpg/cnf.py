"""CNF formula container.

Literals use the DIMACS convention: variable ``v`` (1-based) appears as
``+v`` / ``-v``.  Internally the solver re-encodes to packed literals;
this container is the user-facing, easily testable representation.
"""

from __future__ import annotations

from typing import Iterable, Sequence


class CNF:
    """A conjunction of clauses over 1-based variables."""

    def __init__(self, num_vars: int = 0) -> None:
        if num_vars < 0:
            raise ValueError("num_vars must be non-negative")
        self.num_vars = num_vars
        self.clauses: list[tuple[int, ...]] = []

    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, literals: Iterable[int]) -> None:
        clause = tuple(literals)
        if not clause:
            raise ValueError("empty clause (formula is trivially UNSAT)")
        for lit in clause:
            var = abs(lit)
            if lit == 0:
                raise ValueError("literal 0 is not allowed")
            if var > self.num_vars:
                raise ValueError(f"literal {lit} exceeds num_vars={self.num_vars}")
        self.clauses.append(clause)

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def evaluate(self, model: Sequence[bool]) -> bool:
        """Evaluate under ``model`` (index 0 unused, ``model[v]`` is the
        value of variable ``v``); used by brute-force test oracles."""
        if len(model) < self.num_vars + 1:
            raise ValueError("model too short")
        return all(
            any((lit > 0) == model[abs(lit)] for lit in clause)
            for clause in self.clauses
        )

    def __len__(self) -> int:
        return len(self.clauses)

    def __repr__(self) -> str:
        return f"CNF(vars={self.num_vars}, clauses={len(self.clauses)})"
