"""Timing signoff: K-longest / above-slack robustly-testable paths.

The query layer composing lazy best-first path enumeration
(:mod:`repro.timing.kpaths`) with robust-testability filtering — the
Lemma-2 prefilter, the optional SAT oracle escalation, and the final
two-frame robust-test verdict — per launch/capture domain, under an
annotated per-gate :class:`~repro.timing.delays.DelayAssignment`.

Entry points:

* :func:`signoff` — the full local query on anything
  :func:`repro.loading.load` resolves (path, ``Circuit``,
  ``ScanCircuit``, suite name); scan designs fan out per capture
  domain across ``jobs`` processes.
* :func:`signoff_remote` — the same query through a connected
  :class:`~repro.service.client.ServiceClient`, one wire request per
  domain.
* :func:`signoff_core` — one domain, one circuit: the store-cached
  kernel both of the above call.
"""

from repro.signoff.query import (
    DEFAULT_K,
    DEFAULT_MAX_CANDIDATES,
    DEFAULT_MAX_STATES,
    domain_circuits,
    row_from_path,
    signoff,
    signoff_core,
    signoff_variant,
)
from repro.signoff.remote import signoff_remote
from repro.signoff.report import (
    SIGNOFF_SCHEMA,
    SignoffReport,
    SignoffRow,
    merge_rows,
)

__all__ = [
    "DEFAULT_K",
    "DEFAULT_MAX_CANDIDATES",
    "DEFAULT_MAX_STATES",
    "SIGNOFF_SCHEMA",
    "SignoffReport",
    "SignoffRow",
    "domain_circuits",
    "merge_rows",
    "row_from_path",
    "signoff",
    "signoff_core",
    "signoff_remote",
    "signoff_variant",
]
