"""Unit tests for leaf-dag RD identification (the mechanism of [1])."""

from repro.baseline.exact_assignment import minimize_assignment
from repro.baseline.leafdag_rd import leafdag_branch_count, leafdag_rd_paths
from repro.paths.count import count_paths
from repro.paths.enumerate import enumerate_logical_paths


def test_branch_count_equals_physical_paths(small_circuits):
    for circuit in small_circuits:
        for po in circuit.outputs:
            cone_paths = sum(
                1
                for p in enumerate_logical_paths(circuit)
                if p.path.sink(circuit) == po and p.final_value == 1
            )
            assert leafdag_branch_count(circuit, po) == cone_paths


def test_paper_example_max_rd_set(example_circuit):
    rd = leafdag_rd_paths(example_circuit, example_circuit.outputs[0])
    assert len(rd) == 3


def test_rd_paths_are_real_paths(small_circuits):
    for circuit in small_circuits:
        for po in circuit.outputs:
            for lp in leafdag_rd_paths(circuit, po):
                lp.path.validate(circuit)
                assert lp.path.sink(circuit) == po


def test_leafdag_consistent_with_assignment_optimum(small_circuits):
    """Soundness cross-check: the leaf-dag RD count can never exceed the
    maximum RD-set size |LP(C)| - min_sigma |LP(sigma)| per cone."""
    for circuit in small_circuits:
        for po in circuit.outputs:
            cone, _ = circuit.extract_cone(po)
            optimum_selected = len(
                minimize_assignment(cone, cone.outputs[0], method="exact")
            )
            cone_total = count_paths(cone).total_logical
            max_rd = cone_total - optimum_selected
            rd = leafdag_rd_paths(circuit, po)
            assert len(rd) <= max_rd, (
                f"{circuit.name}/{circuit.gate_name(po)}: leaf-dag found "
                f"{len(rd)} RD paths but the optimum admits only {max_rd}"
            )


def test_mux_has_no_single_fault_rd(mux):
    assert leafdag_rd_paths(mux, mux.outputs[0]) == set()


def test_duplicate_logic_not_jointly_removed():
    """out = OR(f, f) (duplicated cone): each rising path is individually
    RD but they are not jointly removable; uniform-polarity multiple
    fault checking must keep at least one rising path."""
    from repro.circuit.builder import CircuitBuilder

    b = CircuitBuilder("dup")
    a, c = b.pi("a"), b.pi("c")
    f1 = b.and_(a, c, name="f1")
    f2 = b.and_(a, c, name="f2")
    out = b.or_(f1, f2, name="out_or")
    b.po(out, "out")
    circuit = b.build()
    rd = leafdag_rd_paths(circuit, circuit.outputs[0])
    rising_rd = {lp for lp in rd if lp.final_value == 1}
    all_rising = {
        lp
        for lp in enumerate_logical_paths(circuit)
        if lp.final_value == 1
    }
    assert rising_rd != all_rising, (
        "all rising paths declared RD — unsound for the duplicated cone"
    )
