"""Property-based tests for path selection and the scan expansion."""

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.strategies import small_circuits


@settings(max_examples=25, deadline=None)
@given(circuit=small_circuits(max_gates=10), data=st.data())
def test_threshold_selection_is_exact_cut(circuit, data):
    from repro.paths.enumerate import enumerate_logical_paths
    from repro.selection.strategies import select_by_threshold
    from repro.timing.delays import random_delays
    from repro.timing.pathdelay import logical_path_delay

    delays = random_delays(circuit, seed=data.draw(st.integers(0, 100)))
    every = list(enumerate_logical_paths(circuit))
    threshold = data.draw(
        st.floats(0.0, 1.0)
    ) * max(logical_path_delay(circuit, lp, delays) for lp in every)
    sel = select_by_threshold(circuit, delays, threshold, lambda lp: True)
    chosen = set(sel.selected)
    for lp in every:
        slow = logical_path_delay(circuit, lp, delays) >= threshold
        assert (lp in chosen) == slow


@settings(max_examples=25, deadline=None)
@given(circuit=small_circuits(max_gates=10), data=st.data())
def test_lazy_threshold_equals_eager(circuit, data):
    from repro.selection.strategies import (
        select_by_threshold,
        select_by_threshold_lazy,
    )
    from repro.timing.delays import random_delays
    from repro.timing.sta import static_timing

    delays = random_delays(circuit, seed=data.draw(st.integers(0, 100)))
    fraction = data.draw(st.floats(0.1, 1.0))
    threshold = fraction * static_timing(circuit, delays).critical_delay
    eager = select_by_threshold(circuit, delays, threshold, lambda lp: True)
    lazy = select_by_threshold_lazy(
        circuit, delays, threshold, lambda lp: True
    )
    assert set(lazy.selected) == set(eager.selected)


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_scan_next_state_matches_manual_simulation(data):
    """The ScanCircuit next_state hook equals hand-wiring the core."""
    from repro.circuit.sequential import S27_LIKE, parse_sequential_bench
    from repro.logic.simulate import simulate

    scan = parse_sequential_bench(S27_LIKE)
    vector = tuple(
        data.draw(st.integers(0, 1)) for _ in scan.core.inputs
    )
    values = simulate(scan.core, vector)
    expected = tuple(
        values[po] for _pi, po in scan.flipflops.values()
    )
    assert scan.next_state(vector) == expected
