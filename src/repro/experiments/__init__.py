"""Experiment harness regenerating every table and figure of the paper.

Multi-circuit runs are supervised (per-task timeouts, retry with pool
respawn, in-process degradation) and checkpointable — see
:mod:`repro.experiments.supervisor`.
"""

from repro.experiments.harness import Table1Row, run_table1_row, run_table3_row
from repro.experiments.supervisor import (
    Checkpoint,
    RowFailure,
    TaskRunner,
    default_task_budget,
)
from repro.experiments import table1, table2, table3, figures

__all__ = [
    "Table1Row",
    "run_table1_row",
    "run_table3_row",
    "Checkpoint",
    "RowFailure",
    "TaskRunner",
    "default_task_budget",
    "table1",
    "table2",
    "table3",
    "figures",
]
