"""Unit tests for static timing analysis."""

import pytest

from repro.paths.enumerate import enumerate_logical_paths
from repro.timing.delays import random_delays, unit_delays
from repro.timing.pathdelay import logical_path_delay
from repro.timing.sta import static_timing


class TestAgainstEnumeration:
    def test_critical_delay_matches_max_path(self, small_circuits):
        for circuit in small_circuits:
            for seed in range(4):
                delays = random_delays(circuit, seed=seed)
                report = static_timing(circuit, delays)
                expected = max(
                    logical_path_delay(circuit, lp, delays)
                    for lp in enumerate_logical_paths(circuit)
                )
                assert report.critical_delay == pytest.approx(expected), (
                    f"{circuit.name} seed {seed}"
                )

    def test_po_arrival_matches_per_po_max(self, small_circuits):
        for circuit in small_circuits:
            delays = random_delays(circuit, seed=7)
            report = static_timing(circuit, delays)
            for po in circuit.outputs:
                expected = max(
                    logical_path_delay(circuit, lp, delays)
                    for lp in enumerate_logical_paths(circuit)
                    if lp.path.sink(circuit) == po
                )
                assert report.po_arrival(po) == pytest.approx(expected)

    def test_directional_arrivals_bound_paths(self, small_circuits):
        """Every logical path's delay is <= the arrival of its PO in the
        path's final direction."""
        for circuit in small_circuits:
            delays = random_delays(circuit, seed=3)
            report = static_timing(circuit, delays)
            for lp in enumerate_logical_paths(circuit):
                po = lp.path.sink(circuit)
                direction = lp.output_value(circuit)
                assert logical_path_delay(circuit, lp, delays) <= (
                    report.arrival[po][direction] + 1e-9
                )


class TestCriticalPath:
    def test_critical_path_realises_critical_delay(self, small_circuits):
        for circuit in small_circuits:
            for seed in range(3):
                delays = random_delays(circuit, seed=seed)
                report = static_timing(circuit, delays)
                lp = report.critical_path()
                lp.path.validate(circuit)
                assert logical_path_delay(circuit, lp, delays) == (
                    pytest.approx(report.critical_delay)
                )

    def test_unit_delay_critical_is_depth(self, example_circuit):
        report = static_timing(example_circuit, unit_delays(example_circuit))
        assert report.critical_delay == 3.0  # AND -> OR -> PO
        assert len(report.critical_path().path) == 3


def test_mismatched_delays_rejected(example_circuit, mux):
    with pytest.raises(ValueError):
        static_timing(example_circuit, unit_delays(mux))
