"""Unit tests for the trail-based implication engine."""

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.circuit.examples import paper_example_circuit, two_and_tree
from repro.logic.implication import ImplicationEngine
from repro.logic.values import X


@pytest.fixture
def engine(example_circuit):
    return ImplicationEngine(example_circuit)


class TestBasicAssume:
    def test_assign_and_read(self, example_circuit, engine):
        a = example_circuit.gate_by_name("a")
        assert engine.assume(a, 1)
        assert engine.value(a) == 1

    def test_conflict_on_reassign(self, example_circuit, engine):
        a = example_circuit.gate_by_name("a")
        assert engine.assume(a, 1)
        assert not engine.assume(a, 0)
        assert engine.assume(a, 1)  # same value is consistent

    def test_requires_frozen_circuit(self):
        from repro.circuit.netlist import Circuit, CircuitError
        from repro.circuit.gates import GateType

        c = Circuit("t")
        c.add_gate(GateType.PI, "a")
        with pytest.raises(CircuitError):
            ImplicationEngine(c)


class TestForwardImplication:
    def test_controlling_input_forces_output(self, example_circuit, engine):
        c = example_circuit.gate_by_name("c")
        g_and = example_circuit.gate_by_name("g_and")
        assert engine.assume(c, 0)
        assert engine.value(g_and) == 0  # AND with a 0 input

    def test_all_nc_forces_output(self, example_circuit, engine):
        b = example_circuit.gate_by_name("b")
        c = example_circuit.gate_by_name("c")
        g_and = example_circuit.gate_by_name("g_and")
        assert engine.assume(b, 1)
        assert engine.value(g_and) == X
        assert engine.assume(c, 1)
        assert engine.value(g_and) == 1

    def test_propagates_to_po(self, example_circuit, engine):
        a = example_circuit.gate_by_name("a")
        out = example_circuit.outputs[0]
        assert engine.assume(a, 1)
        assert engine.value(out) == 1


class TestBackwardImplication:
    def test_uncontrolled_output_forces_all_inputs(self, example_circuit, engine):
        g_or = example_circuit.gate_by_name("g_or")
        assert engine.assume(g_or, 0)
        for name in ("a", "c", "g_and"):
            assert engine.value(example_circuit.gate_by_name(name)) == 0

    def test_last_input_justification(self, example_circuit, engine):
        g_and = example_circuit.gate_by_name("g_and")
        b = example_circuit.gate_by_name("b")
        c = example_circuit.gate_by_name("c")
        assert engine.assume(g_and, 0)
        assert engine.value(c) == X  # two candidates: no implication yet
        assert engine.assume(b, 1)
        assert engine.value(c) == 0  # last unassigned input must control

    def test_not_gate_bidirectional(self):
        b = CircuitBuilder("t")
        a = b.pi("a")
        n = b.not_(a, "n")
        b.po(n, "out")
        circuit = b.build()
        engine = ImplicationEngine(circuit)
        assert engine.assume(circuit.gate_by_name("n"), 1)
        assert engine.value(a) == 0

    def test_deep_backward_chain(self, and_tree):
        engine = ImplicationEngine(and_tree)
        root = and_tree.gate_by_name("root")
        assert engine.assume(root, 1)  # AND=1 forces every leaf to 1
        for name in "abcd":
            assert engine.value(and_tree.gate_by_name(name)) == 1


class TestConflictDetection:
    def test_reconvergent_conflict(self, example_circuit, engine):
        # g_or = 0 forces c = 0; then g_and = 1 needs c = 1: conflict.
        g_or = example_circuit.gate_by_name("g_or")
        g_and = example_circuit.gate_by_name("g_and")
        assert engine.assume(g_or, 0)
        assert not engine.assume(g_and, 1)

    def test_conflict_preserves_trail_for_undo(self, example_circuit, engine):
        mark = engine.mark()
        g_or = example_circuit.gate_by_name("g_or")
        engine.assume(g_or, 0)
        engine.assume(example_circuit.gate_by_name("g_and"), 1)
        engine.undo_to(mark)
        assert engine.num_assigned() == 0
        for g in range(example_circuit.num_gates):
            assert engine.value(g) == X


class TestTrail:
    def test_mark_undo_nesting(self, example_circuit, engine):
        a = example_circuit.gate_by_name("a")
        c = example_circuit.gate_by_name("c")
        m0 = engine.mark()
        engine.assume(a, 0)
        m1 = engine.mark()
        engine.assume(c, 1)
        engine.undo_to(m1)
        assert engine.value(a) == 0
        assert engine.value(c) == X
        engine.undo_to(m0)
        assert engine.value(a) == X

    def test_reset(self, example_circuit, engine):
        engine.assume(example_circuit.gate_by_name("a"), 1)
        engine.reset()
        assert engine.num_assigned() == 0

    def test_assignment_snapshot(self, example_circuit, engine):
        a = example_circuit.gate_by_name("a")
        engine.assume(a, 1)
        snapshot = engine.assignment()
        assert snapshot[a] == 1

    def test_assume_all(self, example_circuit, engine):
        a = example_circuit.gate_by_name("a")
        c = example_circuit.gate_by_name("c")
        assert engine.assume_all([(a, 1), (c, 0)])
        assert engine.value(a) == 1 and engine.value(c) == 0
        assert not engine.assume_all([(a, 1), (a, 0)])


class TestSoundness:
    def test_implications_never_exclude_real_solutions(self, small_circuits):
        """If the engine says 'consistent', there must exist no *proof*
        requirement; but if it says 'conflict', truly no input vector
        satisfies the assumption set.  Verified by brute force."""
        from itertools import product

        from repro.logic.simulate import all_vectors, simulate

        for circuit in small_circuits:
            n = len(circuit.inputs)
            gate_ids = list(range(circuit.num_gates))
            # try all (gate, value) pairs and pairs of pairs
            singles = [((g, v),) for g in gate_ids for v in (0, 1)]
            import random

            rng = random.Random(0)
            doubles = [
                tuple(rng.sample(singles, 2)[0] + rng.sample(singles, 2)[1])
                for _ in range(30)
            ]
            for assumption in singles + doubles:
                engine = ImplicationEngine(circuit)
                ok = engine.assume_all(list(assumption))
                satisfiable = any(
                    all(
                        simulate(circuit, vec)[g] == v
                        for g, v in assumption
                    )
                    for vec in all_vectors(n)
                )
                if not ok:
                    assert not satisfiable, (
                        f"{circuit.name}: engine reported conflict for "
                        f"satisfiable assumptions {assumption}"
                    )
