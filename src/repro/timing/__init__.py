"""Timing substrate: delay assignments and event-driven simulation.

Models a *manufactured implementation* ``C_m`` of a circuit (Section II:
same gate-level structure, arbitrary gate delays) and measures output
settle times — the empirical side of Definition 1 and Theorem 1.
"""

from repro.timing.delays import DelayAssignment, random_delays, unit_delays
from repro.timing.pathdelay import logical_path_delay, max_system_delay
from repro.timing.eventsim import EventSimulator, settle_time
from repro.timing.sta import TimingReport, static_timing
from repro.timing.kpaths import (
    iter_paths_by_delay,
    k_longest_paths,
    paths_above_threshold,
)
from repro.timing.annotate import (
    delays_digest,
    materialize_delays,
    parse_delay_annotations,
    parse_delay_lines,
    parse_delays_file,
    sidecar_path,
    write_delay_annotations,
)

__all__ = [
    "DelayAssignment",
    "delays_digest",
    "materialize_delays",
    "parse_delay_annotations",
    "parse_delay_lines",
    "parse_delays_file",
    "sidecar_path",
    "write_delay_annotations",
    "random_delays",
    "unit_delays",
    "logical_path_delay",
    "max_system_delay",
    "EventSimulator",
    "settle_time",
    "TimingReport",
    "static_timing",
    "iter_paths_by_delay",
    "k_longest_paths",
    "paths_above_threshold",
]
