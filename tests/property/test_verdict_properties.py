"""Containment and differential properties of the SAT-exact oracle.

Lemma 2 makes the word-parallel classifier a *superset* oracle: its
accept set ``LP^sup`` contains the true criterion set, never the other
way around.  Three properties pin that down on random circuits and on
``ScanCircuit`` combinational cores:

* **exact containment** — every path the SAT oracle confirms is also
  accepted by the classifier (the classifier never wrongly rejects);
  the reverse direction is exactly the Lemma-2 gap the tightness
  tables measure, so it is *not* asserted.
* **differential** — the SAT verdict equals ``exact.exists_vector``
  on every path (both are exact; they must agree bit for bit).
* **certificates** — every SAT verdict carries a witness that replays
  through the concrete simulator.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.sequential import S27_LIKE, parse_sequential_bench
from repro.classify.conditions import Criterion
from repro.classify.engine import check_logical_path
from repro.classify.exact import exists_vector, satisfies_criterion
from repro.paths.enumerate import enumerate_logical_paths
from repro.sorting import heuristic2_sort, pin_order_sort
from repro.verdict import VerdictOracle

from tests.strategies import small_circuits

_CRITERIA = [Criterion.FS, Criterion.NR, Criterion.SIGMA_PI]
_GATES = ["AND", "OR", "NAND", "NOR"]


@st.composite
def sequential_benches(draw) -> str:
    """Little scan designs: real feedback through 1-2 flip-flops."""
    num_pi = draw(st.integers(2, 3))
    num_ff = draw(st.integers(1, 2))
    num_gates = draw(st.integers(2, 6))
    signals = [f"x{i}" for i in range(num_pi)] + [
        f"q{j}" for j in range(num_ff)
    ]
    lines = [f"INPUT(x{i})" for i in range(num_pi)]
    gate_names = []
    for g in range(num_gates):
        gtype = draw(st.sampled_from(_GATES))
        a, b = draw(
            st.lists(
                st.sampled_from(signals), min_size=2, max_size=2, unique=True
            )
        )
        name = f"g{g}"
        lines.append(f"{name} = {gtype}({a}, {b})")
        signals.append(name)
        gate_names.append(name)
    for j in range(num_ff):
        src = draw(st.sampled_from(gate_names))
        lines.append(f"q{j} = DFF({src})")
    lines.append(f"OUTPUT({gate_names[-1]})")
    return "\n".join(lines)


def _check_all_properties(circuit, criterion, sort):
    oracle = VerdictOracle(circuit)
    for lp in enumerate_logical_paths(circuit, limit=400):
        verdict = oracle.decide(lp, criterion, sort)
        # exact subset of approximate: SAT-confirmed => classifier-accepted
        if verdict.in_set:
            assert check_logical_path(circuit, criterion, lp, sort), lp
            assert verdict.witness is not None
            assert satisfies_criterion(
                circuit, criterion, lp, verdict.witness, sort
            ), lp
        # and the SAT verdict is the brute-force truth
        assert verdict.in_set == exists_vector(circuit, criterion, lp, sort)
        # contrapositive of containment: classifier-rejected => refuted
        if not check_logical_path(circuit, criterion, lp, sort):
            assert not verdict.in_set, lp


@settings(max_examples=25, deadline=None)
@given(circuit=small_circuits(max_gates=10), data=st.data())
def test_random_circuits_containment_and_differential(circuit, data):
    criterion = data.draw(st.sampled_from(_CRITERIA))
    if criterion is Criterion.SIGMA_PI:
        sort = data.draw(
            st.sampled_from([pin_order_sort, heuristic2_sort])
        )(circuit)
    else:
        sort = None
    _check_all_properties(circuit, criterion, sort)


@settings(max_examples=20, deadline=None)
@given(bench=sequential_benches(), data=st.data())
def test_scan_cores_containment_and_differential(bench, data):
    """The same properties on ScanCircuit cores: flip-flop outputs are
    pseudo-PIs, so paths launch from state bits as the scan model
    requires."""
    core = parse_sequential_bench(bench).core
    criterion = data.draw(st.sampled_from(_CRITERIA))
    sort = (
        heuristic2_sort(core) if criterion is Criterion.SIGMA_PI else None
    )
    _check_all_properties(core, criterion, sort)


def test_s27_core_all_criteria_and_sorts():
    """Deterministic anchor: the shipped s27-like scan design."""
    core = parse_sequential_bench(S27_LIKE).core
    for criterion in _CRITERIA:
        sorts = (
            [pin_order_sort(core), heuristic2_sort(core)]
            if criterion is Criterion.SIGMA_PI
            else [None]
        )
        for sort in sorts:
            _check_all_properties(core, criterion, sort)
