"""The daemon's ``tightness`` op: exact verdicts over the wire."""

import pytest

from repro.circuit.examples import paper_example_circuit
from repro.errors import RemoteError
from repro.obs import reset_registry
from repro.service.client import ServiceClient

from tests.service.test_server import _unix_server, harness  # noqa: F401


@pytest.fixture(autouse=True)
def clean_registry():
    reset_registry()
    yield
    reset_registry()


class TestTightnessOp:
    def test_suite_circuit_round_trip(self, harness):  # noqa: F811
        h = _unix_server(harness, store=str(harness.tmp_path / "s.sqlite"))
        events = []
        with ServiceClient.connect(h.address) as client:
            row = client.tightness(
                circuit="c17", on_event=lambda e: events.append(e)
            )
        assert row["circuit"] == "c17"
        assert row["criterion"] == "SIGMA_PI"
        assert row["total_logical"] == 22
        assert row["exact_accepted"] <= row["approx_accepted"]
        assert row["exact_rd_percent"] >= row["approx_rd_percent"]
        assert row["witness_replays"] == row["exact_accepted"]
        assert row["fingerprint"].startswith("rdfp1:")
        starts = [e for e in events if e.get("event") == "start"]
        assert len(starts) == 1
        assert starts[0]["fingerprint"] == row["fingerprint"]

    def test_in_memory_circuit_serialized_via_bench(self, harness):  # noqa: F811
        h = _unix_server(harness)
        circuit = paper_example_circuit()
        with ServiceClient.connect(h.address) as client:
            row = client.tightness(circuit=circuit, criterion="nr")
        assert row["criterion"] == "NR"
        assert row["total_logical"] == 8
        # the paper's NR example: some paths refuted even exactly
        assert row["exact_accepted"] < row["total_logical"]

    def test_warm_store_serves_second_request(self, harness):  # noqa: F811
        h = _unix_server(harness, store=str(harness.tmp_path / "s.sqlite"))
        with ServiceClient.connect(h.address) as client:
            cold = client.tightness(circuit="c17")
            warm = client.tightness(circuit="c17")
        assert cold["source"] == "computed"
        assert warm["source"] == "store"
        for key in ("total_logical", "approx_accepted", "exact_accepted"):
            assert cold[key] == warm[key]

    def test_max_accepted_overflow_is_structured_error(self, harness):  # noqa: F811
        h = _unix_server(harness)
        with ServiceClient.connect(h.address) as client:
            with pytest.raises(RemoteError) as excinfo:
                client.tightness(circuit="apex-a", max_accepted=10)
        assert excinfo.value.error_type == "ClassifyError"

    def test_invalid_sort_rejected(self, harness):  # noqa: F811
        h = _unix_server(harness)
        with ServiceClient.connect(h.address) as client:
            with pytest.raises(RemoteError) as excinfo:
                client.tightness(circuit="c17", sort="nope")
        assert excinfo.value.error_type == "ProtocolError"

    def test_op_counted_in_metrics(self, harness):  # noqa: F811
        h = _unix_server(harness)
        with ServiceClient.connect(h.address) as client:
            client.tightness(circuit="c17")
            counters = client.metrics()["metrics"]["counters"]
        assert counters["service.op.tightness"] == 1
        assert counters["verdict.queries"] >= 22
        assert counters["verdict.witness_replays"] >= 1
