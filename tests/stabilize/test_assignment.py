"""Unit tests for complete stabilizing assignments (Theorem 1 machinery)."""

import pytest

from repro.logic.simulate import all_vectors
from repro.paths.enumerate import enumerate_logical_paths
from repro.sorting.input_sort import InputSort
from repro.stabilize.assignment import (
    assignment_from_policy,
    assignment_from_sort,
)


class TestAssignmentFromPolicy:
    def test_covers_all_vectors_and_pos(self, example_circuit):
        sigma = assignment_from_policy(example_circuit)
        assert len(sigma.systems) == 8  # 2^3 vectors x 1 PO

    def test_logical_paths_union(self, example_circuit):
        sigma = assignment_from_policy(example_circuit)
        paths = sigma.logical_paths()
        every = set(enumerate_logical_paths(example_circuit))
        assert paths <= every
        assert len(paths) >= 1

    def test_rd_paths_complement(self, example_circuit):
        sigma = assignment_from_policy(example_circuit)
        every = set(enumerate_logical_paths(example_circuit))
        assert sigma.logical_paths() | sigma.rd_paths() == every
        assert sigma.logical_paths() & sigma.rd_paths() == set()

    def test_verify_randomized(self, example_circuit):
        assert assignment_from_policy(example_circuit).verify()

    def test_too_many_inputs_refused(self):
        from repro.gen.parity import parity_tree

        with pytest.raises(ValueError):
            assignment_from_policy(parity_tree(24))

    def test_multi_output_circuit(self, small_circuits):
        for circuit in small_circuits:
            sigma = assignment_from_policy(circuit)
            expected = (1 << len(circuit.inputs)) * len(circuit.outputs)
            assert len(sigma.systems) == expected


class TestAssignmentFromSort:
    def test_pin_order_sigma_pi(self, example_circuit):
        sigma = assignment_from_sort(
            example_circuit, InputSort.pin_order(example_circuit)
        )
        # Pin order prefers 'a' at the OR (pin 0) and 'b' at the AND:
        # selects all 8 paths (b's paths included via v=000).
        assert len(sigma.logical_paths()) == 8

    def test_sigma_pi_respects_min_rank(self, example_circuit):
        # Sort preferring c at the AND yields the 5-path optimum
        # (Example 3 of the paper).
        from repro.experiments.figures import example3_sort

        sigma = assignment_from_sort(
            example_circuit, example3_sort(example_circuit)
        )
        assert len(sigma.logical_paths()) == 5

    def test_system_lookup(self, example_circuit):
        sigma = assignment_from_sort(
            example_circuit, InputSort.pin_order(example_circuit)
        )
        po = example_circuit.outputs[0]
        for vector in all_vectors(3):
            system = sigma.system(po, vector)
            assert system.vector == vector
