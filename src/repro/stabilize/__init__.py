"""Stabilizing systems (Section III of the paper)."""

from repro.stabilize.system import (
    StabilizingSystem,
    compute_stabilizing_system,
    all_stabilizing_systems,
)
from repro.stabilize.assignment import (
    CompleteStabilizingAssignment,
    assignment_from_policy,
    assignment_from_sort,
)

__all__ = [
    "StabilizingSystem",
    "compute_stabilizing_system",
    "all_stabilizing_systems",
    "CompleteStabilizingAssignment",
    "assignment_from_policy",
    "assignment_from_sort",
]
