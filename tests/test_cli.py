"""End-to-end tests of the CLI."""

import pytest

from repro.cli import build_parser, load_circuit, main


class TestLoadCircuit:
    def test_suite_name(self):
        assert load_circuit("s432-rand").name == "s432-rand"

    def test_bench_file(self, tmp_path):
        path = tmp_path / "c.bench"
        path.write_text("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
        circuit = load_circuit(str(path))
        assert circuit.name == "c"

    def test_pla_file(self, tmp_path):
        path = tmp_path / "c.pla"
        path.write_text(".i 2\n.o 1\n11 1\n.e\n")
        circuit = load_circuit(str(path))
        assert len(circuit.inputs) == 2

    def test_unknown(self):
        with pytest.raises(KeyError):
            load_circuit("never-heard-of-it")


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "s499-ecc" in out

    def test_info(self, capsys):
        assert main(["info", "s432-rand"]) == 0
        out = capsys.readouterr().out
        assert "logical paths" in out

    def test_classify_fs(self, capsys, tmp_path):
        path = tmp_path / "c.bench"
        path.write_text(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n"
            "m = AND(b, c)\ny = OR(a, m, c)\n"
        )
        assert main(["classify", str(path), "--criterion", "fs"]) == 0
        out = capsys.readouterr().out
        assert "FS" in out

    def test_classify_sigma_sorts(self, capsys, tmp_path):
        path = tmp_path / "c.bench"
        path.write_text(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n"
            "m = AND(b, c)\ny = OR(a, m, c)\n"
        )
        for sort in ("pin", "heu1", "heu2", "heu2inv", "random"):
            assert main(["classify", str(path), "--sort", sort]) == 0
        out = capsys.readouterr().out
        assert "SIGMA_PI" in out

    def test_baseline(self, capsys, tmp_path):
        path = tmp_path / "c.bench"
        path.write_text(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n"
            "m = AND(b, c)\ny = OR(a, m, c)\n"
        )
        assert main(["baseline", str(path), "--method", "exact"]) == 0
        out = capsys.readouterr().out
        assert "37.50% RD" in out

    def test_testgen(self, capsys, tmp_path):
        path = tmp_path / "c.bench"
        path.write_text(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n"
            "m = AND(b, c)\ny = OR(a, m, c)\n"
        )
        assert main(["testgen", str(path)]) == 0
        out = capsys.readouterr().out
        assert "robust tests" in out
        assert "<" in out  # at least one two-pattern test printed

    def test_select(self, capsys, tmp_path):
        path = tmp_path / "c.bench"
        path.write_text(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n"
            "m = AND(b, c)\ny = OR(a, m, c)\n"
        )
        assert main(["select", str(path), "--fraction", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "RD filtering" in out

    def test_sta(self, capsys):
        assert main(["sta", "xcmp16", "-k", "3"]) == 0
        out = capsys.readouterr().out
        assert "critical delay" in out
        assert "slowest logical paths" in out

    def test_atpg(self, capsys, tmp_path):
        path = tmp_path / "c.bench"
        path.write_text(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n"
            "m = AND(b, c)\ny = OR(a, m, c)\n"
        )
        assert main(["atpg", str(path), "--show-redundant"]) == 0
        out = capsys.readouterr().out
        assert "patterns detect" in out
        assert "redundant:" in out

    def test_dot(self, capsys, tmp_path):
        path = tmp_path / "c.bench"
        path.write_text(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n"
            "m = AND(b, c)\ny = OR(a, m, c)\n"
        )
        assert main(["dot", str(path), "--stabilize", "111"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "color=red" in out

    def test_dot_bad_vector(self, tmp_path):
        path = tmp_path / "c.bench"
        path.write_text("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
        with pytest.raises(SystemExit):
            main(["dot", str(path), "--stabilize", "10"])

    def test_table1_json_flag_parses(self):
        parser = build_parser()
        args = parser.parse_args(["table1", "--json"])
        assert args.json

    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out

    def test_parser_help_lists_subcommands(self):
        parser = build_parser()
        text = parser.format_help()
        for cmd in ("info", "classify", "baseline", "table1"):
            assert cmd in text


class TestSupervisionFlags:
    @pytest.mark.parametrize("bad", ["0", "-1", "-8"])
    def test_nonpositive_jobs_rejected_by_argparse(self, bad, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["table1", "--jobs", bad])
        assert excinfo.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    def test_non_integer_jobs_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--jobs", "two"])
        assert "invalid" in capsys.readouterr().err

    @pytest.mark.parametrize("table", ["table1", "table2", "table3"])
    def test_supervision_flags_parse(self, table):
        args = build_parser().parse_args(
            [
                table,
                "--jobs", "4",
                "--checkpoint", "rows.jsonl",
                "--resume",
                "--task-timeout", "90",
                "--max-retries", "5",
            ]
        )
        assert args.jobs == 4
        assert args.checkpoint == "rows.jsonl"
        assert args.resume
        assert args.task_timeout == 90.0
        assert args.max_retries == 5

    def test_resume_requires_checkpoint(self):
        with pytest.raises(SystemExit):
            main(["table1", "--resume"])

    def test_keyboard_interrupt_exits_130(self, monkeypatch, capsys):
        import repro.experiments.table1 as table1_mod

        def interrupted(**_kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(table1_mod, "main", interrupted)
        assert main(["table1"]) == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "--resume" in err


class TestVersion:
    def test_version_subcommand(self, capsys):
        assert main(["version"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("repro-rd ")
        assert out.split()[1][0].isdigit()

    def test_version_flag_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro-rd " in capsys.readouterr().out

    def test_flag_and_subcommand_agree(self, capsys):
        main(["version"])
        sub = capsys.readouterr().out
        with pytest.raises(SystemExit):
            main(["--version"])
        assert capsys.readouterr().out == sub


class TestStoreFlags:
    def test_classify_store_cold_then_warm(self, capsys, tmp_path):
        store = str(tmp_path / "s.sqlite")
        assert main(["classify", "c17", "--store", store, "-v"]) == 0
        cold = capsys.readouterr().out
        assert "store=0/" in cold  # all misses
        assert main(["classify", "c17", "--store", store, "-v"]) == 0
        warm = capsys.readouterr().out
        assert "hit (100%)" in warm
        assert cold.splitlines()[0] == warm.splitlines()[0]  # same result

    def test_cache_stats_gc_clear(self, capsys, tmp_path):
        store = str(tmp_path / "s.sqlite")
        main(["classify", "c17", "--store", store])
        capsys.readouterr()
        assert main(["cache", "stats", store]) == 0
        out = capsys.readouterr().out
        assert "entries:" in out and "schema:" in out
        assert main(["cache", "gc", store]) == 0
        assert "removed 0 entries" in capsys.readouterr().out
        assert main(["cache", "clear", store]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "stats", store]) == 0
        assert "entries: 0" in capsys.readouterr().out

    def test_cache_gc_missing_store_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["cache", "gc", str(tmp_path / "absent.sqlite")])

    def test_table_store_flag_parses(self):
        for table in ("table1", "table2", "table3"):
            args = build_parser().parse_args([table, "--store", "f.sqlite"])
            assert args.store == "f.sqlite"

    def test_serve_needs_exactly_one_endpoint(self):
        with pytest.raises(SystemExit):
            main(["serve"])
        with pytest.raises(SystemExit):
            main(["serve", "--socket", "a.sock", "--port", "1"])

    def test_classify_remote_connection_refused(self, tmp_path, capsys):
        missing = str(tmp_path / "nothing.sock")
        assert main(["classify", "c17", "--remote", missing]) == 1
        assert "remote classify failed" in capsys.readouterr().err
