"""Stuck-at fault test generation and redundancy via SAT miters.

A stuck-at fault fixes the value *seen at one input pin* (a lead fault).
The miter shares PI variables between the good and the faulty circuit
copy and asserts that some PO differs; SAT ⟺ testable, UNSAT ⟺ the fault
is redundant.  Redundant stuck-at faults on leaf-dag branches are exactly
what the baseline of [1] converts into RD path sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.atpg.cnf import CNF
from repro.atpg.sat import Solver
from repro.atpg.tseitin import tseitin_encode
from repro.circuit.gates import GateType, evaluate_gate
from repro.circuit.netlist import Circuit
from repro.logic.simulate import all_vectors


@dataclass(frozen=True)
class StuckAtFault:
    """Lead ``lead`` stuck at ``value`` (0 or 1)."""

    lead: int
    value: int

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError("stuck-at value must be 0 or 1")

    def describe(self, circuit: Circuit) -> str:
        return f"{circuit.lead_name(self.lead)} s-a-{self.value}"


def simulate_with_fault(
    circuit: Circuit, vector: Sequence[int], fault: StuckAtFault
) -> list[int]:
    """Full simulation of the faulty circuit."""
    values = [0] * circuit.num_gates
    pi_value = dict(zip(circuit.inputs, vector))
    for gid in circuit.topo_order:
        gtype = circuit.gate_type(gid)
        if gtype is GateType.PI:
            values[gid] = pi_value[gid]
            continue
        ins = []
        for pin, src in enumerate(circuit.fanin(gid)):
            if circuit.lead_index(gid, pin) == fault.lead:
                ins.append(fault.value)
            else:
                ins.append(values[src])
        values[gid] = evaluate_gate(gtype, ins)
    return values


def build_miter(circuit: Circuit, fault: StuckAtFault) -> tuple:
    """(cnf, good encoding, faulty encoding): PIs shared, at least one PO
    pair forced to differ."""
    cnf = CNF()
    good = tseitin_encode(circuit, cnf)
    pi_vars = {pi: good.var(pi) for pi in circuit.inputs}
    faulty = tseitin_encode(
        circuit, cnf, share_vars=pi_vars, forced_pins={fault.lead: fault.value}
    )
    diff_vars = []
    for po in circuit.outputs:
        g, f = good.var(po), faulty.var(po)
        d = cnf.new_var()
        # d -> (g xor f)
        cnf.add_clause([-d, g, f])
        cnf.add_clause([-d, -g, -f])
        diff_vars.append(d)
    cnf.add_clause(diff_vars)
    return cnf, good, faulty


def generate_test(circuit: Circuit, fault: StuckAtFault):
    """A test vector detecting ``fault``, or None if it is redundant."""
    cnf, good, _faulty = build_miter(circuit, fault)
    result = Solver(cnf).solve()
    if not result.sat:
        return None
    return good.decode_inputs(circuit, result.model)


def is_redundant(circuit: Circuit, fault: StuckAtFault) -> bool:
    """True iff no input vector makes the fault visible at any PO."""
    return generate_test(circuit, fault) is None


def is_redundant_brute_force(circuit: Circuit, fault: StuckAtFault) -> bool:
    """Exhaustive reference oracle (testing only)."""
    from repro.logic.simulate import simulate

    n = len(circuit.inputs)
    if n > 16:
        raise ValueError("brute force refused beyond 16 PIs")
    for vector in all_vectors(n):
        good = simulate(circuit, vector)
        bad = simulate_with_fault(circuit, vector, fault)
        if any(good[po] != bad[po] for po in circuit.outputs):
            return False
    return True
