"""The metrics registry: instruments, snapshots, and the worker merge."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    format_metrics,
    get_registry,
    histogram_quantile,
)
from repro.obs.metrics import DEFAULT_BOUNDS


class TestInstruments:
    def test_counter(self):
        r = MetricsRegistry()
        c = r.counter("a.b")
        c.inc()
        c.inc(4)
        assert r.snapshot()["counters"]["a.b"] == 5

    def test_counter_identity_is_stable(self):
        r = MetricsRegistry()
        assert r.counter("x") is r.counter("x")

    def test_gauge(self):
        r = MetricsRegistry()
        g = r.gauge("level")
        g.inc()
        g.inc()
        g.dec()
        assert r.snapshot()["gauges"]["level"] == 1.0
        g.set(7.5)
        assert r.snapshot()["gauges"]["level"] == 7.5

    def test_histogram_buckets_and_stats(self):
        r = MetricsRegistry()
        h = r.histogram("lat", bounds=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            h.observe(value)
        data = r.snapshot()["histograms"]["lat"]
        assert data["count"] == 4
        assert data["buckets"] == [1, 2, 1]  # <=0.1, <=1.0, overflow
        assert data["min"] == 0.05
        assert data["max"] == 5.0
        assert data["total"] == 6.05

    def test_default_bounds(self):
        r = MetricsRegistry()
        h = r.histogram("d")
        assert h.bounds == DEFAULT_BOUNDS
        assert len(h.buckets) == len(DEFAULT_BOUNDS) + 1


class TestSnapshot:
    def test_json_safe(self):
        r = MetricsRegistry()
        r.counter("c").inc()
        r.gauge("g").set(2)
        r.histogram("h").observe(0.3)
        json.dumps(r.snapshot())  # must not raise

    def test_empty_registry(self):
        snap = MetricsRegistry().snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_reset(self):
        r = MetricsRegistry()
        r.counter("c").inc()
        r.reset()
        assert r.snapshot()["counters"] == {}


class TestMerge:
    def _worker_snapshot(self, n):
        w = MetricsRegistry()
        w.counter("engine.edges").inc(n)
        w.gauge("pool").inc(1)
        h = w.histogram("lat", bounds=(0.125, 1.0))
        h.observe(n / 16.0)  # exact binary fraction: addition is exact
        return w.snapshot()

    def test_addition(self):
        parent = MetricsRegistry()
        parent.merge(self._worker_snapshot(3))
        parent.merge(self._worker_snapshot(5))
        snap = parent.snapshot()
        assert snap["counters"]["engine.edges"] == 8
        assert snap["gauges"]["pool"] == 2
        assert snap["histograms"]["lat"]["count"] == 2

    def test_order_independent(self):
        snapshots = [self._worker_snapshot(n) for n in (1, 2, 7, 9)]
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for s in snapshots:
            forward.merge(s)
        for s in reversed(snapshots):
            backward.merge(s)
        assert forward.snapshot() == backward.snapshot()

    def test_min_max_compose(self):
        parent = MetricsRegistry()
        parent.merge(self._worker_snapshot(2))   # observes 0.125
        parent.merge(self._worker_snapshot(9))   # observes 0.5625
        data = parent.snapshot()["histograms"]["lat"]
        assert data["min"] == 0.125
        assert data["max"] == 0.5625

    def test_malformed_entries_skipped(self):
        parent = MetricsRegistry()
        parent.counter("ok").inc()
        parent.merge(
            {
                "counters": {"bad": "NaN", "ok": 2},
                "gauges": {"g": None},
                "histograms": {"h": "not-a-dict", "h2": {"bounds": 3}},
            }
        )
        snap = parent.snapshot()
        assert snap["counters"] == {"ok": 3}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}

    def test_incompatible_histogram_layout_dropped(self):
        parent = MetricsRegistry()
        parent.histogram("lat", bounds=(0.1, 1.0)).observe(0.5)
        parent.merge(
            {
                "histograms": {
                    "lat": {
                        "count": 1,
                        "total": 0.5,
                        "bounds": [0.5],
                        "buckets": [1, 0],
                    }
                }
            }
        )
        assert parent.snapshot()["histograms"]["lat"]["count"] == 1


class TestFormat:
    def test_renders_all_kinds(self):
        r = MetricsRegistry()
        r.counter("a.count").inc(3)
        r.gauge("b.level").set(2)
        r.histogram("c.seconds").observe(0.25)
        text = format_metrics(r.snapshot())
        assert "a.count" in text and "3" in text
        assert "b.level" in text
        assert "c.seconds" in text and "n=1" in text

    def test_empty(self):
        assert "no metrics" in format_metrics({})


class TestHistogramQuantile:
    def _snapshot(self, values, bounds=DEFAULT_BOUNDS):
        r = MetricsRegistry()
        h = r.histogram("lat", bounds=bounds)
        for v in values:
            h.observe(v)
        return r.snapshot()["histograms"]["lat"]

    def test_empty_histogram_is_none(self):
        assert histogram_quantile(self._snapshot([]), 0.5) is None
        assert histogram_quantile({}, 0.99) is None

    def test_q_validated(self):
        with pytest.raises(ValueError):
            histogram_quantile(self._snapshot([0.1]), 1.5)

    def test_single_observation_clamps_to_it(self):
        data = self._snapshot([0.3])
        assert histogram_quantile(data, 0.5) == pytest.approx(0.3)
        assert histogram_quantile(data, 0.99) == pytest.approx(0.3)

    def test_median_lands_in_the_right_bucket(self):
        # 100 values spread 0..1s: the p50 estimate must fall inside
        # the bucket that actually holds the 50th observation
        values = [i / 100 for i in range(1, 101)]
        p50 = histogram_quantile(self._snapshot(values), 0.5)
        assert 0.25 < p50 <= 1.0
        p99 = histogram_quantile(self._snapshot(values), 0.99)
        assert p99 >= p50

    def test_overflow_bucket_reports_observed_max(self):
        data = self._snapshot([0.01, 120.0], bounds=(0.1, 1.0))
        assert histogram_quantile(data, 0.99) == pytest.approx(120.0)

    def test_survives_json_round_trip(self):
        data = json.loads(json.dumps(self._snapshot([0.05, 0.2, 0.7])))
        assert histogram_quantile(data, 0.5) is not None


class TestGlobalRegistry:
    def test_get_registry_is_process_wide(self):
        get_registry().counter("global.probe").inc()
        assert get_registry().snapshot()["counters"]["global.probe"] == 1
