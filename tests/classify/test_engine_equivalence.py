"""Differential: bitset kernel vs the trail-based reference engine.

:mod:`repro.classify.reference` preserves the pre-bitset engine verbatim
as an oracle.  The contract is bit-for-bit: accepted counts, edge
counts, per-lead controlling counts and the DFS acceptance *order* must
all match, for every criterion, on random circuits and on a seeded
suite circuit.
"""

import pytest
from hypothesis import given, settings

from repro.circuit.examples import paper_example_circuit
from repro.classify.conditions import Criterion
from repro.classify.engine import check_logical_path, classify
from repro.classify.reference import (
    check_logical_path_reference,
    classify_reference,
)
from repro.errors import ClassifyError
from repro.gen.suite import get_circuit
from repro.sorting.heuristics import heuristic1_sort
from repro.sorting.input_sort import InputSort

from tests.strategies import small_circuits


def _sort_for(circuit, criterion):
    return InputSort.pin_order(circuit) if criterion.needs_sort else None


def _assert_identical(circuit, criterion, sort):
    new_paths = []
    old_paths = []
    new = classify(
        circuit,
        criterion,
        sort,
        collect_lead_counts=True,
        on_path=new_paths.append,
    )
    old = classify_reference(
        circuit,
        criterion,
        sort,
        collect_lead_counts=True,
        on_path=old_paths.append,
    )
    assert new.accepted == old.accepted
    assert new.edges_visited == old.edges_visited
    assert new.total_logical == old.total_logical
    assert new.lead_ctrl_counts == old.lead_ctrl_counts
    # same paths in the same DFS acceptance order, not just the same set
    assert new_paths == old_paths
    return new_paths


class TestDifferentialClassify:
    @pytest.mark.parametrize("criterion", list(Criterion))
    def test_paper_example(self, criterion):
        circuit = paper_example_circuit()
        _assert_identical(circuit, criterion, _sort_for(circuit, criterion))

    @settings(max_examples=30, deadline=None)
    @given(circuit=small_circuits())
    def test_random_fs(self, circuit):
        _assert_identical(circuit, Criterion.FS, None)

    @settings(max_examples=30, deadline=None)
    @given(circuit=small_circuits())
    def test_random_nr(self, circuit):
        _assert_identical(circuit, Criterion.NR, None)

    @settings(max_examples=30, deadline=None)
    @given(circuit=small_circuits())
    def test_random_sigma_pi_pin_order(self, circuit):
        _assert_identical(
            circuit, Criterion.SIGMA_PI, InputSort.pin_order(circuit)
        )

    @settings(max_examples=15, deadline=None)
    @given(circuit=small_circuits())
    def test_random_sigma_pi_heuristic1(self, circuit):
        _assert_identical(
            circuit, Criterion.SIGMA_PI, heuristic1_sort(circuit)
        )

    @pytest.mark.parametrize("criterion", list(Criterion))
    def test_seeded_suite_circuit(self, criterion):
        circuit = get_circuit("s432-rand")
        sort = _sort_for(circuit, criterion)
        new = classify(circuit, criterion, sort, collect_lead_counts=True)
        old = classify_reference(
            circuit, criterion, sort, collect_lead_counts=True
        )
        assert new.accepted == old.accepted
        assert new.edges_visited == old.edges_visited
        assert new.lead_ctrl_counts == old.lead_ctrl_counts


class TestDifferentialPathCheck:
    @settings(max_examples=25, deadline=None)
    @given(circuit=small_circuits())
    def test_accepted_paths_check_true_both_engines(self, circuit):
        for criterion in Criterion:
            sort = _sort_for(circuit, criterion)
            paths = []
            classify(circuit, criterion, sort, on_path=paths.append)
            for lp in paths:
                assert check_logical_path(circuit, criterion, lp, sort)
                assert check_logical_path_reference(
                    circuit, criterion, lp, sort
                )

    @settings(max_examples=25, deadline=None)
    @given(circuit=small_circuits())
    def test_rejected_paths_agree(self, circuit):
        # every logical path, accepted or not, gets the same verdict
        from repro.paths.enumerate import enumerate_logical_paths

        for criterion in Criterion:
            sort = _sort_for(circuit, criterion)
            for lp in enumerate_logical_paths(circuit):
                assert check_logical_path(
                    circuit, criterion, lp, sort
                ) == check_logical_path_reference(circuit, criterion, lp, sort)


class TestAbortParity:
    def test_max_accepted_abort_matches(self):
        circuit = get_circuit("c17")
        total = classify(circuit, Criterion.FS).accepted
        assert total > 1
        with pytest.raises(ClassifyError):
            classify(circuit, Criterion.FS, max_accepted=total - 1)
        with pytest.raises(ClassifyError):
            classify_reference(circuit, Criterion.FS, max_accepted=total - 1)

    def test_max_accepted_exact_budget_passes(self):
        circuit = get_circuit("c17")
        total = classify(circuit, Criterion.FS).accepted
        result = classify(circuit, Criterion.FS, max_accepted=total)
        assert result.accepted == total

    def test_abort_edge_counts_match(self):
        circuit = get_circuit("c17")
        total = classify(circuit, Criterion.FS).accepted
        new_edges = old_edges = None
        try:
            classify(circuit, Criterion.FS, max_accepted=total // 2)
        except ClassifyError as exc:
            new_edges = str(exc)
        try:
            classify_reference(
                circuit, Criterion.FS, max_accepted=total // 2
            )
        except ClassifyError as exc:
            old_edges = str(exc)
        assert new_edges is not None and old_edges is not None
