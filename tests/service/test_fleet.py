"""The service fleet end to end: fingerprint routing, single-flight
coalescing, admission control, deadline propagation, merged telemetry.
(Worker-crash and wedge scenarios live in tests/chaos/test_fleet.py.)"""

import threading

import pytest

from repro.errors import RemoteError
from repro.gen.suite import get_circuit
from repro.obs import get_registry
from repro.service.client import RetryPolicy, ServiceClient
from repro.store.fingerprint import canonical_form

from tests.service.fleet_harness import FleetHarness, stable_result


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    harness = FleetHarness(
        workers=2, health_interval=0.2, backoff_base=0.05
    )
    harness.start(
        str(tmp_path_factory.mktemp("fleet") / "fleet.sock")
    )
    yield harness
    harness.stop()


def connect(harness):
    return ServiceClient.connect(harness.address, retry=RetryPolicy())


class TestBasics:
    def test_ping_identifies_fleet(self, fleet):
        with connect(fleet) as client:
            result = client.ping()
        assert result["server"] == "repro-rd-fleet"
        assert result["workers"] == 2

    def test_classify_answers_like_the_plain_daemon(self, fleet):
        with connect(fleet) as client:
            result = client.classify(circuit="c17")
        assert result["name"] == "c17"
        assert result["total_logical"] == 22
        assert result["coalesced"] is False
        assert result["worker"] in (0, 1)

    def test_routing_matches_the_hash_ring(self, fleet):
        """Every circuit lands on the shard its fingerprint hashes to —
        and therefore always on the *same* shard."""
        with connect(fleet) as client:
            for name in ("c17", "s499-ecc", "xcmp16", "xprienc16"):
                fingerprint = canonical_form(get_circuit(name)).fingerprint
                expected = fleet.server.ring.route(fingerprint)
                result = client.classify(circuit=name, criterion="fs")
                assert result["worker"] == expected
                assert result["fingerprint"] == fingerprint

    def test_bad_input_fails_fast_at_the_frontend(self, fleet):
        with connect(fleet) as client:
            with pytest.raises(RemoteError) as exc_info:
                client.classify(circuit="no-such-circuit")
            assert exc_info.value.error_type == "CircuitError"
            with pytest.raises(RemoteError) as exc_info:
                client.classify(bench="y = AND(a b\n")
            assert exc_info.value.error_type == "BenchParseError"
            # the connection survives both
            assert client.ping()["server"] == "repro-rd-fleet"

    def test_start_event_carries_worker_and_shrunk_deadline(self, fleet):
        events = []
        with connect(fleet) as client:
            result = client.classify(
                circuit="c17", deadline=30.0, on_event=events.append
            )
        assert result["total_logical"] == 22
        assert [e["event"] for e in events] == ["start"]
        assert events[0]["worker"] == result["worker"]
        # the front-end forwarded the *remaining* budget
        assert 0 < events[0]["deadline"] <= 30.0

    def test_exhausted_deadline_is_a_structured_timeout(self, fleet):
        with connect(fleet) as client:
            with pytest.raises(RemoteError) as exc_info:
                client.classify(circuit="c17", deadline=1e-9)
        assert exc_info.value.error_type == "TaskTimeout"


class TestCoalescing:
    def test_concurrent_identical_requests_share_one_computation(
        self, fleet
    ):
        registry = get_registry()
        hits_before = registry.counter("fleet.coalesce_hits").value
        leaders_before = registry.counter("fleet.coalesce_leaders").value
        count = 4
        barrier = threading.Barrier(count)
        results: list = [None] * count

        def worker(i):
            with connect(fleet) as client:
                barrier.wait()
                results[i] = client.classify(circuit="s499-ecc")

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(count)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(120)
        assert all(r is not None for r in results)
        coalesced = [r for r in results if r["coalesced"]]
        assert len(coalesced) == count - 1
        # byte-identical answers once run-varying keys are stripped
        stable = {str(sorted(stable_result(r).items())) for r in results}
        assert len(stable) == 1
        assert (
            registry.counter("fleet.coalesce_hits").value - hits_before
            == count - 1
        )
        assert (
            registry.counter("fleet.coalesce_leaders").value - leaders_before
            == 1
        )

    def test_different_params_do_not_coalesce(self, fleet):
        registry = get_registry()
        hits_before = registry.counter("fleet.coalesce_hits").value
        barrier = threading.Barrier(2)
        results: list = [None] * 2

        def worker(i):
            with connect(fleet) as client:
                barrier.wait()
                results[i] = client.classify(
                    circuit="c17", criterion=["fs", "nr"][i]
                )

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert {r["criterion"] for r in results} == {"FS", "NR"}
        assert all(r["coalesced"] is False for r in results)
        assert registry.counter("fleet.coalesce_hits").value == hits_before


class TestAdmissionControl:
    def test_overload_sheds_with_retry_after_hint(self, tmp_path):
        harness = FleetHarness(
            workers=1, max_pending=1, health_interval=0.3
        )
        harness.start(str(tmp_path / "small.sock"))
        try:
            count = 5
            barrier = threading.Barrier(count)
            outcomes: list = [None] * count

            def worker(i):
                # distinct max_accepted defeats coalescing on purpose:
                # every request must hit the worker's pending queue
                with ServiceClient.connect(harness.address) as client:
                    barrier.wait()
                    try:
                        outcomes[i] = client.classify(
                            circuit="s499-ecc", max_accepted=500_000 + i
                        )
                    except RemoteError as exc:
                        outcomes[i] = exc

            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(count)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(120)
            ok = [o for o in outcomes if isinstance(o, dict)]
            shed = [
                o for o in outcomes
                if isinstance(o, RemoteError)
                and o.error_type == "Overloaded"
            ]
            assert len(ok) >= 1, outcomes
            assert len(shed) >= 1, outcomes
            assert len(ok) + len(shed) == count
            for error in shed:
                assert error.retry_after is not None
                assert error.retry_after > 0
        finally:
            harness.stop()


class TestConeRequests:
    def test_cone_reuse_counted_fleet_wide(self, tmp_path):
        """A store-backed fleet serves warm cone requests from the cone
        table and rolls the reuse into ``fleet.cone_hits``."""
        harness = FleetHarness(
            workers=1, store=str(tmp_path / "fleet-store.sqlite")
        )
        harness.start(str(tmp_path / "cones.sock"))
        try:
            with ServiceClient.connect(harness.address) as client:
                cold = client.classify(circuit="c17", cones=True)
                warm = client.classify(circuit="c17", cones=True)
                stats = client.stats()
            assert cold["cone_stats"]["reused"] == 0
            assert warm["cone_stats"]["reused"] == warm["cone_stats"]["cones"]
            assert warm["accepted"] == cold["accepted"]
            assert stats["cone_hits"] == warm["cone_stats"]["reused"]
        finally:
            harness.stop()

    def test_cones_flag_keys_the_coalescer(self, fleet):
        """cones=True and whole-circuit answers must never coalesce —
        their payloads differ even for identical circuit/criterion."""
        with connect(fleet) as client:
            whole = client.classify(circuit="s499-ecc", criterion="fs")
            cones = client.classify(
                circuit="s499-ecc", criterion="fs", cones=True
            )
        assert "cone_stats" not in whole
        assert cones["cone_stats"]["cones"] >= 1
        assert cones["accepted"] == whole["accepted"]


class TestTightnessRequests:
    def test_tightness_routes_through_a_worker(self, fleet):
        with connect(fleet) as client:
            row = client.tightness(circuit="c17")
        assert row["worker"] in (0, 1)
        assert row["total_logical"] == 22
        assert row["exact_rd_percent"] >= row["approx_rd_percent"]
        assert row["witness_replays"] == row["exact_accepted"]

    def test_op_keys_the_coalescer(self, fleet):
        """classify and tightness on the same circuit compute different
        answers: the single-flight key must include the op."""
        with connect(fleet) as client:
            classified = client.classify(circuit="c17")
            row = client.tightness(circuit="c17")
        assert "exact_accepted" not in classified
        assert row["exact_accepted"] == classified["accepted"] == 22


class TestSignoffRequests:
    def test_signoff_routes_through_a_worker(self, fleet):
        with connect(fleet) as client:
            result = client.signoff(circuit="c17", k=4)
        assert result["worker"] in (0, 1)
        assert result["mode"] == "k"
        delays = [row["delay"] for row in result["rows"]]
        assert delays == sorted(delays, reverse=True)

    def test_query_keys_the_coalescer(self, fleet):
        """Same circuit, different k/seed: distinct single-flight keys,
        distinct answers."""
        with connect(fleet) as client:
            top2 = client.signoff(circuit="c17", k=2)
            top4 = client.signoff(circuit="c17", k=4)
            reseeded = client.signoff(circuit="c17", k=4, seed=1)
        assert len(top2["rows"]) == 2
        assert top4["rows"][:2] == top2["rows"]
        assert reseeded["delays_digest"] != top4["delays_digest"]

    def test_remote_fanout_matches_local(self, fleet):
        from repro.circuit.sequential import S27_LIKE, parse_sequential_bench
        from repro.signoff import signoff, signoff_remote

        scan = parse_sequential_bench(S27_LIKE, name="s27")
        local = signoff(scan, k=6, seed=0)
        with connect(fleet) as client:
            remote = signoff_remote(scan, client, k=6, seed=0)
        assert remote.table_bytes() == local.table_bytes()


class TestIntrospection:
    def test_stats_describes_the_topology(self, fleet):
        with connect(fleet) as client:
            stats = client.stats()
        assert stats["server"] == "repro-rd-fleet"
        assert len(stats["workers"]) == 2
        for worker in stats["workers"]:
            assert worker["state"] == "up"
            assert worker["alive"] is True
            assert worker["pid"]
            assert worker["routed"] is True
        assert stats["max_pending"] == 64

    def test_metrics_merges_frontend_and_workers(self, fleet):
        with connect(fleet) as client:
            client.classify(circuit="c17")
            snapshot = client.metrics()
        counters = snapshot["metrics"]["counters"]
        # front-end telemetry and worker telemetry in one view
        assert counters["fleet.requests"] >= 1
        assert counters["service.requests"] >= 1
        assert snapshot["server"] == "repro-rd-fleet"
        assert snapshot["workers"] == 2
