"""repro — Fast Identification of Robust Dependent Path Delay Faults.

A from-scratch Python reproduction of Sparmann, Luxenburger, Cheng &
Reddy (DAC 1995): stabilizing-system theory, the fast RD-set classifier
(implicit path enumeration with local implications), the input-sort
heuristics, and the exact baseline of Lam et al. (DAC 1993) — plus all
the substrates they need (netlists, ternary logic/implications, path
counting, SAT/ATPG, robust/non-robust test generation, event-driven
timing simulation, benchmark circuit generators).

Quickstart::

    from repro import paper_example_circuit, classify, Criterion, heuristic2_sort

    circuit = paper_example_circuit()
    sort = heuristic2_sort(circuit)
    result = classify(circuit, Criterion.SIGMA_PI, sort=sort)
    print(f"{result.rd_percent:.1f}% of logical paths need no robust test")
"""

# defined before any submodule import: repro.service.server reads it
# while this package is still initializing
__version__ = "1.0.0"

from repro.errors import (
    CircuitError,
    ClassifyError,
    HarnessError,
    ProtocolError,
    RemoteError,
    ReproError,
    ServiceError,
    StoreError,
    TaskCrashed,
    TaskTimeout,
)
from repro.circuit import (
    Circuit,
    CircuitBuilder,
    GateType,
    paper_example_circuit,
    parse_bench,
    parse_bench_file,
    parse_pla,
    parse_pla_file,
    write_bench,
)
from repro.classify import (
    CircuitSession,
    ClassificationResult,
    Criterion,
    check_logical_path,
    classify,
)
from repro.paths import (
    LogicalPath,
    PhysicalPath,
    count_paths,
    enumerate_logical_paths,
    enumerate_physical_paths,
)
from repro.sorting import (
    InputSort,
    heuristic1_sort,
    heuristic2_sort,
    pin_order_sort,
    random_sort,
)
from repro.stabilize import (
    CompleteStabilizingAssignment,
    StabilizingSystem,
    all_stabilizing_systems,
    assignment_from_sort,
    compute_stabilizing_system,
)
from repro.baseline import baseline_rd, leafdag_rd_paths
from repro.delaytest import (
    is_nonrobustly_testable,
    is_robustly_testable,
    nonrobust_test,
    robust_test,
)
from repro.timing import (
    DelayAssignment,
    logical_path_delay,
    random_delays,
    settle_time,
    unit_delays,
)
from repro.store import ResultStore, canonical_form, fingerprint
from repro.service import AnalysisServer, ServiceClient

__all__ = [
    "ReproError",
    "CircuitError",
    "ClassifyError",
    "HarnessError",
    "TaskTimeout",
    "TaskCrashed",
    "StoreError",
    "ServiceError",
    "ProtocolError",
    "RemoteError",
    "Circuit",
    "CircuitBuilder",
    "GateType",
    "paper_example_circuit",
    "parse_bench",
    "parse_bench_file",
    "parse_pla",
    "parse_pla_file",
    "write_bench",
    "CircuitSession",
    "ClassificationResult",
    "Criterion",
    "check_logical_path",
    "classify",
    "LogicalPath",
    "PhysicalPath",
    "count_paths",
    "enumerate_logical_paths",
    "enumerate_physical_paths",
    "InputSort",
    "heuristic1_sort",
    "heuristic2_sort",
    "pin_order_sort",
    "random_sort",
    "CompleteStabilizingAssignment",
    "StabilizingSystem",
    "all_stabilizing_systems",
    "assignment_from_sort",
    "compute_stabilizing_system",
    "baseline_rd",
    "leafdag_rd_paths",
    "is_nonrobustly_testable",
    "is_robustly_testable",
    "nonrobust_test",
    "robust_test",
    "DelayAssignment",
    "logical_path_delay",
    "random_delays",
    "settle_time",
    "unit_delays",
    "ResultStore",
    "canonical_form",
    "fingerprint",
    "AnalysisServer",
    "ServiceClient",
    "__version__",
]
