"""Shared test harness: one FleetServer on a private event loop in a
daemon thread, with real supervised worker subprocesses behind it.
Used by the service fleet tests and the chaos fleet suite."""

import asyncio
import threading

from repro.service.fleet import FleetServer

#: payload keys that legitimately differ between two runs of the same
#: classification (wall time, cache telemetry, shard placement); what
#: remains must be byte-identical run to run
VOLATILE_RESULT_KEYS = frozenset({"coalesced", "elapsed", "session", "worker"})


def stable_result(result: dict) -> dict:
    """A classify result stripped to its run-independent keys."""
    return {
        k: v for k, v in result.items() if k not in VOLATILE_RESULT_KEYS
    }


class FleetHarness:
    """Start/stop one fleet (front-end + worker processes) for a test."""

    def __init__(self, **kwargs):
        self.kwargs = kwargs
        self.server: "FleetServer | None" = None
        self.address: "str | None" = None
        self.loop: "asyncio.AbstractEventLoop | None" = None
        self.failure: "BaseException | None" = None
        self._thread: "threading.Thread | None" = None

    def start(self, socket_path: str) -> str:
        ready = threading.Event()

        def run():
            self.loop = asyncio.new_event_loop()
            asyncio.set_event_loop(self.loop)

            async def go():
                try:
                    self.server = FleetServer(**self.kwargs)
                    self.address = await self.server.start(
                        socket_path=socket_path
                    )
                finally:
                    ready.set()
                await self.server.run()

            try:
                self.loop.run_until_complete(go())
            except BaseException as exc:  # surfaced via self.failure
                self.failure = exc
                ready.set()

        self._thread = threading.Thread(target=run, daemon=True)
        self._thread.start()
        assert ready.wait(120), "fleet start timed out"
        assert self.address, f"fleet failed to start: {self.failure!r}"
        return self.address

    def stop(self, timeout: float = 60.0) -> None:
        if (
            self.loop is not None
            and self.server is not None
            and self._thread is not None
            and self._thread.is_alive()
        ):
            self.loop.call_soon_threadsafe(self.server.request_shutdown)
        if self._thread is not None:
            self._thread.join(timeout)
            assert not self._thread.is_alive(), "fleet failed to drain"

    def worker_pid(self, index: int) -> int:
        pid = self.server.supervisor.workers[index].pid
        assert pid is not None
        return pid
