"""Unit tests for Tseitin circuit encoding."""

import pytest

from repro.atpg.cnf import CNF
from repro.atpg.sat import Solver
from repro.atpg.tseitin import tseitin_encode
from repro.logic.simulate import all_vectors, simulate


class TestEncodingFaithfulness:
    def test_models_are_exactly_simulations(self, small_circuits):
        """For each input vector: force PIs, solve, compare every gate
        variable against the simulator."""
        for circuit in small_circuits:
            enc = tseitin_encode(circuit)
            for vector in all_vectors(len(circuit.inputs)):
                assumptions = [
                    enc.var(pi) if v else -enc.var(pi)
                    for pi, v in zip(circuit.inputs, vector)
                ]
                result = Solver(enc.cnf).solve(assumptions=assumptions)
                assert result.sat
                values = simulate(circuit, vector)
                for g in range(circuit.num_gates):
                    assert result.model[enc.var(g)] == bool(values[g]), (
                        f"{circuit.name}: gate {circuit.gate_name(g)} "
                        f"mismatch under {vector}"
                    )

    def test_unsat_for_impossible_output(self, and_tree):
        enc = tseitin_encode(and_tree)
        root = and_tree.gate_by_name("root")
        a = and_tree.gate_by_name("a")
        # root=1 with a=0 is impossible for an AND tree.
        result = Solver(enc.cnf).solve(
            assumptions=[enc.var(root), -enc.var(a)]
        )
        assert not result.sat


class TestSharedVariables:
    def test_share_vars_reuses_pi_variables(self, example_circuit):
        cnf = CNF()
        first = tseitin_encode(example_circuit, cnf)
        pi_vars = {pi: first.var(pi) for pi in example_circuit.inputs}
        second = tseitin_encode(example_circuit, cnf, share_vars=pi_vars)
        for pi in example_circuit.inputs:
            assert first.var(pi) == second.var(pi)
        out = example_circuit.outputs[0]
        assert first.var(out) != second.var(out)
        # Shared PIs => outputs must agree: asserting difference is UNSAT.
        d = cnf.new_var()
        cnf.add_clause([-d, first.var(out), second.var(out)])
        cnf.add_clause([-d, -first.var(out), -second.var(out)])
        cnf.add_clause([d])
        assert not Solver(cnf).solve().sat


class TestForcedPins:
    def test_forced_pin_changes_function(self, example_circuit):
        # Force the AND's c-pin to 1: function becomes a OR b... OR c.
        g_and = example_circuit.gate_by_name("g_and")
        lead = example_circuit.lead_index(g_and, 1)
        enc = tseitin_encode(example_circuit, forced_pins={lead: 1})
        out = example_circuit.outputs[0]
        # With b=1, a=0, c=0 the faulty circuit outputs 1.
        assumptions = []
        for pi, v in zip(example_circuit.inputs, (0, 1, 0)):
            assumptions.append(enc.var(pi) if v else -enc.var(pi))
        result = Solver(enc.cnf).solve(assumptions=assumptions)
        assert result.sat and result.model[enc.var(out)]

    def test_decode_inputs(self, example_circuit):
        enc = tseitin_encode(example_circuit)
        out = example_circuit.outputs[0]
        result = Solver(enc.cnf).solve(assumptions=[-enc.var(out)])
        assert result.sat
        vector = enc.decode_inputs(example_circuit, result.model)
        assert simulate(example_circuit, vector)[out] == 0
