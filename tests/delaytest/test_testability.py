"""Unit tests for robust / non-robust testability."""

import pytest

from repro.classify.conditions import Criterion
from repro.classify.exact import exists_vector
from repro.delaytest.testability import (
    coverage,
    fs_vector,
    is_nonrobustly_testable,
    is_robustly_testable,
    nonrobust_test,
    robust_test,
)
from repro.logic.simulate import simulate
from repro.paths.enumerate import enumerate_logical_paths


def paths_of(circuit):
    return list(enumerate_logical_paths(circuit))


class TestAgainstBruteForceOracles:
    def test_fs_vector_matches_exact(self, small_circuits):
        for circuit in small_circuits:
            for lp in paths_of(circuit):
                sat = fs_vector(circuit, lp) is not None
                brute = exists_vector(circuit, Criterion.FS, lp)
                assert sat == brute, f"{circuit.name}: {lp.describe(circuit)}"

    def test_nonrobust_matches_exact(self, small_circuits):
        for circuit in small_circuits:
            for lp in paths_of(circuit):
                sat = nonrobust_test(circuit, lp) is not None
                brute = exists_vector(circuit, Criterion.NR, lp)
                assert sat == brute, f"{circuit.name}: {lp.describe(circuit)}"


class TestHierarchy:
    def test_robust_implies_nonrobust_implies_fs(self, small_circuits):
        for circuit in small_circuits:
            for lp in paths_of(circuit):
                if is_robustly_testable(circuit, lp):
                    assert is_nonrobustly_testable(circuit, lp)
                if is_nonrobustly_testable(circuit, lp):
                    assert fs_vector(circuit, lp) is not None


class TestReturnedVectors:
    def test_nonrobust_vector_satisfies_conditions(self, small_circuits):
        from repro.classify.exact import satisfies_criterion

        for circuit in small_circuits:
            for lp in paths_of(circuit):
                vector = nonrobust_test(circuit, lp)
                if vector is not None:
                    assert satisfies_criterion(
                        circuit, Criterion.NR, lp, vector
                    )

    def test_robust_pair_shape(self, example_circuit):
        for lp in paths_of(example_circuit):
            pair = robust_test(example_circuit, lp)
            if pair is None:
                continue
            v1, v2 = pair
            pi = lp.path.source(example_circuit)
            idx = example_circuit.inputs.index(pi)
            assert v1[idx] == 1 - lp.final_value
            assert v2[idx] == lp.final_value
            # v2 must non-robustly sensitize the path.
            from repro.classify.exact import satisfies_criterion

            assert satisfies_criterion(example_circuit, Criterion.NR, lp, v2)

    def test_robust_steadiness_on_example(self, example_circuit):
        """For a robust test of a->OR rising, the OR's side inputs must
        be steady 0 across both vectors."""
        target = next(
            lp
            for lp in paths_of(example_circuit)
            if lp.describe(example_circuit) == "a -> g_or -> out [0->1]"
        )
        v1, v2 = robust_test(example_circuit, target)
        g_and = example_circuit.gate_by_name("g_and")
        c = example_circuit.gate_by_name("c")
        for vec in (v1, v2):
            values = simulate(example_circuit, vec)
            assert values[g_and] == 0
            assert values[c] == 0


class TestPaperExampleFacts:
    def test_robust_count_is_five(self, example_circuit):
        robust = [
            lp
            for lp in paths_of(example_circuit)
            if is_robustly_testable(example_circuit, lp)
        ]
        assert len(robust) == 5

    def test_bA_falling_untestable_both_ways(self, example_circuit):
        lp = next(
            p
            for p in paths_of(example_circuit)
            if p.describe(example_circuit) == "b -> g_and -> g_or -> out [1->0]"
        )
        assert not is_robustly_testable(example_circuit, lp)
        assert not is_nonrobustly_testable(example_circuit, lp)
        assert fs_vector(example_circuit, lp) is not None  # but FS

    def test_cA_rising_nr_gap(self, example_circuit):
        """c->AND rising is FS but neither robust nor non-robust
        (needs c=1 at the AND side and c=0 at the OR side)."""
        lp = next(
            p
            for p in paths_of(example_circuit)
            if p.describe(example_circuit) == "c -> g_and -> g_or -> out [0->1]"
        )
        assert fs_vector(example_circuit, lp) is not None
        assert not is_nonrobustly_testable(example_circuit, lp)


class TestCoverage:
    def test_example3_full_coverage(self, example_circuit):
        from repro.experiments.figures import example3_sort
        from repro.stabilize.assignment import assignment_from_sort

        sigma = assignment_from_sort(
            example_circuit, example3_sort(example_circuit)
        )
        testable, total, fraction = coverage(
            example_circuit, sigma.logical_paths()
        )
        assert (testable, total, fraction) == (5, 5, 1.0)

    def test_example2_five_sixths(self, example_circuit):
        from repro.experiments.figures import example2_sort
        from repro.stabilize.assignment import assignment_from_sort

        sigma = assignment_from_sort(
            example_circuit, example2_sort(example_circuit)
        )
        testable, total, fraction = coverage(
            example_circuit, sigma.logical_paths()
        )
        assert (testable, total) == (5, 6)
        assert fraction == pytest.approx(5 / 6)

    def test_empty_selection(self, example_circuit):
        assert coverage(example_circuit, []) == (0, 0, 1.0)
