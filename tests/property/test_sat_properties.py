"""Property-based fuzzing of the SAT solver and stuck-at redundancy."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg.cnf import CNF
from repro.atpg.sat import Solver, brute_force_sat
from repro.atpg.stuckat import (
    StuckAtFault,
    is_redundant,
    is_redundant_brute_force,
)

from tests.strategies import small_circuits


@st.composite
def cnfs(draw):
    nv = draw(st.integers(2, 10))
    cnf = CNF(nv)
    for _ in range(draw(st.integers(1, 30))):
        k = draw(st.integers(1, 4))
        lits = draw(
            st.lists(
                st.integers(1, nv).flatmap(
                    lambda v: st.sampled_from([v, -v])
                ),
                min_size=k,
                max_size=k,
            )
        )
        cnf.add_clause(lits)
    return cnf


@settings(max_examples=120, deadline=None)
@given(cnf=cnfs())
def test_solver_matches_brute_force(cnf):
    result = Solver(cnf).solve()
    assert result.sat == brute_force_sat(cnf)
    if result.sat:
        assert cnf.evaluate(result.model)


@settings(max_examples=60, deadline=None)
@given(cnf=cnfs(), data=st.data())
def test_solver_with_assumptions(cnf, data):
    lit = data.draw(st.integers(1, cnf.num_vars))
    if data.draw(st.booleans()):
        lit = -lit
    result = Solver(cnf).solve(assumptions=[lit])
    # Oracle: add the assumption as a unit clause and brute force.
    cnf.add_clause([lit])
    assert result.sat == brute_force_sat(cnf)


@settings(max_examples=25, deadline=None)
@given(circuit=small_circuits(max_gates=9), data=st.data())
def test_redundancy_matches_brute_force(circuit, data):
    lead = data.draw(st.integers(0, circuit.num_leads - 1))
    value = data.draw(st.integers(0, 1))
    fault = StuckAtFault(lead, value)
    assert is_redundant(circuit, fault) == is_redundant_brute_force(
        circuit, fault
    )


@settings(max_examples=25, deadline=None)
@given(circuit=small_circuits(max_gates=9), data=st.data())
def test_podem_agrees_with_sat(circuit, data):
    from repro.atpg.podem import podem

    lead = data.draw(st.integers(0, circuit.num_leads - 1))
    value = data.draw(st.integers(0, 1))
    fault = StuckAtFault(lead, value)
    assert podem(circuit, fault).testable == (not is_redundant(circuit, fault))
