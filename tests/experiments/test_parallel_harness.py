"""Parallel experiment harness: jobs>1 must change wall-clock only.

Every fan-out path (Table I/III rows, per-cone classification, the
coverage study, scaling sweeps) is compared field-by-field against its
deterministic ``jobs=1`` fallback on small circuits."""

import pytest

from repro.circuit.examples import mux_circuit, paper_example_circuit
from repro.classify.conditions import Criterion
from repro.classify.engine import classify
from repro.experiments import table1
from repro.experiments.coverage_study import compare_sorts
from repro.experiments.harness import (
    classify_cones,
    run_table1_rows,
    run_table3_rows,
)
from repro.experiments.sweep import sweep_family
from repro.gen.adders import ripple_carry_adder
from repro.gen.random_logic import random_dag
from repro.sorting.heuristics import heuristic1_sort, pin_order_sort
from repro.sorting.input_sort import InputSort


def _circuits():
    return [paper_example_circuit(), mux_circuit()]


_PERCENT_FIELDS = (
    "name",
    "total_logical",
    "fus_percent",
    "heu1_percent",
    "heu2_percent",
    "heu2_inverse_percent",
)


class TestTableRows:
    def test_table1_rows_identical_across_job_counts(self):
        serial = run_table1_rows(_circuits())
        parallel = run_table1_rows(_circuits(), jobs=2)
        assert len(serial) == len(parallel) == 2
        for s, p in zip(serial, parallel):
            for field in _PERCENT_FIELDS:
                assert getattr(s, field) == getattr(p, field), field

    def test_table1_rendered_table_is_byte_identical(self):
        """The printed Table I carries only RD%% columns, so the whole
        rendering must match byte-for-byte across job counts."""
        table_serial, _ = table1.run(_circuits(), jobs=1)
        table_parallel, _ = table1.run(_circuits(), jobs=2)
        assert table_serial.render() == table_parallel.render()

    def test_table3_rows_identical_across_job_counts(self):
        serial = run_table3_rows(_circuits())
        parallel = run_table3_rows(_circuits(), jobs=2)
        for s, p in zip(serial, parallel):
            assert s.name == p.name
            assert s.total_logical == p.total_logical
            assert s.baseline_percent == p.baseline_percent
            assert s.heu2_percent == p.heu2_percent

    def test_single_circuit_short_circuits_the_pool(self):
        rows = run_table1_rows([paper_example_circuit()], jobs=8)
        assert len(rows) == 1
        assert rows[0].heu2_percent == 37.5


class TestConeClassification:
    @pytest.mark.parametrize("jobs", [1, 2])
    @pytest.mark.parametrize("criterion", [Criterion.FS, Criterion.NR])
    def test_cone_fanout_matches_whole_circuit(self, criterion, jobs):
        circuit = random_dag(5, 14, seed=321)
        whole = classify(circuit, criterion)
        combined = classify_cones(circuit, criterion, jobs=jobs)
        assert combined.accepted == whole.accepted
        assert combined.total_logical == whole.total_logical
        assert combined.circuit_name == circuit.name

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_cone_fanout_sigma_with_pin_sort(self, jobs):
        # Pin order is preserved by extract_cone, so the per-cone sums
        # must reproduce the whole-circuit SIGMA_PI pass.
        circuit = random_dag(5, 12, seed=654)
        whole = classify(
            circuit, Criterion.SIGMA_PI, sort=InputSort.pin_order(circuit)
        )
        combined = classify_cones(
            circuit, Criterion.SIGMA_PI,
            sort_builder=pin_order_sort, jobs=jobs,
        )
        assert combined.accepted == whole.accepted
        assert combined.total_logical == whole.total_logical

    def test_cone_fanout_with_per_cone_heuristic_sort(self):
        # Per-cone Heuristic-1 sorts (the paper's per-output application)
        # stay sound: never fewer RD paths than plain FS.
        circuit = random_dag(5, 14, seed=987)
        fs = classify_cones(circuit, Criterion.FS, jobs=2)
        sigma = classify_cones(
            circuit, Criterion.SIGMA_PI,
            sort_builder=heuristic1_sort, jobs=2,
        )
        assert sigma.accepted <= fs.accepted
        assert sigma.total_logical == fs.total_logical


class TestStudiesAndSweeps:
    def test_compare_sorts_identical_across_job_counts(self):
        circuit = paper_example_circuit()
        sorts = {
            "pin": InputSort.pin_order(circuit),
            "heu1": heuristic1_sort(circuit),
        }
        serial = compare_sorts(circuit, sorts, sample_size=8, seed=3)
        parallel = compare_sorts(circuit, sorts, sample_size=8, seed=3, jobs=2)
        assert serial.keys() == parallel.keys()
        for label in serial:
            assert serial[label] == parallel[label], label

    def test_sweep_family_identical_across_job_counts(self):
        serial = sweep_family(ripple_carry_adder, [2, 3, 4])
        parallel = sweep_family(ripple_carry_adder, [2, 3, 4], jobs=2)
        for s, p in zip(serial, parallel):
            assert s.parameter == p.parameter
            assert s.gates == p.gates
            assert s.total_logical == p.total_logical
            assert s.accepted == p.accepted

    def test_sweep_family_accepts_lambda_families(self):
        # Circuits are built serially, so non-picklable families are fine
        # even with a process pool.
        points = sweep_family(lambda n: ripple_carry_adder(n), [2, 3], jobs=2)
        assert [p.parameter for p in points] == [2, 3]


def test_cli_tables_expose_jobs_flag():
    from repro.cli import build_parser

    parser = build_parser()
    for command in ("table1", "table2", "table3"):
        args = parser.parse_args([command, "--jobs", "4"])
        assert args.jobs == 4
        assert parser.parse_args([command]).jobs == 1
