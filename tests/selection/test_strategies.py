"""Unit tests for the Section-VI path selection strategies."""

import pytest

from repro.classify.conditions import Criterion
from repro.classify.engine import classify
from repro.paths.enumerate import enumerate_logical_paths
from repro.selection.strategies import (
    select_by_threshold,
    select_longest_per_po,
    select_per_lead_limit,
)
from repro.sorting.heuristics import heuristic2_sort
from repro.timing.delays import unit_delays
from repro.timing.pathdelay import logical_path_delay


@pytest.fixture
def must_test(example_circuit):
    accepted = set()
    classify(
        example_circuit,
        Criterion.SIGMA_PI,
        sort=heuristic2_sort(example_circuit),
        on_path=accepted.add,
    )
    return accepted


class TestThreshold:
    def test_selects_slow_paths_only(self, example_circuit, must_test):
        delays = unit_delays(example_circuit)
        sel = select_by_threshold(example_circuit, delays, 3.0, must_test)
        # Only the 3-gate paths (through the AND) have delay >= 3.
        assert all(len(lp.path) == 3 for lp in sel.selected)
        assert len(sel.selected) == 4

    def test_rd_filter_is_intersection(self, example_circuit, must_test):
        delays = unit_delays(example_circuit)
        sel = select_by_threshold(example_circuit, delays, 0.0, must_test)
        assert set(sel.selected) == set(
            enumerate_logical_paths(example_circuit)
        )
        assert set(sel.selected_non_rd) == must_test
        assert sel.saving == 3

    def test_callable_predicate(self, example_circuit):
        delays = unit_delays(example_circuit)
        sel = select_by_threshold(
            example_circuit, delays, 0.0, lambda lp: lp.final_value == 1
        )
        assert all(lp.final_value == 1 for lp in sel.selected_non_rd)

    def test_str(self, example_circuit, must_test):
        delays = unit_delays(example_circuit)
        text = str(select_by_threshold(example_circuit, delays, 3.0, must_test))
        assert "threshold" in text and "saved" in text


class TestLazyThreshold:
    def test_matches_eager(self, example_circuit, must_test):
        from repro.selection.strategies import select_by_threshold_lazy

        delays = unit_delays(example_circuit)
        for threshold in (0.0, 2.5, 3.0, 99.0):
            eager = select_by_threshold(
                example_circuit, delays, threshold, must_test
            )
            lazy = select_by_threshold_lazy(
                example_circuit, delays, threshold, must_test
            )
            assert set(lazy.selected) == set(eager.selected)
            assert set(lazy.selected_non_rd) == set(eager.selected_non_rd)

    def test_huge_circuit_slice(self, must_test):
        """Lazy selection slices the top of a circuit whose total path
        population could never be enumerated."""
        from repro.gen.multiplier import array_multiplier
        from repro.selection.strategies import select_by_threshold_lazy
        from repro.timing.delays import random_delays
        from repro.timing.sta import static_timing

        circuit = array_multiplier(12)
        # Continuous random delays keep the above-threshold slice small
        # (unit delays would put millions of tied paths at the top).
        delays = random_delays(circuit, seed=4)
        critical = static_timing(circuit, delays).critical_delay
        sel = select_by_threshold_lazy(
            circuit, delays, 0.98 * critical, lambda lp: True
        )
        assert sel.selected  # at least the critical path
        from repro.timing.pathdelay import logical_path_delay

        for lp in sel.selected:
            assert logical_path_delay(circuit, lp, delays) >= 0.98 * critical


class TestPerLead:
    def test_every_lead_covered_up_to_quota(self, example_circuit, must_test):
        delays = unit_delays(example_circuit)
        sel = select_per_lead_limit(example_circuit, delays, 1, must_test)
        covered = set()
        for lp in sel.selected:
            covered.update(lp.path.leads)
        assert covered == set(range(example_circuit.num_leads))

    def test_quota_validation(self, example_circuit, must_test):
        delays = unit_delays(example_circuit)
        with pytest.raises(ValueError):
            select_per_lead_limit(example_circuit, delays, 0, must_test)

    def test_filtered_selection_only_non_rd(self, example_circuit, must_test):
        delays = unit_delays(example_circuit)
        sel = select_per_lead_limit(example_circuit, delays, 2, must_test)
        assert all(lp in must_test for lp in sel.selected_non_rd)

    def test_prefers_slower_paths(self, mux):
        delays = unit_delays(mux)
        sel = select_per_lead_limit(mux, delays, 1, lambda lp: True)
        # The very slowest path must be selected (its leads were free).
        slowest = max(
            enumerate_logical_paths(mux),
            key=lambda lp: logical_path_delay(mux, lp, delays),
        )
        assert any(
            logical_path_delay(mux, lp, delays)
            == logical_path_delay(mux, slowest, delays)
            for lp in sel.selected
        )


class TestPerPo:
    def test_per_po_counts(self, small_circuits):
        for circuit in small_circuits:
            delays = unit_delays(circuit)
            sel = select_longest_per_po(circuit, delays, 2, lambda lp: True)
            per_po = {}
            for lp in sel.selected:
                po = lp.path.sink(circuit)
                per_po[po] = per_po.get(po, 0) + 1
            assert all(v <= 2 for v in per_po.values())
            assert set(per_po) <= set(circuit.outputs)

    def test_filter_backfills_quota(self, example_circuit, must_test):
        """With filtering, the quota is filled from non-RD paths, so the
        filtered selection can differ from intersecting the raw one."""
        delays = unit_delays(example_circuit)
        sel = select_longest_per_po(example_circuit, delays, 5, must_test)
        assert len(sel.selected_non_rd) == 5  # all five non-RD paths
        assert all(lp in must_test for lp in sel.selected_non_rd)

    def test_quota_validation(self, example_circuit, must_test):
        with pytest.raises(ValueError):
            select_longest_per_po(
                example_circuit, unit_delays(example_circuit), 0, must_test
            )
