"""A complete delay-test flow on an adder: classify, generate, validate.

The workflow a test engineer would run:

1. build the design (an 8-bit carry-lookahead adder);
2. identify the robust dependent paths (Heuristic 2) — these need no
   test;
3. generate a robust two-pattern test for each remaining path (where one
   exists) with the SAT-based generator;
4. *validate* one test against the event-driven timing simulator: inject
   a delay fault on the tested path's gates and confirm the test pair
   really observes a late output.

Run:  python examples/test_generation_flow.py
"""

from repro import Criterion, classify, heuristic2_sort, robust_test
from repro.gen.adders import carry_lookahead_adder
from repro.timing.delays import unit_delays
from repro.timing.eventsim import two_pattern_settle
from repro.timing.pathdelay import logical_path_delay


def main():
    circuit = carry_lookahead_adder(4)
    sort = heuristic2_sort(circuit)

    must_test = []
    result = classify(
        circuit, Criterion.SIGMA_PI, sort=sort, on_path=must_test.append
    )
    print(f"{circuit.name}: {result.total_logical} logical paths, "
          f"{result.rd_count} robust dependent ({result.rd_percent:.1f}%), "
          f"{len(must_test)} to test")

    # Generate robust tests for a sample of the must-test paths.
    generated = 0
    untestable = 0
    sample = must_test[:: max(1, len(must_test) // 50)]
    tests = []
    for lp in sample:
        pair = robust_test(circuit, lp)
        if pair is None:
            untestable += 1
        else:
            generated += 1
            tests.append((lp, pair))
    print(f"robust tests generated for {generated}/{len(sample)} sampled "
          f"paths ({untestable} need non-robust tests or DFT)")

    # Validate one test with timing simulation: slow down the tested
    # path's last gate and watch the two-pattern response get late.
    lp, (v1, v2) = max(
        tests, key=lambda t: len(t[0].path)
    )
    delays = unit_delays(circuit)
    nominal = two_pattern_settle(circuit, delays, v1, v2)
    last_gate = circuit.lead_dst(lp.path.leads[-2])
    slow = delays.with_gate_delay(last_gate, 25.0, 25.0)
    faulty = two_pattern_settle(circuit, slow, v1, v2)
    print(f"\nvalidating test for: {lp.describe(circuit)}")
    print(f"  v1={''.join(map(str, v1))} v2={''.join(map(str, v2))}")
    print(f"  nominal settle time: {nominal:.1f}")
    print(f"  with a slow {circuit.gate_name(last_gate)}: {faulty:.1f}")
    path_delay = logical_path_delay(circuit, lp, slow)
    assert faulty >= 25.0, "the robust test failed to expose the slow gate"
    print(f"  tested path delay under the fault: {path_delay:.1f} "
          "(the late output is guaranteed to be observed)")


if __name__ == "__main__":
    main()
