"""Unit tests for the ISCAS .bench reader/writer."""

import pytest

from repro.circuit.bench import BenchParseError, parse_bench, write_bench
from repro.circuit.gates import GateType
from repro.logic.simulate import all_vectors, output_values, truth_table

SAMPLE = """
# small sample
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
n1 = NAND(a, b)
n2 = NOT(c)
y = OR(n1, n2)
"""


class TestParse:
    def test_parses_structure(self):
        c = parse_bench(SAMPLE)
        assert len(c.inputs) == 3
        assert len(c.outputs) == 1
        assert c.gate_type(c.gate_by_name("n1")) is GateType.NAND

    def test_function(self):
        c = parse_bench(SAMPLE)
        for va, vb, vc in all_vectors(3):
            expected = (1 - (va & vb)) | (1 - vc)
            assert output_values(c, (va, vb, vc)) == (expected,)

    def test_comments_and_blank_lines(self):
        c = parse_bench("# hi\n\nINPUT(a)\nOUTPUT(a)\n")
        assert len(c.inputs) == 1

    def test_output_that_also_fans_out(self):
        text = """
        INPUT(a)
        INPUT(b)
        OUTPUT(m)
        OUTPUT(y)
        m = AND(a, b)
        y = NOT(m)
        """
        c = parse_bench(text)
        assert len(c.outputs) == 2
        for va, vb in all_vectors(2):
            assert output_values(c, (va, vb)) == (va & vb, 1 - (va & vb))

    def test_xor_decomposition_function(self):
        text = "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = XOR(a, b, c)\n"
        c = parse_bench(text)
        for va, vb, vc in all_vectors(3):
            assert output_values(c, (va, vb, vc)) == (va ^ vb ^ vc,)

    def test_xnor_decomposition_function(self):
        text = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XNOR(a, b)\n"
        c = parse_bench(text)
        for va, vb in all_vectors(2):
            assert output_values(c, (va, vb)) == (1 - (va ^ vb),)

    def test_only_simple_gates_after_decomposition(self):
        text = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n"
        c = parse_bench(text)
        kinds = {c.gate_type(g) for g in range(c.num_gates)}
        assert GateType.AND in kinds or GateType.NAND in kinds
        assert all(
            k in (GateType.PI, GateType.PO, GateType.AND, GateType.OR,
                  GateType.NOT, GateType.NAND, GateType.NOR, GateType.BUF)
            for k in kinds
        )


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "INPUT(a)\ny = FROB(a)\nOUTPUT(y)\n",
            "INPUT(a)\ny = \nOUTPUT(y)\n",
            "INPUT(a)\nOUTPUT(y)\ny = AND()\n",
            "INPUT(a)\nOUTPUT(y)\ny = NOT(a, a)\n",
            "OUTPUT(y)\ny = AND(a, b)\n",
            "INPUT(a)\nOUTPUT(y)\ny = AND(a, y)\n",
            "INPUT(a)\na = NOT(a)\nOUTPUT(a)\n",
        ],
    )
    def test_malformed_inputs(self, text):
        with pytest.raises(BenchParseError):
            parse_bench(text)

    def test_file_errors_carry_path_and_line(self, tmp_path):
        """Errors from a file parse are prefixed ``<path>: line N: ...``
        so multi-file runs point at the offending file."""
        from repro.circuit.bench import parse_bench_file

        path = tmp_path / "broken.bench"
        path.write_text("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n")
        with pytest.raises(BenchParseError) as excinfo:
            parse_bench_file(path)
        message = str(excinfo.value)
        assert message.startswith(f"{path}: line 3: ")
        assert "FROB" in message

    def test_file_errors_without_lineno_still_carry_path(self, tmp_path):
        from repro.circuit.bench import parse_bench_file

        path = tmp_path / "undefined.bench"
        path.write_text("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n")
        with pytest.raises(BenchParseError) as excinfo:
            parse_bench_file(path)
        assert str(excinfo.value).startswith(f"{path}: ")
        assert "ghost" in str(excinfo.value)

    def test_text_errors_keep_bare_format(self):
        """Parsing from a string (no source) keeps the historic
        ``line N: ...`` format with no leading path."""
        with pytest.raises(BenchParseError) as excinfo:
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n")
        assert str(excinfo.value).startswith("line 3: ")


class TestRoundTrip:
    def test_write_parse_preserves_function(self):
        c = parse_bench(SAMPLE)
        d = parse_bench(write_bench(c))
        assert truth_table(c) == truth_table(d)

    def test_roundtrip_paper_example(self):
        from repro.circuit.examples import paper_example_circuit

        c = paper_example_circuit()
        d = parse_bench(write_bench(c))
        assert truth_table(c) == truth_table(d)
