"""Per-circuit experiment pipelines shared by the table generators.

A Table-I/II row runs the full paper pipeline on one circuit:

1. exact path counting (the "total no. of logical paths" column);
2. one FS pass — its RD side is the FUS column of Table I;
3. Heuristic 1: path-count input sort + one SIGMA_PI pass;
4. Heuristic 2 (Algorithm 3): FS and NR passes with per-lead counts,
   the induced sort, + one SIGMA_PI pass;
5. the inverted-Heuristic-2 control (the paper's "Heu2-bar" column).

Timings follow the paper's accounting: Heu1 = sort + one classification
pass; Heu2 = three classification passes + sort.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baseline.exact_assignment import BaselineResult, baseline_rd
from repro.circuit.netlist import Circuit
from repro.classify.conditions import Criterion
from repro.classify.engine import classify
from repro.paths.count import count_paths
from repro.sorting.heuristics import heuristic1_sort, heuristic2_analysis
from repro.sorting.input_sort import InputSort
from repro.util.timer import Stopwatch


@dataclass
class Table1Row:
    """All measurements of one circuit for Tables I and II."""

    name: str
    total_logical: int
    fus_percent: float
    heu1_percent: float
    heu2_percent: float
    heu2_inverse_percent: float
    time_heu1: float
    time_heu2: float

    def check_expected_shape(self) -> list[str]:
        """The paper's qualitative claims, as violated-claim strings
        (empty = all hold).  Heu2 ≥ Heu1 is a strong trend in the paper
        (it holds for every circuit in Table I), both dominate FUS by
        Lemma 1, and the inverted sort collapses towards FUS."""
        problems = []
        if self.heu1_percent + 1e-9 < self.fus_percent:
            problems.append("Heu1 below FUS (violates Lemma 1)")
        if self.heu2_percent + 1e-9 < self.fus_percent:
            problems.append("Heu2 below FUS (violates Lemma 1)")
        if self.heu2_inverse_percent + 1e-9 < self.fus_percent:
            problems.append("inverse Heu2 below FUS (violates Lemma 1)")
        if self.heu2_inverse_percent > self.heu2_percent + 1e-9:
            problems.append("inverse sort beats Heu2")
        return problems


def run_table1_row(circuit: Circuit, max_accepted: int | None = None) -> Table1Row:
    """The full pipeline on one circuit (see module docstring)."""
    counts = count_paths(circuit)
    # --- Heuristic 1 -----------------------------------------------------
    with Stopwatch() as sw1:
        sort1 = heuristic1_sort(circuit)
        res1 = classify(
            circuit, Criterion.SIGMA_PI, sort=sort1, max_accepted=max_accepted
        )
    # --- Heuristic 2 (Algorithm 3: FS pass + NR pass + final pass) -------
    with Stopwatch() as sw2:
        analysis = heuristic2_analysis(circuit, max_accepted=max_accepted)
        res2 = classify(
            circuit,
            Criterion.SIGMA_PI,
            sort=analysis.sort,
            max_accepted=max_accepted,
        )
    # --- inverse control --------------------------------------------------
    res2_inv = classify(
        circuit,
        Criterion.SIGMA_PI,
        sort=analysis.sort.inverted(),
        max_accepted=max_accepted,
    )
    return Table1Row(
        name=circuit.name,
        total_logical=counts.total_logical,
        fus_percent=analysis.fs_result.rd_percent,
        heu1_percent=res1.rd_percent,
        heu2_percent=res2.rd_percent,
        heu2_inverse_percent=res2_inv.rd_percent,
        time_heu1=sw1.elapsed,
        time_heu2=sw2.elapsed,
    )


@dataclass
class Table3Row:
    """Baseline-of-[1] vs Heuristic 2 on one small multi-level circuit."""

    name: str
    total_logical: int
    baseline_percent: float
    baseline_time: float
    heu2_percent: float
    heu2_time: float

    @property
    def quality_gap(self) -> float:
        """Baseline RD%% minus Heu2 RD%% (the paper reports 2.05%% mean)."""
        return self.baseline_percent - self.heu2_percent

    @property
    def speedup(self) -> float:
        """Baseline time / Heu2 time (the paper's headline is >10-1000x)."""
        if self.heu2_time <= 0:
            return float("inf")
        return self.baseline_time / self.heu2_time


def run_table3_row(
    circuit: Circuit, baseline_method: str = "greedy"
) -> Table3Row:
    baseline: BaselineResult = baseline_rd(circuit, method=baseline_method)
    with Stopwatch() as sw:
        analysis = heuristic2_analysis(circuit)
        res2 = classify(circuit, Criterion.SIGMA_PI, sort=analysis.sort)
    return Table3Row(
        name=circuit.name,
        total_logical=baseline.total_logical,
        baseline_percent=baseline.rd_percent,
        baseline_time=baseline.elapsed,
        heu2_percent=res2.rd_percent,
        heu2_time=sw.elapsed,
    )


def sigma_pi_percent(circuit: Circuit, sort: InputSort) -> float:
    """RD%% of one SIGMA_PI pass (ablation helper)."""
    return classify(circuit, Criterion.SIGMA_PI, sort=sort).rd_percent
