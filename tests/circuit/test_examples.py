"""The example circuits must have the documented shapes and functions."""

from repro.circuit.examples import (
    chain_circuit,
    mux_circuit,
    paper_example_circuit,
    reconvergent_circuit,
    two_and_tree,
)
from repro.logic.simulate import all_vectors, output_values
from repro.paths.count import count_paths


def test_paper_example_function():
    circuit = paper_example_circuit()
    for a, b, c in all_vectors(3):
        expected = a | (b & c) | c
        assert output_values(circuit, (a, b, c)) == (expected,)


def test_paper_example_has_8_logical_paths():
    assert count_paths(paper_example_circuit()).total_logical == 8


def test_mux_function():
    circuit = mux_circuit()
    for a, s, c in all_vectors(3):
        expected = (a & s) | ((1 - s) & c)
        assert output_values(circuit, (a, s, c)) == (expected,)


def test_chain_identity_and_inversion():
    ident = chain_circuit(3)
    for (v,) in all_vectors(1):
        assert output_values(ident, (v,)) == (v,)
    inv = chain_circuit(3, invert=True)
    for (v,) in all_vectors(1):
        assert output_values(inv, (v,)) == (1 - v,)


def test_and_tree_function():
    circuit = two_and_tree()
    for vec in all_vectors(4):
        assert output_values(circuit, vec) == (
            vec[0] & vec[1] & vec[2] & vec[3],
        )


def test_reconvergent_function():
    circuit = reconvergent_circuit()
    for a, b, c in all_vectors(3):
        assert output_values(circuit, (a, b, c)) == ((a | b) & (b | c),)
