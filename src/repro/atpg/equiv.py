"""SAT-based combinational equivalence checking.

Builds a miter between two circuits (PIs matched by name, POs matched
by name or position) and asks the solver for a distinguishing input —
UNSAT means equivalent.  Used to validate logic transforms
(:mod:`repro.circuit.simplify`) and generator refactors beyond the
exhaustive-truth-table regime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.atpg.cnf import CNF
from repro.atpg.sat import Solver
from repro.atpg.tseitin import tseitin_encode
from repro.circuit.netlist import Circuit


@dataclass(frozen=True)
class EquivalenceResult:
    """Outcome of one equivalence check."""

    equivalent: bool
    #: a distinguishing input vector (in the *first* circuit's PI order)
    #: when not equivalent
    counterexample: "tuple | None" = None

    def __bool__(self) -> bool:
        return self.equivalent


def _match_by_name(left: Circuit, right: Circuit) -> "tuple[list, list]":
    left_pis = {left.gate_name(pi): pi for pi in left.inputs}
    right_pis = {right.gate_name(pi): pi for pi in right.inputs}
    if set(left_pis) != set(right_pis):
        raise ValueError(
            "PI name sets differ: "
            f"{sorted(set(left_pis) ^ set(right_pis))}"
        )
    pi_pairs = [(left_pis[nm], right_pis[nm]) for nm in sorted(left_pis)]
    left_pos = {left.gate_name(po): po for po in left.outputs}
    right_pos = {right.gate_name(po): po for po in right.outputs}
    if set(left_pos) == set(right_pos):
        po_pairs = [(left_pos[nm], right_pos[nm]) for nm in sorted(left_pos)]
    elif len(left.outputs) == len(right.outputs):
        po_pairs = list(zip(left.outputs, right.outputs))
    else:
        raise ValueError("PO counts differ and names do not match")
    return pi_pairs, po_pairs


def check_equivalence(left: Circuit, right: Circuit) -> EquivalenceResult:
    """Are ``left`` and ``right`` functionally identical?

    PIs are matched by name (must coincide as sets); POs by name when
    possible, otherwise by position.
    """
    pi_pairs, po_pairs = _match_by_name(left, right)
    cnf = CNF()
    left_enc = tseitin_encode(left, cnf)
    share = {
        right_pi: left_enc.var(left_pi) for left_pi, right_pi in pi_pairs
    }
    right_enc = tseitin_encode(right, cnf, share_vars=share)
    diff_vars = []
    for left_po, right_po in po_pairs:
        a, b = left_enc.var(left_po), right_enc.var(right_po)
        d = cnf.new_var()
        cnf.add_clause([-d, a, b])
        cnf.add_clause([-d, -a, -b])
        diff_vars.append(d)
    cnf.add_clause(diff_vars)
    result = Solver(cnf).solve()
    if not result.sat:
        return EquivalenceResult(equivalent=True)
    return EquivalenceResult(
        equivalent=False,
        counterexample=left_enc.decode_inputs(left, result.model),
    )
