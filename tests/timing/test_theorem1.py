"""Integration tests: the paper's Theorem 1 and Definition 1, observed
on the event-driven timing simulator.

Theorem 1: for any implementation C_m and any input v, the output settles
within the maximum logical-path delay of the chosen stabilizing system —
from an arbitrary initial state.

Definition 1 (RD-set validity): if every non-RD path is fast, no
two-pattern application can reveal a late output; conversely a slow
non-RD path must be what any observed lateness traces back to.
"""

import pytest

from repro.classify.conditions import Criterion
from repro.classify.engine import classify
from repro.logic.simulate import all_vectors, simulate
from repro.paths.enumerate import enumerate_logical_paths
from repro.sorting.heuristics import heuristic2_sort
from repro.stabilize.system import compute_stabilizing_system
from repro.timing.delays import random_delays
from repro.timing.eventsim import EventSimulator, random_initial_state
from repro.timing.pathdelay import logical_path_delay, max_system_delay


class TestTheorem1Bound:
    def test_settle_time_bounded_by_system_delay(self, small_circuits):
        for circuit in small_circuits:
            for delay_seed in range(3):
                delays = random_delays(circuit, seed=delay_seed)
                sim = EventSimulator(circuit, delays)
                for vector in all_vectors(len(circuit.inputs)):
                    for po in circuit.outputs:
                        system = compute_stabilizing_system(circuit, po, vector)
                        bound = max_system_delay(system, delays)
                        for init_seed in range(2):
                            changes = sim.run(
                                vector,
                                random_initial_state(circuit, init_seed),
                            )
                            settle = changes.get(po, 0.0)
                            assert settle <= bound + 1e-9, (
                                f"{circuit.name} v={vector}: PO settled at "
                                f"{settle} > bound {bound}"
                            )


class TestRdSetValidity:
    def test_non_rd_paths_bound_the_circuit_delay(self, example_circuit):
        """Definition 1 observed: make the RD paths arbitrarily slow —
        as long as non-RD paths are fast, every two-pattern application
        settles within the non-RD bound.

        On the example circuit, the maximal RD-set leaves the 5 paths of
        σ'; slowing the b-cone (whose paths are RD) must not push any
        observed settle time beyond the non-RD path bound."""
        circuit = example_circuit
        sort = heuristic2_sort(circuit)
        selected = set()
        classify(circuit, Criterion.SIGMA_PI, sort=sort, on_path=selected.add)
        assert len(selected) == 5
        delays = random_delays(circuit, seed=3)
        # Make the gate unique to RD paths (the AND's b input is only on
        # RD paths; slow b's cone by slowing nothing shared — the AND
        # itself is shared, so slow only the PI-side: not possible; we
        # instead verify the bound with the delays as-is and with the
        # AND slowed, recomputing the non-RD bound each time.)
        for variant in (delays, delays.with_gate_delay(
            circuit.gate_by_name("g_and"), 50.0, 50.0
        )):
            bound = max(
                logical_path_delay(circuit, lp, variant) for lp in selected
            )
            sim = EventSimulator(circuit, variant)
            for v1 in all_vectors(3):
                initial = simulate(circuit, v1)
                for v2 in all_vectors(3):
                    changes = sim.run(v2, list(initial))
                    settle = changes.get(circuit.outputs[0], 0.0)
                    assert settle <= bound + 1e-9, (
                        f"v1={v1} v2={v2}: settle {settle} > non-RD bound "
                        f"{bound}"
                    )

    def test_rd_sets_of_random_circuits_are_valid(self):
        """Same validity check on random small circuits: slow everything
        (random delays), compute LP^sup(σ^π), and confirm the observed
        two-pattern settle times never exceed the selected-path bound."""
        from repro.gen.random_logic import random_dag

        for seed in range(4):
            circuit = random_dag(4, 9, seed=seed)
            sort = heuristic2_sort(circuit)
            selected = set()
            classify(circuit, Criterion.SIGMA_PI, sort=sort, on_path=selected.add)
            delays = random_delays(circuit, seed=seed + 100)
            per_po_bound = {}
            for po in circuit.outputs:
                po_paths = [
                    lp for lp in selected if lp.path.sink(circuit) == po
                ]
                per_po_bound[po] = max(
                    (logical_path_delay(circuit, lp, delays) for lp in po_paths),
                    default=0.0,
                )
            sim = EventSimulator(circuit, delays)
            for v1 in all_vectors(4):
                initial = simulate(circuit, v1)
                for v2 in all_vectors(4):
                    changes = sim.run(v2, list(initial))
                    for po in circuit.outputs:
                        settle = changes.get(po, 0.0)
                        assert settle <= per_po_bound[po] + 1e-9, (
                            f"seed {seed}: PO {circuit.gate_name(po)} "
                            f"violates the RD bound"
                        )
