"""Property-based round trips: bench serialisation, leaf-dag unfolding,
and testability hierarchy on random circuits."""

from hypothesis import given, settings

from repro.circuit.bench import parse_bench, write_bench
from repro.circuit.transforms import unfold_leaf_dag
from repro.delaytest.testability import (
    fs_vector,
    is_nonrobustly_testable,
    is_robustly_testable,
)
from repro.logic.simulate import truth_table
from repro.paths.count import count_paths
from repro.paths.enumerate import enumerate_logical_paths

from tests.strategies import small_circuits


@settings(max_examples=40, deadline=None)
@given(circuit=small_circuits())
def test_bench_round_trip_function(circuit):
    again = parse_bench(write_bench(circuit))
    assert truth_table(again) == truth_table(circuit)


@settings(max_examples=25, deadline=None)
@given(circuit=small_circuits(max_gates=8))
def test_leaf_dag_preserves_function_and_paths(circuit):
    for po in circuit.outputs:
        dag = unfold_leaf_dag(circuit, po, max_gates=20_000)
        cone, _ = circuit.extract_cone(po)
        assert truth_table(dag.circuit) == truth_table(cone)
        assert (
            count_paths(dag.circuit).total_physical
            == count_paths(cone).total_physical
        )


@settings(max_examples=12, deadline=None)
@given(circuit=small_circuits(max_gates=8))
def test_generated_robust_tests_simulate_as_covering(circuit):
    """The SAT test generator and the fault simulator agree: every
    generated robust pair robustly covers its target path."""
    from repro.delaytest.simulator import sensitized_paths
    from repro.delaytest.testability import robust_test

    for lp in enumerate_logical_paths(circuit):
        pair = robust_test(circuit, lp)
        if pair is not None:
            assert lp in sensitized_paths(circuit, *pair).robust


@settings(max_examples=15, deadline=None)
@given(circuit=small_circuits(max_gates=8))
def test_testability_hierarchy(circuit):
    """robust ⊆ non-robust ⊆ functionally sensitizable, path by path."""
    for lp in enumerate_logical_paths(circuit):
        robust = is_robustly_testable(circuit, lp)
        nonrobust = is_nonrobustly_testable(circuit, lp)
        fs = fs_vector(circuit, lp) is not None
        assert (not robust) or nonrobust
        assert (not nonrobust) or fs
