"""Fault collapsing validated semantically: claimed-equivalent faults
must be detected by exactly the same test vectors."""

from repro.atpg.collapse import (
    all_lead_faults,
    collapse_faults,
    collapse_ratio,
    equivalence_classes,
)
from repro.atpg.stuckat import simulate_with_fault
from repro.logic.simulate import all_vectors, simulate


def _detects(circuit, vector, fault):
    good = simulate(circuit, vector)
    bad = simulate_with_fault(circuit, vector, fault)
    return any(good[po] != bad[po] for po in circuit.outputs)


class TestEquivalenceSemantics:
    def test_classes_are_truly_equivalent(self, small_circuits):
        """Every pair inside a class is detected by exactly the same
        vectors (exhaustive check)."""
        for circuit in small_circuits:
            vectors = list(all_vectors(len(circuit.inputs)))
            for cls in equivalence_classes(circuit):
                if len(cls) < 2:
                    continue
                reference = [
                    _detects(circuit, v, cls[0]) for v in vectors
                ]
                for fault in cls[1:]:
                    got = [_detects(circuit, v, fault) for v in vectors]
                    assert got == reference, (
                        f"{circuit.name}: {fault.describe(circuit)} not "
                        f"equivalent to {cls[0].describe(circuit)}"
                    )

    def test_classes_partition_the_universe(self, small_circuits):
        for circuit in small_circuits:
            classes = equivalence_classes(circuit)
            seen = [f for cls in classes for f in cls]
            assert sorted(seen, key=lambda f: (f.lead, f.value)) == sorted(
                all_lead_faults(circuit), key=lambda f: (f.lead, f.value)
            )


class TestCollapseEffect:
    def test_representatives_cover_all_classes(self, small_circuits):
        for circuit in small_circuits:
            reps = collapse_faults(circuit)
            assert len(reps) == len(equivalence_classes(circuit))

    def test_ratio_below_one_on_multi_input_gates(self, example_circuit):
        # The 3-input OR alone merges three controlling-input faults.
        assert collapse_ratio(example_circuit) < 1.0

    def test_chain_collapse(self):
        from repro.circuit.examples import chain_circuit

        circuit = chain_circuit(4)  # pure buffer chain
        # Every lead fault folds into one class per polarity.
        classes = equivalence_classes(circuit)
        assert len(classes) == 2

    def test_inverter_chain_folds_with_polarity(self):
        from repro.circuit.examples import chain_circuit

        circuit = chain_circuit(3, invert=True)
        classes = equivalence_classes(circuit)
        assert len(classes) == 2
        # Polarities alternate inside each class.
        for cls in classes:
            values = {f.value for f in cls}
            assert values == {0, 1}
