"""The paper's running example circuit (Figures 1, 2, 4, 5) and other
small teaching circuits used in tests and examples.

The running example is taken from Lam et al. [1].  The paper never prints
its netlist, but states enough facts to pin the structure down uniquely:

* three PIs, one PO, 8 logical paths (= 4 physical paths);
* exactly **three** distinct stabilizing systems exist for input ``111``
  (Figure 1);
* a complete stabilizing assignment exists that assigns one system to all
  inputs with the leftmost PI at 1, and another to all inputs with the
  leftmost PI at 0 and the rightmost PI at 1 (Figure 2), selecting 6 of
  the 8 logical paths of which exactly one is not robustly testable
  (Example 2);
* changing only the system for input ``000`` yields an assignment whose 5
  selected paths are exactly the robustly testable ones (Example 3 /
  Figure 4), and this optimum is reachable by an input sort (Figure 5).

The circuit ``out = OR(a, AND(b, c), c)`` satisfies every one of these
facts (the test suite re-derives them mechanically in
``tests/stabilize/test_paper_example.py``).
"""

from __future__ import annotations

from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import Circuit


def paper_example_circuit() -> Circuit:
    """The running example of the paper: ``out = OR(a, AND(b, c), c)``.

    Physical paths: ``a->OR``, ``b->AND->OR``, ``c->AND->OR``, ``c->OR``
    (4 physical, 8 logical paths).  Under input 111 the OR gate sees three
    controlling inputs, giving the three stabilizing systems of Figure 1.
    """
    b = CircuitBuilder("paper_example")
    a = b.pi("a")
    bb = b.pi("b")
    c = b.pi("c")
    g_and = b.and_(bb, c, name="g_and")
    g_or = b.or_(a, g_and, c, name="g_or")
    b.po(g_or, "out")
    return b.build()


def mux_circuit() -> Circuit:
    """A 2:1 multiplexer ``out = (a AND s) OR (NOT(s) AND c)``.

    The classic example of a circuit whose hazard-cover path is robust
    dependent.
    """
    b = CircuitBuilder("mux2")
    a = b.pi("a")
    s = b.pi("s")
    c = b.pi("c")
    ns = b.not_(s, "ns")
    g1 = b.and_(a, s, name="g1")
    g2 = b.and_(ns, c, name="g2")
    out = b.or_(g1, g2, name="g3")
    b.po(out, "out")
    return b.build()


def chain_circuit(length: int, invert: bool = False) -> Circuit:
    """A single path of ``length`` BUF/NOT gates — the trivial base case."""
    if length < 1:
        raise ValueError("length must be >= 1")
    b = CircuitBuilder(f"chain{length}")
    node = b.pi("in")
    for i in range(length):
        node = b.not_(node, f"n{i}") if invert else b.buf(node, f"b{i}")
    b.po(node, "out")
    return b.build()


def two_and_tree() -> Circuit:
    """``out = (a AND b) AND (c AND d)`` — a fanout-free tree."""
    b = CircuitBuilder("and_tree")
    a, bb, c, d = (b.pi(n) for n in "abcd")
    out = b.and_(b.and_(a, bb, name="l"), b.and_(c, d, name="r"), name="root")
    b.po(out, "out")
    return b.build()


def reconvergent_circuit() -> Circuit:
    """``out = AND(OR(a, b), OR(b, c))`` — simple reconvergent fanout at b."""
    b = CircuitBuilder("reconv")
    a, bb, c = (b.pi(n) for n in "abc")
    o1 = b.or_(a, bb, name="o1")
    o2 = b.or_(bb, c, name="o2")
    out = b.and_(o1, o2, name="root")
    b.po(out, "out")
    return b.build()
