"""The daemon's ``metrics`` op and per-request correlation ids."""

import pytest

from repro.errors import RemoteError
from repro.obs import reset_registry
from repro.service.client import ServiceClient

from tests.service.test_server import _unix_server, harness  # noqa: F401


@pytest.fixture(autouse=True)
def clean_registry():
    # the server instruments the process-wide registry; start clean so
    # request counts below are exact
    reset_registry()
    yield
    reset_registry()


class TestMetricsOp:
    def test_reflects_a_completed_remote_classify(self, harness):  # noqa: F811
        h = _unix_server(harness, store=str(harness.tmp_path / "s.sqlite"))
        with ServiceClient.connect(h.address) as client:
            result = client.classify(circuit="c17", criterion="sigma")
            assert result["name"] == "c17"
            snapshot = client.metrics()
        assert snapshot["server"] == "repro-rd"
        assert snapshot["uptime"] >= 0
        metrics = snapshot["metrics"]
        counters = metrics["counters"]
        # the classify itself plus lifecycle accounting
        assert counters["service.requests"] >= 2  # classify + metrics
        assert counters["service.op.classify"] == 1
        assert counters["service.ok"] >= 1
        assert counters["session.tables_built"] >= 1
        assert counters["store.gets"] >= 1
        # the metrics request itself was still in flight at snapshot time
        assert metrics["gauges"]["service.in_flight"] >= 1
        latency = metrics["histograms"]["service.request_seconds"]
        assert latency["count"] >= 1

    def test_deadline_abort_counted(self, harness):  # noqa: F811
        h = _unix_server(harness)
        with ServiceClient.connect(h.address) as client:
            with pytest.raises(RemoteError) as excinfo:
                client.classify(circuit="s1355-par", deadline=1e-9)
            assert excinfo.value.error_type == "TaskTimeout"
            counters = client.metrics()["metrics"]["counters"]
        assert counters["service.deadline_aborts"] == 1

    def test_errors_counted(self, harness):  # noqa: F811
        h = _unix_server(harness)
        with ServiceClient.connect(h.address) as client:
            with pytest.raises(RemoteError):
                client.classify(circuit="no-such-circuit")
            counters = client.metrics()["metrics"]["counters"]
        assert counters["service.errors"] == 1


class TestRequestCorrelation:
    def test_start_event_and_response_share_request_id(self, harness):  # noqa: F811
        h = _unix_server(harness)
        events = []
        with ServiceClient.connect(h.address) as client:
            client.request("classify", circuit="c17", on_event=events.append)
            raw = client.request("ping")
            assert "server" in raw
        assert events, "expected a start event"
        start = events[0]
        assert start["event"] == "start"
        assert start["request_id"].startswith("req-")

    def test_request_ids_are_sequential_per_server(self, harness):  # noqa: F811
        h = _unix_server(harness)
        seen = []
        with ServiceClient.connect(h.address) as client:
            for _ in range(3):
                events: list = []
                client.request("classify", circuit="c17", on_event=events.append)
                seen.append(events[0]["request_id"])
        numbers = [int(rid.split("-")[1]) for rid in seen]
        assert numbers == sorted(numbers)
        assert len(set(numbers)) == 3
