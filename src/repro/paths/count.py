"""Exact path counting by dynamic programming (big integers).

The paper's Heuristic 1 and its Table II "total no. of logical paths"
column both rest on the fact that path counts are computable in linear
time without enumeration (Section V: "computation of such an input sort
simply corresponds to path counting").  Counts are exact Python ints, so
circuits with 10^20 paths (c6288-scale) are handled.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.flat import K_PI, K_PO
from repro.circuit.netlist import Circuit
from repro.obs import get_registry


@dataclass(frozen=True)
class PathCounts:
    """All path-count DP tables for one circuit.

    ``up[g]``    — number of PI→g paths (paths ending at g's output);
    ``down[g]``  — number of g→PO paths (starting at g's output; 1 for POs);
    ``through_lead[l]`` — |P(l)|, the physical paths using lead ``l``
    (Definition 8a); equals ``up[src(l)] * down[dst(l)]``.
    """

    circuit: Circuit
    up: tuple[int, ...]
    down: tuple[int, ...]
    through_lead: tuple[int, ...]

    @property
    def total_physical(self) -> int:
        """Total number of physical paths PI→PO."""
        return sum(self.up[po] for po in self.circuit.outputs)

    @property
    def total_logical(self) -> int:
        """Total number of logical paths: two per physical path."""
        return 2 * self.total_physical

    def physical_through_lead(self, lead: int) -> int:
        """|P(l)| of Definition 8a."""
        return self.through_lead[lead]

    def logical_through_lead(self, lead: int) -> int:
        """|LP(l)| = 2 |P(l)|."""
        return 2 * self.through_lead[lead]

    def controlling_logical_through_lead(self, lead: int) -> int:
        """|LP_c(l)| — logical paths through ``l`` whose transition has
        the controlling final value of the destination gate.  Equals
        |P(l)| (Remark 4): exactly one of the two logical paths per
        physical path has the controlling final value at ``l``."""
        return self.through_lead[lead]


def count_paths(circuit: Circuit) -> PathCounts:
    """Compute all DP path counts for ``circuit`` in one linear pass.

    Runs over the flat IR's CSR adjacency (``circuit.flat``): the two DP
    sweeps are straight index arithmetic over the ``fanin_gates`` /
    ``fanout_dst`` arrays, and the per-lead products fall out of the fanin
    CSR doubling as the lead table.
    """
    get_registry().counter("paths.count_calls").inc()
    flat = circuit.flat
    n = flat.num_gates
    kind = flat.kind
    fanin_start = flat.fanin_start
    fanin_gates = flat.fanin_gates
    fanout_start = flat.fanout_start
    fanout_dst = flat.fanout_dst
    up = [0] * n
    for gid in flat.topo:
        if kind[gid] == K_PI:
            up[gid] = 1
        else:
            up[gid] = sum(
                up[fanin_gates[i]]
                for i in range(fanin_start[gid], fanin_start[gid + 1])
            )
    down = [0] * n
    for gid in reversed(flat.topo):
        if kind[gid] == K_PO:
            down[gid] = 1
        else:
            down[gid] = sum(
                down[fanout_dst[i]]
                for i in range(fanout_start[gid], fanout_start[gid + 1])
            )
    lead_dst = flat.lead_dst
    through = [
        up[fanin_gates[lead]] * down[lead_dst[lead]]
        for lead in range(flat.num_leads)
    ]
    return PathCounts(
        circuit=circuit,
        up=tuple(up),
        down=tuple(down),
        through_lead=tuple(through),
    )
