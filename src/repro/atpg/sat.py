"""A compact incremental CDCL SAT solver (two-watched literals, 1UIP
learning, activity-based branching, phase saving, geometric restarts,
MiniSat-style assumption handling).

Built from scratch because the environment is offline and the baseline
RD-identification of [1] needs redundancy checks (UNSAT proofs) on
good/faulty miters, while the exact-verdict subsystem
(:mod:`repro.verdict`) issues thousands of per-path queries against one
circuit encoding.  The solver is therefore *incremental*: assumptions
are planted as decisions at levels ``1..k`` (never as permanent level-0
facts), the trail is fully unwound after every call, and learned
clauses are retained across calls so later queries reuse earlier
conflict analysis.  ``_ok`` goes false only when the *formula itself*
is unsatisfiable; an UNSAT answer under assumptions leaves the instance
ready for the next query.

Usage::

    solver = Solver(cnf)
    r1 = solver.solve(assumptions=[3, -7])
    r2 = solver.solve(assumptions=[-3])   # independent of the first call
    if r2.sat:
        print(r2.model[3])

``SolveResult`` carries per-call statistics (conflicts, decisions,
learned-clause reuse hits); cumulative totals live on
:attr:`Solver.stats`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.atpg.cnf import CNF

_UNASSIGNED = -1


@dataclass
class SolveResult:
    """SAT outcome; ``model[v]`` (1-based) is meaningful when ``sat``."""

    sat: bool
    model: list | None = None
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    learned_reuse: int = 0
    restarts: int = 0

    def __bool__(self) -> bool:
        return self.sat


@dataclass
class SolverStats:
    """Cumulative counters across every ``solve`` call on one instance."""

    solves: int = 0
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    learned: int = 0
    learned_dropped: int = 0
    learned_reuse: int = 0
    restarts: int = 0

    def to_dict(self) -> dict:
        return {
            "solves": self.solves,
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "learned": self.learned,
            "learned_dropped": self.learned_dropped,
            "learned_reuse": self.learned_reuse,
            "restarts": self.restarts,
        }


class Solver:
    """Incremental CDCL solver over a :class:`CNF`.

    One instance serves many queries: each ``solve(assumptions=...)``
    call decides its assumptions at levels ``1..k``, searches below
    them, and unwinds the trail to level 0 before returning, so no
    assumption ever leaks into a later call.  Learned clauses (which
    are consequences of the formula alone, never of the assumptions)
    are kept between calls; a clause learned in one call that
    propagates or conflicts in a later call counts as a
    ``learned_reuse`` hit.
    """

    def __init__(self, cnf: CNF) -> None:
        self._num_vars = cnf.num_vars
        n = cnf.num_vars + 1
        self._assign: list[int] = [_UNASSIGNED] * n
        self._level: list[int] = [0] * n
        self._reason: list[int] = [-1] * n
        self._activity: list[float] = [0.0] * n
        self._phase: list[int] = [0] * n
        self._trail: list[int] = []  # packed literals, in assignment order
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._clauses: list[list[int]] = []
        #: epoch (solve ordinal) each clause was learned in; 0 = original
        self._clause_epoch: list[int] = []
        self._watches: list[list[int]] = [[] for _ in range(2 * n + 2)]
        self._var_inc = 1.0
        self._ok = True
        self._units: list[int] = []
        self._epoch = 0
        self._reuse_hits = 0
        self._propagation_count = 0
        self.stats = SolverStats()
        for clause in cnf.clauses:
            self._add_clause([self._pack(lit) for lit in clause])
        self._num_original = len(self._clauses)

    # -- literal packing: var v -> 2v (positive) / 2v+1 (negative) ------
    @staticmethod
    def _pack(lit: int) -> int:
        return 2 * lit if lit > 0 else -2 * lit + 1

    # ------------------------------------------------------------------
    def _add_clause(self, lits: list[int]) -> None:
        # Deduplicate; drop tautologies.
        seen = set()
        out = []
        for lit in lits:
            if lit ^ 1 in seen:
                return  # clause contains v and !v: always true
            if lit not in seen:
                seen.add(lit)
                out.append(lit)
        if len(out) == 1:
            self._units.append(out[0])
            return
        idx = len(self._clauses)
        self._clauses.append(out)
        self._clause_epoch.append(0)
        self._watches[out[0]].append(idx)
        self._watches[out[1]].append(idx)

    # ------------------------------------------------------------------
    def _lit_value(self, lit: int) -> int:
        v = self._assign[lit >> 1]
        if v == _UNASSIGNED:
            return _UNASSIGNED
        return v ^ (lit & 1)

    def _enqueue(self, lit: int, reason: int) -> bool:
        var = lit >> 1
        value = 1 - (lit & 1)
        if self._assign[var] != _UNASSIGNED:
            return self._assign[var] == value
        self._assign[var] = value
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _propagate(self) -> int:
        """BCP.  Returns a conflicting clause index, or -1."""
        epochs = self._clause_epoch
        current_epoch = self._epoch
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            self._propagation_count += 1
            false_lit = lit ^ 1
            watch_list = self._watches[false_lit]
            i = 0
            while i < len(watch_list):
                ci = watch_list[i]
                clause = self._clauses[ci]
                # Ensure the false literal is at position 1.
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._lit_value(first) == 1:
                    i += 1
                    continue
                # Look for a new literal to watch.
                moved = False
                for k in range(2, len(clause)):
                    if self._lit_value(clause[k]) != 0:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches[clause[1]].append(ci)
                        watch_list[i] = watch_list[-1]
                        watch_list.pop()
                        moved = True
                        break
                if moved:
                    continue
                ep = epochs[ci]
                if ep and ep != current_epoch:
                    self._reuse_hits += 1
                # Clause is unit or conflicting.
                if self._lit_value(first) == 0:
                    self._qhead = len(self._trail)
                    return ci
                self._enqueue(first, ci)
                i += 1
        return -1

    # ------------------------------------------------------------------
    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100

    def _analyze(self, conflict: int) -> tuple[list[int], int]:
        """1UIP conflict analysis: returns (learnt clause, backjump level).
        The asserting literal is placed first in the learnt clause."""
        learnt: list[int] = []
        seen = [False] * (self._num_vars + 1)
        counter = 0
        lit = -1
        clause = self._clauses[conflict]
        index = len(self._trail)
        current_level = len(self._trail_lim)
        resolved_var = -1
        while True:
            for q in clause:
                var = q >> 1
                if var == resolved_var:
                    continue
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self._level[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(q)
            # Pick the next trail literal (reverse order) that is seen.
            while True:
                index -= 1
                lit = self._trail[index]
                if seen[lit >> 1]:
                    break
            var = lit >> 1
            seen[var] = False
            counter -= 1
            if counter == 0:
                break
            clause = self._clauses[self._reason[var]]
            resolved_var = var
        learnt.insert(0, lit ^ 1)
        if len(learnt) == 1:
            return learnt, 0
        back_level = max(self._level[q >> 1] for q in learnt[1:])
        return learnt, back_level

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        for lit in reversed(self._trail[limit:]):
            var = lit >> 1
            self._phase[var] = self._assign[var]
            self._assign[var] = _UNASSIGNED
            self._reason[var] = -1
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    def _decide(self) -> int:
        best = -1
        best_act = -1.0
        assign = self._assign
        activity = self._activity
        for var in range(1, self._num_vars + 1):
            if assign[var] == _UNASSIGNED and activity[var] > best_act:
                best = var
                best_act = activity[var]
        if best == -1:
            return -1
        return 2 * best + (1 - self._phase[best])

    # ------------------------------------------------------------------
    def _reduce_learnts(self) -> None:
        """Drop the oldest half of long learned clauses (level 0 only).

        Keeps binary/ternary learnts (cheap, high-value) and any clause
        that is currently the reason of a level-0 fact.
        """
        protected = {
            self._reason[lit >> 1]
            for lit in self._trail
            if self._reason[lit >> 1] != -1
        }
        droppable = [
            i
            for i in range(len(self._clauses))
            if self._clause_epoch[i]
            and len(self._clauses[i]) > 3
            and i not in protected
        ]
        if len(droppable) < 2:
            return
        drop = set(droppable[: len(droppable) // 2])
        remap: dict[int, int] = {}
        new_clauses: list[list[int]] = []
        new_epochs: list[int] = []
        for i, (cl, ep) in enumerate(zip(self._clauses, self._clause_epoch)):
            if i in drop:
                continue
            remap[i] = len(new_clauses)
            new_clauses.append(cl)
            new_epochs.append(ep)
        self._clauses = new_clauses
        self._clause_epoch = new_epochs
        for var in range(1, self._num_vars + 1):
            r = self._reason[var]
            if r != -1:
                self._reason[var] = remap[r]
        self._watches = [[] for _ in range(2 * (self._num_vars + 1) + 2)]
        for idx, cl in enumerate(self._clauses):
            self._watches[cl[0]].append(idx)
            self._watches[cl[1]].append(idx)
        self.stats.learned_dropped += len(drop)

    def _result(
        self,
        sat: bool,
        model: list | None,
        conflicts: int,
        decisions: int,
        propagations: int,
        reuse: int,
        restarts: int,
    ) -> SolveResult:
        self.stats.conflicts += conflicts
        self.stats.decisions += decisions
        self.stats.propagations += propagations
        self.stats.learned_reuse += reuse
        self.stats.restarts += restarts
        return SolveResult(
            sat=sat,
            model=model,
            conflicts=conflicts,
            decisions=decisions,
            propagations=propagations,
            learned_reuse=reuse,
            restarts=restarts,
        )

    # ------------------------------------------------------------------
    def solve(self, assumptions: list | None = None, max_conflicts: int | None = None) -> SolveResult:
        """Run CDCL search under ``assumptions`` (DIMACS literals).

        Assumptions are decided at levels ``1..k`` — they never outlive
        this call, and an UNSAT answer under assumptions leaves the
        instance usable.  ``max_conflicts`` bounds the search (raises
        RuntimeError when exceeded with the trail cleanly unwound —
        redundancy analysis treats that as "unknown" and the caller
        decides)."""
        if not self._ok:
            return SolveResult(sat=False)
        self._epoch += 1
        self.stats.solves += 1
        conflicts = 0
        decisions = 0
        restarts = 0
        reuse_start = self._reuse_hits
        prop_start = self._propagation_count
        self._backtrack(0)
        for lit in self._units:
            if not self._enqueue(lit, -1):
                self._ok = False
                return self._result(False, None, 0, 0, 0, 0, 0)
        self._units.clear()
        if (
            len(self._clauses) - self._num_original
            > max(2000, 4 * self._num_original)
        ):
            self._reduce_learnts()
        assumps = [self._pack(lit) for lit in assumptions or []]
        restart_limit = 100
        restart_conflicts = 0

        def finish(sat: bool, model: list | None) -> SolveResult:
            self._backtrack(0)
            return self._result(
                sat,
                model,
                conflicts,
                decisions,
                self._propagation_count - prop_start,
                self._reuse_hits - reuse_start,
                restarts,
            )

        while True:
            conflict = self._propagate()
            if conflict != -1:
                conflicts += 1
                restart_conflicts += 1
                if max_conflicts is not None and conflicts > max_conflicts:
                    finish(False, None)
                    raise RuntimeError("conflict budget exhausted")
                if not self._trail_lim:
                    # Conflict at level 0: the formula itself is UNSAT.
                    self._ok = False
                    return finish(False, None)
                learnt, back_level = self._analyze(conflict)
                self._backtrack(back_level)
                if len(learnt) == 1:
                    # A learnt unit is a consequence of the formula alone
                    # (assumptions appear in learnt clauses as literals,
                    # never as resolved facts), so it is a permanent fact.
                    if not self._enqueue(learnt[0], -1):
                        self._ok = False
                        return finish(False, None)
                else:
                    idx = len(self._clauses)
                    self._clauses.append(learnt)
                    self._clause_epoch.append(self._epoch)
                    self.stats.learned += 1
                    self._watches[learnt[0]].append(idx)
                    self._watches[learnt[1]].append(idx)
                    self._enqueue(learnt[0], idx)
                self._var_inc *= 1.05
                continue
            if restart_conflicts >= restart_limit and self._trail_lim:
                restart_conflicts = 0
                restart_limit = int(restart_limit * 1.5)
                restarts += 1
                self._backtrack(0)
                continue
            # Re-establish pending assumptions as the next decisions.
            lit = -1
            failed = False
            while len(self._trail_lim) < len(assumps):
                p = assumps[len(self._trail_lim)]
                v = self._lit_value(p)
                if v == 1:
                    # Already implied: push an empty decision level so
                    # assumption i always sits at level <= i+1.
                    self._trail_lim.append(len(self._trail))
                elif v == 0:
                    # Contradicts the formula or an earlier assumption:
                    # UNSAT under these assumptions, solver stays usable.
                    failed = True
                    break
                else:
                    lit = p
                    break
            if failed:
                return finish(False, None)
            if lit == -1:
                lit = self._decide()
                if lit == -1:
                    model = [False] * (self._num_vars + 1)
                    for var in range(1, self._num_vars + 1):
                        model[var] = self._assign[var] == 1
                    return finish(True, model)
                decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(lit, -1)


def brute_force_sat(cnf: CNF) -> bool:
    """Exhaustive satisfiability oracle for testing the solver."""
    if cnf.num_vars > 22:
        raise ValueError("brute force refused beyond 22 variables")
    for code in range(1 << cnf.num_vars):
        model = [False] + [bool((code >> i) & 1) for i in range(cnf.num_vars)]
        if cnf.evaluate(model):
            return True
    return False
