"""Unit tests for explicit path enumeration."""

import pytest

from repro.circuit.examples import paper_example_circuit
from repro.paths.enumerate import enumerate_logical_paths, enumerate_physical_paths
from repro.paths.path import FALLING, RISING


def test_expected_paths_of_paper_example():
    circuit = paper_example_circuit()
    descriptions = sorted(
        p.describe(circuit) for p in enumerate_physical_paths(circuit)
    )
    assert descriptions == [
        "a -> g_or -> out",
        "b -> g_and -> g_or -> out",
        "c -> g_and -> g_or -> out",
        "c -> g_or -> out",
    ]


def test_logical_paths_pair_up():
    circuit = paper_example_circuit()
    logical = list(enumerate_logical_paths(circuit))
    assert len(logical) == 8
    rising = [lp for lp in logical if lp.final_value == RISING]
    falling = [lp for lp in logical if lp.final_value == FALLING]
    assert len(rising) == len(falling) == 4
    assert {lp.path for lp in rising} == {lp.path for lp in falling}


def test_paths_are_unique():
    circuit = paper_example_circuit()
    paths = list(enumerate_physical_paths(circuit))
    assert len(set(paths)) == len(paths)


def test_limit_guard():
    from repro.gen.parity import parity_tree

    circuit = parity_tree(16)
    with pytest.raises(RuntimeError):
        list(enumerate_physical_paths(circuit, limit=10))


def test_limit_none_disables_guard():
    circuit = paper_example_circuit()
    assert len(list(enumerate_physical_paths(circuit, limit=None))) == 4
