"""Parameterized scaling sweeps over generator families.

The data behind the Table-II narrative: how path counts and classifier
cost grow with circuit size, per family.  Used by the scaling example
and the growth tests; each point records exact counts and one FS
classification (skipped above the enumeration budget, mirroring the
paper's "could not be completed" entries).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.circuit.netlist import Circuit
from repro.classify.conditions import Criterion
from repro.classify.engine import classify
from repro.paths.count import count_paths
from repro.util.timer import Stopwatch


@dataclass(frozen=True)
class SweepPoint:
    """One (parameter, circuit) measurement."""

    parameter: int
    gates: int
    total_logical: int
    accepted: "int | None"  # None = classification skipped (too large)
    classify_seconds: "float | None"

    @property
    def rd_percent(self) -> "float | None":
        if self.accepted is None or not self.total_logical:
            return None
        return 100.0 * (1 - self.accepted / self.total_logical)


def sweep_family(
    family: Callable[[int], Circuit],
    parameters: "Sequence[int] | Iterable[int]",
    classification_budget: int = 500_000,
) -> "list[SweepPoint]":
    """Measure one generator family across ``parameters``.

    Classification (FS criterion) runs only while the *accepted* path
    count stays within ``classification_budget``; larger instances are
    counted exactly but not enumerated.
    """
    points: list = []
    for parameter in parameters:
        circuit = family(parameter)
        counts = count_paths(circuit)
        accepted = None
        seconds = None
        try:
            with Stopwatch() as sw:
                result = classify(
                    circuit, Criterion.FS, max_accepted=classification_budget
                )
            accepted = result.accepted
            seconds = sw.elapsed
        except RuntimeError:
            pass  # over budget: counting-only point
        points.append(
            SweepPoint(
                parameter=parameter,
                gates=circuit.num_gates,
                total_logical=counts.total_logical,
                accepted=accepted,
                classify_seconds=seconds,
            )
        )
    return points


def growth_factors(points: "Sequence[SweepPoint]") -> "list[float]":
    """Consecutive path-count ratios — the family's explosion rate."""
    return [
        points[i + 1].total_logical / points[i].total_logical
        for i in range(len(points) - 1)
        if points[i].total_logical
    ]
