"""Parameterized scaling sweeps over generator families.

The data behind the Table-II narrative: how path counts and classifier
cost grow with circuit size, per family.  Used by the scaling example
and the growth tests; each point records exact counts and one FS
classification (skipped above the enumeration budget, mirroring the
paper's "could not be completed" entries).

Circuits are built serially (generator families are often lambdas,
which do not pickle), but the measurements themselves fan out across a
process pool when ``jobs > 1``; each point runs through its own
:class:`~repro.classify.session.CircuitSession`, so the exact count
feeding ``total_logical`` is also the one the classifier reports
against — one DP per point.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.circuit.netlist import Circuit
from repro.classify.conditions import Criterion
from repro.classify.session import CircuitSession
from repro.util.timer import Stopwatch


@dataclass(frozen=True)
class SweepPoint:
    """One (parameter, circuit) measurement."""

    parameter: int
    gates: int
    total_logical: int
    accepted: "int | None"  # None = classification skipped (too large)
    classify_seconds: "float | None"

    @property
    def rd_percent(self) -> "float | None":
        if self.accepted is None or not self.total_logical:
            return None
        return 100.0 * (1 - self.accepted / self.total_logical)


def _sweep_task(payload: "tuple[int, Circuit, int]") -> SweepPoint:
    """Measure one prebuilt circuit (top-level: picklable for the pool)."""
    parameter, circuit, classification_budget = payload
    session = CircuitSession(circuit)
    total_logical = session.counts.total_logical
    accepted = None
    seconds = None
    try:
        with Stopwatch() as sw:
            result = session.classify(
                Criterion.FS, max_accepted=classification_budget
            )
        accepted = result.accepted
        seconds = sw.elapsed
    except RuntimeError:
        pass  # over budget: counting-only point
    return SweepPoint(
        parameter=parameter,
        gates=circuit.num_gates,
        total_logical=total_logical,
        accepted=accepted,
        classify_seconds=seconds,
    )


def sweep_family(
    family: Callable[[int], Circuit],
    parameters: "Sequence[int] | Iterable[int]",
    classification_budget: int = 500_000,
    jobs: int = 1,
) -> "list[SweepPoint]":
    """Measure one generator family across ``parameters``.

    Classification (FS criterion) runs only while the *accepted* path
    count stays within ``classification_budget``; larger instances are
    counted exactly but not enumerated.  ``jobs > 1`` measures the
    points concurrently (point order and values are unchanged).
    """
    work = [
        (parameter, family(parameter), classification_budget)
        for parameter in parameters
    ]
    if jobs <= 1 or len(work) <= 1:
        return [_sweep_task(payload) for payload in work]
    with ProcessPoolExecutor(max_workers=max(1, min(jobs, len(work)))) as pool:
        return list(pool.map(_sweep_task, work))


def growth_factors(points: "Sequence[SweepPoint]") -> "list[float]":
    """Consecutive path-count ratios — the family's explosion rate."""
    return [
        points[i + 1].total_logical / points[i].total_logical
        for i in range(len(points) - 1)
        if points[i].total_logical
    ]
