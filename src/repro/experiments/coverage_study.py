"""Fault-coverage study: does a better input sort buy coverage?

Section III argues that minimising ``|LP(σ)|`` *maximises the fault
coverage*, defined as (robustly testable selected paths) / ``|LP(σ)|``
— the untestable selected paths are the DFT liabilities.  This module
estimates that coverage for a given sort by sampling the selected set
and SAT-checking robust testability per sample, and compares sorts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.circuit.netlist import Circuit
from repro.classify.conditions import Criterion
from repro.classify.session import CircuitSession
from repro.delaytest.testability import is_robustly_testable
from repro.experiments.supervisor import TaskRunner
from repro.sorting.input_sort import InputSort


@dataclass(frozen=True)
class CoverageEstimate:
    """Sampled robust fault coverage of one selection."""

    circuit_name: str
    sort_label: str
    selected: int
    sampled: int
    testable: int

    @property
    def coverage(self) -> float:
        if not self.sampled:
            return 1.0
        return self.testable / self.sampled

    def __str__(self) -> str:
        return (
            f"{self.circuit_name}[{self.sort_label}]: |LP^sup| = "
            f"{self.selected}, sampled {self.sampled}, robust coverage "
            f"~{100 * self.coverage:.1f}%"
        )


def estimate_coverage(
    circuit: Circuit,
    sort: InputSort,
    sort_label: str = "sort",
    sample_size: int = 100,
    seed: int = 0,
    max_accepted: "int | None" = 2_000_000,
    session: "CircuitSession | None" = None,
) -> CoverageEstimate:
    """Sampled Theorem-1 fault coverage of ``LP^sup(σ^π)``."""
    if session is None:
        session = CircuitSession(circuit)
    selected: list = []
    result = session.classify(
        Criterion.SIGMA_PI,
        sort=sort,
        max_accepted=max_accepted,
        on_path=selected.append,
    )
    rng = random.Random(seed)
    if len(selected) <= sample_size:
        sample = selected
    else:
        sample = rng.sample(selected, sample_size)
    testable = sum(
        1 for lp in sample if is_robustly_testable(circuit, lp)
    )
    return CoverageEstimate(
        circuit_name=circuit.name,
        sort_label=sort_label,
        selected=result.accepted,
        sampled=len(sample),
        testable=testable,
    )


def _coverage_task(
    payload: "tuple[Circuit, InputSort, str, int, int]",
) -> CoverageEstimate:
    """Top-level worker (picklable) for the sort-comparison pool."""
    circuit, sort, label, sample_size, seed = payload
    return estimate_coverage(
        circuit, sort, sort_label=label, sample_size=sample_size, seed=seed
    )


def compare_sorts(
    circuit: Circuit,
    sorts: "dict[str, InputSort]",
    sample_size: int = 100,
    seed: int = 0,
    jobs: int = 1,
    *,
    task_timeout: "float | None" = None,
    max_retries: "int | None" = None,
    runner: "TaskRunner | None" = None,
) -> "dict[str, CoverageEstimate]":
    """Coverage estimates for several sorts on one circuit.

    With ``jobs > 1`` the per-sort estimates (one classification pass +
    SAT testability sampling each) fan out across the supervised
    :class:`~repro.experiments.supervisor.TaskRunner` — crashed workers
    are retried then degraded in-process, and each worker's telemetry
    is merged back into this process's registry.  The seeded sampling
    makes results identical across job counts.  A sort whose task fails
    even after degradation maps to a
    :class:`~repro.experiments.supervisor.RowFailure` instead of an
    estimate.
    """
    labels = list(sorts)
    work = [
        (circuit, sorts[label], label, sample_size, seed) for label in labels
    ]
    if runner is None:
        extra = {} if max_retries is None else {"max_retries": max_retries}
        runner = TaskRunner(jobs=jobs, **extra)
    budgets = None
    if task_timeout is not None and runner.jobs > 1:
        budgets = [task_timeout] * len(work)
    # One shared session would be wasted across processes; per-call
    # sessions still dedupe the counts/tables within each estimate.
    estimates = runner.map(
        _coverage_task,
        work,
        labels=[f"{circuit.name}/{label}" for label in labels],
        budgets=budgets,
    )
    return dict(zip(labels, estimates))
