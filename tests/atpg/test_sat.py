"""Unit and fuzz tests for the CDCL SAT solver."""

import random

import pytest

from repro.atpg.cnf import CNF
from repro.atpg.sat import Solver, brute_force_sat


class TestBasics:
    def test_trivial_sat(self):
        cnf = CNF(1)
        cnf.add_clause([1])
        result = Solver(cnf).solve()
        assert result.sat
        assert result.model[1] is True

    def test_trivial_unsat(self):
        cnf = CNF(1)
        cnf.add_clause([1])
        cnf.add_clause([-1])
        assert not Solver(cnf).solve().sat

    def test_tautology_clause_dropped(self):
        cnf = CNF(2)
        cnf.add_clause([1, -1])
        cnf.add_clause([2])
        result = Solver(cnf).solve()
        assert result.sat and result.model[2]

    def test_empty_formula_sat(self):
        assert Solver(CNF(3)).solve().sat

    def test_bool_conversion(self):
        cnf = CNF(1)
        cnf.add_clause([1])
        assert Solver(cnf).solve()

    def test_requires_learning(self):
        """Pigeonhole PHP(3,2): 3 pigeons, 2 holes — small but forces
        genuine conflict analysis."""
        cnf = CNF(6)  # var(p,h) = 2*p + h + 1 for p in 0..2, h in 0..1
        v = lambda p, h: 2 * p + h + 1
        for p in range(3):
            cnf.add_clause([v(p, 0), v(p, 1)])
        for h in range(2):
            for p1 in range(3):
                for p2 in range(p1 + 1, 3):
                    cnf.add_clause([-v(p1, h), -v(p2, h)])
        assert not Solver(cnf).solve().sat


class TestAssumptions:
    def test_assumptions_restrict_models(self):
        cnf = CNF(2)
        cnf.add_clause([1, 2])
        result = Solver(cnf).solve(assumptions=[-1])
        assert result.sat and result.model[2]

    def test_conflicting_assumptions(self):
        cnf = CNF(2)
        cnf.add_clause([1])
        assert not Solver(cnf).solve(assumptions=[-1]).sat

    def test_assumption_pair_unsat(self):
        cnf = CNF(2)
        cnf.add_clause([-1, -2])
        assert not Solver(cnf).solve(assumptions=[1, 2]).sat


class TestFuzzAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_formulas(self, seed):
        rng = random.Random(seed)
        for _ in range(60):
            nv = rng.randint(3, 11)
            cnf = CNF(nv)
            for _ in range(rng.randint(2, 40)):
                k = rng.randint(1, 4)
                cnf.add_clause(
                    [
                        (v if rng.random() < 0.5 else -v)
                        for v in (rng.randint(1, nv) for _ in range(k))
                    ]
                )
            expected = brute_force_sat(cnf)
            result = Solver(cnf).solve()
            assert result.sat == expected
            if result.sat:
                assert cnf.evaluate(result.model)


def test_conflict_budget():
    # An unsatisfiable pigeonhole with a tiny conflict budget must raise.
    cnf = CNF(12)
    v = lambda p, h: 3 * p + h + 1
    for p in range(4):
        cnf.add_clause([v(p, 0), v(p, 1), v(p, 2)])
    for h in range(3):
        for p1 in range(4):
            for p2 in range(p1 + 1, 4):
                cnf.add_clause([-v(p1, h), -v(p2, h)])
    with pytest.raises(RuntimeError):
        Solver(cnf).solve(max_conflicts=1)


def test_brute_force_refuses_wide():
    with pytest.raises(ValueError):
        brute_force_sat(CNF(30))


class TestIncremental:
    """The solver is reusable: assumptions are decisions, not facts."""

    def test_assumptions_do_not_leak_between_solves(self):
        # Regression: solve() used to plant assumptions as level-0 facts,
        # so a second call silently inherited the first call's assumptions.
        cnf = CNF(2)
        cnf.add_clause([1, 2])
        solver = Solver(cnf)
        r1 = solver.solve(assumptions=[-1])
        assert r1.sat and r1.model[2] is True
        # Under the old behaviour -1 persisted, making this UNSAT.
        r2 = solver.solve(assumptions=[-2])
        assert r2.sat and r2.model[1] is True
        r3 = solver.solve()
        assert r3.sat

    def test_unsat_under_assumptions_does_not_poison_solver(self):
        cnf = CNF(1)
        cnf.add_clause([1])
        solver = Solver(cnf)
        assert not solver.solve(assumptions=[-1]).sat
        # The formula is still satisfiable and the instance still usable.
        assert solver.solve().sat
        assert not solver.solve(assumptions=[-1]).sat

    def test_contradictory_assumption_pair_recoverable(self):
        cnf = CNF(3)
        cnf.add_clause([1, 2, 3])
        solver = Solver(cnf)
        assert not solver.solve(assumptions=[2, -2]).sat
        assert solver.solve(assumptions=[2]).sat

    def test_learned_clause_reuse_across_solves(self):
        # (!a | x | y) & (!a | x | !y): assuming a & !x conflicts and
        # learns (!a | x); a later solve under just [a] must propagate
        # from that retained clause — counted as a reuse hit.
        a, x, y = 1, 2, 3
        cnf = CNF(3)
        cnf.add_clause([-a, x, y])
        cnf.add_clause([-a, x, -y])
        solver = Solver(cnf)
        r1 = solver.solve(assumptions=[a, -x])
        assert not r1.sat and r1.conflicts >= 1
        r2 = solver.solve(assumptions=[a])
        assert r2.sat and r2.model[x] is True
        assert r2.learned_reuse >= 1
        assert solver.stats.learned >= 1
        assert solver.stats.learned_reuse >= 1

    def test_learned_units_make_repeat_queries_cheap(self):
        # Pigeonhole PHP(3,2) gated behind activation literal a: the
        # first solve under [a] learns its way down to the unit !a, so
        # the second identical query answers without a single conflict.
        cnf = CNF(7)
        a = 7
        v = lambda p, h: 2 * p + h + 1
        for p in range(3):
            cnf.add_clause([-a, v(p, 0), v(p, 1)])
        for h in range(2):
            for p1 in range(3):
                for p2 in range(p1 + 1, 3):
                    cnf.add_clause([-a, -v(p1, h), -v(p2, h)])
        solver = Solver(cnf)
        r1 = solver.solve(assumptions=[a])
        assert not r1.sat and r1.conflicts >= 1
        r2 = solver.solve(assumptions=[a])
        assert not r2.sat and r2.conflicts == 0
        assert solver.solve(assumptions=[-a]).sat

    def test_budget_exhaustion_leaves_solver_usable(self):
        cnf = CNF(12)
        v = lambda p, h: 3 * p + h + 1
        for p in range(4):
            cnf.add_clause([v(p, 0), v(p, 1), v(p, 2)])
        for h in range(3):
            for p1 in range(4):
                for p2 in range(p1 + 1, 4):
                    cnf.add_clause([-v(p1, h), -v(p2, h)])
        solver = Solver(cnf)
        with pytest.raises(RuntimeError):
            solver.solve(max_conflicts=1)
        # The trail was unwound: an unbudgeted call settles the formula.
        assert not solver.solve().sat

    def test_incremental_fuzz_against_fresh_instances(self):
        for seed in range(6):
            rng = random.Random(3000 + seed)
            nv = rng.randint(4, 9)
            cnf = CNF(nv)
            for _ in range(rng.randint(6, 26)):
                k = rng.randint(1, 3)
                cnf.add_clause(
                    [
                        (v if rng.random() < 0.5 else -v)
                        for v in (rng.randint(1, nv) for _ in range(k))
                    ]
                )
            incremental = Solver(cnf)
            for _ in range(12):
                n_assume = rng.randint(0, min(3, nv))
                lits = rng.sample(range(1, nv + 1), n_assume)
                assumptions = [
                    (v if rng.random() < 0.5 else -v) for v in lits
                ]
                # Ground truth: brute force with the assumptions as units.
                ref = CNF(nv)
                for clause in cnf.clauses:
                    ref.add_clause(list(clause))
                for lit in assumptions:
                    ref.add_clause([lit])
                expected = brute_force_sat(ref)
                result = incremental.solve(assumptions=assumptions)
                assert result.sat == expected, (seed, assumptions)
                if result.sat:
                    assert cnf.evaluate(result.model)
                    for lit in assumptions:
                        want = lit > 0
                        assert result.model[abs(lit)] is want
