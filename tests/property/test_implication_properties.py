"""Property-based tests: the implication engine never reports a false
conflict, and its derived values are logically entailed."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.implication import ImplicationEngine
from repro.logic.simulate import all_vectors, simulate
from repro.logic.values import X

from tests.strategies import small_circuits


@settings(max_examples=50, deadline=None)
@given(circuit=small_circuits(), data=st.data())
def test_no_false_conflicts(circuit, data):
    """If the engine reports a conflict for a set of net assumptions, no
    input vector realises them (brute-force check)."""
    num = data.draw(st.integers(1, 3))
    assumptions = [
        (
            data.draw(st.integers(0, circuit.num_gates - 1)),
            data.draw(st.integers(0, 1)),
        )
        for _ in range(num)
    ]
    engine = ImplicationEngine(circuit)
    ok = engine.assume_all(assumptions)
    if not ok:
        for vector in all_vectors(len(circuit.inputs)):
            values = simulate(circuit, vector)
            assert not all(values[g] == v for g, v in assumptions)


@settings(max_examples=50, deadline=None)
@given(circuit=small_circuits(), data=st.data())
def test_derived_values_are_entailed(circuit, data):
    """Every value the engine derives must hold in every input vector
    consistent with the assumptions."""
    gate = data.draw(st.integers(0, circuit.num_gates - 1))
    value = data.draw(st.integers(0, 1))
    engine = ImplicationEngine(circuit)
    if not engine.assume(gate, value):
        return
    derived = engine.assignment()
    consistent = [
        simulate(circuit, vector)
        for vector in all_vectors(len(circuit.inputs))
        if simulate(circuit, vector)[gate] == value
    ]
    for values in consistent:
        for g, v in derived.items():
            assert values[g] == v, (
                f"derived {circuit.gate_name(g)}={v} not entailed"
            )


@settings(max_examples=40, deadline=None)
@given(circuit=small_circuits(), data=st.data())
def test_undo_restores_exactly(circuit, data):
    engine = ImplicationEngine(circuit)
    snapshots = []
    for _ in range(data.draw(st.integers(1, 4))):
        snapshots.append(
            (engine.mark(), [engine.value(g) for g in range(circuit.num_gates)])
        )
        gate = data.draw(st.integers(0, circuit.num_gates - 1))
        value = data.draw(st.integers(0, 1))
        engine.assume(gate, value)
    for mark, expected in reversed(snapshots):
        engine.undo_to(mark)
        assert [engine.value(g) for g in range(circuit.num_gates)] == expected
