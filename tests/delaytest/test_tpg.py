"""Unit tests for robust test-set generation with compaction."""

import pytest

from repro.classify.conditions import Criterion
from repro.classify.engine import classify
from repro.delaytest.simulator import simulate_test_set
from repro.delaytest.testability import is_robustly_testable
from repro.delaytest.tpg import generate_test_set
from repro.paths.enumerate import enumerate_logical_paths
from repro.sorting.heuristics import heuristic2_sort


def non_rd_targets(circuit):
    targets = []
    classify(
        circuit,
        Criterion.SIGMA_PI,
        sort=heuristic2_sort(circuit),
        on_path=targets.append,
    )
    return targets


class TestOnPaperExample:
    def test_full_coverage_of_optimal_selection(self, example_circuit):
        targets = non_rd_targets(example_circuit)
        assert len(targets) == 5
        result = generate_test_set(example_circuit, targets)
        assert result.coverage == 1.0
        assert not result.untestable
        assert len(result.pairs) <= 5

    def test_untestable_path_reported(self, example_circuit):
        # Include the known-untestable path bA falling as a target.
        targets = list(enumerate_logical_paths(example_circuit))
        result = generate_test_set(example_circuit, targets)
        untestable = {
            lp.describe(example_circuit) for lp in result.untestable
        }
        assert "b -> g_and -> g_or -> out [1->0]" in untestable
        for lp in result.covered:
            assert is_robustly_testable(example_circuit, lp)


class TestSoundnessOfCoverage:
    def test_claimed_coverage_verified_by_simulation(self, small_circuits):
        """Re-simulate the produced pairs: everything marked covered must
        actually be robustly sensitized by some pair."""
        for circuit in small_circuits:
            targets = non_rd_targets(circuit)
            result = generate_test_set(circuit, targets)
            resim = simulate_test_set(circuit, result.pairs)
            for lp in result.covered:
                assert lp in resim.robust, (
                    f"{circuit.name}: {lp.describe(circuit)} claimed but "
                    "not covered"
                )

    def test_every_target_accounted_for(self, small_circuits):
        for circuit in small_circuits:
            targets = set(non_rd_targets(circuit))
            result = generate_test_set(circuit, targets)
            accounted = set(result.covered) | set(result.untestable)
            assert accounted == targets


class TestCompaction:
    def test_simulation_never_increases_pattern_count(self):
        from repro.gen.adders import ripple_carry_adder

        circuit = ripple_carry_adder(3)
        targets = non_rd_targets(circuit)
        compact = generate_test_set(circuit, targets, fault_simulate=True)
        naive = generate_test_set(circuit, targets, fault_simulate=False)
        assert len(compact.pairs) <= len(naive.pairs)
        assert compact.coverage == naive.coverage
        # On an adder, compaction is substantial (many shared patterns).
        assert compact.compaction > 1.5

    def test_metrics(self, example_circuit):
        result = generate_test_set(example_circuit, non_rd_targets(example_circuit))
        assert 0.0 <= result.coverage <= 1.0
        assert result.elapsed >= 0.0
        text = str(result)
        assert "test pairs" in text and "robust coverage" in text

    def test_empty_targets(self, example_circuit):
        result = generate_test_set(example_circuit, [])
        assert result.coverage == 1.0
        assert not result.pairs
