"""Bit-parallel (64-patterns-per-word) logic and fault simulation.

The classical parallel-pattern technique (the paper's reference [6] is
"Parallel pattern fault simulation for path delay faults"): each net
holds a Python int whose bit *i* is the net's value under pattern *i*,
so one pass of bitwise operators simulates arbitrarily many patterns at
once (Python ints are unbounded, so the word width is simply the number
of patterns).

Used as the fast engine behind stuck-at fault grading and random-pattern
coverage experiments; validated bit-for-bit against the scalar simulator.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit


def _eval_gate_words(
    gtype: GateType, inputs: "list[int]", mask: int
) -> int:
    if gtype in (GateType.PO, GateType.BUF):
        return inputs[0]
    if gtype is GateType.NOT:
        return inputs[0] ^ mask
    if gtype is GateType.AND or gtype is GateType.NAND:
        word = mask
        for w in inputs:
            word &= w
        return word ^ mask if gtype is GateType.NAND else word
    if gtype is GateType.OR or gtype is GateType.NOR:
        word = 0
        for w in inputs:
            word |= w
        return word ^ mask if gtype is GateType.NOR else word
    raise ValueError(f"cannot bit-simulate gate type {gtype.name}")


def pack_patterns(patterns: "Sequence[Sequence[int]]") -> "tuple[list[int], int]":
    """Pack pattern rows (one vector per pattern) into per-PI words.

    Returns ``(words, mask)`` where ``words[j]`` is the packed column of
    PI ``j`` and ``mask`` has one bit per pattern.
    """
    if not patterns:
        return [], 0
    width = len(patterns[0])
    words = [0] * width
    for i, vector in enumerate(patterns):
        if len(vector) != width:
            raise ValueError("patterns must all have the same width")
        for j, bit in enumerate(vector):
            if bit:
                words[j] |= 1 << i
    return words, (1 << len(patterns)) - 1


def simulate_words(
    circuit: Circuit,
    pi_words: "Sequence[int]",
    mask: int,
    forced_pins: "dict | None" = None,
) -> "list[int]":
    """One bit-parallel pass; returns a word per gate output.

    ``forced_pins`` maps lead index -> constant 0/1 (stuck-at injection,
    same convention as the Tseitin encoder).
    """
    if len(pi_words) != len(circuit.inputs):
        raise ValueError(
            f"need {len(circuit.inputs)} PI words, got {len(pi_words)}"
        )
    values = [0] * circuit.num_gates
    for pi, word in zip(circuit.inputs, pi_words):
        values[pi] = word & mask
    for gid in circuit.topo_order:
        gtype = circuit.gate_type(gid)
        if gtype is GateType.PI:
            continue
        ins = []
        for pin, src in enumerate(circuit.fanin(gid)):
            if forced_pins:
                lead = circuit.lead_index(gid, pin)
                if lead in forced_pins:
                    ins.append(mask if forced_pins[lead] else 0)
                    continue
            ins.append(values[src])
        values[gid] = _eval_gate_words(gtype, ins, mask)
    return values


def simulate_patterns(
    circuit: Circuit, patterns: "Sequence[Sequence[int]]"
) -> "list[tuple]":
    """Convenience: PO tuples for every pattern, via one packed pass."""
    words, mask = pack_patterns(patterns)
    if not mask:
        return []
    values = simulate_words(circuit, words, mask)
    out = []
    for i in range(len(patterns)):
        out.append(
            tuple((values[po] >> i) & 1 for po in circuit.outputs)
        )
    return out


def detected_faults(
    circuit: Circuit,
    patterns: "Sequence[Sequence[int]]",
    faults: "Iterable",
) -> set:
    """Stuck-at faults from ``faults`` detected by any of ``patterns``.

    One good pass plus one faulty pass per fault, all patterns in
    parallel — the standard serial-fault / parallel-pattern grading.
    """
    from repro.atpg.stuckat import StuckAtFault  # circularity-free

    words, mask = pack_patterns(patterns)
    if not mask:
        return set()
    good = simulate_words(circuit, words, mask)
    hit: set = set()
    for fault in faults:
        if not isinstance(fault, StuckAtFault):
            raise TypeError("faults must be StuckAtFault instances")
        bad = simulate_words(
            circuit, words, mask, forced_pins={fault.lead: fault.value}
        )
        if any(good[po] ^ bad[po] for po in circuit.outputs):
            hit.add(fault)
    return hit


def random_patterns(
    circuit: Circuit, count: int, seed: int = 0
) -> "list[tuple]":
    rng = random.Random(seed)
    return [
        tuple(rng.randint(0, 1) for _ in circuit.inputs)
        for _ in range(count)
    ]
