"""Physical and logical paths (Section II of the paper).

A *physical path* ``P = (g0, l0, g1, ..., l_{m-1}, g_m)`` runs from a PI
``g0`` to a PO ``g_m``.  We represent it by its tuple of lead indices
``(l0, ..., l_{m-1})`` — the gate sequence is recoverable from the leads
and, unlike the gate sequence, the lead tuple is unambiguous when a gate
receives the same signal on two pins.

A *logical path* ``(P, x̄→x)`` adds the transition at the primary input;
we store the **final value** ``x`` (``1`` = rising, ``0`` = falling).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.gates import GateType, is_inverting
from repro.circuit.netlist import Circuit

#: Final values naming the two logical paths of a physical path.
RISING = 1
FALLING = 0


@dataclass(frozen=True)
class PhysicalPath:
    """An immutable PI→PO path identified by its lead indices."""

    leads: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.leads:
            raise ValueError("a path must contain at least one lead")

    def source(self, circuit: Circuit) -> int:
        """The primary input gate PI(P)."""
        return circuit.lead_src(self.leads[0])

    def sink(self, circuit: Circuit) -> int:
        """The primary output gate."""
        return circuit.lead_dst(self.leads[-1])

    def gates(self, circuit: Circuit) -> tuple[int, ...]:
        """The gate sequence ``(g0, ..., g_m)``."""
        seq = [circuit.lead_src(self.leads[0])]
        seq.extend(circuit.lead_dst(lead) for lead in self.leads)
        return tuple(seq)

    def validate(self, circuit: Circuit) -> None:
        """Raise ValueError unless this is a well-formed PI→PO path."""
        if circuit.gate_type(self.source(circuit)) is not GateType.PI:
            raise ValueError("path does not start at a PI")
        if circuit.gate_type(self.sink(circuit)) is not GateType.PO:
            raise ValueError("path does not end at a PO")
        for prev, nxt in zip(self.leads, self.leads[1:]):
            if circuit.lead_dst(prev) != circuit.lead_src(nxt):
                raise ValueError(
                    f"leads {prev} and {nxt} are not consecutive"
                )

    def describe(self, circuit: Circuit) -> str:
        names = [circuit.gate_name(g) for g in self.gates(circuit)]
        return " -> ".join(names)

    def __len__(self) -> int:
        return len(self.leads)


@dataclass(frozen=True)
class LogicalPath:
    """A physical path plus the transition's final value at its PI."""

    path: PhysicalPath
    final_value: int

    def __post_init__(self) -> None:
        if self.final_value not in (0, 1):
            raise ValueError("final_value must be 0 or 1")

    @property
    def transition(self) -> str:
        return "0->1" if self.final_value == RISING else "1->0"

    def value_at(self, circuit: Circuit, position: int) -> int:
        """Stable final value at gate ``position`` of the path (0 = PI)
        when the transition propagates along the path."""
        value = self.final_value
        gates = self.path.gates(circuit)
        if not 0 <= position < len(gates):
            raise IndexError("position outside path")
        for gid in gates[1 : position + 1]:
            if is_inverting(circuit.gate_type(gid)):
                value = 1 - value
        return value

    def output_value(self, circuit: Circuit) -> int:
        """Stable final value the transition produces at the PO."""
        gates = self.path.gates(circuit)
        return self.value_at(circuit, len(gates) - 1)

    def describe(self, circuit: Circuit) -> str:
        return f"{self.path.describe(circuit)} [{self.transition}]"


def path_parity(circuit: Circuit, leads: tuple[int, ...]) -> int:
    """Number of inverting gates a path passes through, mod 2 (the PI
    transition direction flips that many times before the PO)."""
    parity = 0
    for lead in leads:
        if is_inverting(circuit.gate_type(circuit.lead_dst(lead))):
            parity ^= 1
    return parity
