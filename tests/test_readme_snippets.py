"""The README's code snippets must actually work."""

import re
from pathlib import Path

README = Path(__file__).resolve().parent.parent / "README.md"


def _python_blocks(text: str) -> list:
    return re.findall(r"```python\n(.*?)```", text, re.DOTALL)


def test_readme_python_snippets_execute():
    blocks = _python_blocks(README.read_text())
    assert blocks, "README lost its python examples"
    namespace: dict = {}
    for block in blocks:
        exec(compile(block, "<README>", "exec"), namespace)  # noqa: S102


def test_readme_quickstart_claims():
    """The numbers printed in the quickstart comments are real."""
    from repro import (
        CircuitBuilder,
        Criterion,
        classify,
        count_paths,
        heuristic2_sort,
    )

    b = CircuitBuilder("demo")
    a, s, c = b.pi("a"), b.pi("b"), b.pi("c")
    b.po(b.or_(a, b.and_(s, c), c), "out")
    circuit = b.build()
    assert count_paths(circuit).total_logical == 8
    result = classify(
        circuit, Criterion.SIGMA_PI, sort=heuristic2_sort(circuit)
    )
    assert result.rd_percent == 37.5


def test_readme_mentions_the_shipped_docs():
    text = README.read_text()
    for doc in ("DESIGN.md", "EXPERIMENTS.md", "THEORY.md", "API.md"):
        assert doc in text
