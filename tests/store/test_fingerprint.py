"""Canonical circuit fingerprints: declaration-order insensitivity,
pin-order sensitivity, schema versioning, canonical pack/unpack."""

import random

import pytest
from hypothesis import given, settings

from repro.circuit.bench import parse_bench, write_bench
from repro.circuit.examples import mux_circuit, paper_example_circuit
from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.gen.suite import get_circuit
from repro.store.fingerprint import (
    SCHEMA_VERSION,
    canonical_form,
    fingerprint,
)

from tests.strategies import small_circuits


def _shuffled_netlist(circuit: Circuit, seed: int) -> Circuit:
    """The same netlist with every declaration line in a random order
    (the .bench grammar is declaration-order free)."""
    lines = write_bench(circuit).splitlines()
    random.Random(seed).shuffle(lines)
    return parse_bench("\n".join(lines), name=circuit.name)


class TestPermutationInsensitivity:
    @pytest.mark.parametrize("seed", range(5))
    def test_shuffled_bench_same_fingerprint(self, seed):
        circuit = get_circuit("c17")
        assert fingerprint(_shuffled_netlist(circuit, seed)) == fingerprint(
            circuit
        )

    def test_renamed_gates_same_fingerprint(self):
        """Fingerprints address content, not names."""
        a = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
        b = parse_bench("INPUT(foo)\nOUTPUT(bar)\nbar = NOT(foo)\n")
        assert fingerprint(a) == fingerprint(b)

    @settings(max_examples=25, deadline=None)
    @given(circuit=small_circuits(max_gates=10))
    def test_property_shuffle_invariance(self, circuit):
        assert fingerprint(_shuffled_netlist(circuit, 1234)) == fingerprint(
            circuit
        )


class TestSensitivity:
    def test_pin_order_is_significant(self):
        """``AND(a, n)`` vs ``AND(n, a)`` with distinguishable inputs
        must differ — input sorts are defined per pin position."""
        a = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nn = NOT(b)\ny = AND(a, n)\n"
        )
        b = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nn = NOT(b)\ny = AND(n, a)\n"
        )
        assert fingerprint(a) != fingerprint(b)

    def test_gate_type_is_significant(self):
        a = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")
        b = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = OR(a, b)\n")
        assert fingerprint(a) != fingerprint(b)

    def test_different_circuits_differ(self):
        assert fingerprint(paper_example_circuit()) != fingerprint(
            mux_circuit()
        )

    def test_schema_tag_prefix(self):
        assert fingerprint(mux_circuit()).startswith(f"rdfp{SCHEMA_VERSION}:")


class TestCanonicalForm:
    def test_lead_pack_unpack_roundtrip(self):
        circuit = paper_example_circuit()
        canon = canonical_form(circuit)
        values = list(range(100, 100 + circuit.num_leads))
        assert list(canon.unpack_leads(canon.pack_leads(values))) == values

    def test_gate_pack_unpack_roundtrip(self):
        circuit = mux_circuit()
        canon = canonical_form(circuit)
        values = [7 * g for g in range(circuit.num_gates)]
        assert list(canon.unpack_gates(canon.pack_gates(values))) == values

    def test_packed_leads_shared_across_permutations(self):
        """Per-lead data packed on one declaration order and unpacked on
        another must land on structurally corresponding leads: packing
        the unpacked values again reproduces the canonical blob."""
        circuit = get_circuit("c17")
        shuffled = _shuffled_netlist(circuit, 9)
        canon_a = canonical_form(circuit)
        canon_b = canonical_form(shuffled)
        packed = canon_a.pack_leads(list(range(circuit.num_leads)))
        assert canon_b.pack_leads(list(canon_b.unpack_leads(packed))) == packed

    def test_pi_only_gate_order_is_canonical(self):
        """Even a degenerate wire-only circuit canonicalizes."""
        circuit = Circuit("wire")
        a = circuit.add_gate(GateType.PI, "a")
        circuit.add_gate(GateType.PO, "y", [a])
        frozen = circuit.freeze()
        assert fingerprint(frozen).startswith("rdfp")
