"""The paper applies its theory per output cone; classification over
the whole multi-output circuit must equal the sum over extracted cones."""

import pytest

from repro.classify.conditions import Criterion
from repro.classify.engine import classify
from repro.gen.random_logic import random_dag
from repro.paths.count import count_paths
from repro.sorting.input_sort import InputSort


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("criterion", [Criterion.FS, Criterion.NR])
def test_whole_equals_sum_of_cones(seed, criterion):
    circuit = random_dag(5, 14, seed=seed + 300)
    whole = classify(circuit, criterion).accepted
    per_cone = 0
    for po in circuit.outputs:
        cone, _ = circuit.extract_cone(po)
        per_cone += classify(cone, criterion).accepted
    assert whole == per_cone, circuit.name


@pytest.mark.parametrize("seed", range(3))
def test_sigma_whole_equals_cones_with_induced_sorts(seed):
    """σ^π decomposes per cone when each cone inherits π's ranks."""
    circuit = random_dag(5, 12, seed=seed + 400)
    sort = InputSort.pin_order(circuit)
    whole = classify(circuit, Criterion.SIGMA_PI, sort=sort).accepted
    per_cone = 0
    for po in circuit.outputs:
        cone, mapping = circuit.extract_cone(po)
        # Pin order is preserved by extract_cone, so the induced sort of
        # the cone is again pin order.
        cone_sort = InputSort.pin_order(cone)
        per_cone += classify(cone, Criterion.SIGMA_PI, sort=cone_sort).accepted
    assert whole == per_cone


@pytest.mark.parametrize("seed", range(5))
def test_path_counts_decompose(seed):
    circuit = random_dag(6, 16, seed=seed + 500)
    total = count_paths(circuit).total_logical
    per_cone = sum(
        count_paths(circuit.extract_cone(po)[0]).total_logical
        for po in circuit.outputs
    )
    assert total == per_cone
