"""Cone fingerprints: stability, sensitivity, and the cone index."""

import pytest

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, circuit_from_spec
from repro.gen.suite import get_circuit
from repro.incremental import cone_fingerprints, cone_index
from repro.obs import get_registry, reset_registry


def _two_cone_circuit() -> Circuit:
    """Two independent cones plus one shared input stem."""
    c = Circuit("twocone")
    a = c.add_gate(GateType.PI, "a")
    b = c.add_gate(GateType.PI, "b")
    d = c.add_gate(GateType.PI, "d")
    g1 = c.add_gate(GateType.AND, "g1", [a, b])
    g2 = c.add_gate(GateType.OR, "g2", [b, d])
    c.add_gate(GateType.PO, "o1", [g1])
    c.add_gate(GateType.PO, "o2", [g2])
    return c.freeze()


class TestFingerprintContract:
    def test_prefix_and_determinism(self):
        c = _two_cone_circuit()
        fps = cone_fingerprints(c)
        assert set(fps) == {"o1", "o2"}
        assert all(fp.startswith("rdcfp1:") for fp in fps.values())
        assert cone_fingerprints(_two_cone_circuit()) == fps

    def test_name_insensitive(self):
        base = circuit_from_spec(
            "x",
            [
                ("a", GateType.PI, []),
                ("b", GateType.PI, []),
                ("g", GateType.AND, ["a", "b"]),
                ("o", GateType.PO, ["g"]),
            ],
        )
        renamed = circuit_from_spec(
            "y",
            [
                ("p", GateType.PI, []),
                ("q", GateType.PI, []),
                ("core", GateType.AND, ["p", "q"]),
                ("o", GateType.PO, ["core"]),
            ],
        )
        assert (
            cone_fingerprints(base)["o"] == cone_fingerprints(renamed)["o"]
        )

    def test_declaration_order_insensitive(self):
        spec = [
            ("a", GateType.PI, []),
            ("b", GateType.PI, []),
            ("g1", GateType.AND, ["a", "b"]),
            ("g2", GateType.OR, ["b", "a"]),
            ("o1", GateType.PO, ["g1"]),
            ("o2", GateType.PO, ["g2"]),
        ]
        fps = cone_fingerprints(circuit_from_spec("fwd", spec))
        fps_rev = cone_fingerprints(circuit_from_spec("rev", list(reversed(spec))))
        assert fps == fps_rev

    def test_pin_order_sensitive(self):
        ab = circuit_from_spec(
            "ab",
            [
                ("a", GateType.PI, []),
                ("b", GateType.PI, []),
                ("g", GateType.AND, ["a", "b"]),
                ("o", GateType.PO, ["g"]),
            ],
        )
        ba = circuit_from_spec(
            "ba",
            [
                ("a", GateType.PI, []),
                ("b", GateType.PI, []),
                ("g", GateType.AND, ["b", "a"]),
                ("o", GateType.PO, ["g"]),
            ],
        )
        # both cones are AND(PI, PI) up to names, so they are isomorphic
        # as *labelled* DAGs and must agree (pin order carries no
        # distinguishable content when both pins see fresh PIs)
        assert cone_fingerprints(ab)["o"] == cone_fingerprints(ba)["o"]
        # but swapping pins of distinguishable fanins must not agree
        deep_ab = circuit_from_spec(
            "dab",
            [
                ("a", GateType.PI, []),
                ("b", GateType.PI, []),
                ("n", GateType.NOT, ["a"]),
                ("g", GateType.AND, ["n", "b"]),
                ("o", GateType.PO, ["g"]),
            ],
        )
        deep_ba = circuit_from_spec(
            "dba",
            [
                ("a", GateType.PI, []),
                ("b", GateType.PI, []),
                ("n", GateType.NOT, ["a"]),
                ("g", GateType.AND, ["b", "n"]),
                ("o", GateType.PO, ["g"]),
            ],
        )
        assert cone_fingerprints(deep_ab)["o"] != cone_fingerprints(deep_ba)["o"]

    def test_sharing_distinguished_from_copies(self):
        """AND over one shared stem vs two structurally equal branches:
        a naive fold hash aliases these; the canonical encoding must not
        (they classify differently, so aliasing would poison the store)."""
        shared = circuit_from_spec(
            "shared",
            [
                ("a", GateType.PI, []),
                ("n", GateType.NOT, ["a"]),
                ("g", GateType.AND, ["n", "n"]),
                ("o", GateType.PO, ["g"]),
            ],
        )
        copies = circuit_from_spec(
            "copies",
            [
                ("a1", GateType.PI, []),
                ("a2", GateType.PI, []),
                ("n1", GateType.NOT, ["a1"]),
                ("n2", GateType.NOT, ["a2"]),
                ("g", GateType.AND, ["n1", "n2"]),
                ("o", GateType.PO, ["g"]),
            ],
        )
        assert (
            cone_fingerprints(shared)["o"] != cone_fingerprints(copies)["o"]
        )

    def test_matches_extracted_cone(self):
        """A cone fingerprints the same in the host circuit and as a
        stand-alone extraction — the property cone store rows rely on."""
        c = get_circuit("s1908-csel")
        index = cone_index(c)
        for cone in index.cones[:5]:
            extracted, _ = c.extract_cone(cone.po)
            assert cone_fingerprints(extracted).popitem()[1] == cone.fingerprint


class TestConeIndex:
    def test_masks_match_cone_of(self):
        c = get_circuit("s880-alu")
        index = cone_index(c)
        for cone in index.cones:
            assert set(cone.gates()) == c.cone_of(cone.po)
            assert cone.num_gates == len(c.cone_of(cone.po))

    def test_cached_on_circuit_and_invalidated_by_replace(self):
        c = _two_cone_circuit()
        index = cone_index(c)
        assert cone_index(c) is index
        c.replace_gate("g1", GateType.NAND, ["a", "b"])
        fresh = cone_index(c)
        assert fresh is not index
        assert fresh.cones[0].fingerprint != index.cones[0].fingerprint

    def test_untouched_cone_stable_under_edit(self):
        c = _two_cone_circuit()
        before = cone_fingerprints(c)
        c.replace_gate("g1", GateType.NOR, ["a", "b"])
        after = cone_fingerprints(c)
        assert after["o1"] != before["o1"]  # edited cone moved
        assert after["o2"] == before["o2"]  # untouched cone stable

    def test_span_histogram_populated(self):
        reset_registry()
        try:
            cone_index(_two_cone_circuit())
            snapshot = get_registry().snapshot()
            assert snapshot["histograms"]["span.conefp"]["count"] >= 1
        finally:
            reset_registry()

    def test_gate_hash_names(self):
        c = _two_cone_circuit()
        index = cone_index(c)
        names = index.gate_hash_names(index.cone("o1"))
        assert sorted(n for group in names.values() for n in group) == [
            "a",
            "b",
            "g1",
            "o1",
        ]
