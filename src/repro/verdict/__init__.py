"""``repro.verdict`` — the SAT-exact decision subsystem.

Where the word-parallel classifier (:mod:`repro.classify`) computes the
superset ``LP^sup(σ^π)`` by local implications, this package decides
*true* criterion membership per logical path with the incremental CDCL
solver (:mod:`repro.atpg.sat`): one Tseitin base encoding per circuit,
unit assumptions per path, simulation-replayed witnesses as checkable
certificates, and ``repro-rd tightness`` tables measuring the Lemma-2
approximation gap (exact vs. approximate RD%).
"""

from repro.verdict.encode import PathQuery, SensitizationEncoder
from repro.verdict.oracle import (
    DEFAULT_MAX_CONFLICTS,
    PathVerdict,
    VerdictOracle,
)
from repro.verdict.tightness import (
    TightnessReport,
    TightnessRow,
    default_suite_circuits,
    run_tightness,
    tightness_row,
)

__all__ = [
    "DEFAULT_MAX_CONFLICTS",
    "PathQuery",
    "PathVerdict",
    "SensitizationEncoder",
    "TightnessReport",
    "TightnessRow",
    "VerdictOracle",
    "default_suite_circuits",
    "run_tightness",
    "tightness_row",
]
