"""repro — Fast Identification of Robust Dependent Path Delay Faults.

A from-scratch Python reproduction of Sparmann, Luxenburger, Cheng &
Reddy (DAC 1995): stabilizing-system theory, the fast RD-set classifier
(implicit path enumeration with local implications), the input-sort
heuristics, and the exact baseline of Lam et al. (DAC 1993) — plus all
the substrates they need (netlists, ternary logic/implications, path
counting, SAT/ATPG, robust/non-robust test generation, event-driven
timing simulation, benchmark circuit generators).

The public surface is defined by :mod:`repro.api` and re-exported here;
import from either — deep module paths keep working but carry no
compatibility promise.

Quickstart::

    from repro import paper_example_circuit, classify, Criterion, heuristic2_sort

    circuit = paper_example_circuit()
    sort = heuristic2_sort(circuit)
    result = classify(circuit, Criterion.SIGMA_PI, sort=sort)
    print(f"{result.rd_percent:.1f}% of logical paths need no robust test")
"""

# defined before any submodule import: repro.service.server reads it
# while this package is still initializing
__version__ = "1.0.0"

from repro.api import *  # noqa: F401,F403 - the facade IS this package's surface
from repro import api as _api

__all__ = ["__version__"] + list(_api.__all__)
