"""Table II — total logical path counts and running times of Heu1/Heu2.

Includes the "could not be completed" rows of the paper (c6288 role):
circuits whose exact path count is computed (big integers, no
enumeration) but whose classification is beyond the enumeration budget.

Runs are supervised like Table I: failed circuits render as ``FAILED``
rows, and ``checkpoint``/``resume`` make long runs restartable.
"""

from __future__ import annotations

from typing import Iterable

from repro.circuit.netlist import Circuit
from repro.experiments.harness import Table1Row, run_table1_rows
from repro.experiments.supervisor import RowFailure
from repro.gen.suite import count_only_suite, table1_suite
from repro.paths.count import count_paths
from repro.util.tables import TextTable
from repro.util.timer import format_duration


def run(
    circuits: Iterable[Circuit] | None = None,
    rows: "list[Table1Row | RowFailure] | None" = None,
    include_count_only: bool = True,
    jobs: int = 1,
    *,
    checkpoint: "str | None" = None,
    resume: bool = False,
    task_timeout: "float | None" = None,
    max_retries: "int | None" = None,
    store: "str | None" = None,
) -> TextTable:
    """Render Table II; pass ``rows`` to reuse Table I measurements."""
    if rows is None:
        extra = {} if max_retries is None else {"max_retries": max_retries}
        rows = run_table1_rows(
            circuits if circuits is not None else table1_suite(),
            jobs=jobs,
            checkpoint=checkpoint,
            resume=resume,
            task_timeout=task_timeout,
            store=store,
            **extra,
        )
    table = TextTable(
        ["circuit", "total logical paths", "CPU-time Heu1", "CPU-time Heu2"],
        title="Table II: path counts and running times",
    )
    for row in rows:
        if isinstance(row, RowFailure):
            table.add_row([row.label, "FAILED", "FAILED", "FAILED"])
            continue
        table.add_row(
            [
                row.name,
                f"{row.total_logical:,}",
                format_duration(row.time_heu1),
                format_duration(row.time_heu2),
            ]
        )
    if include_count_only:
        for circuit in count_only_suite():
            total = count_paths(circuit).total_logical
            table.add_row(
                [
                    circuit.name,
                    f"{total:.3e}" if total > 10**9 else f"{total:,}",
                    "(count only)",
                    "(count only)",
                ]
            )
    return table


def main(
    jobs: int = 1,
    *,
    checkpoint: "str | None" = None,
    resume: bool = False,
    task_timeout: "float | None" = None,
    max_retries: "int | None" = None,
    store: "str | None" = None,
) -> None:
    print(
        run(
            jobs=jobs,
            checkpoint=checkpoint,
            resume=resume,
            task_timeout=task_timeout,
            max_retries=max_retries,
            store=store,
        ).render()
    )


if __name__ == "__main__":
    main()
