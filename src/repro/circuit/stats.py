"""Circuit statistics used in reports and the CLI ``info`` command."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit


@dataclass(frozen=True)
class CircuitStats:
    name: str
    num_gates: int
    num_inputs: int
    num_outputs: int
    num_leads: int
    depth: int
    max_fanout: int
    gate_counts: dict

    def __str__(self) -> str:
        kinds = ", ".join(f"{k}={v}" for k, v in sorted(self.gate_counts.items()))
        return (
            f"{self.name}: {self.num_gates} gates "
            f"({self.num_inputs} PIs, {self.num_outputs} POs), "
            f"{self.num_leads} leads, depth {self.depth}, "
            f"max fanout {self.max_fanout} [{kinds}]"
        )


def circuit_stats(circuit: Circuit) -> CircuitStats:
    counts = Counter(
        circuit.gate_type(g).name for g in range(circuit.num_gates)
    )
    depth = max(circuit.level(g) for g in range(circuit.num_gates))
    max_fanout = max(
        (len(circuit.fanout(g)) for g in range(circuit.num_gates)), default=0
    )
    return CircuitStats(
        name=circuit.name,
        num_gates=circuit.num_gates,
        num_inputs=len(circuit.inputs),
        num_outputs=len(circuit.outputs),
        num_leads=circuit.num_leads,
        depth=depth,
        max_fanout=max_fanout,
        gate_counts=dict(counts),
    )


def internal_fanout_count(circuit: Circuit) -> int:
    """Number of non-PI gates with fanout above 1 — the quantity that
    drives leaf-dag blow-up (Section II)."""
    return sum(
        1
        for g in range(circuit.num_gates)
        if circuit.gate_type(g) is not GateType.PI and len(circuit.fanout(g)) > 1
    )
