"""RD identification on the leaf-dag — the mechanism of [1].

The cone of a PO is unfolded into its leaf-dag (fanout only at PIs).
Every *PI branch lead* of the leaf-dag then carries exactly one physical
path of the original circuit, and Theorems 2.1/2.2 of [1] identify RD
path sets with redundant **multiple uniform-polarity stuck-at faults**
on those branches:

* a redundant multiple stuck-at-0 fault on branch set ``B`` proves that
  the *rising* logical paths of ``B`` (final PI value 1) are jointly RD;
* a redundant multiple stuck-at-1 fault proves the *falling* paths RD.

The uniformity matters: mixing polarities in one fault set, or checking
single faults against an already-simplified circuit, can declare a path
RD that in fact belongs to **every** ``LP(σ)`` — the test suite contains
the counterexample (path ``c->AND->OR`` falling in the paper's example
circuit).  Joint redundancy of each uniform set is always checked against
the pristine circuit with a SAT miter.

Both fault sets are grown greedily, one branch at a time — the
"near maximum" character the paper attributes to [1].  The whole
procedure is exponential in internal fanout (the leaf-dag blow-up),
which is precisely why the paper's Section-IV algorithm avoids it.
"""

from __future__ import annotations

from repro.atpg.cnf import CNF
from repro.atpg.sat import Solver
from repro.atpg.tseitin import tseitin_encode
from repro.circuit.netlist import Circuit
from repro.circuit.transforms import LeafDag, unfold_leaf_dag
from repro.paths.path import LogicalPath, PhysicalPath


def _jointly_redundant(dag: Circuit, fault_pins: dict) -> bool:
    """Is the multiple stuck-at fault ``fault_pins`` (lead -> value)
    redundant in ``dag``?  Good copy is pristine; PIs are shared."""
    cnf = CNF()
    good = tseitin_encode(dag, cnf)
    pi_vars = {pi: good.var(pi) for pi in dag.inputs}
    faulty = tseitin_encode(dag, cnf, share_vars=pi_vars, forced_pins=fault_pins)
    diff = []
    for po in dag.outputs:
        g, f = good.var(po), faulty.var(po)
        d = cnf.new_var()
        cnf.add_clause([-d, g, f])
        cnf.add_clause([-d, -g, -f])
        diff.append(d)
    cnf.add_clause(diff)
    return not Solver(cnf).solve().sat


def leafdag_rd_paths(
    circuit: Circuit,
    po: int,
    max_gates: int = 50_000,
) -> set:
    """RD logical paths of the cone of ``po``, as paths of ``circuit``.

    Returns the union of the stuck-at-0-derived (rising) and
    stuck-at-1-derived (falling) RD sets.
    """
    dag_info: LeafDag = unfold_leaf_dag(circuit, po, max_gates=max_gates)
    dag = dag_info.circuit
    branches = sorted(dag_info.branch_paths)
    rd: set = set()
    for stuck_value in (0, 1):
        accepted: dict = {}
        for branch in branches:
            candidate = dict(accepted)
            candidate[branch] = stuck_value
            if _jointly_redundant(dag, candidate):
                accepted = candidate
        final_value = 1 - stuck_value
        for branch in accepted:
            orig_leads = dag_info.branch_paths[branch]
            rd.add(LogicalPath(PhysicalPath(orig_leads), final_value))
    return rd


def leafdag_branch_count(circuit: Circuit, po: int, max_gates: int = 50_000) -> int:
    """Number of PI branches of the cone's leaf-dag (= physical paths)."""
    dag_info = unfold_leaf_dag(circuit, po, max_gates=max_gates)
    return len(dag_info.branch_paths)


__all__ = ["leafdag_rd_paths", "leafdag_branch_count"]
