"""Small shared utilities: timers, RNG helpers, text tables."""

from repro.util.timer import Stopwatch, format_duration
from repro.util.tables import TextTable

__all__ = ["Stopwatch", "format_duration", "TextTable"]
