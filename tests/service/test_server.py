"""The analysis daemon end to end: request/response over real sockets,
structured errors on open connections, deadlines, concurrency, drain."""

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.circuit.examples import mux_circuit
from repro.errors import RemoteError, ServiceError
from repro.service.client import ServiceClient
from repro.service.server import AnalysisServer


class ServerHarness:
    """One AnalysisServer on a private event loop in a daemon thread."""

    def __init__(self, **kwargs):
        self.server_kwargs = kwargs
        self.server: "AnalysisServer | None" = None
        self.address: "str | None" = None
        self.loop: "asyncio.AbstractEventLoop | None" = None
        self._thread: "threading.Thread | None" = None

    def start(self, **start_kwargs) -> str:
        ready = threading.Event()

        def run():
            self.loop = asyncio.new_event_loop()
            asyncio.set_event_loop(self.loop)

            async def go():
                self.server = AnalysisServer(**self.server_kwargs)
                self.address = await self.server.start(**start_kwargs)
                ready.set()
                await self.server.run()

            self.loop.run_until_complete(go())

        self._thread = threading.Thread(target=run, daemon=True)
        self._thread.start()
        assert ready.wait(10), "server failed to start"
        return self.address

    def stop(self, timeout: float = 30.0) -> None:
        if self.loop is not None and self.server is not None:
            self.loop.call_soon_threadsafe(self.server.request_shutdown)
        if self._thread is not None:
            self._thread.join(timeout)
            assert not self._thread.is_alive(), "server failed to drain"


@pytest.fixture
def harness(tmp_path):
    harnesses = []

    def factory(**kwargs):
        h = ServerHarness(**kwargs)
        harnesses.append(h)
        return h

    factory.tmp_path = tmp_path
    yield factory
    for h in harnesses:
        h.stop()


def _unix_server(factory, **kwargs):
    h = factory(**kwargs)
    h.start(socket_path=str(factory.tmp_path / "svc.sock"))
    return h


class TestRequests:
    def test_ping(self, harness):
        h = _unix_server(harness)
        with ServiceClient.connect(h.address) as client:
            result = client.ping()
        assert result["server"] == "repro-rd"
        assert result["version"]

    def test_classify_suite_name_over_tcp(self, harness):
        h = harness()
        h.start(port=0)  # ephemeral TCP port
        with ServiceClient.connect(h.address) as client:
            result = client.classify(circuit="c17")
        assert result["name"] == "c17"
        assert result["total_logical"] == 22
        assert result["criterion"] == "SIGMA_PI"

    def test_classify_bench_text_and_events(self, harness):
        h = _unix_server(harness)
        events = []
        with ServiceClient.connect(h.address) as client:
            result = client.classify(
                bench="INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n",
                criterion="fs",
                on_event=events.append,
            )
        assert result["total_logical"] == 4  # 2 physical paths x 2 edges
        assert [e["event"] for e in events] == ["start"]
        assert events[0]["fingerprint"].startswith("rdfp")
        assert events[0]["deadline"] > 0

    def test_classify_circuit_object(self, harness):
        """An in-memory Circuit travels as .bench text."""
        h = _unix_server(harness)
        circuit = mux_circuit()
        with ServiceClient.connect(h.address) as client:
            result = client.classify(circuit=circuit, criterion="nr")
        assert result["name"] == circuit.name
        assert result["fingerprint"].startswith("rdfp")

    def test_stats_op(self, harness):
        h = _unix_server(harness)
        with ServiceClient.connect(h.address) as client:
            client.classify(circuit="c17")
            stats = client.stats()
        assert stats["counters"]["ok"] >= 1
        assert stats["store"] is None  # started without a store

    def test_store_backed_warm_requests(self, harness, tmp_path):
        h = _unix_server(
            harness, store=str(tmp_path / "store.sqlite")
        )
        with ServiceClient.connect(h.address) as client:
            cold = client.classify(circuit="c17")
            warm = client.classify(circuit="c17")
            stats = client.stats()
        assert warm["accepted"] == cold["accepted"]
        assert warm["session"]["store_hits"] > 0
        assert stats["store"]["entries"] > 0

    def test_cone_granularity_requests(self, harness, tmp_path):
        """``cones=true`` reuses stored cone rows on the second request."""
        h = _unix_server(
            harness, store=str(tmp_path / "store.sqlite")
        )
        with ServiceClient.connect(h.address) as client:
            whole = client.classify(circuit="c17")
            cold = client.classify(circuit="c17", cones=True)
            warm = client.classify(circuit="c17", cones=True)
        assert cold["accepted"] == whole["accepted"]  # exact decomposition
        assert cold["total_logical"] == whole["total_logical"]
        assert cold["cone_stats"]["reused"] == 0
        assert warm["cone_stats"]["reused"] == warm["cone_stats"]["cones"]
        assert warm["cone_stats"]["reuse_ratio"] == 1.0
        assert warm["accepted"] == whole["accepted"]
        assert "cone_stats" not in whole  # whole-circuit answers unchanged

    def test_cones_rejects_bad_fields(self, harness):
        h = _unix_server(harness)
        with ServiceClient.connect(h.address) as client:
            with pytest.raises(RemoteError) as exc_info:
                client.request("classify", circuit="c17", cones="yes")
            assert exc_info.value.error_type == "ProtocolError"
            assert client.ping()["server"] == "repro-rd"


class TestStructuredErrors:
    def test_unknown_circuit_keeps_connection_open(self, harness):
        h = _unix_server(harness)
        with ServiceClient.connect(h.address) as client:
            with pytest.raises(RemoteError) as exc_info:
                client.classify(circuit="no-such-circuit")
            assert exc_info.value.error_type == "CircuitError"
            assert client.ping()["server"] == "repro-rd"  # still usable

    def test_bench_parse_error(self, harness):
        h = _unix_server(harness)
        with ServiceClient.connect(h.address) as client:
            with pytest.raises(RemoteError) as exc_info:
                client.classify(bench="y = AND(a b\n")
            assert exc_info.value.error_type == "BenchParseError"

    def test_bad_criterion(self, harness):
        h = _unix_server(harness)
        with ServiceClient.connect(h.address) as client:
            with pytest.raises(RemoteError) as exc_info:
                client.classify(circuit="c17", criterion="bogus")
            assert exc_info.value.error_type == "ProtocolError"

    def test_malformed_json_line(self, harness):
        h = _unix_server(harness)
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(h.address)
        with sock, sock.makefile("rwb") as f:
            f.write(b"{this is not json\n")
            f.flush()
            answer = json.loads(f.readline())
            assert answer["ok"] is False
            assert answer["error"]["type"] == "ProtocolError"
            # the connection survives framing-level garbage too
            f.write(b'{"id": 2, "op": "ping"}\n')
            f.flush()
            assert json.loads(f.readline())["ok"] is True

    def test_missing_op_and_missing_circuit(self, harness):
        h = _unix_server(harness)
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(h.address)
        with sock, sock.makefile("rwb") as f:
            for request in (
                {"id": 1},
                {"id": 2, "op": "classify"},
                {"id": 3, "op": "classify", "bench": "x", "circuit": "y"},
            ):
                f.write(json.dumps(request).encode() + b"\n")
                f.flush()
                answer = json.loads(f.readline())
                assert answer["id"] == request["id"]
                assert answer["error"]["type"] == "ProtocolError"

    def test_deadline_is_a_structured_error_not_a_disconnect(self, harness):
        h = _unix_server(harness)
        with ServiceClient.connect(h.address) as client:
            with pytest.raises(RemoteError) as exc_info:
                client.classify(circuit="c17", deadline=1e-9)
            assert exc_info.value.error_type == "TaskTimeout"
            assert "budget" in str(exc_info.value)
            # same connection, full-budget retry succeeds
            assert client.classify(circuit="c17")["total_logical"] == 22


class TestConcurrency:
    def test_eight_concurrent_clients(self, harness, tmp_path):
        h = _unix_server(
            harness, store=str(tmp_path / "store.sqlite"), concurrency=8
        )
        results: list = [None] * 8
        errors: list = []

        def worker(i):
            try:
                with ServiceClient.connect(h.address) as client:
                    results[i] = client.classify(
                        circuit="c17", sort=["heu1", "heu2"][i % 2]
                    )
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(120)
        assert not errors
        assert all(r is not None for r in results)
        assert len({r["accepted"] for r in results}) == 1

    def test_sequential_pipelined_requests_answer_in_order(self, harness):
        h = _unix_server(harness)
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(h.address)
        with sock, sock.makefile("rwb") as f:
            for i in range(5):
                f.write(json.dumps({"id": i, "op": "ping"}).encode() + b"\n")
            f.flush()
            seen = [json.loads(f.readline())["id"] for _ in range(5)]
        assert seen == list(range(5))


class TestDrain:
    def test_in_flight_request_finishes_during_drain(self, harness):
        h = _unix_server(harness)
        client = ServiceClient.connect(h.address)
        try:
            done = {}

            def run_request():
                done["result"] = client.classify(circuit="s499-ecc")

            t = threading.Thread(target=run_request)
            t.start()
            time.sleep(0.3)  # let the request reach the classifier
            h.stop(timeout=120)
            t.join(120)
            assert done["result"]["name"] == "s499-ecc"
        finally:
            client.close()

    def test_idle_connections_are_closed_on_drain(self, harness):
        h = _unix_server(harness)
        client = ServiceClient.connect(h.address)
        try:
            client.ping()
            h.stop()
            with pytest.raises(ServiceError):
                client.ping()
        finally:
            client.close()


class TestSubprocessDaemon:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        """The CI smoke scenario: real daemon process, classify over the
        socket twice (cold then warm), SIGTERM, clean exit."""
        import repro

        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        sock_path = str(tmp_path / "daemon.sock")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [src_dir, env.get("PYTHONPATH")])
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--socket", sock_path,
                "--store", str(tmp_path / "store.sqlite"),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
        )
        try:
            deadline = time.time() + 30
            while not os.path.exists(sock_path):
                assert proc.poll() is None, proc.stdout.read().decode()
                assert time.time() < deadline, "daemon never bound its socket"
                time.sleep(0.1)
            with ServiceClient.connect(sock_path) as client:
                cold = client.classify(circuit="c17")
                warm = client.classify(circuit="c17")
            assert warm["accepted"] == cold["accepted"]
            assert warm["session"]["store_hits"] > 0
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
            banner = proc.stdout.read().decode()
            assert "serving on" in banner
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
