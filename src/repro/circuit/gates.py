"""Gate types of the paper's circuit model and their logic properties.

Section II of the paper restricts circuits to *simple gates* (AND, OR,
NAND, NOR, NOT) plus primary inputs and outputs.  We additionally support
BUF (non-inverting single-input gate), which behaves like a one-input AND;
richer gates (XOR etc.) are decomposed into simple gates by
:mod:`repro.circuit.transforms` before any path-delay analysis runs.

The central notions used throughout the algorithms are the *controlling*
and *non-controlling* values of a gate (footnote 1 of the paper): a single
controlling value on any input determines the gate output regardless of the
other inputs.
"""

from __future__ import annotations

import enum
from typing import Sequence


class GateType(enum.IntEnum):
    """All gate kinds a :class:`repro.circuit.netlist.Circuit` may contain."""

    PI = 0
    PO = 1
    AND = 2
    OR = 3
    NAND = 4
    NOR = 5
    NOT = 6
    BUF = 7


#: Gate types with a controlling value (the simple multi-input gates).
CONTROLLABLE_TYPES = frozenset(
    {GateType.AND, GateType.OR, GateType.NAND, GateType.NOR}
)

#: Gate types whose output inverts their (on-path) input.
INVERTING_TYPES = frozenset({GateType.NAND, GateType.NOR, GateType.NOT})

_CONTROLLING = {
    GateType.AND: 0,
    GateType.NAND: 0,
    GateType.OR: 1,
    GateType.NOR: 1,
}


def controlling_value(gate_type: GateType) -> int:
    """Return the controlling input value of ``gate_type``.

    Raises :class:`ValueError` for gate types without one (NOT, BUF, PI,
    PO) — callers must guard with :data:`CONTROLLABLE_TYPES`.
    """
    try:
        return _CONTROLLING[gate_type]
    except KeyError:
        raise ValueError(f"{gate_type.name} has no controlling value") from None


def noncontrolling_value(gate_type: GateType) -> int:
    """Return the non-controlling input value of ``gate_type``."""
    return 1 - controlling_value(gate_type)


def is_inverting(gate_type: GateType) -> bool:
    """True if the gate output is the complement of its controlling/on-path
    behaviour (NAND, NOR, NOT)."""
    return gate_type in INVERTING_TYPES


def has_controlling_value(gate_type: GateType) -> bool:
    return gate_type in _CONTROLLING


def evaluate_gate(gate_type: GateType, inputs: Sequence[int]) -> int:
    """Evaluate a gate on fully-specified binary ``inputs`` (0/1).

    PIs take their single "input" as the externally applied value, and POs
    forward their single input, so simulation can treat every gate
    uniformly.
    """
    if gate_type in (GateType.PI, GateType.PO, GateType.BUF):
        if len(inputs) != 1:
            raise ValueError(f"{gate_type.name} takes exactly one input")
        return inputs[0]
    if gate_type is GateType.NOT:
        if len(inputs) != 1:
            raise ValueError("NOT takes exactly one input")
        return 1 - inputs[0]
    if not inputs:
        raise ValueError(f"{gate_type.name} needs at least one input")
    c = _CONTROLLING[gate_type]
    out = 1 - c if all(v != c for v in inputs) else c
    if gate_type in INVERTING_TYPES:
        out = 1 - out
    return out


def gate_output_for_oneshot(gate_type: GateType, any_input_controlling: bool) -> int:
    """Output value of a simple gate given whether any input is controlling."""
    c = _CONTROLLING[gate_type]
    out = c if any_input_controlling else 1 - c
    if gate_type in INVERTING_TYPES:
        out = 1 - out
    return out
