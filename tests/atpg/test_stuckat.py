"""Unit tests for stuck-at ATPG and redundancy identification."""

import pytest

from repro.atpg.stuckat import (
    StuckAtFault,
    generate_test,
    is_redundant,
    is_redundant_brute_force,
    simulate_with_fault,
)
from repro.logic.simulate import all_vectors, simulate


class TestFaultObject:
    def test_value_validation(self):
        with pytest.raises(ValueError):
            StuckAtFault(0, 2)

    def test_describe(self, example_circuit):
        fault = StuckAtFault(0, 1)
        assert "s-a-1" in fault.describe(example_circuit)


class TestFaultySimulation:
    def test_fault_forces_pin(self, example_circuit):
        g_and = example_circuit.gate_by_name("g_and")
        lead = example_circuit.lead_index(g_and, 0)  # b pin
        values = simulate_with_fault(
            example_circuit, (0, 1, 1), StuckAtFault(lead, 0)
        )
        assert values[g_and] == 0  # despite b=1, pin sees 0

    def test_no_fault_effect_elsewhere(self, example_circuit):
        lead = example_circuit.lead_index(example_circuit.gate_by_name("g_and"), 0)
        values = simulate_with_fault(
            example_circuit, (1, 0, 0), StuckAtFault(lead, 1)
        )
        good = simulate(example_circuit, (1, 0, 0))
        assert values[example_circuit.gate_by_name("a")] == good[
            example_circuit.gate_by_name("a")
        ]


class TestGenerateTest:
    def test_generated_vector_detects(self, small_circuits):
        for circuit in small_circuits:
            for lead in range(circuit.num_leads):
                for value in (0, 1):
                    fault = StuckAtFault(lead, value)
                    vector = generate_test(circuit, fault)
                    if vector is None:
                        continue
                    good = simulate(circuit, vector)
                    bad = simulate_with_fault(circuit, vector, fault)
                    assert any(
                        good[po] != bad[po] for po in circuit.outputs
                    ), f"{circuit.name}: {fault.describe(circuit)} not detected"


class TestRedundancyAgainstBruteForce:
    def test_all_faults_all_small_circuits(self, small_circuits):
        for circuit in small_circuits:
            for lead in range(circuit.num_leads):
                for value in (0, 1):
                    fault = StuckAtFault(lead, value)
                    assert is_redundant(circuit, fault) == (
                        is_redundant_brute_force(circuit, fault)
                    ), f"{circuit.name}: {fault.describe(circuit)}"

    def test_known_redundancies_of_paper_example(self, example_circuit):
        """out = a + bc + c: the b pin is entirely irrelevant (absorption)
        and the c-AND pin is s-a-0 redundant."""
        g_and = example_circuit.gate_by_name("g_and")
        b_pin = example_circuit.lead_index(g_and, 0)
        c_pin = example_circuit.lead_index(g_and, 1)
        assert is_redundant(example_circuit, StuckAtFault(b_pin, 0))
        assert is_redundant(example_circuit, StuckAtFault(b_pin, 1))
        assert is_redundant(example_circuit, StuckAtFault(c_pin, 0))
        assert not is_redundant(example_circuit, StuckAtFault(c_pin, 1))
