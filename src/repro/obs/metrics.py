"""The metrics registry: counters, gauges and latency histograms.

One :class:`MetricsRegistry` lives per process (:func:`get_registry`);
instruments are created on first use and identified by dotted names
(``classify.passes``, ``store.get_seconds``).  Writes are plain
attribute arithmetic — no locks — so instrumenting a hot path costs a
dict lookup plus an integer add.  Under free threading a racing pair of
increments may lose one count; the registry trades that (bounded,
monitoring-grade) imprecision for zero contention on the classifier's
critical path.

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain JSON-safe dicts,
and :meth:`MetricsRegistry.merge` folds one snapshot into a registry by
*addition* (counters, histogram buckets, sums) and min/max composition.
Merging is commutative and associative, which is what lets the
experiment harness aggregate per-worker snapshots into the parent
process in any completion order and still produce deterministic totals.

The registry is deliberately dependency-free: nothing in this module
imports the rest of :mod:`repro`, so every layer (store, supervisor,
service, sessions) can instrument itself without import cycles.
"""

from __future__ import annotations

import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "format_metrics",
    "get_registry",
    "histogram_quantile",
    "reset_registry",
]

#: default histogram bucket upper bounds (seconds): exponential-ish
#: coverage from sub-millisecond store reads to minute-long table rows.
DEFAULT_BOUNDS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time level (in-flight requests, pool size)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """A fixed-bucket distribution (latencies, sizes).

    ``bounds`` are inclusive upper edges; one implicit overflow bucket
    catches everything above the last bound.  Alongside the buckets the
    histogram keeps ``count``/``total``/``vmin``/``vmax``, so mean and
    tail estimates survive the merge across workers.
    """

    __slots__ = ("name", "bounds", "buckets", "count", "total", "vmin", "vmax")

    def __init__(self, name: str, bounds: "tuple[float, ...]" = DEFAULT_BOUNDS):
        self.name = name
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin: "float | None" = None
        self.vmax: "float | None" = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """All instruments of one process, by dotted name.

    Instrument creation takes a lock (it is rare); the returned
    instruments are then written without any synchronization.  Callers
    usually hold on to the instrument::

        _PASSES = get_registry().counter("classify.passes")
        _PASSES.inc()
    """

    def __init__(self) -> None:
        self._counters: "dict[str, Counter]" = {}
        self._gauges: "dict[str, Gauge]" = {}
        self._histograms: "dict[str, Histogram]" = {}
        self._create_lock = threading.Lock()

    # -- instrument access ---------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._create_lock:
                instrument = self._counters.setdefault(name, Counter(name))
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._create_lock:
                instrument = self._gauges.setdefault(name, Gauge(name))
        return instrument

    def histogram(
        self, name: str, bounds: "tuple[float, ...]" = DEFAULT_BOUNDS
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._create_lock:
                instrument = self._histograms.setdefault(
                    name, Histogram(name, bounds)
                )
        return instrument

    # -- snapshot / merge ----------------------------------------------
    def snapshot(self) -> dict:
        """All instruments as one JSON-safe dict (stable key order)."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "count": h.count,
                    "total": h.total,
                    "min": h.vmin,
                    "max": h.vmax,
                    "bounds": list(h.bounds),
                    "buckets": list(h.buckets),
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold one :meth:`snapshot` payload into this registry.

        Counters, gauges, histogram buckets and totals add; min/max
        compose.  Malformed entries are skipped (a worker snapshot can
        never corrupt the parent registry).  Addition makes the merge
        order-independent, so parallel harness runs aggregate worker
        metrics deterministically.
        """
        for name, value in (snapshot.get("counters") or {}).items():
            if isinstance(value, int):
                self.counter(name).inc(value)
        for name, value in (snapshot.get("gauges") or {}).items():
            if isinstance(value, (int, float)):
                self.gauge(name).inc(value)
        for name, data in (snapshot.get("histograms") or {}).items():
            if not isinstance(data, dict):
                continue
            bounds = data.get("bounds")
            buckets = data.get("buckets")
            if not isinstance(bounds, list) or not isinstance(buckets, list):
                continue
            hist = self.histogram(name, tuple(bounds))
            if list(hist.bounds) != bounds or len(buckets) != len(hist.buckets):
                continue  # incompatible layout: drop rather than corrupt
            hist.count += int(data.get("count", 0))
            hist.total += float(data.get("total", 0.0))
            for i, extra in enumerate(buckets):
                hist.buckets[i] += int(extra)
            for edge, better in (("min", min), ("max", max)):
                value = data.get(edge)
                if value is not None:
                    current = hist.vmin if edge == "min" else hist.vmax
                    merged = value if current is None else better(current, value)
                    if edge == "min":
                        hist.vmin = merged
                    else:
                        hist.vmax = merged

    def reset(self) -> None:
        """Drop every instrument (worker processes call this per task so
        each task's snapshot is a clean delta)."""
        with self._create_lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def histogram_quantile(data: dict, q: float) -> "float | None":
    """Estimate quantile ``q`` (0..1) from a snapshot histogram entry.

    Standard bucket-interpolation estimate (the Prometheus
    ``histogram_quantile`` shape): find the bucket holding the q-th
    observation and interpolate linearly inside it, clamped to the
    recorded ``min``/``max`` so tiny samples do not report an upper
    bound nobody observed.  Returns ``None`` for an empty histogram.
    Works on the JSON-safe dict form (``count``/``bounds``/``buckets``),
    so it applies equally to a local snapshot or one that crossed the
    wire from ``repro-rd metrics --json``.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be within [0, 1]")
    count = int(data.get("count") or 0)
    bounds = data.get("bounds") or []
    buckets = data.get("buckets") or []
    if count <= 0 or len(buckets) != len(bounds) + 1:
        return None
    vmin = data.get("min")
    vmax = data.get("max")
    rank = q * count
    seen = 0
    for i, in_bucket in enumerate(buckets):
        seen += in_bucket
        if seen < rank or not in_bucket:
            continue
        if i >= len(bounds):
            # overflow bucket: no upper edge to interpolate against
            return float(vmax) if vmax is not None else float(bounds[-1])
        lo = float(bounds[i - 1]) if i else 0.0
        hi = float(bounds[i])
        fraction = (rank - (seen - in_bucket)) / in_bucket
        estimate = lo + (hi - lo) * fraction
        if vmin is not None:
            estimate = max(estimate, float(vmin))
        if vmax is not None:
            estimate = min(estimate, float(vmax))
        return estimate
    return float(vmax) if vmax is not None else None


def format_metrics(snapshot: dict) -> str:
    """Render a snapshot for humans (``repro-rd metrics``, ``-v`` runs)."""
    lines = []
    counters = snapshot.get("counters") or {}
    gauges = snapshot.get("gauges") or {}
    histograms = snapshot.get("histograms") or {}
    if counters:
        lines.append("counters:")
        for name, value in sorted(counters.items()):
            lines.append(f"  {name:<36} {value}")
    if gauges:
        lines.append("gauges:")
        for name, value in sorted(gauges.items()):
            lines.append(f"  {name:<36} {value:g}")
    if histograms:
        lines.append("histograms:")
        for name, data in sorted(histograms.items()):
            count = data.get("count", 0)
            total = data.get("total", 0.0)
            mean = total / count if count else 0.0
            vmax = data.get("max")
            lines.append(
                f"  {name:<36} n={count} mean={mean:.6f}s"
                + (f" max={vmax:.6f}s" if vmax is not None else "")
            )
    return "\n".join(lines) if lines else "(no metrics recorded)"


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry every layer instruments into."""
    return _REGISTRY


def reset_registry() -> None:
    """Reset the default registry (tests; worker-task entry)."""
    _REGISTRY.reset()
