"""Tracing spans: nesting, the ring buffer, and JSONL export."""

import json

from repro.obs import TraceBuffer, export_jsonl, get_buffer, get_registry, span


class TestSpan:
    def test_records_name_and_duration(self):
        with span("unit.work"):
            pass
        events = get_buffer().snapshot()
        assert len(events) == 1
        record = events[0]
        assert record["type"] == "span"
        assert record["name"] == "unit.work"
        assert record["duration"] >= 0
        assert record["parent_id"] is None

    def test_attrs_recorded(self):
        with span("unit.work", circuit="c17", criterion="FS"):
            pass
        record = get_buffer().snapshot()[0]
        assert record["attrs"] == {"circuit": "c17", "criterion": "FS"}

    def test_nesting_links_parent(self):
        with span("outer") as outer:
            with span("inner") as inner:
                assert inner.parent_id == outer.span_id
        by_name = {e["name"]: e for e in get_buffer().snapshot()}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["parent_id"] is None

    def test_siblings_share_parent(self):
        with span("outer") as outer:
            with span("a"):
                pass
            with span("b"):
                pass
        by_name = {e["name"]: e for e in get_buffer().snapshot()}
        assert by_name["a"]["parent_id"] == outer.span_id
        assert by_name["b"]["parent_id"] == outer.span_id

    def test_error_annotated_and_stack_unwound(self):
        try:
            with span("failing"):
                raise ValueError("boom")
        except ValueError:
            pass
        record = get_buffer().snapshot()[0]
        assert record["error"] == "ValueError"
        # the stack unwound: a new span is a root again
        with span("after"):
            pass
        assert get_buffer().snapshot()[1]["parent_id"] is None

    def test_feeds_span_histogram(self):
        with span("timed.region"):
            pass
        hists = get_registry().snapshot()["histograms"]
        assert hists["span.timed.region"]["count"] == 1


class TestTraceBuffer:
    def test_bounded_drops_oldest(self):
        buf = TraceBuffer(capacity=3)
        for i in range(5):
            buf.append({"i": i})
        assert buf.dropped == 2
        assert [e["i"] for e in buf.snapshot()] == [2, 3, 4]

    def test_drain_empties(self):
        buf = TraceBuffer()
        buf.append({"a": 1})
        assert buf.drain() == [{"a": 1}]
        assert len(buf) == 0
        assert buf.dropped == 0

    def test_extend_skips_non_dicts(self):
        buf = TraceBuffer()
        buf.extend([{"ok": 1}, "junk", None, {"ok": 2}])
        assert len(buf) == 2


class TestExport:
    def test_jsonl_ends_with_metrics_record(self, tmp_path):
        get_registry().counter("export.probe").inc(7)
        with span("exported"):
            pass
        path = tmp_path / "trace.jsonl"
        written = export_jsonl(path)
        assert written == 1
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["type"] == "span"
        assert lines[0]["name"] == "exported"
        assert lines[-1]["type"] == "metrics"
        assert lines[-1]["metrics"]["counters"]["export.probe"] == 7

    def test_export_drains_buffer(self, tmp_path):
        with span("once"):
            pass
        export_jsonl(tmp_path / "a.jsonl")
        assert len(get_buffer()) == 0
        assert export_jsonl(tmp_path / "b.jsonl") == 0
