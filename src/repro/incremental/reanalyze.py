"""Cone-granularity classification and the ECO re-analysis flow.

:func:`cone_classify` is the cone-level twin of a whole-circuit
classification pass: every output cone is extracted and classified
independently (the paper's single-output theory applies cone by cone —
every PI→PO path lies in exactly one cone, so accepted/total counts sum
exactly), and each cone's result is read through from — and written
back to — the schema-v2 cone table of a persistent
:class:`~repro.store.db.ResultStore`, keyed by
``(cone fingerprint, criterion, sort, max_accepted)``.

The same never-wrong contracts as the whole-circuit store apply:

* a corrupted or malformed cone row is a miss (recomputed, never served);
* a cached row whose ``accepted`` exceeds the caller's ``max_accepted``
  is recomputed so the abort contract is identical cold and warm;
* an aborted pass is never written back — a budget abort raises
  :class:`~repro.errors.ClassifyError` exactly as a cold run would.

:func:`reanalyze` composes this with the structural diff into the ECO
flow behind ``repro-rd reanalyze BASE EDITED --store ...``: after the
base design's cones are warmed once, re-analyzing an edited netlist
computes only the DIRTY cones and serves every CLEAN cone from the
store.  Determinism is cone-granular on *both* sides:
:meth:`ConeClassifyReport.table_bytes` — per-cone and aggregate
accepted/total/edges, no timing — is byte-identical between a cold
(storeless) run and a warm ECO run, which the golden tests and the CI
smoke step pin.

Dirty cones fan out across the supervised
:class:`~repro.experiments.supervisor.TaskRunner` pool with ``jobs=N``;
workers ship their telemetry deltas home, so ``jobs=1`` and ``jobs=4``
produce identical counter totals.  Reuse is observable as the
``incremental.cones_clean`` / ``incremental.cones_dirty`` /
``incremental.cone_store_hits`` counters and as each report's
``reuse_ratio``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Union

from repro.circuit.netlist import Circuit
from repro.classify.conditions import Criterion
from repro.classify.results import ClassificationResult
from repro.errors import ClassifyError, HarnessError
from repro.incremental.conefp import Cone, cone_index
from repro.incremental.diff import CircuitDiff, diff_circuits
from repro.obs import get_registry
from repro.store.db import ResultStore, as_store
from repro.util.serialize import to_json

if TYPE_CHECKING:
    from repro.classify.session import SessionStats
    from repro.experiments.supervisor import TaskRunner
    from repro.sorting.input_sort import InputSort

__all__ = [
    "ConeClassifyReport",
    "ConeRow",
    "ReanalyzeReport",
    "cone_classify",
    "reanalyze",
]

#: symbolic per-cone sort specs: natural pin order, or a heuristic sort
#: derived *on each cone* (deterministic given the cone's structure, so
#: safe to key store rows by name)
_SYMBOLIC_SORTS = (None, "pin", "heu1", "heu2")


def _budget_label(max_accepted: "Optional[int]") -> str:
    return "-" if max_accepted is None else str(int(max_accepted))


def _load_cone_payload(
    payload: "Optional[dict]", max_accepted: "Optional[int]"
) -> "Optional[tuple[int, int, int, float]]":
    """Strictly validate one cone row; anything malformed is a miss."""
    if payload is None:
        return None
    try:
        total = payload["total_logical"]
        accepted = payload["accepted"]
        edges = payload["edges_visited"]
        elapsed = float(payload["elapsed"])
    except (KeyError, TypeError, ValueError):
        return None
    if not all(isinstance(v, int) for v in (total, accepted, edges)):
        return None
    if total < 0 or accepted < 0 or accepted > total or edges < 0:
        return None
    if max_accepted is not None and accepted > max_accepted:
        # the cached pass completed but this caller's budget would have
        # aborted it — recompute so the abort contract holds
        return None
    return total, accepted, edges, elapsed


@dataclass(frozen=True)
class ConeRow:
    """One output cone's classification outcome."""

    output: str
    fingerprint: str
    total_logical: int
    accepted: int
    edges_visited: int
    elapsed: float
    source: str  #: "store" | "computed"

    @property
    def rd_count(self) -> int:
        return self.total_logical - self.accepted

    @property
    def rd_percent(self) -> float:
        if self.total_logical == 0:
            return 0.0
        return 100.0 * self.rd_count / self.total_logical

    def table_row(self) -> dict:
        """The deterministic fields only — what the golden byte-identical
        contract covers (timing and provenance excluded)."""
        return {
            "output": self.output,
            "fingerprint": self.fingerprint,
            "total_logical": self.total_logical,
            "accepted": self.accepted,
            "rd_count": self.rd_count,
            "edges_visited": self.edges_visited,
        }

    def to_dict(self) -> dict:
        row = self.table_row()
        row["elapsed"] = self.elapsed
        row["source"] = self.source
        return row


@dataclass(frozen=True)
class ConeClassifyReport:
    """A cone-granularity classification of one circuit."""

    circuit_name: str
    criterion: Criterion
    sort_label: str
    rows: "tuple[ConeRow, ...]"
    wall_seconds: float
    conefp_seconds: float

    @property
    def cones_total(self) -> int:
        return len(self.rows)

    @property
    def cones_reused(self) -> int:
        return sum(1 for row in self.rows if row.source == "store")

    @property
    def cones_computed(self) -> int:
        return self.cones_total - self.cones_reused

    @property
    def reuse_ratio(self) -> float:
        if not self.rows:
            return 0.0
        return self.cones_reused / self.cones_total

    @property
    def result(self) -> ClassificationResult:
        """The aggregate, decomposition-exact whole-circuit result
        (``elapsed`` sums per-cone CPU time, the paper's accounting)."""
        return ClassificationResult(
            circuit_name=self.circuit_name,
            criterion=self.criterion,
            total_logical=sum(row.total_logical for row in self.rows),
            accepted=sum(row.accepted for row in self.rows),
            elapsed=sum(row.elapsed for row in self.rows),
            edges_visited=sum(row.edges_visited for row in self.rows),
        )

    def reuse_stats(self) -> dict:
        """The wire form carried by service responses (``cone_stats``)."""
        return {
            "cones": self.cones_total,
            "reused": self.cones_reused,
            "computed": self.cones_computed,
            "reuse_ratio": self.reuse_ratio,
        }

    def table_payload(self) -> dict:
        """The deterministic table: byte-identical (via
        :meth:`table_bytes`) between cold and warm runs of the same
        circuit, criterion, sort and budget."""
        aggregate = self.result
        return {
            "circuit": self.circuit_name,
            "criterion": self.criterion.name,
            "sort": self.sort_label,
            "total_logical": aggregate.total_logical,
            "accepted": aggregate.accepted,
            "rd_count": aggregate.rd_count,
            "edges_visited": aggregate.edges_visited,
            "cones": [
                row.table_row()
                for row in sorted(self.rows, key=lambda r: r.output)
            ],
        }

    def table_bytes(self) -> bytes:
        return to_json(self.table_payload()).encode()

    def to_dict(self) -> dict:
        payload = self.table_payload()
        payload["cones"] = [
            row.to_dict() for row in sorted(self.rows, key=lambda r: r.output)
        ]
        payload["cones_total"] = self.cones_total
        payload["cones_reused"] = self.cones_reused
        payload["cones_computed"] = self.cones_computed
        payload["reuse_ratio"] = self.reuse_ratio
        payload["elapsed"] = self.result.elapsed
        payload["wall_seconds"] = self.wall_seconds
        payload["conefp_seconds"] = self.conefp_seconds
        return payload


def _cone_sort_plans(
    circuit: Circuit,
    cones: "tuple[Cone, ...]",
    sort: "Union[InputSort, str, None]",
) -> "dict[int, tuple[str, Optional[list]]]":
    """Per-cone ``(sort key, restricted ranks)``.

    Symbolic specs key by name (the derived sort is a function of the
    cone's structure); an explicit global :class:`InputSort` is
    restricted to each cone's leads and keyed by the restriction's
    canonical rank hash, so permuted declarations of the same netlist
    still share rows.
    """
    if sort in _SYMBOLIC_SORTS:
        label = "none" if sort in (None, "pin") else sort
        return {cone.po: (label, None) for cone in cones}
    from repro.store.fingerprint import canonical_form

    plans: "dict[int, tuple[str, Optional[list]]]" = {}
    for cone in cones:
        cone_circuit, mapping = circuit.extract_cone(cone.po)
        inverse = {new: old for old, new in mapping.items()}
        ranks = [0] * cone_circuit.num_leads
        for lead in cone_circuit.leads():
            ranks[lead.index] = sort.ranks[
                circuit.lead_index(inverse[lead.dst], lead.pin)
            ]
        key = canonical_form(cone_circuit).sort_key(ranks)
        plans[cone.po] = (f"x{key}", ranks)
    return plans


def _dirty_cone_task(payload: tuple) -> tuple:
    """Classify one dirty cone (module-level: pool tasks must pickle).

    Returns ``("ok", total, accepted, edges, elapsed)`` or
    ``("budget_abort", message)`` — budget aborts are *results* here so
    the parent can re-raise :class:`ClassifyError` deterministically
    instead of treating them as worker crashes.  A completed result is
    written back to the cone table before returning; an aborted pass
    never is.
    """
    from repro.classify.session import CircuitSession

    (
        circuit,
        po,
        criterion,
        sort_spec,
        ranks,
        max_accepted,
        store_spec,
        variant,
        cone_fp,
    ) = payload
    cone_circuit, _mapping = circuit.extract_cone(po)
    session = CircuitSession(cone_circuit)
    sort = None
    if ranks is not None:
        from repro.sorting.input_sort import InputSort

        sort = InputSort(cone_circuit, ranks)
    elif sort_spec == "heu1":
        sort = session.heuristic1_sort()
    elif sort_spec == "heu2":
        sort = session.heuristic2_sort(max_accepted=max_accepted)
    try:
        result = session.classify(criterion, sort=sort, max_accepted=max_accepted)
    except ClassifyError as exc:
        return ("budget_abort", str(exc))
    if store_spec is not None:
        ResultStore(store_spec).cone_put(
            cone_fp,
            variant,
            {
                "total_logical": result.total_logical,
                "accepted": result.accepted,
                "edges_visited": result.edges_visited,
                "elapsed": result.elapsed,
            },
        )
    return (
        "ok",
        result.total_logical,
        result.accepted,
        result.edges_visited,
        result.elapsed,
    )


def cone_classify(
    circuit: Circuit,
    criterion: Criterion = Criterion.SIGMA_PI,
    sort: "Union[InputSort, str, None]" = None,
    max_accepted: "Optional[int]" = None,
    store: "ResultStore | str | None" = None,
    jobs: int = 1,
    runner: "Optional[TaskRunner]" = None,
    session_stats: "Optional[SessionStats]" = None,
) -> ConeClassifyReport:
    """Classify every output cone, reusing stored cone rows.

    ``sort`` is ``None``/``"pin"`` (natural pin order), ``"heu1"`` /
    ``"heu2"`` (the heuristic derived per cone), or an explicit global
    :class:`~repro.sorting.input_sort.InputSort` restricted per cone.
    ``max_accepted`` is a *per-cone* acceptance budget and part of the
    store key.  Without a ``store`` every cone is computed (a cold run —
    the byte-identical baseline of the warm path).  Dirty cones fan out
    over ``jobs`` supervised workers; a cone that fails after retries
    raises :class:`HarnessError` (a combined result needs every cone),
    and a budget abort raises :class:`ClassifyError` just as a
    whole-circuit pass would.
    """
    from repro.experiments.supervisor import RowFailure, TaskRunner

    started = time.perf_counter()
    store = as_store(store)
    registry = get_registry()
    index = cone_index(circuit)
    plans = _cone_sort_plans(circuit, index.cones, sort)
    budget = _budget_label(max_accepted)
    rows: "dict[int, ConeRow]" = {}
    dirty: "list[tuple[Cone, str]]" = []
    for cone in index.cones:
        sort_label, _ranks = plans[cone.po]
        variant = f"{criterion.name}|{sort_label}|{budget}"
        loaded = None
        if store is not None:
            loaded = _load_cone_payload(
                store.cone_get(cone.fingerprint, variant), max_accepted
            )
        if loaded is not None:
            total, accepted, edges, elapsed = loaded
            registry.counter("incremental.cones_clean").inc()
            registry.counter("incremental.cone_store_hits").inc()
            if session_stats is not None:
                session_stats.bump("cone_hits")
            rows[cone.po] = ConeRow(
                output=cone.output,
                fingerprint=cone.fingerprint,
                total_logical=total,
                accepted=accepted,
                edges_visited=edges,
                elapsed=elapsed,
                source="store",
            )
        else:
            registry.counter("incremental.cones_dirty").inc()
            if store is not None and session_stats is not None:
                session_stats.bump("cone_misses")
            dirty.append((cone, variant))
    if dirty:
        store_spec = None if store is None else store.path
        sort_spec = sort if sort in _SYMBOLIC_SORTS else None
        work = [
            (
                circuit,
                cone.po,
                criterion,
                sort_spec,
                plans[cone.po][1],
                max_accepted,
                store_spec,
                variant,
                cone.fingerprint,
            )
            for cone, variant in dirty
        ]
        task_runner = runner if runner is not None else TaskRunner(jobs=jobs)
        parts = task_runner.map(
            _dirty_cone_task,
            work,
            labels=[f"{circuit.name}/cone[{cone.output}]" for cone, _ in dirty],
        )
        failures = []
        for (cone, _variant), part in zip(dirty, parts):
            if isinstance(part, RowFailure):
                failures.append(part)
                continue
            if part[0] == "budget_abort":
                raise ClassifyError(part[1])
            _tag, total, accepted, edges, elapsed = part
            rows[cone.po] = ConeRow(
                output=cone.output,
                fingerprint=cone.fingerprint,
                total_logical=total,
                accepted=accepted,
                edges_visited=edges,
                elapsed=elapsed,
                source="computed",
            )
        if failures:
            raise HarnessError(
                "cone classification failed: "
                + "; ".join(str(failure) for failure in failures)
            )
    sort_label = (
        "none" if sort in (None, "pin") else sort if sort in _SYMBOLIC_SORTS else "explicit"
    )
    return ConeClassifyReport(
        circuit_name=circuit.name,
        criterion=criterion,
        sort_label=sort_label,
        rows=tuple(rows[cone.po] for cone in index.cones),
        wall_seconds=time.perf_counter() - started,
        conefp_seconds=index.build_seconds,
    )


@dataclass(frozen=True)
class ReanalyzeReport:
    """The full outcome of one ECO re-analysis."""

    diff: CircuitDiff
    base: ConeClassifyReport
    edited: ConeClassifyReport

    @property
    def result(self) -> ClassificationResult:
        return self.edited.result

    @property
    def reuse_ratio(self) -> float:
        return self.edited.reuse_ratio

    def to_dict(self) -> dict:
        return {
            "diff": self.diff.to_dict(),
            "base": self.base.to_dict(),
            "edited": self.edited.to_dict(),
            "reuse_ratio": self.reuse_ratio,
        }

    def render(self) -> str:
        aggregate = self.edited.result
        lines = [
            self.diff.render().splitlines()[0],
            (
                f"reanalyze {self.edited.circuit_name}: "
                f"{self.edited.cones_reused}/{self.edited.cones_total} cones "
                f"reused ({100.0 * self.reuse_ratio:.0f}%), "
                f"{self.edited.cones_computed} recomputed in "
                f"{self.edited.wall_seconds:.3f}s"
            ),
            (
                f"{aggregate.criterion.name}: accepted "
                f"{aggregate.accepted}/{aggregate.total_logical} "
                f"(RD {aggregate.rd_percent:.2f}%)"
            ),
        ]
        return "\n".join(lines)


def reanalyze(
    base: Circuit,
    edited: Circuit,
    store: "ResultStore | str",
    criterion: Criterion = Criterion.SIGMA_PI,
    sort: "Union[InputSort, str, None]" = None,
    max_accepted: "Optional[int]" = None,
    jobs: int = 1,
    runner: "Optional[TaskRunner]" = None,
) -> ReanalyzeReport:
    """The ECO flow: diff, warm the base design's cones, then classify
    the edited design reusing every CLEAN cone from the store.

    The returned report's ``edited.table_bytes()`` is byte-identical to
    a from-scratch (storeless) :func:`cone_classify` of the edited
    circuit; only DIRTY cones (plus outputs new to the edited design)
    are actually recomputed.  The base warm-up is a no-op when the store
    already holds the base design's rows — the steady-state ECO cost is
    the edited pass alone.
    """
    store = as_store(store)
    if store is None:
        raise ValueError("reanalyze requires a persistent store")
    diff = diff_circuits(base, edited)
    base_report = cone_classify(
        base,
        criterion=criterion,
        sort=sort,
        max_accepted=max_accepted,
        store=store,
        jobs=jobs,
        runner=runner,
    )
    edited_report = cone_classify(
        edited,
        criterion=criterion,
        sort=sort,
        max_accepted=max_accepted,
        store=store,
        jobs=jobs,
        runner=runner,
    )
    return ReanalyzeReport(diff=diff, base=base_report, edited=edited_report)
