"""Edge cases of the .bench parser beyond the basic suite."""

from repro.circuit.bench import parse_bench
from repro.logic.simulate import all_vectors, output_values


def test_multi_input_xor_odd_arity():
    text = (
        "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\n"
        "OUTPUT(y)\ny = XOR(a, b, c, d, e)\n"
    )
    circuit = parse_bench(text)
    for vector in all_vectors(5):
        assert output_values(circuit, vector) == (sum(vector) % 2,)


def test_multi_input_xnor():
    text = "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = XNOR(a, b, c)\n"
    circuit = parse_bench(text)
    for vector in all_vectors(3):
        assert output_values(circuit, vector) == (1 - sum(vector) % 2,)


def test_inv_and_buff_aliases():
    text = "INPUT(a)\nOUTPUT(y)\nOUTPUT(z)\nn = INV(a)\ny = BUFF(n)\nz = BUF(a)\n"
    circuit = parse_bench(text)
    for (v,) in all_vectors(1):
        assert output_values(circuit, (v,)) == (1 - v, v)


def test_case_insensitive_directives():
    text = "input(a)\nOutPut(a)\n"
    circuit = parse_bench(text)
    assert len(circuit.inputs) == 1 and len(circuit.outputs) == 1


def test_numeric_signal_names():
    text = "INPUT(1)\nINPUT(2)\nOUTPUT(10)\n10 = NAND(1, 2)\n"
    circuit = parse_bench(text)
    assert circuit.gate_name(circuit.inputs[0]) == "1"
    for a, b in all_vectors(2):
        assert output_values(circuit, (a, b)) == (1 - (a & b),)


def test_whitespace_tolerance():
    text = "  INPUT( a )\nOUTPUT(y)\n  y   =  NOT(  a  )  \n"
    # Signal names keep embedded spaces trimmed only at token level;
    # the INPUT regex captures non-space, so "a" parses cleanly here.
    circuit = parse_bench(text.replace("( a )", "(a)"))
    assert circuit.num_gates == 3


def test_duplicate_io_declarations_deduplicated():
    text = "INPUT(a)\nINPUT(a)\nOUTPUT(a)\nOUTPUT(a)\n"
    circuit = parse_bench(text)
    assert len(circuit.inputs) == 1
    assert len(circuit.outputs) == 1


def test_deep_chain_no_recursion_blowup():
    lines = ["INPUT(x0)", "OUTPUT(x400)"]
    lines += [f"x{i + 1} = NOT(x{i})" for i in range(400)]
    import sys

    old = sys.getrecursionlimit()
    try:
        sys.setrecursionlimit(10_000)
        circuit = parse_bench("\n".join(lines))
    finally:
        sys.setrecursionlimit(old)
    assert circuit.num_gates == 402  # PI + 400 NOTs + PO
    for (v,) in all_vectors(1):
        assert output_values(circuit, (v,)) == (v,)  # 400 NOTs cancel
