"""Plain-text persistence for two-pattern delay test sets.

Format (one test per line, ``#`` comments, PI order = the circuit's)::

    # circuit: cla4  pis: a0 a1 b0 b1 cin
    0101 1101
    0011 0111

The header records the PI names so a loader can verify the set matches
the circuit it is applied to.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.circuit.netlist import Circuit


class VectorFormatError(ValueError):
    """Raised for malformed test-set files."""


def dumps_pairs(circuit: Circuit, pairs: "Sequence[tuple]") -> str:
    """Serialise two-pattern tests for ``circuit``."""
    pi_names = " ".join(circuit.gate_name(pi) for pi in circuit.inputs)
    lines = [f"# circuit: {circuit.name}  pis: {pi_names}"]
    width = len(circuit.inputs)
    for v1, v2 in pairs:
        if len(v1) != width or len(v2) != width:
            raise VectorFormatError("pattern width does not match circuit")
        lines.append(
            "".join(map(str, v1)) + " " + "".join(map(str, v2))
        )
    return "\n".join(lines) + "\n"


def loads_pairs(circuit: Circuit, text: str, strict: bool = True) -> list:
    """Parse two-pattern tests; verifies the PI header when present and
    ``strict``."""
    pairs = []
    width = len(circuit.inputs)
    expected_names = [circuit.gate_name(pi) for pi in circuit.inputs]
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            if strict and "pis:" in line:
                names = line.split("pis:", 1)[1].split()
                if names != expected_names:
                    raise VectorFormatError(
                        f"line {lineno}: test set was written for PIs "
                        f"{names}, circuit has {expected_names}"
                    )
            continue
        parts = line.split()
        if len(parts) != 2:
            raise VectorFormatError(
                f"line {lineno}: expected 'v1 v2', got {raw!r}"
            )
        v1, v2 = parts
        if len(v1) != width or len(v2) != width:
            raise VectorFormatError(
                f"line {lineno}: patterns must have {width} bits"
            )
        if set(v1) - set("01") or set(v2) - set("01"):
            raise VectorFormatError(f"line {lineno}: bits must be 0/1")
        pairs.append(
            (tuple(int(b) for b in v1), tuple(int(b) for b in v2))
        )
    return pairs


def save_pairs(circuit: Circuit, pairs, path: "str | Path") -> None:
    Path(path).write_text(dumps_pairs(circuit, pairs))


def load_pairs(circuit: Circuit, path: "str | Path", strict: bool = True) -> list:
    return loads_pairs(circuit, Path(path).read_text(), strict=strict)
