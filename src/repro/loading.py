"""One loading adapter for every analysis surface.

Historically each entry point grew its own loader: the CLI resolved
suite names and files, ``parse_sequential_bench_file`` handled scan
designs, sessions demanded an already-frozen :class:`Circuit`.  This
module unifies them behind two functions:

``load(source, scan=...)``
    Resolve *anything that names a circuit* — a :class:`Circuit`, a
    :class:`ScanCircuit`, a ``.bench``/``.pla`` path, or a generator
    suite name — into a circuit object.  Sequential ``.bench`` netlists
    (containing ``DFF`` lines) are auto-detected and scan-expanded.

``as_core(source)``
    ``load`` plus the ``as_core()`` protocol: always returns the
    combinational :class:`Circuit` an analysis runs on (a
    ``ScanCircuit`` contributes its core).  ``CircuitSession``,
    ``classify``, ``run_tightness``, the CLI and the service client all
    coerce their input through this, so every surface accepts every
    source form.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.circuit.bench import parse_bench
from repro.circuit.netlist import Circuit
from repro.circuit.sequential import ScanCircuit, parse_sequential_bench
from repro.errors import CircuitError

#: A ``.bench`` line defining a flip-flop — the sequential marker.
_DFF_RE = re.compile(r"=\s*DFF(SR)?\s*\(", re.IGNORECASE)


def _load_bench_text(
    text: str, name: str, scan: "bool | None"
) -> "Circuit | ScanCircuit":
    sequential = bool(_DFF_RE.search(
        "\n".join(ln.split("#", 1)[0] for ln in text.splitlines())
    ))
    if scan is None:
        scan = sequential
    if scan:
        if not sequential:
            raise CircuitError(
                f"{name}: scan=True but the netlist has no flip-flops"
            )
        return parse_sequential_bench(text, name=name)
    return parse_bench(text, name=name)


def load(
    source, *, scan: "bool | None" = None, name: "str | None" = None
) -> "Circuit | ScanCircuit":
    """Resolve ``source`` into a :class:`Circuit` or :class:`ScanCircuit`.

    ``source`` may be a circuit object (returned as-is), a path to a
    ``.bench`` or ``.pla`` file, or a generator-suite name.  ``scan``
    controls sequential handling of ``.bench`` sources: ``None`` (the
    default) auto-detects ``DFF`` lines, ``True`` requires them,
    ``False`` forbids them.  ``name`` overrides the circuit name for
    file sources.
    """
    if isinstance(source, ScanCircuit):
        return source
    if isinstance(source, Circuit):
        if scan:
            raise CircuitError(
                "scan=True needs a sequential source; got a combinational "
                "Circuit (pass a ScanCircuit or a sequential .bench)"
            )
        return source
    if not isinstance(source, (str, Path)):
        core = getattr(source, "as_core", None)
        if callable(core):
            return core()
        raise TypeError(
            f"cannot load a circuit from {type(source).__name__!r}"
        )
    path = Path(source)
    if path.suffix == ".bench" and path.exists():
        return _load_bench_text(
            path.read_text(), name or path.stem, scan
        )
    if path.suffix == ".pla" and path.exists():
        from repro.circuit.pla import parse_pla_file

        if scan:
            raise CircuitError(f"{path}: .pla sources are combinational")
        return parse_pla_file(path).to_circuit()
    from repro.gen.suite import get_circuit

    if scan:
        raise CircuitError(
            f"scan=True needs a sequential .bench; suite circuits "
            f"(here {source!r}) are combinational"
        )
    return get_circuit(str(source))


def as_core(source, *, scan: "bool | None" = None) -> Circuit:
    """:func:`load`, then coerce to the combinational analysis core."""
    return load(source, scan=scan).as_core()


__all__ = ["as_core", "load"]
