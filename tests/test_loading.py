"""The unified loading adapter: one door for every circuit source."""

import warnings

import pytest

from repro.circuit.examples import paper_example_circuit
from repro.circuit.netlist import Circuit
from repro.circuit.sequential import S27_LIKE, ScanCircuit, parse_sequential_bench
from repro.classify.conditions import Criterion
from repro.classify.engine import classify
from repro.classify.session import CircuitSession
from repro.errors import CircuitError
from repro.loading import as_core, load

COMB = """\
INPUT(a)
INPUT(b)
OUTPUT(y)
y = AND(a, b)
"""


@pytest.fixture
def seq_path(tmp_path):
    path = tmp_path / "s27.bench"
    path.write_text(S27_LIKE)
    return path


@pytest.fixture
def comb_path(tmp_path):
    path = tmp_path / "tiny.bench"
    path.write_text(COMB)
    return path


class TestLoad:
    def test_circuit_passes_through(self):
        circuit = paper_example_circuit()
        assert load(circuit) is circuit
        assert as_core(circuit) is circuit

    def test_scan_circuit_passes_through(self):
        scan = parse_sequential_bench(S27_LIKE, name="s27")
        assert load(scan) is scan
        assert as_core(scan) is scan.core

    def test_bench_path_combinational(self, comb_path):
        circuit = load(comb_path)
        assert isinstance(circuit, Circuit)
        assert circuit.name == "tiny"

    def test_bench_path_autodetects_dff(self, seq_path):
        loaded = load(seq_path)
        assert isinstance(loaded, ScanCircuit)
        assert loaded.num_flipflops == 3
        assert isinstance(load(str(seq_path), scan=True), ScanCircuit)

    def test_suite_name(self):
        assert isinstance(load("c17"), Circuit)

    def test_name_override(self, comb_path):
        assert load(comb_path, name="renamed").name == "renamed"

    def test_scan_mismatches_rejected(self, comb_path):
        with pytest.raises(CircuitError, match="no flip-flops"):
            load(comb_path, scan=True)
        with pytest.raises(CircuitError):
            load(paper_example_circuit(), scan=True)
        with pytest.raises(CircuitError):
            load("c17", scan=True)

    def test_unloadable_object_is_type_error(self):
        with pytest.raises(TypeError, match="cannot load"):
            load(42)

    def test_as_core_protocol_duck_typing(self):
        core = paper_example_circuit()

        class Wrapper:
            def as_core(self):
                return core

        assert load(Wrapper()) is core


class TestEverySurfaceAcceptsEverySource:
    def test_session_accepts_scan_and_path(self, seq_path):
        scan = parse_sequential_bench(S27_LIKE, name="s27")
        assert CircuitSession(scan).circuit is scan.core
        assert isinstance(CircuitSession(str(seq_path)).circuit, Circuit)

    def test_classify_accepts_scan(self):
        from repro.sorting import pin_order_sort

        scan = parse_sequential_bench(S27_LIKE, name="s27")
        sort = pin_order_sort(scan.core)
        direct = classify(scan.core, Criterion.SIGMA_PI, sort=sort)
        via_adapter = classify(scan, Criterion.SIGMA_PI, sort=sort)
        assert via_adapter.accepted == direct.accepted
        assert via_adapter.total_logical == direct.total_logical

    def test_tightness_accepts_scan(self):
        from repro.verdict.tightness import tightness_row

        scan = parse_sequential_bench(S27_LIKE, name="s27")
        row = tightness_row(scan, Criterion.SIGMA_PI, "pin")
        assert row.circuit == "s27"

    def test_new_surface_is_warning_free(self, seq_path):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            load(seq_path)
            as_core(seq_path)
            CircuitSession(str(seq_path))

    def test_old_helper_warns_once_and_still_works(self, seq_path):
        import repro.circuit.sequential as seq_module
        from repro.circuit.sequential import parse_sequential_bench_file

        seq_module._warned_file_helper = False
        with pytest.warns(DeprecationWarning, match="repro.api.load"):
            first = parse_sequential_bench_file(seq_path)
        assert isinstance(first, ScanCircuit)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            parse_sequential_bench_file(seq_path)  # second call: silent
