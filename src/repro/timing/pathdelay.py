"""Delay of logical paths and stabilizing systems under an implementation.

The delay of logical path ``(P, x̄→x)`` is the sum, over the gates the
transition passes through, of each gate's output-transition delay in the
direction the transition takes there (final stable values, i.e. the
parity-adjusted transition).  Theorem 1 bounds the settle time of a
stabilizing system by the maximum of its logical path delays.
"""

from __future__ import annotations

from repro.circuit.gates import is_inverting
from repro.circuit.netlist import Circuit
from repro.paths.path import LogicalPath
from repro.timing.delays import DelayAssignment


def logical_path_delay(
    circuit: Circuit, lp: LogicalPath, delays: DelayAssignment
) -> float:
    """Sum of direction-correct gate delays along the path (PI excluded:
    input transitions are applied at t = 0)."""
    value = lp.final_value
    total = 0.0
    for lead in lp.path.leads:
        dst = circuit.lead_dst(lead)
        if is_inverting(circuit.gate_type(dst)):
            value = 1 - value
        total += delays.delay(dst, value)
    return total


def max_system_delay(system, delays: DelayAssignment) -> float:
    """``max { delay(lp) : lp ∈ LP(v, S) }`` — Theorem 1's bound on the
    settle time of stabilizing system ``S``."""
    return max(
        (logical_path_delay(system.circuit, lp, delays)
         for lp in system.logical_paths()),
        default=0.0,
    )


def max_path_delay(
    circuit: Circuit, paths, delays: DelayAssignment
) -> float:
    """Maximum logical path delay over an iterable of paths."""
    return max(
        (logical_path_delay(circuit, lp, delays) for lp in paths), default=0.0
    )
