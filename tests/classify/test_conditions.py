"""Unit tests for the per-gate side-input conditions of each criterion."""

import pytest

from repro.classify.conditions import Criterion, required_side_pins
from repro.sorting.input_sort import InputSort


@pytest.fixture
def or_lead(example_circuit):
    """The lead g_and->g_or (pin 1 of the 3-input OR)."""
    g_or = example_circuit.gate_by_name("g_or")
    return example_circuit.lead_index(g_or, 1)


class TestNonControllingCase:
    """When the on-path value is non-controlling, every criterion demands
    all side inputs non-controlling (FU2/NR2/pi-2)."""

    @pytest.mark.parametrize("criterion", list(Criterion))
    def test_all_sides_required(self, example_circuit, or_lead, criterion):
        sort = InputSort.pin_order(example_circuit)
        pins = required_side_pins(criterion, example_circuit, or_lead, False, sort)
        assert sorted(pins) == [0, 2]


class TestControllingCase:
    def test_fs_requires_nothing(self, example_circuit, or_lead):
        assert required_side_pins(
            Criterion.FS, example_circuit, or_lead, True, None
        ) == []

    def test_nr_requires_everything(self, example_circuit, or_lead):
        pins = required_side_pins(
            Criterion.NR, example_circuit, or_lead, True, None
        )
        assert sorted(pins) == [0, 2]

    def test_sigma_requires_low_order_only(self, example_circuit, or_lead):
        sort = InputSort.pin_order(example_circuit)
        pins = required_side_pins(
            Criterion.SIGMA_PI, example_circuit, or_lead, True, sort
        )
        assert pins == [0]  # only pin 0 precedes pin 1 in pin order

    def test_sigma_with_reversed_sort(self, example_circuit, or_lead):
        sort = InputSort.pin_order(example_circuit).inverted()
        pins = required_side_pins(
            Criterion.SIGMA_PI, example_circuit, or_lead, True, sort
        )
        assert pins == [2]  # in the inverted order, pin 2 precedes pin 1

    def test_sigma_needs_sort(self, example_circuit, or_lead):
        with pytest.raises(ValueError):
            required_side_pins(
                Criterion.SIGMA_PI, example_circuit, or_lead, True, None
            )


def test_criterion_needs_sort_flags():
    assert Criterion.SIGMA_PI.needs_sort
    assert not Criterion.FS.needs_sort
    assert not Criterion.NR.needs_sort
