"""ISCAS-85 ``.bench`` netlist format reader/writer.

The format (Brglez & Fujiwara [13])::

    # comment
    INPUT(a)
    OUTPUT(y)
    n1 = NAND(a, b)
    y  = NOT(n1)

Gate functions accepted: AND, OR, NAND, NOR, NOT, BUF/BUFF, XOR, XNOR.
XOR/XNOR are decomposed into simple gates on the fly (the paper's model
only has simple gates); multi-input XOR/XNOR decompose as balanced trees.

If a signal is declared ``OUTPUT(s)`` and also feeds other gates, a PO
gate named ``s_po`` is attached to the driving signal (the paper's model
makes POs dedicated sink gates).
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, CircuitError

_GATE_RE = re.compile(r"^\s*(\S+)\s*=\s*([A-Za-z]+)\s*\((.*)\)\s*$")
_IO_RE = re.compile(r"^\s*(INPUT|OUTPUT)\s*\(\s*(\S+)\s*\)\s*$", re.IGNORECASE)

_SIMPLE = {
    "AND": GateType.AND,
    "OR": GateType.OR,
    "NAND": GateType.NAND,
    "NOR": GateType.NOR,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
}


class BenchParseError(CircuitError):
    """Raised for malformed .bench input."""


def parse_bench(
    text: str, name: str = "bench", source: "str | None" = None
) -> Circuit:
    """Parse ``.bench`` source text into a frozen :class:`Circuit`.

    ``source`` names where the text came from (a file path); every
    :class:`BenchParseError` message is prefixed with it, so errors from
    multi-file runs point at the offending file, not just a line number.
    """
    prefix = f"{source}: " if source else ""

    def err(message: str) -> BenchParseError:
        return BenchParseError(prefix + message)

    inputs: list[str] = []
    outputs: list[str] = []
    defs: dict[str, tuple[str, list[str]]] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            kind, signal = io_match.group(1).upper(), io_match.group(2)
            bucket = inputs if kind == "INPUT" else outputs
            if signal not in bucket:  # tolerate repeated declarations
                bucket.append(signal)
            continue
        gate_match = _GATE_RE.match(line)
        if not gate_match:
            raise err(f"line {lineno}: cannot parse {raw!r}")
        out_name, func, arg_text = gate_match.groups()
        func = func.upper()
        args = [a.strip() for a in arg_text.split(",") if a.strip()]
        if func not in _SIMPLE and func not in ("XOR", "XNOR"):
            raise err(f"line {lineno}: unknown gate function {func!r}")
        if not args:
            raise err(f"line {lineno}: gate {out_name!r} has no inputs")
        if out_name in defs or out_name in inputs:
            raise err(f"line {lineno}: signal {out_name!r} redefined")
        defs[out_name] = (func, args)

    circuit = Circuit(name)
    ids: dict[str, int] = {}
    state: dict[str, int] = {}

    # Explicit-stack post-order build (fanin chains can be deeper than
    # the interpreter recursion limit). state: 1 = expanding (on the
    # stack, a repeat visit means a combinational cycle), 2 = built.
    def build(signal: str) -> int:
        stack = [(signal, False)]
        while stack:
            sig, expanded = stack.pop()
            if sig in ids:
                continue
            if expanded:
                func, args = defs[sig]
                fanin = [ids[a] for a in args]
                if func in _SIMPLE:
                    gtype = _SIMPLE[func]
                    if gtype in (GateType.NOT, GateType.BUF) and len(fanin) != 1:
                        raise err(
                            f"gate {sig!r}: {func} takes exactly one input"
                        )
                    gid = circuit.add_gate(gtype, sig, fanin)
                else:
                    gid = _build_xor_tree(circuit, sig, fanin, func == "XNOR")
                state[sig] = 2
                ids[sig] = gid
            elif sig in defs:
                if state.get(sig) == 1:
                    raise err(f"combinational cycle through {sig!r}")
                state[sig] = 1
                stack.append((sig, True))
                # Reversed push => fanins resolve left-to-right, keeping
                # gate creation order identical to the recursive build.
                for a in reversed(defs[sig][1]):
                    if a not in ids:
                        stack.append((a, False))
            elif sig in inputs:
                ids[sig] = circuit.add_gate(GateType.PI, sig)
            else:
                raise err(f"signal {sig!r} used but never defined")
        return ids[signal]

    for signal in inputs:
        build(signal)
    for signal in outputs:
        gid = build(signal)
        circuit.add_gate(GateType.PO, f"{signal}_po", [gid])
    return circuit.freeze()


def _build_xor_tree(
    circuit: Circuit, name: str, fanin: list[int], invert: bool
) -> int:
    """Decompose an n-input XOR/XNOR into 2-input XORs built from simple
    gates (balanced tree), returning the root gate id."""
    counter = [0]

    def fresh(suffix: str) -> str:
        counter[0] += 1
        return f"{name}${suffix}{counter[0]}"

    def xor2(a: int, b: int, top_name: str | None) -> int:
        na = circuit.add_gate(GateType.NOT, fresh("na"), [a])
        nb = circuit.add_gate(GateType.NOT, fresh("nb"), [b])
        t0 = circuit.add_gate(GateType.AND, fresh("t"), [a, nb])
        t1 = circuit.add_gate(GateType.AND, fresh("t"), [na, b])
        return circuit.add_gate(GateType.OR, top_name or fresh("x"), [t0, t1])

    nodes = list(fanin)
    while len(nodes) > 1:
        nxt = []
        for i in range(0, len(nodes) - 1, 2):
            is_root = len(nodes) == 2 and not invert
            nxt.append(xor2(nodes[i], nodes[i + 1], name if is_root else None))
        if len(nodes) % 2:
            nxt.append(nodes[-1])
        nodes = nxt
    root = nodes[0]
    if invert:
        root = circuit.add_gate(GateType.NOT, name, [root])
    return root


def parse_bench_file(path: str | Path) -> Circuit:
    """Parse a ``.bench`` file; the circuit name is the file stem and
    parse errors carry the file path (``<path>: line N: ...``)."""
    path = Path(path)
    return parse_bench(path.read_text(), name=path.stem, source=str(path))


def write_bench(circuit: Circuit) -> str:
    """Serialize a frozen circuit of simple gates to ``.bench`` text.

    POs are written as ``OUTPUT(driver)`` of their driving signal, so the
    ``parse_bench(write_bench(c))`` round trip may rename PO sink gates
    but preserves structure and function.
    """
    lines = [f"# {circuit.name}"]
    for gid in circuit.inputs:
        lines.append(f"INPUT({circuit.gate_name(gid)})")
    for gid in circuit.outputs:
        driver = circuit.fanin(gid)[0]
        lines.append(f"OUTPUT({circuit.gate_name(driver)})")
    for gid in circuit.topo_order:
        gtype = circuit.gate_type(gid)
        if gtype in (GateType.PI, GateType.PO):
            continue
        func = "BUFF" if gtype is GateType.BUF else gtype.name
        args = ", ".join(circuit.gate_name(s) for s in circuit.fanin(gid))
        lines.append(f"{circuit.gate_name(gid)} = {func}({args})")
    return "\n".join(lines) + "\n"
