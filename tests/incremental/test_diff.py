"""Cone-level structural diff: dirty-set minimality and matching."""

from repro.circuit.gates import GateType
from repro.circuit.netlist import circuit_from_spec
from repro.gen.suite import get_circuit
from repro.incremental import diff_circuits
from repro.incremental.diff import ADDED, CLEAN, DIRTY, REMOVED


def _spec():
    return [
        ("a", GateType.PI, []),
        ("b", GateType.PI, []),
        ("c", GateType.PI, []),
        ("g1", GateType.AND, ["a", "b"]),
        ("g2", GateType.OR, ["b", "c"]),
        ("g3", GateType.NAND, ["g1", "c"]),
        ("o1", GateType.PO, ["g3"]),
        ("o2", GateType.PO, ["g2"]),
    ]


def test_identical_circuits_all_clean():
    diff = diff_circuits(
        circuit_from_spec("base", _spec()), circuit_from_spec("edit", _spec())
    )
    assert len(diff.clean) == 2
    assert not diff.dirty
    assert diff.reuse_possible == 1.0
    assert all(d.matched_by == "name" for d in diff.deltas)


def test_single_edit_dirties_exactly_affected_cones():
    base = circuit_from_spec("base", _spec())
    spec = _spec()
    spec[3] = ("g1", GateType.NOR, ["a", "b"])  # only feeds o1 via g3
    edited = circuit_from_spec("edit", spec)
    diff = diff_circuits(base, edited)
    assert diff.dirty_outputs == ("o1",)
    assert [d.output for d in diff.clean] == ["o2"]
    (dirty,) = diff.dirty
    # gate delta pinpoints the edit site: g1 changed, so g1 and its
    # downstream hashes differ on both sides
    assert "g1" in dirty.gates_added and "g1" in dirty.gates_removed
    assert "b" not in dirty.gates_added  # untouched fanin not blamed


def test_rename_matches_by_fingerprint():
    base = circuit_from_spec("base", _spec())
    spec = [
        (nm.replace("o2", "o2_new"), t, fi) for nm, t, fi in _spec()
    ]
    edited = circuit_from_spec("edit", spec)
    diff = diff_circuits(base, edited)
    assert not diff.dirty
    renamed = next(d for d in diff.deltas if d.output == "o2_new")
    assert renamed.status == CLEAN and renamed.matched_by == "fingerprint"


def test_added_and_removed_outputs():
    base = circuit_from_spec("base", _spec())
    spec = [item for item in _spec() if item[0] != "o2"]
    spec.append(("o3", GateType.PO, ["g1"]))
    edited = circuit_from_spec("edit", spec)
    diff = diff_circuits(base, edited)
    statuses = {d.output: d.status for d in diff.deltas}
    assert statuses["o3"] == ADDED
    assert statuses["o2"] == REMOVED
    assert statuses["o1"] == CLEAN
    assert "o3" in diff.dirty_outputs  # added cones must be computed


def test_json_shape():
    base = circuit_from_spec("base", _spec())
    spec = _spec()
    spec[4] = ("g2", GateType.AND, ["b", "c"])
    payload = diff_circuits(base, circuit_from_spec("edit", spec)).to_dict()
    assert payload["base"] == "base" and payload["edited"] == "edit"
    assert payload["counts"] == {CLEAN: 1, DIRTY: 1, ADDED: 0, REMOVED: 0}
    assert 0.0 < payload["reuse_possible"] < 1.0
    assert {c["output"] for c in payload["cones"]} == {"o1", "o2"}
    for cone in payload["cones"]:
        assert set(cone) == {
            "output", "status", "base_fingerprint", "edited_fingerprint",
            "matched_by", "base_gates", "edited_gates",
            "gates_added", "gates_removed",
        }


def test_suite_circuit_one_gate_edit_is_mostly_clean():
    base = get_circuit("s1908-csel")
    edited = base.copy("s1908-edit")
    gid = next(
        g for g in range(edited.num_gates)
        if edited.gate_type(g) is GateType.AND
    )
    edited.replace_gate(
        edited.gate_name(gid), GateType.OR, list(edited.fanin(gid))
    )
    diff = diff_circuits(base, edited)
    assert diff.dirty  # the edit reaches at least one PO
    assert diff.reuse_possible > 0.5
    # DIRTY is exactly the set of POs the edited gate reaches
    reached = {base.gate_name(po) for po in base.reachable_pos(gid)}
    assert set(diff.dirty_outputs) == reached


def test_render_mentions_counts():
    base = circuit_from_spec("base", _spec())
    spec = _spec()
    spec[3] = ("g1", GateType.OR, ["a", "b"])
    text = diff_circuits(base, circuit_from_spec("edit", spec)).render()
    assert "1 clean, 1 dirty" in text
    assert "DIRTY" in text and "o1" in text
