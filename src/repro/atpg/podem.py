"""PODEM: path-oriented decision making, the classical structural ATPG.

An independent second engine for stuck-at test generation (the SAT miter
in :mod:`repro.atpg.stuckat` is the first): decisions are made on
primary inputs only, guided by *objectives* (activate the fault, then
extend the D-frontier) that are *backtraced* to an unassigned PI; a
five-valued composite circuit state (good value, faulty value — each
ternary) is recomputed by implication after every decision.

Because decisions are on PIs with both phases explored, PODEM is
complete: with an unbounded backtrack budget it returns a test vector
iff the fault is testable.  The test suite cross-validates it against
both the SAT engine and brute force.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.atpg.stuckat import StuckAtFault
from repro.circuit.gates import (
    GateType,
    controlling_value,
    has_controlling_value,
)
from repro.circuit.netlist import Circuit
from repro.logic.values import X, controlled_output, ternary_gate_eval


class PodemAbort(RuntimeError):
    """Backtrack budget exhausted before a verdict was reached."""


@dataclass
class PodemResult:
    """Outcome of one PODEM run."""

    vector: "tuple | None"
    backtracks: int
    decisions: int

    @property
    def testable(self) -> bool:
        return self.vector is not None


class _State:
    """Composite (good, faulty) ternary circuit state for one fault."""

    def __init__(self, circuit: Circuit, fault: StuckAtFault) -> None:
        self.circuit = circuit
        self.fault = fault
        self.fault_src = circuit.lead_src(fault.lead)
        self.fault_dst = circuit.lead_dst(fault.lead)
        self.fault_pin = circuit.lead_pin(fault.lead)
        self.good = [X] * circuit.num_gates
        self.faulty = [X] * circuit.num_gates

    def imply(self, assignment: dict) -> None:
        """Recompute both ternary value planes from the PI assignment."""
        circuit = self.circuit
        good = self.good
        faulty = self.faulty
        for gid in circuit.topo_order:
            gtype = circuit.gate_type(gid)
            if gtype is GateType.PI:
                good[gid] = faulty[gid] = assignment.get(gid, X)
                continue
            good_ins = [good[s] for s in circuit.fanin(gid)]
            good[gid] = ternary_gate_eval(gtype, good_ins)
            faulty_ins = [faulty[s] for s in circuit.fanin(gid)]
            if gid == self.fault_dst:
                faulty_ins[self.fault_pin] = self.fault.value
            faulty[gid] = ternary_gate_eval(gtype, faulty_ins)

    # -- state queries --------------------------------------------------
    def activation_value(self) -> int:
        """Good value the fault site must carry to expose the fault."""
        return 1 - self.fault.value

    def activated(self) -> bool:
        return self.good[self.fault_src] == self.activation_value()

    def activation_blocked(self) -> bool:
        return self.good[self.fault_src] == self.fault.value

    def observed(self) -> bool:
        return any(
            self.good[po] != X
            and self.faulty[po] != X
            and self.good[po] != self.faulty[po]
            for po in self.circuit.outputs
        )

    def _gate_has_d_input(self, gid: int) -> bool:
        for pin, src in enumerate(self.circuit.fanin(gid)):
            gv = self.good[src]
            fv = self.faulty[src]
            if gid == self.fault_dst and pin == self.fault_pin:
                fv = self.fault.value
            if gv != X and fv != X and gv != fv:
                return True
        return False

    def d_frontier(self) -> list:
        """Gates with a fault effect on an input and an undetermined
        composite output — the places propagation can still continue."""
        frontier = []
        for gid in range(self.circuit.num_gates):
            gtype = self.circuit.gate_type(gid)
            if gtype is GateType.PI:
                continue
            if self.good[gid] != X and self.faulty[gid] != X:
                continue
            if self._gate_has_d_input(gid):
                frontier.append(gid)
        return frontier


def _backtrace(state: _State, net: int, value: int) -> "tuple | None":
    """Walk an objective (net := value) back to an unassigned PI,
    returning (pi, value) — or None if no X-input route exists."""
    circuit = state.circuit
    while circuit.gate_type(net) is not GateType.PI:
        gtype = circuit.gate_type(net)
        fanin = circuit.fanin(net)
        if gtype in (GateType.PO, GateType.BUF):
            net = fanin[0]
            continue
        if gtype is GateType.NOT:
            net = fanin[0]
            value = 1 - value
            continue
        if not has_controlling_value(gtype):
            return None
        c = controlling_value(gtype)
        x_inputs = [s for s in fanin if state.good[s] == X]
        if not x_inputs:
            return None
        if value == controlled_output(gtype):
            # One controlling input suffices: pick the first X input.
            net = x_inputs[0]
            value = c
        else:
            # Every input must be non-controlling; work on an X one.
            net = x_inputs[0]
            value = 1 - c
    if state.good[net] != X:
        return None
    return net, value


def _objective(state: _State) -> "tuple | None":
    """The next (net, value) goal: activate first, then propagate."""
    if not state.activated():
        return state.fault_src, state.activation_value()
    for gid in state.d_frontier():
        gtype = state.circuit.gate_type(gid)
        if has_controlling_value(gtype):
            nc = 1 - controlling_value(gtype)
            for pin, src in enumerate(state.circuit.fanin(gid)):
                if gid == state.fault_dst and pin == state.fault_pin:
                    continue
                if state.good[src] == X:
                    return src, nc
        else:
            # NOT/BUF/PO frontier gates propagate unconditionally once
            # their input is known; nothing to justify here.
            continue
    return None


def podem(
    circuit: Circuit,
    fault: StuckAtFault,
    max_backtracks: int = 100_000,
) -> PodemResult:
    """Run PODEM for ``fault``.  ``vector=None`` means *redundant* —
    the search space was exhausted.  Raises :class:`PodemAbort` when the
    backtrack budget runs out first."""
    state = _State(circuit, fault)
    assignment: dict = {}
    # Decision stack entries: [pi, value, phase_flipped]
    stack: list = []
    backtracks = 0
    decisions = 0
    while True:
        state.imply(assignment)
        failed = False
        if state.observed():
            vector = tuple(
                assignment.get(pi, 0) for pi in circuit.inputs
            )
            return PodemResult(
                vector=vector, backtracks=backtracks, decisions=decisions
            )
        if state.activation_blocked():
            failed = True
        elif state.activated() and not state.d_frontier():
            failed = True
        if not failed:
            goal = _objective(state)
            target = _backtrace(state, *goal) if goal else None
            if target is None:
                failed = True
            else:
                pi, value = target
                stack.append([pi, value, False])
                assignment[pi] = value
                decisions += 1
                continue
        # Backtrack: flip the deepest unflipped decision.
        backtracks += 1
        if backtracks > max_backtracks:
            raise PodemAbort(
                f"{fault.describe(circuit)}: more than {max_backtracks} "
                "backtracks"
            )
        while stack:
            entry = stack[-1]
            if not entry[2]:
                entry[1] = 1 - entry[1]
                entry[2] = True
                assignment[entry[0]] = entry[1]
                break
            stack.pop()
            del assignment[entry[0]]
        else:
            return PodemResult(
                vector=None, backtracks=backtracks, decisions=decisions
            )


def generate_test_podem(circuit: Circuit, fault: StuckAtFault):
    """Drop-in counterpart of :func:`repro.atpg.stuckat.generate_test`."""
    return podem(circuit, fault).vector
