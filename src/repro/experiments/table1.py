"""Table I — percentage of logical paths identified robust dependent.

Columns, as in the paper: FUS (functionally unsensitizable, [2]),
Heu1, Heu2 (the new approach with both sorting heuristics), and
Heu2-bar (the inverted input sort, the paper's control experiment).

Runs are supervised: a circuit whose task failed even after retry and
in-process degradation renders as a ``FAILED`` row instead of aborting
the table, and ``checkpoint``/``resume`` make long runs restartable
(see :mod:`repro.experiments.supervisor`).
"""

from __future__ import annotations

from typing import Iterable

from repro.circuit.netlist import Circuit
from repro.classify.session import format_session_stats
from repro.experiments.harness import Table1Row, run_table1_rows
from repro.experiments.supervisor import RowFailure, TaskRunner
from repro.gen.suite import table1_suite
from repro.util.tables import TextTable


def run(
    circuits: Iterable[Circuit] | None = None,
    jobs: int = 1,
    *,
    checkpoint: "str | None" = None,
    resume: bool = False,
    task_timeout: "float | None" = None,
    max_retries: "int | None" = None,
    runner: "TaskRunner | None" = None,
    store: "str | None" = None,
) -> "tuple[TextTable, list[Table1Row | RowFailure]]":
    extra = {} if max_retries is None else {"max_retries": max_retries}
    rows = run_table1_rows(
        circuits if circuits is not None else table1_suite(),
        jobs=jobs,
        checkpoint=checkpoint,
        resume=resume,
        task_timeout=task_timeout,
        runner=runner,
        store=store,
        **extra,
    )
    table = TextTable(
        ["circuit", "FUS", "Heu1", "Heu2", "inv-Heu2"],
        title="Table I: % of logical paths identified RD (ISCAS-85 stand-ins)",
    )
    for row in rows:
        if isinstance(row, RowFailure):
            table.add_row([row.label, "FAILED", "FAILED", "FAILED", "FAILED"])
            continue
        table.add_row(
            [
                row.name,
                f"{row.fus_percent:.2f} %",
                f"{row.heu1_percent:.2f} %",
                f"{row.heu2_percent:.2f} %",
                f"{row.heu2_inverse_percent:.2f} %",
            ]
        )
    return table, rows


def main(
    jobs: int = 1,
    *,
    checkpoint: "str | None" = None,
    resume: bool = False,
    task_timeout: "float | None" = None,
    max_retries: "int | None" = None,
    store: "str | None" = None,
    verbose: bool = False,
) -> None:
    table, rows = run(
        jobs=jobs,
        checkpoint=checkpoint,
        resume=resume,
        task_timeout=task_timeout,
        max_retries=max_retries,
        store=store,
    )
    print(table.render())
    if verbose:
        for row in rows:
            if isinstance(row, Table1Row) and row.session_stats is not None:
                print(f"   {row.name}: {format_session_stats(row.session_stats)}")
    for row in rows:
        if isinstance(row, RowFailure):
            print(f"!! {row}")
            continue
        for problem in row.check_expected_shape():
            print(f"!! {row.name}: {problem}")


if __name__ == "__main__":
    main()
