"""Unit tests for scaling sweeps."""

from repro.experiments.sweep import growth_factors, sweep_family
from repro.gen.multiplier import array_multiplier
from repro.gen.parity import parity_tree


def test_multiplier_sweep_explodes():
    points = sweep_family(array_multiplier, [2, 3, 4])
    totals = [p.total_logical for p in points]
    assert totals == sorted(totals)
    factors = growth_factors(points)
    assert all(f > 5 for f in factors)  # super-geometric growth
    # Small sizes classified, with sane RD percentages.
    assert points[0].accepted is not None
    assert 0 <= points[-1].rd_percent <= 100


def test_budget_produces_counting_only_points():
    points = sweep_family(
        array_multiplier, [2, 5], classification_budget=100
    )
    assert points[0].accepted is not None  # 56 paths fit the budget
    assert points[1].accepted is None  # 2M paths do not
    assert points[1].rd_percent is None
    assert points[1].total_logical > 10**6


def test_parity_sweep_rd_grows_with_depth():
    family = lambda w: parity_tree(w, style="nand")
    points = sweep_family(family, [8, 16, 32])
    rd = [p.rd_percent for p in points]
    assert rd == sorted(rd)  # deeper trees: larger FUS fraction
