"""Table III — quality/time of the baseline of [1] vs Heuristic 2.

The baseline optimises over all complete stabilizing assignments (the
exact objective of [1], see :mod:`repro.baseline`); Heuristic 2 is the
paper's fast approximation.  The paper reports a mean quality gap of
2.05% and speedups of one to three orders of magnitude.
"""

from __future__ import annotations

from typing import Iterable

from repro.circuit.netlist import Circuit
from repro.experiments.harness import Table3Row, run_table3_rows
from repro.gen.suite import table3_suite
from repro.util.tables import TextTable
from repro.util.timer import format_duration


def run(
    circuits: Iterable[Circuit] | None = None,
    baseline_method: str = "greedy",
    jobs: int = 1,
) -> tuple[TextTable, list[Table3Row]]:
    rows = run_table3_rows(
        circuits if circuits is not None else table3_suite(),
        baseline_method=baseline_method,
        jobs=jobs,
    )
    table = TextTable(
        [
            "circuit",
            "logical paths",
            "baseline RD%",
            "baseline time",
            "Heu2 RD%",
            "Heu2 time",
            "gap",
            "speedup",
        ],
        title="Table III: approach of [1] vs Heuristic 2 (MCNC-like stand-ins)",
    )
    for row in rows:
        table.add_row(
            [
                row.name,
                f"{row.total_logical:,}",
                f"{row.baseline_percent:.2f} %",
                format_duration(row.baseline_time),
                f"{row.heu2_percent:.2f} %",
                format_duration(row.heu2_time),
                f"{row.quality_gap:+.2f} %",
                f"{row.speedup:.1f}x",
            ]
        )
    return table, rows


def main(jobs: int = 1) -> None:
    table, rows = run(jobs=jobs)
    print(table.render())
    gaps = [row.quality_gap for row in rows]
    print(f"mean quality gap: {sum(gaps) / len(gaps):.2f} % (paper: 2.05 %)")


if __name__ == "__main__":
    main()
