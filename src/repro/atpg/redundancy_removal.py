"""Iterative redundancy removal.

The classical synthesis/test loop: while some stuck-at fault is
redundant, freeze the faulty pin at its stuck value (a function-
preserving change, by definition of redundancy), fold the constant
through the netlist, and repeat on the simplified circuit.  The result
is 100% stuck-at-testable ("irredundant") and usually smaller.

For delay testing this matters in reverse: the paper's RD theory lives
on the netlist as manufactured, so removal is an *upstream* design step
— see docs/THEORY.md §5 for why removal must never be applied as part
of RD identification itself.  Every step here is verified against the
original circuit with the SAT equivalence checker.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.atpg.collapse import collapse_faults
from repro.atpg.equiv import check_equivalence
from repro.atpg.stuckat import StuckAtFault, is_redundant
from repro.circuit.netlist import Circuit
from repro.circuit.simplify import propagate_constants, sweep


@dataclass
class RemovalResult:
    """Outcome of one redundancy-removal run."""

    original: Circuit
    circuit: Circuit
    removed: list = field(default_factory=list)  # fault descriptions
    iterations: int = 0

    @property
    def gates_saved(self) -> int:
        return self.original.num_gates - self.circuit.num_gates

    def __str__(self) -> str:
        return (
            f"{self.original.name}: removed {len(self.removed)} redundant "
            f"faults in {self.iterations} sweeps, "
            f"{self.original.num_gates} -> {self.circuit.num_gates} gates"
        )


def remove_redundancies(
    circuit: Circuit,
    max_iterations: int = 50,
    verify: bool = True,
) -> RemovalResult:
    """Fold redundant stuck-at faults until none remain.

    ``verify=True`` re-checks functional equivalence against the input
    circuit after every fold (SAT) — cheap at these sizes and the
    guarantee callers care about.
    """
    result = RemovalResult(original=circuit, circuit=circuit)
    current = circuit
    for _ in range(max_iterations):
        result.iterations += 1
        folded = False
        for fault in collapse_faults(current):
            if not is_redundant(current, fault):
                continue
            simplified, _mapping = propagate_constants(
                current,
                known_pins={fault.lead: fault.value},
                name=current.name,
            )
            simplified = sweep(simplified, name=current.name)
            if verify and not check_equivalence(circuit, simplified):
                raise RuntimeError(
                    f"folding {fault.describe(current)} changed the function"
                )
            result.removed.append(fault.describe(current))
            current = simplified
            folded = True
            break  # fault ids shift after a rebuild: restart the scan
        if not folded:
            break
    else:
        raise RuntimeError("redundancy removal did not converge")
    result.circuit = current
    return result


def is_irredundant(circuit: Circuit) -> bool:
    """True iff no collapsed stuck-at fault of ``circuit`` is redundant."""
    return all(
        not is_redundant(circuit, fault)
        for fault in collapse_faults(circuit)
    )


__all__ = ["RemovalResult", "remove_redundancies", "is_irredundant", "StuckAtFault"]
