"""Ablation: how much does the input sort matter?

DESIGN.md calls out the sort choice as the paper's central design lever
(Section V).  This bench sweeps pin-order / random / Heuristic 1 /
Heuristic 2 / inverted-Heuristic 2 on two structurally different
circuits and asserts the expected ordering of RD fractions.
"""

import pytest

from repro.classify.conditions import Criterion
from repro.classify.engine import classify
from repro.gen.suite import get_circuit
from repro.sorting.heuristics import (
    heuristic1_sort,
    heuristic2_sort,
    pin_order_sort,
    random_sort,
)

_CIRCUITS = ["s1355-par", "s5315-rca"]


def _sorts(circuit):
    heu2 = heuristic2_sort(circuit)
    return {
        "pin": pin_order_sort(circuit),
        "random": random_sort(circuit, seed=1),
        "heu1": heuristic1_sort(circuit),
        "heu2": heu2,
        "heu2-inverted": heu2.inverted(),
    }


@pytest.mark.parametrize("name", _CIRCUITS)
@pytest.mark.parametrize("sort_kind", ["pin", "random", "heu1", "heu2",
                                       "heu2-inverted"])
def test_sort_quality(benchmark, name, sort_kind):
    circuit = get_circuit(name)
    sort = _sorts(circuit)[sort_kind]
    result = benchmark.pedantic(
        classify,
        args=(circuit, Criterion.SIGMA_PI),
        kwargs={"sort": sort},
        rounds=1,
        iterations=1,
    )
    assert result.accepted <= result.total_logical


@pytest.mark.parametrize("name", _CIRCUITS)
def test_sort_ordering_shape(benchmark, name):
    """Heu2 >= Heu1 >= each of {pin, random, inverted} in RD fraction —
    the paper's Table I ordering, asserted as an ablation result."""
    circuit = get_circuit(name)
    sorts = _sorts(circuit)
    rd = benchmark.pedantic(
        lambda: {
            kind: classify(circuit, Criterion.SIGMA_PI, sort=sort).rd_count
            for kind, sort in sorts.items()
        },
        rounds=1, iterations=1,
    )
    assert rd["heu2"] >= rd["heu1"] - rd["heu2"] * 0.05, name
    assert rd["heu2"] >= rd["heu2-inverted"], name
    assert rd["heu1"] >= min(rd["pin"], rd["random"]), name
