"""Structural cone diff between a base circuit and an edited circuit.

Classifies every output cone as CLEAN (identical ``rdcfp1:`` cone
fingerprint — cached cone-level results are reusable verbatim) or DIRTY
(must be re-analyzed), plus ADDED/REMOVED for outputs present on only
one side.  Cones are matched primarily by PO name (the stable handle
across an ECO edit); outputs unmatched by name are then matched by
fingerprint, so a pure rename never dirties anything.

For DIRTY cones the report carries a per-cone *gate delta*: the gates
whose fold hashes (see :mod:`repro.incremental.conefp`) appear in one
cone's hash multiset but not the other's — i.e. the gates whose
transitive fanin actually changed, which pinpoints the edit site.

Exposed on the command line as ``repro-rd diff BASE EDITED [--json]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.circuit.netlist import Circuit
from repro.incremental.conefp import Cone, ConeIndex, cone_index

__all__ = ["CLEAN", "DIRTY", "ADDED", "REMOVED", "ConeDelta", "CircuitDiff", "diff_circuits"]

CLEAN = "CLEAN"
DIRTY = "DIRTY"
ADDED = "ADDED"
REMOVED = "REMOVED"


@dataclass(frozen=True)
class ConeDelta:
    """One output cone's fate across the edit."""

    output: str  #: PO name (the edited side's name for matched cones)
    status: str  #: CLEAN | DIRTY | ADDED | REMOVED
    base_fingerprint: "Optional[str]"
    edited_fingerprint: "Optional[str]"
    matched_by: str  #: "name" | "fingerprint" | "" (unmatched)
    base_gates: int = 0
    edited_gates: int = 0
    #: gate names (edited side) whose fold hash is new in this cone
    gates_added: "tuple[str, ...]" = ()
    #: gate names (base side) whose fold hash vanished from this cone
    gates_removed: "tuple[str, ...]" = ()

    def to_dict(self) -> dict:
        return {
            "output": self.output,
            "status": self.status,
            "base_fingerprint": self.base_fingerprint,
            "edited_fingerprint": self.edited_fingerprint,
            "matched_by": self.matched_by,
            "base_gates": self.base_gates,
            "edited_gates": self.edited_gates,
            "gates_added": list(self.gates_added),
            "gates_removed": list(self.gates_removed),
        }


@dataclass(frozen=True)
class CircuitDiff:
    """The full cone-level diff of one edit."""

    base_name: str
    edited_name: str
    deltas: "tuple[ConeDelta, ...]"

    @property
    def clean(self) -> "tuple[ConeDelta, ...]":
        return tuple(d for d in self.deltas if d.status == CLEAN)

    @property
    def dirty(self) -> "tuple[ConeDelta, ...]":
        return tuple(d for d in self.deltas if d.status == DIRTY)

    @property
    def dirty_outputs(self) -> "tuple[str, ...]":
        return tuple(d.output for d in self.deltas if d.status in (DIRTY, ADDED))

    @property
    def reuse_possible(self) -> float:
        """Fraction of *edited* cones whose stored results are reusable."""
        edited = [d for d in self.deltas if d.status != REMOVED]
        if not edited:
            return 0.0
        return len([d for d in edited if d.status == CLEAN]) / len(edited)

    def to_dict(self) -> dict:
        counts = {status: 0 for status in (CLEAN, DIRTY, ADDED, REMOVED)}
        for delta in self.deltas:
            counts[delta.status] += 1
        return {
            "base": self.base_name,
            "edited": self.edited_name,
            "counts": counts,
            "reuse_possible": self.reuse_possible,
            "cones": [delta.to_dict() for delta in self.deltas],
        }

    def render(self) -> str:
        lines = [
            f"diff {self.base_name} -> {self.edited_name}: "
            f"{len(self.clean)} clean, {len(self.dirty)} dirty, "
            f"{sum(1 for d in self.deltas if d.status == ADDED)} added, "
            f"{sum(1 for d in self.deltas if d.status == REMOVED)} removed "
            f"({100.0 * self.reuse_possible:.0f}% reusable)"
        ]
        for delta in self.deltas:
            if delta.status == CLEAN:
                continue
            line = f"  {delta.status:<7} {delta.output}"
            if delta.status == DIRTY:
                line += f" ({delta.base_gates} -> {delta.edited_gates} gates"
                if delta.gates_added:
                    line += f"; +{','.join(delta.gates_added)}"
                if delta.gates_removed:
                    line += f"; -{','.join(delta.gates_removed)}"
                line += ")"
            lines.append(line)
        return "\n".join(lines)


def _gate_delta(
    base_index: ConeIndex, base_cone: Cone, edited_index: ConeIndex, edited_cone: Cone
) -> "tuple[tuple[str, ...], tuple[str, ...]]":
    """Multiset difference of the two cones' per-gate fold hashes."""
    base_names = base_index.gate_hash_names(base_cone)
    edited_names = edited_index.gate_hash_names(edited_cone)
    added: "list[str]" = []
    removed: "list[str]" = []
    for digest, names in sorted(edited_names.items()):
        surplus = len(names) - len(base_names.get(digest, ()))
        if surplus > 0:
            added.extend(sorted(names)[:surplus])
    for digest, names in sorted(base_names.items()):
        surplus = len(names) - len(edited_names.get(digest, ()))
        if surplus > 0:
            removed.extend(sorted(names)[:surplus])
    return tuple(sorted(added)), tuple(sorted(removed))


def _matched_delta(
    base_index: ConeIndex,
    base_cone: Cone,
    edited_index: ConeIndex,
    edited_cone: Cone,
    matched_by: str,
) -> ConeDelta:
    if base_cone.fingerprint == edited_cone.fingerprint:
        status, added, removed = CLEAN, (), ()
    else:
        status = DIRTY
        added, removed = _gate_delta(base_index, base_cone, edited_index, edited_cone)
    return ConeDelta(
        output=edited_cone.output,
        status=status,
        base_fingerprint=base_cone.fingerprint,
        edited_fingerprint=edited_cone.fingerprint,
        matched_by=matched_by,
        base_gates=base_cone.num_gates,
        edited_gates=edited_cone.num_gates,
        gates_added=added,
        gates_removed=removed,
    )


def diff_circuits(base: Circuit, edited: Circuit) -> CircuitDiff:
    """Cone-level structural diff (both circuits must be frozen)."""
    base_index = cone_index(base)
    edited_index = cone_index(edited)
    base_by_name = {cone.output: cone for cone in base_index.cones}
    matched_base: "set[str]" = set()
    deltas: "list[ConeDelta]" = []
    unmatched_edited: "list[Cone]" = []
    for cone in edited_index.cones:
        peer = base_by_name.get(cone.output)
        if peer is not None:
            matched_base.add(peer.output)
            deltas.append(
                _matched_delta(base_index, peer, edited_index, cone, "name")
            )
        else:
            unmatched_edited.append(cone)
    # second pass: renamed outputs pair up by fingerprint (first come,
    # first served among structurally identical leftovers)
    leftover_base = [
        cone for cone in base_index.cones if cone.output not in matched_base
    ]
    by_fp: "dict[str, list[Cone]]" = {}
    for cone in leftover_base:
        by_fp.setdefault(cone.fingerprint, []).append(cone)
    for cone in unmatched_edited:
        pool = by_fp.get(cone.fingerprint)
        if pool:
            peer = pool.pop(0)
            matched_base.add(peer.output)
            deltas.append(
                _matched_delta(base_index, peer, edited_index, cone, "fingerprint")
            )
        else:
            deltas.append(
                ConeDelta(
                    output=cone.output,
                    status=ADDED,
                    base_fingerprint=None,
                    edited_fingerprint=cone.fingerprint,
                    matched_by="",
                    edited_gates=cone.num_gates,
                )
            )
    for cone in base_index.cones:
        if cone.output not in matched_base:
            deltas.append(
                ConeDelta(
                    output=cone.output,
                    status=REMOVED,
                    base_fingerprint=cone.fingerprint,
                    edited_fingerprint=None,
                    matched_by="",
                    base_gates=cone.num_gates,
                )
            )
    return CircuitDiff(
        base_name=base.name, edited_name=edited.name, deltas=tuple(deltas)
    )
