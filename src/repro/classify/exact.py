"""Exact (exponential) reference implementations of the criteria.

Used to validate the fast approximate classifier on small circuits:

* :func:`satisfies_criterion` — do the criterion's conditions hold for a
  given logical path under a given, fully specified input vector?
* :func:`exists_vector` — brute-force existential over all ``2^n``
  vectors (the exact membership test the paper's Algorithm 2
  approximates).
* :func:`exact_path_set` — the exact criterion set by explicit path
  enumeration.
* :func:`exact_lp_sigma` — ``LP(σ^π)`` computed the *other* way, through
  Algorithm 1 / stabilizing systems, which by Lemma 2 must coincide with
  ``exact_path_set(..., SIGMA_PI, ...)``.
"""

from __future__ import annotations

from repro.errors import ExactLimitError
from repro.circuit.gates import GateType, controlling_value, has_controlling_value
from repro.circuit.netlist import Circuit
from repro.classify.conditions import Criterion, required_side_pins
from repro.logic.simulate import all_vectors, simulate
from repro.paths.enumerate import enumerate_logical_paths
from repro.paths.path import LogicalPath
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # annotation-only; avoids a classify <-> sorting cycle
    from repro.sorting.input_sort import InputSort

_MAX_INPUTS = 20


def satisfies_criterion(
    circuit: Circuit,
    criterion: Criterion,
    logical_path: LogicalPath,
    vector: tuple[int, ...],
    sort: InputSort | None = None,
) -> bool:
    """Check the criterion's conditions for ``logical_path`` under the
    stable values produced by ``vector`` (conditions (FU1)-(FU2),
    (NR1)-(NR2) or (π1)-(π3) literally as written in the paper)."""
    values = simulate(circuit, vector)
    pi = logical_path.path.source(circuit)
    if values[pi] != logical_path.final_value:
        return False  # (FU1)/(NR1)/(π1)
    for lead in logical_path.path.leads:
        dst = circuit.lead_dst(lead)
        gtype = circuit.gate_type(dst)
        if not has_controlling_value(gtype):
            continue
        src = circuit.lead_src(lead)
        c = controlling_value(gtype)
        on_path_is_controlling = values[src] == c
        pins = required_side_pins(
            criterion, circuit, lead, on_path_is_controlling, sort
        )
        fanin = circuit.fanin(dst)
        if any(values[fanin[p]] == c for p in pins):
            return False
    return True


def exists_vector(
    circuit: Circuit,
    criterion: Criterion,
    logical_path: LogicalPath,
    sort: InputSort | None = None,
) -> bool:
    """Exact membership: does *some* input vector satisfy the criterion's
    conditions for this logical path?  Exponential in #PIs."""
    n = len(circuit.inputs)
    if n > _MAX_INPUTS:
        raise ExactLimitError(
            f"brute force over 2^{n} vectors refused "
            f"({n} PIs > {_MAX_INPUTS}); use the SAT-exact mode instead: "
            "repro.verdict.VerdictOracle decides the same membership "
            "question without the input-count ceiling"
        )
    return any(
        satisfies_criterion(circuit, criterion, logical_path, vector, sort)
        for vector in all_vectors(n)
    )


def exact_path_set(
    circuit: Circuit,
    criterion: Criterion,
    sort: InputSort | None = None,
    limit: int = 100_000,
) -> set[LogicalPath]:
    """The exact criterion set (``FS(C)``, ``T(C)`` or ``LP(σ^π)``) by
    explicit enumeration of all logical paths."""
    return {
        lp
        for lp in enumerate_logical_paths(circuit, limit=limit)
        if exists_vector(circuit, criterion, lp, sort)
    }


def exact_lp_sigma(circuit: Circuit, sort: InputSort) -> set[LogicalPath]:
    """``LP(σ^π)`` computed through Algorithm 1 (stabilizing systems) —
    the left-hand side of Lemma 2's equivalence."""
    from repro.stabilize.assignment import assignment_from_sort

    return assignment_from_sort(circuit, sort).logical_paths()


def robust_dependent_set(
    circuit: Circuit, sort: InputSort, limit: int = 100_000
) -> set[LogicalPath]:
    """The exact RD-set ``RD(σ^π) = LP(C) \\ LP(σ^π)`` for small circuits."""
    selected = exact_path_set(circuit, Criterion.SIGMA_PI, sort, limit=limit)
    return {
        lp
        for lp in enumerate_logical_paths(circuit, limit=limit)
        if lp not in selected
    }


def testability_counts(circuit: Circuit, limit: int = 100_000) -> tuple[int, int, int]:
    """(|T(C)|, |FS(C)|, |LP(C)|) exactly — the Figure 3 hierarchy."""
    total = 0
    t_count = 0
    fs_count = 0
    for lp in enumerate_logical_paths(circuit, limit=limit):
        total += 1
        if exists_vector(circuit, Criterion.NR, lp):
            t_count += 1
        if exists_vector(circuit, Criterion.FS, lp):
            fs_count += 1
    return t_count, fs_count, total


def is_po_constant(circuit: Circuit, po: int) -> bool:
    """True if the PO computes a constant function (such outputs have no
    testable paths at all; generators avoid them)."""
    n = len(circuit.inputs)
    if n > _MAX_INPUTS:
        raise ExactLimitError(
            f"constant check is exponential in #PIs ({n} > {_MAX_INPUTS}); "
            "the SAT-exact mode (repro.verdict) scales past this limit"
        )
    seen = set()
    for vector in all_vectors(n):
        seen.add(simulate(circuit, vector)[po])
        if len(seen) > 1:
            return False
    return True
