"""Unit tests for the experiment harness on small circuits."""

from repro.experiments.harness import (
    run_table1_row,
    run_table3_row,
    sigma_pi_percent,
)
from repro.sorting.heuristics import heuristic1_sort


class TestTable1Row:
    def test_paper_example_row(self, example_circuit):
        row = run_table1_row(example_circuit)
        assert row.total_logical == 8
        assert row.fus_percent == 0.0  # every example path is FS
        assert row.heu1_percent == 25.0  # 6 of 8 selected
        assert row.heu2_percent == 37.5  # the 5-path optimum
        assert row.heu2_inverse_percent <= row.heu2_percent
        assert row.check_expected_shape() == []

    def test_row_shape_on_small_circuits(self, small_circuits):
        for circuit in small_circuits:
            row = run_table1_row(circuit)
            assert row.check_expected_shape() == [], circuit.name
            assert row.time_heu1 >= 0 and row.time_heu2 >= 0

    def test_shape_checker_flags_violations(self):
        from repro.experiments.harness import Table1Row

        bad = Table1Row(
            name="x", total_logical=10, fus_percent=50.0,
            heu1_percent=40.0, heu2_percent=45.0,
            heu2_inverse_percent=60.0, time_heu1=0, time_heu2=0,
        )
        problems = bad.check_expected_shape()
        assert any("Lemma 1" in p for p in problems)
        assert any("inverse" in p for p in problems)


class TestTable3Row:
    def test_paper_example_row(self, example_circuit):
        row = run_table3_row(example_circuit)
        assert row.baseline_percent == 37.5
        assert row.heu2_percent == 37.5
        assert row.quality_gap == 0.0
        assert row.speedup >= 0

    def test_gap_never_negative_on_small_circuits(self, small_circuits):
        for circuit in small_circuits:
            row = run_table3_row(circuit)
            assert row.quality_gap >= -1e-9, circuit.name


def test_sigma_pi_percent_helper(example_circuit):
    pct = sigma_pi_percent(example_circuit, heuristic1_sort(example_circuit))
    assert pct == 25.0
