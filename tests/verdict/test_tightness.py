"""Tightness tables: invariants, determinism, store caching, SKIP rows.

The table is a result artifact: it must be byte-identical at any
``--jobs`` count and across cold/warm store runs, and every row must
satisfy the soundness chain ``exact <= approx <= total`` with one
replayed witness per SAT verdict.
"""

import pytest

from repro.classify.conditions import Criterion
from repro.errors import ClassifyError
from repro.experiments.supervisor import TaskRunner
from repro.gen.suite import get_circuit
from repro.obs import get_registry
from repro.verdict import (
    TightnessReport,
    TightnessRow,
    default_suite_circuits,
    run_tightness,
    tightness_row,
)

CIRCUITS = ["c17", "apex-a"]


def _report(**kwargs) -> TightnessReport:
    circuits = [get_circuit(n) for n in kwargs.pop("names", CIRCUITS)]
    return run_tightness(circuits, Criterion.SIGMA_PI, "heu2", **kwargs)


class TestInvariants:
    def test_soundness_chain_and_certificates(self):
        report = _report()
        for row in report.rows:
            assert row.exact_accepted <= row.approx_accepted
            assert row.approx_accepted <= row.total_logical
            assert row.exact_rd_percent >= row.approx_rd_percent
            assert row.gap_percent >= 0.0
            assert row.witness_replays == row.exact_accepted
            assert not row.skipped

    def test_row_counts_match_classifier(self):
        circuit = get_circuit("c17")
        row = tightness_row(circuit, Criterion.SIGMA_PI, "heu2")
        assert row.total_logical == 22
        assert row.approx_accepted == 22
        assert row.exact_accepted == 22  # c17 has no Lemma-2 gap

    def test_default_suite_is_bounded_by_inputs(self):
        names = default_suite_circuits(20)
        assert "c17" in names
        for name in names:
            assert len(get_circuit(name).inputs) <= 20
        assert default_suite_circuits(4) != names


class TestDeterminism:
    def test_byte_identical_across_jobs(self):
        serial = _report(runner=TaskRunner(jobs=1))
        fanned = _report(runner=TaskRunner(jobs=2))
        assert serial.table_bytes() == fanned.table_bytes()

    def test_solver_work_excluded_from_table(self):
        """Conflict/decision counters depend on chunking, so they live
        in to_dict() diagnostics but never in the deterministic table."""
        circuit = get_circuit("apex-a")
        row = tightness_row(circuit, Criterion.SIGMA_PI, "heu2")
        table = row.table_row()
        assert "conflicts" not in table
        assert "decisions" not in table
        assert "learned_reuse" not in table
        assert "elapsed" not in table
        diag = row.to_dict()
        assert set(table) < set(diag)


class TestStoreCaching:
    def test_cold_then_warm_is_byte_identical(self, tmp_path):
        store = str(tmp_path / "verdicts.sqlite")
        cold = _report(store=store)
        assert all(r.source == "computed" for r in cold.rows)
        warm = _report(store=store)
        assert all(r.source == "store" for r in warm.rows)
        assert cold.table_bytes() == warm.table_bytes()

    def test_store_hit_counter_increments(self, tmp_path):
        store = str(tmp_path / "verdicts.sqlite")
        circuit = get_circuit("c17")
        tightness_row(circuit, Criterion.SIGMA_PI, "heu2", store=store)
        counter = get_registry().counter("verdict.row_store_hits")
        before = counter.value
        row = tightness_row(circuit, Criterion.SIGMA_PI, "heu2", store=store)
        assert row.source == "store"
        assert counter.value == before + 1

    def test_tighter_budget_recomputes(self, tmp_path):
        """A cached row whose approx count exceeds the caller's budget
        must not satisfy the read — budget semantics are never-wrong."""
        store = str(tmp_path / "verdicts.sqlite")
        circuit = get_circuit("c17")
        tightness_row(circuit, Criterion.SIGMA_PI, "heu2", store=store)
        with pytest.raises(ClassifyError):
            tightness_row(
                circuit, Criterion.SIGMA_PI, "heu2",
                store=store, max_accepted=5,
            )

    def test_criteria_do_not_collide_in_store(self, tmp_path):
        store = str(tmp_path / "verdicts.sqlite")
        from repro.circuit.examples import paper_example_circuit

        circuit = paper_example_circuit()
        sigma = tightness_row(circuit, Criterion.SIGMA_PI, "heu2", store=store)
        nr = tightness_row(circuit, Criterion.NR, None, store=store)
        assert nr.source == "computed"  # distinct variant, no false hit
        assert (sigma.criterion, nr.criterion) == ("SIGMA_PI", "NR")


class TestSkipRows:
    def test_too_many_inputs_becomes_skip_row(self):
        report = _report(names=["c17", "s432-rand"], max_inputs=10)
        by_name = {row.circuit: row for row in report.rows}
        assert not by_name["c17"].skipped
        skip = by_name["s432-rand"]
        assert skip.source == "skipped"
        assert "inputs" in skip.skipped
        assert skip.exact_accepted == 0

    def test_budget_overflow_becomes_skip_row(self):
        report = _report(names=["c17", "apex-a"], max_accepted=30)
        by_name = {row.circuit: row for row in report.rows}
        assert not by_name["c17"].skipped  # 22 accepted <= 30
        assert by_name["apex-a"].skipped  # 136 accepted > 30

    def test_skip_rows_render_and_serialize(self):
        report = _report(names=["s432-rand"], max_inputs=10)
        assert "SKIP" in report.render()
        payload = report.table_payload()
        assert payload["decided"] == 0
        assert payload["rows"][0]["skipped"]


class TestReportShape:
    def test_table_payload_schema(self):
        report = _report(names=["c17"])
        payload = report.table_payload()
        assert payload["schema"] == 1
        assert payload["criterion"] == "SIGMA_PI"
        assert payload["sort"] == "heu2"
        assert payload["circuits"] == 1
        assert isinstance(report.rows[0], TightnessRow)

    def test_render_mentions_gap_columns(self):
        text = _report(names=["c17"]).render()
        assert "exact" in text
        assert "c17" in text
