"""The named benchmark suite (ISCAS-85 / MCNC stand-ins).

``SUITE`` maps circuit names to zero-argument constructors.  Sizing is
chosen so that the classification benches complete in pure Python while
preserving the paper's structural spread (see DESIGN.md).  The two
"monster" entries exist for exact path *counting* only and are excluded
from enumeration-based experiments.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.circuit.netlist import Circuit
from repro.gen.adders import (
    carry_lookahead_adder,
    carry_select_adder,
    ripple_carry_adder,
)
from repro.gen.alu import simple_alu
from repro.gen.datapath import (
    barrel_shifter,
    magnitude_comparator,
    priority_encoder,
)
from repro.gen.multiplier import array_multiplier
from repro.gen.parity import ecc_encoder, parity_tree
from repro.gen.random_logic import random_dag
from repro.gen.twolevel import factored_circuit, random_cover

#: Table I/II circuits (classification feasible in pure Python).
_TABLE1: Dict[str, Callable[[], Circuit]] = {}
#: Path counting only (the c3540/c6288 role: enumeration infeasible).
_COUNT_ONLY: Dict[str, Callable[[], Circuit]] = {}
#: Table III circuits (small multi-level, exact baseline feasible).
_TABLE3: Dict[str, Callable[[], Circuit]] = {}


def _named(store: Dict[str, Callable[[], Circuit]], name: str):
    def register(fn: Callable[[], Circuit]):
        def build() -> Circuit:
            circuit = fn()
            circuit.name = name
            return circuit

        store[name] = build
        return build

    return register


# -- Table I/II stand-ins (prefix "s" = synthetic) -----------------------
# Logical path counts (exact): rand-c 124k, ecc 2.7M, alu ~1.2k,
# parity 48k, csel ~10k, rand-a 1.1M, mult5 2.0M, rca 13k, rand-b 171k —
# the paper's spread of 17k..57M scaled to pure-Python budgets.
_named(_TABLE1, "s432-rand")(
    lambda: random_dag(14, 90, seed=13, locality=0.8)
)
_named(_TABLE1, "s499-ecc")(lambda: ecc_encoder(24, style="nand"))
_named(_TABLE1, "s880-alu")(lambda: simple_alu(8))
_named(_TABLE1, "s1355-par")(lambda: parity_tree(40, style="nand"))
_named(_TABLE1, "s1908-csel")(lambda: carry_select_adder(16, 4))
_named(_TABLE1, "s2670-rand")(lambda: random_dag(24, 220, seed=7))
_named(_TABLE1, "s3540-mult")(lambda: array_multiplier(5))
_named(_TABLE1, "s5315-rca")(lambda: ripple_carry_adder(32))
_named(_TABLE1, "s7552-mix")(lambda: random_dag(32, 320, seed=11, locality=0.55))

# -- counting-only monsters (Table II's "could not be completed" row) ----
_named(_COUNT_ONLY, "s6288-mult")(lambda: array_multiplier(16))
_named(_COUNT_ONLY, "smid-mult")(lambda: array_multiplier(6))

# -- extra circuits (CLI-accessible, outside the paper's tables) ----------
_EXTRA: Dict[str, Callable[[], Circuit]] = {}
_named(_EXTRA, "xshift32")(lambda: barrel_shifter(5))
_named(_EXTRA, "xcmp16")(lambda: magnitude_comparator(16))
_named(_EXTRA, "xprienc16")(lambda: priority_encoder(16))


def _load_c17() -> Circuit:
    from repro.gen.frozen import load_frozen

    return load_frozen("c17")


# The one genuine ISCAS-85 netlist small enough to bundle verbatim.
_EXTRA["c17"] = _load_c17

# -- Table III stand-ins (MCNC-like factored two-level) -------------------
_named(_TABLE3, "apex-a")(
    lambda: factored_circuit(random_cover(9, 3, 18, seed=1), name="apex-a")
)
_named(_TABLE3, "z5xp-b")(
    lambda: factored_circuit(random_cover(8, 4, 16, seed=2), name="z5xp-b")
)
_named(_TABLE3, "apex-c")(
    lambda: factored_circuit(random_cover(10, 3, 22, seed=3), name="apex-c")
)
_named(_TABLE3, "bw-d")(
    lambda: factored_circuit(random_cover(8, 5, 20, seed=4), name="bw-d")
)
_named(_TABLE3, "apex-e")(
    lambda: factored_circuit(
        random_cover(10, 4, 18, seed=5, min_literals=3), name="apex-e"
    )
)
_named(_TABLE3, "misex-f")(
    lambda: factored_circuit(
        random_cover(11, 3, 15, seed=6, min_literals=3), name="misex-f"
    )
)
_named(_TABLE3, "seq-g")(
    lambda: factored_circuit(
        random_cover(11, 4, 16, seed=7, min_literals=4), name="seq-g"
    )
)
_named(_TABLE3, "misex-h")(
    lambda: factored_circuit(
        random_cover(12, 3, 14, seed=8, min_literals=4), name="misex-h"
    )
)

SUITE: Dict[str, Callable[[], Circuit]] = {
    **_TABLE1,
    **_COUNT_ONLY,
    **_TABLE3,
    **_EXTRA,
}


def table1_suite() -> list:
    """The nine classification circuits of Tables I/II, freshly built."""
    return [build() for build in _TABLE1.values()]


def count_only_suite() -> list:
    """The counting-only monsters (c6288 role)."""
    return [build() for build in _COUNT_ONLY.values()]


def table3_suite() -> list:
    """The eight baseline-vs-Heuristic-2 circuits of Table III."""
    return [build() for build in _TABLE3.values()]


def extra_suite() -> list:
    """CLI-accessible circuits outside the paper's tables."""
    return [build() for build in _EXTRA.values()]


def get_circuit(name: str) -> Circuit:
    """Build a suite circuit by name (raises KeyError with the list)."""
    try:
        return SUITE[name]()
    except KeyError:
        raise KeyError(
            f"unknown circuit {name!r}; available: {', '.join(sorted(SUITE))}"
        ) from None
