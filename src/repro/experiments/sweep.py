"""Parameterized scaling sweeps over generator families.

The data behind the Table-II narrative: how path counts and classifier
cost grow with circuit size, per family.  Used by the scaling example
and the growth tests; each point records exact counts and one FS
classification (skipped above the enumeration budget, mirroring the
paper's "could not be completed" entries).

Circuits are built serially (generator families are often lambdas,
which do not pickle), but the measurements themselves fan out through
the supervised :class:`~repro.experiments.supervisor.TaskRunner` when
``jobs > 1``; each point runs through its own
:class:`~repro.classify.session.CircuitSession`, so the exact count
feeding ``total_logical`` is also the one the classifier reports
against — one DP per point.

Long sweeps are restartable: pass ``checkpoint=`` to stream each
completed point to JSONL, and ``resume=True`` to skip parameters
already recorded (their circuits are not even built) — a sweep killed
mid-run recomputes only the missing points and yields identical data.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Callable, Iterable, Sequence

from repro.circuit.netlist import Circuit
from repro.classify.conditions import Criterion
from repro.classify.session import CircuitSession
from repro.errors import ClassifyError
from repro.paths.count import count_paths
from repro.experiments.supervisor import (
    DEFAULT_MAX_RETRIES,
    Checkpoint,
    RowFailure,
    TaskRunner,
    as_checkpoint,
    default_task_budget,
)
from repro.util.timer import Stopwatch


def _families() -> "dict[str, Callable[[int], Circuit]]":
    from repro.gen.adders import (
        carry_lookahead_adder,
        carry_select_adder,
        ripple_carry_adder,
    )
    from repro.gen.multiplier import array_multiplier
    from repro.gen.mux import decoder, mux_tree
    from repro.gen.parity import parity_tree

    return {
        "ripple_carry": ripple_carry_adder,
        "carry_lookahead": carry_lookahead_adder,
        "carry_select": carry_select_adder,
        "array_multiplier": array_multiplier,
        "parity_tree": parity_tree,
        "mux_tree": mux_tree,
        "decoder": decoder,
    }


#: named generator families ``repro-rd sweep`` can iterate (each maps
#: one integer parameter — width/levels — to a circuit)
FAMILIES = _families()


@dataclass(frozen=True)
class SweepPoint:
    """One (parameter, circuit) measurement."""

    parameter: int
    gates: int
    total_logical: int
    accepted: "int | None"  # None = classification skipped (too large)
    classify_seconds: "float | None"

    @property
    def rd_percent(self) -> "float | None":
        if self.accepted is None or not self.total_logical:
            return None
        return 100.0 * (1 - self.accepted / self.total_logical)

    def to_dict(self) -> dict:
        """JSON-safe form for checkpointing (floats round-trip exactly)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SweepPoint":
        return cls(**data)


def _sweep_task(payload: "tuple[int, Circuit, int]") -> SweepPoint:
    """Measure one prebuilt circuit (top-level: picklable for the pool)."""
    parameter, circuit, classification_budget = payload
    session = CircuitSession(circuit)
    total_logical = session.counts.total_logical
    accepted = None
    seconds = None
    try:
        with Stopwatch() as sw:
            result = session.classify(
                Criterion.FS, max_accepted=classification_budget
            )
        accepted = result.accepted
        seconds = sw.elapsed
    except ClassifyError:
        pass  # over budget: counting-only point
    return SweepPoint(
        parameter=parameter,
        gates=circuit.num_gates,
        total_logical=total_logical,
        accepted=accepted,
        classify_seconds=seconds,
    )


def sweep_family(
    family: Callable[[int], Circuit],
    parameters: "Sequence[int] | Iterable[int]",
    classification_budget: int = 500_000,
    jobs: int = 1,
    *,
    checkpoint: "str | Checkpoint | None" = None,
    resume: bool = False,
    task_timeout: "float | None" = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    runner: "TaskRunner | None" = None,
) -> "list[SweepPoint | RowFailure]":
    """Measure one generator family across ``parameters``.

    Classification (FS criterion) runs only while the *accepted* path
    count stays within ``classification_budget``; larger instances are
    counted exactly but not enumerated.  ``jobs > 1`` measures the
    points concurrently under supervision (point order and values are
    unchanged; a point that fails even after retry and in-process
    degradation comes back as a
    :class:`~repro.experiments.supervisor.RowFailure`).  ``checkpoint``
    / ``resume`` stream and skip completed points, keyed by parameter.
    """
    parameters = list(parameters)
    ckpt = as_checkpoint(checkpoint, "sweep")
    done: "dict[int, SweepPoint]" = {}
    if ckpt is not None and resume:
        done = {
            int(key): SweepPoint.from_dict(data)
            for key, data in ckpt.load().items()
        }
    todo = [parameter for parameter in parameters if parameter not in done]
    work = [
        (parameter, family(parameter), classification_budget)
        for parameter in todo
    ]
    if runner is None:
        runner = TaskRunner(jobs=jobs, max_retries=max_retries)
    budgets = None
    if runner.jobs > 1 and len(work) > 1:
        if task_timeout is not None:
            budgets = [task_timeout] * len(work)
        else:
            budgets = [
                default_task_budget(count_paths(circuit).total_logical)
                for _parameter, circuit, _budget in work
            ]

    def on_result(index: int, result) -> None:
        if ckpt is not None and isinstance(result, SweepPoint):
            ckpt.record(str(result.parameter), result.to_dict())

    fresh = runner.map(
        _sweep_task,
        work,
        labels=[f"sweep[{parameter}]" for parameter in todo],
        budgets=budgets,
        on_result=on_result,
    )
    results: dict = dict(done)
    for parameter, result in zip(todo, fresh):
        results[parameter] = result
    return [results[parameter] for parameter in parameters]


def growth_factors(points: "Sequence[SweepPoint]") -> "list[float]":
    """Consecutive path-count ratios — the family's explosion rate."""
    return [
        points[i + 1].total_logical / points[i].total_logical
        for i in range(len(points) - 1)
        if points[i].total_logical
    ]
