"""Exhaustive functional tests for the datapath generators."""

import pytest

from repro.gen.datapath import (
    barrel_shifter,
    magnitude_comparator,
    priority_encoder,
)
from repro.logic.simulate import all_vectors, output_values


def bits_to_int(bits):
    return sum(b << i for i, b in enumerate(bits))


class TestBarrelShifter:
    @pytest.mark.parametrize("log2", [1, 2])
    def test_shift_exhaustive(self, log2):
        circuit = barrel_shifter(log2)
        width = 1 << log2
        for vector in all_vectors(log2 + width):
            shift = bits_to_int(vector[:log2])
            data = bits_to_int(vector[log2:])
            out = bits_to_int(output_values(circuit, vector))
            assert out == (data << shift) & ((1 << width) - 1), (
                f"shift={shift} data={data:b}"
            )

    def test_wide_spot_checks(self):
        circuit = barrel_shifter(3)
        vector = [0] * 3 + [0] * 8

        def run(shift, data):
            v = [(shift >> k) & 1 for k in range(3)] + [
                (data >> i) & 1 for i in range(8)
            ]
            return bits_to_int(output_values(circuit, v))

        assert run(0, 0b10110001) == 0b10110001
        assert run(3, 0b00000111) == 0b00111000
        assert run(7, 0b11111111) == 0b10000000

    def test_validation(self):
        with pytest.raises(ValueError):
            barrel_shifter(0)


class TestComparator:
    @pytest.mark.parametrize("width", [1, 2, 3, 4])
    def test_exhaustive(self, width):
        circuit = magnitude_comparator(width)
        for vector in all_vectors(2 * width):
            a = bits_to_int(vector[:width])
            b = bits_to_int(vector[width:])
            eq, gt, lt = output_values(circuit, vector)
            assert (eq, gt, lt) == (int(a == b), int(a > b), int(a < b))

    def test_outputs_one_hot(self):
        circuit = magnitude_comparator(3)
        for vector in all_vectors(6):
            assert sum(output_values(circuit, vector)) == 1


class TestPriorityEncoder:
    @pytest.mark.parametrize("width", [2, 3, 5, 8])
    def test_exhaustive(self, width):
        circuit = priority_encoder(width)
        bits = max(1, (width - 1).bit_length())
        # Output name order: idx bits (some may be omitted), then valid.
        names = [circuit.gate_name(po) for po in circuit.outputs]
        for vector in all_vectors(width):
            out = dict(zip(names, output_values(circuit, vector)))
            expected_valid = int(any(vector))
            assert out["valid_po" if "valid_po" in out else "valid"] in (
                0, 1,
            )
            valid_key = [n for n in names if n.startswith("valid")][0]
            assert out[valid_key] == expected_valid
            if expected_valid:
                winner = vector.index(1)
                for k in range(bits):
                    key = next(
                        (n for n in names if n.startswith(f"idx{k}")), None
                    )
                    expected_bit = (winner >> k) & 1
                    if key is None:
                        assert expected_bit == 0
                    else:
                        assert out[key] == expected_bit, (
                            f"vector={vector} winner={winner} bit {k}"
                        )

    def test_validation(self):
        with pytest.raises(ValueError):
            priority_encoder(1)
