"""CircuitSession: shared per-circuit caches for classification runs."""

import pytest

from repro.circuit.examples import paper_example_circuit
from repro.classify.conditions import Criterion
from repro.classify.engine import classify
from repro.classify.session import CircuitSession
from repro.experiments.harness import run_table1_row
from repro.gen.random_logic import random_dag
from repro.sorting.heuristics import heuristic2_analysis
from repro.sorting.input_sort import InputSort


@pytest.fixture
def circuit():
    return paper_example_circuit()


class TestCaching:
    def test_counts_computed_once(self, circuit):
        session = CircuitSession(circuit)
        first = session.counts
        assert session.counts is first
        session.classify(Criterion.FS)
        session.classify(Criterion.NR)
        assert session.stats.count_paths_calls == 1

    def test_engine_built_once_and_clean_between_passes(self, circuit):
        session = CircuitSession(circuit)
        session.classify(Criterion.FS)
        engine = session.engine
        assert engine.num_assigned() == 0
        session.classify(Criterion.NR)
        assert session.engine is engine
        assert session.stats.engines_built == 1
        assert engine.num_assigned() == 0

    def test_tables_cached_per_criterion_and_sort(self, circuit):
        session = CircuitSession(circuit)
        sort = InputSort.pin_order(circuit)
        session.classify(Criterion.FS)
        session.classify(Criterion.FS)
        session.classify(Criterion.SIGMA_PI, sort=sort)
        # An equal-ranks sort object must hit the same cache entry.
        session.classify(Criterion.SIGMA_PI, sort=InputSort.pin_order(circuit))
        assert session.stats.tables_built == 2
        assert session.stats.tables_reused == 2
        assert session.stats.tables_hit_rate == 0.5
        # A genuinely different sort builds a new entry.
        session.classify(Criterion.SIGMA_PI, sort=sort.inverted())
        assert session.stats.tables_built == 3

    def test_engine_restored_after_max_accepted_abort(self, circuit):
        session = CircuitSession(circuit)
        with pytest.raises(RuntimeError):
            session.classify(Criterion.FS, max_accepted=1)
        assert session.engine.num_assigned() == 0
        # The session stays usable and correct after the abort.
        fresh = classify(circuit, Criterion.FS)
        again = session.classify(Criterion.FS)
        assert again.accepted == fresh.accepted

    def test_budget_abort_raises_classify_error_and_is_counted(
        self, circuit
    ):
        from repro.errors import ClassifyError, ReproError

        session = CircuitSession(circuit)
        with pytest.raises(ClassifyError):
            session.classify(Criterion.FS, max_accepted=1)
        assert session.stats.budget_aborts == 1
        # the taxonomy makes it catchable as the library-wide base too
        with pytest.raises(ReproError):
            session.classify(Criterion.FS, max_accepted=1)
        assert session.stats.budget_aborts == 2
        session.classify(Criterion.FS)  # clean pass: no extra abort
        assert session.stats.budget_aborts == 2


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(3))
    def test_session_matches_fresh_classify(self, seed):
        circuit = random_dag(5, 16, seed=seed + 600)
        session = CircuitSession(circuit)
        sort = InputSort.pin_order(circuit)
        for criterion, s in (
            (Criterion.FS, None),
            (Criterion.NR, None),
            (Criterion.SIGMA_PI, sort),
        ):
            fresh_paths: set = set()
            fresh = classify(
                circuit, criterion, sort=s,
                collect_lead_counts=True, on_path=fresh_paths.add,
            )
            cached_paths: set = set()
            cached = session.classify(
                criterion, sort=s,
                collect_lead_counts=True, on_path=cached_paths.add,
            )
            assert cached.accepted == fresh.accepted
            assert cached.total_logical == fresh.total_logical
            assert cached.lead_ctrl_counts == fresh.lead_ctrl_counts
            assert cached.edges_visited == fresh.edges_visited
            assert cached_paths == fresh_paths

    def test_classify_session_kwarg_routes_through_session(self, circuit):
        session = CircuitSession(circuit)
        result = classify(circuit, Criterion.FS, session=session)
        assert result.accepted == classify(circuit, Criterion.FS).accepted
        assert session.stats.classify_passes == 1

    def test_classify_rejects_foreign_session(self, circuit):
        other = CircuitSession(random_dag(4, 8, seed=1))
        with pytest.raises(ValueError, match="different circuit"):
            classify(circuit, Criterion.FS, session=other)
        with pytest.raises(ValueError, match="different circuit"):
            heuristic2_analysis(circuit, session=other)

    def test_classify_accepts_precomputed_counts(self, circuit):
        session = CircuitSession(circuit)
        result = classify(circuit, Criterion.FS, counts=session.counts)
        assert result.total_logical == session.counts.total_logical


class TestSortingConvenience:
    def test_session_heuristic_sorts_match_module_functions(self, circuit):
        from repro.sorting.heuristics import heuristic1_sort, heuristic2_sort

        session = CircuitSession(circuit)
        assert session.heuristic1_sort().ranks == heuristic1_sort(circuit).ranks
        assert session.heuristic2_sort().ranks == heuristic2_sort(circuit).ranks
        assert session.stats.count_paths_calls == 1


def _counting(monkeypatch, modules):
    """Patch count_paths in every importing namespace; return call list."""
    calls = []
    import repro.paths.count as count_mod

    real = count_mod.count_paths

    def counted(c):
        calls.append(c.name)
        return real(c)

    for module in modules:
        monkeypatch.setattr(module, "count_paths", counted)
    return calls


def test_table1_row_runs_count_paths_exactly_once(monkeypatch, circuit):
    """The whole Table-I pipeline (FS + NR + 3 SIGMA_PI passes + both
    sorts) must share one exact path count via the session."""
    from repro.classify import engine as engine_mod
    from repro.classify import session as session_mod
    from repro.sorting import heuristics as heuristics_mod

    calls = _counting(
        monkeypatch, [engine_mod, session_mod, heuristics_mod]
    )
    session = CircuitSession(circuit)
    row = run_table1_row(circuit, session=session)
    assert calls == [circuit.name]
    assert session.stats.count_paths_calls == 1
    assert session.stats.classify_passes == 5
    assert row.check_expected_shape() == []
