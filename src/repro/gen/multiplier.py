"""Array multiplier — the path-count monster (c6288-like).

An ``n×n`` carry-save array multiplier's path count grows so fast that
already small ``n`` exceeds anything enumerable; the paper's Table II
uses c6288 (16×16, >1.9·10^20 logical paths) as the circuit *not* run.
Our Table II bench counts (never enumerates) these paths exactly.
"""

from __future__ import annotations

from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import Circuit
from repro.gen.adders import _full_adder


def array_multiplier(width: int, name: str | None = None) -> Circuit:
    """``width`` × ``width`` unsigned array multiplier."""
    if width < 1:
        raise ValueError("width must be >= 1")
    b = CircuitBuilder(name or f"mult{width}")
    a_bits = [b.pi(f"a{i}") for i in range(width)]
    b_bits = [b.pi(f"b{i}") for i in range(width)]
    # Partial products.
    pp = [
        [b.and_(a_bits[i], b_bits[j], name=f"pp{i}_{j}") for i in range(width)]
        for j in range(width)
    ]
    if width == 1:
        b.po(pp[0][0], "m0")
        return b.build()
    # Row-by-row carry-save reduction.
    row = list(pp[0])  # weights i .. i+width-1 for row j at offset j
    outputs = []
    for j in range(1, width):
        nxt = []
        carry = None
        # Align: row holds weights j-1 .. j-1+width-1; emit lowest bit.
        outputs.append(row[0])
        operands = row[1:] + [None]  # weights j .. j+width-1
        for i in range(width):
            x = operands[i]
            y = pp[j][i]
            tag = f"r{j}_{i}"
            if x is None and carry is None:
                nxt.append(y)
            elif x is None:
                s = b.xor(y, carry, name=f"{tag}_hs")
                carry = b.and_(y, carry, name=f"{tag}_hc")
                nxt.append(s)
            elif carry is None:
                s = b.xor(x, y, name=f"{tag}_hs")
                carry = b.and_(x, y, name=f"{tag}_hc")
                nxt.append(s)
            else:
                s, carry = _full_adder(b, x, y, carry, tag)
                nxt.append(s)
        if carry is not None:
            nxt.append(carry)
            row = nxt
        else:
            row = nxt
    for k, node in enumerate(row):
        outputs.append(node)
    for k, node in enumerate(outputs):
        b.po(node, f"m{k}")
    return b.build()
