"""Property-based tests of Algorithm 1 and Theorem 1 on random circuits."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.simulate import all_vectors
from repro.stabilize.system import compute_stabilizing_system
from repro.timing.delays import random_delays
from repro.timing.eventsim import EventSimulator, random_initial_state
from repro.timing.pathdelay import max_system_delay

from tests.strategies import small_circuits


@settings(max_examples=30, deadline=None)
@given(circuit=small_circuits(max_gates=10), data=st.data())
def test_stabilizing_system_stabilizes(circuit, data):
    vector = tuple(
        data.draw(st.integers(0, 1)) for _ in circuit.inputs
    )
    for po in circuit.outputs:
        system = compute_stabilizing_system(circuit, po, vector)
        assert system.stabilizes(trials=8)


@settings(max_examples=20, deadline=None)
@given(circuit=small_circuits(max_gates=10), data=st.data())
def test_theorem1_settle_bound(circuit, data):
    vector = tuple(data.draw(st.integers(0, 1)) for _ in circuit.inputs)
    delays = random_delays(circuit, seed=data.draw(st.integers(0, 1000)))
    sim = EventSimulator(circuit, delays)
    initial = random_initial_state(circuit, data.draw(st.integers(0, 1000)))
    changes = sim.run(vector, initial)
    for po in circuit.outputs:
        system = compute_stabilizing_system(circuit, po, vector)
        bound = max_system_delay(system, delays)
        assert changes.get(po, 0.0) <= bound + 1e-9


@settings(max_examples=20, deadline=None)
@given(circuit=small_circuits(max_gates=10))
def test_systems_cover_every_vector(circuit):
    """Algorithm 1 terminates with a well-formed system for every vector
    and PO: the system's paths all start at PIs with the right values."""
    for vector in all_vectors(len(circuit.inputs)):
        for po in circuit.outputs:
            system = compute_stabilizing_system(circuit, po, vector)
            pi_value = dict(zip(circuit.inputs, vector))
            for lp in system.logical_paths():
                assert lp.final_value == pi_value[lp.path.source(circuit)]
                assert lp.path.sink(circuit) == po
