"""``Circuit.replace_gate``: ECO edits with transactional semantics."""

import pytest

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.errors import CircuitError


def _circuit() -> Circuit:
    c = Circuit("rg")
    a = c.add_gate(GateType.PI, "a")
    b = c.add_gate(GateType.PI, "b")
    g1 = c.add_gate(GateType.AND, "g1", [a, b])
    g2 = c.add_gate(GateType.NOT, "g2", [g1])
    c.add_gate(GateType.PO, "o", [g2])
    return c.freeze()


def test_type_change_keeps_name_and_id():
    c = _circuit()
    gid = c.replace_gate("g1", GateType.NOR, ["a", "b"])
    assert c.gate_name(gid) == "g1"
    assert c.gate_type(gid) is GateType.NOR
    assert c.fanin(gid) == (0, 1)


def test_rewire_by_name_and_id():
    c = _circuit()
    c.replace_gate("g2", GateType.BUF, ["a"])
    gid = c.replace_gate("g2", GateType.NOT, [0])
    assert c.fanin(gid) == (0,)
    assert c.gate_type(gid) is GateType.NOT


def test_derived_structure_rebuilt():
    c = _circuit()
    flat_before = c.flat
    levels_before = c.level(c.gate_by_name("g2"))
    c.replace_gate("g2", GateType.NOT, ["a"])  # g2 now one level up
    assert c.flat is not flat_before
    assert c.level(c.gate_by_name("g2")) != levels_before
    assert c.fanout(c.gate_by_name("g1")) == ()  # g1 no longer drives g2


def test_unknown_gate_rejected():
    with pytest.raises(CircuitError, match="no gate named"):
        _circuit().replace_gate("nope", GateType.AND, ["a", "b"])


def test_pi_po_status_frozen():
    c = _circuit()
    with pytest.raises(CircuitError, match="PI/PO status"):
        c.replace_gate("a", GateType.AND, [])
    with pytest.raises(CircuitError, match="PI/PO status"):
        c.replace_gate("g1", GateType.PO, ["a"])


def test_arity_validated():
    c = _circuit()
    with pytest.raises(CircuitError, match="exactly one fanin"):
        c.replace_gate("g2", GateType.NOT, ["a", "b"])
    with pytest.raises(CircuitError, match="at least one fanin"):
        c.replace_gate("g1", GateType.AND, [])


def test_forward_reference_rejected():
    c = _circuit()
    with pytest.raises(CircuitError, match="earlier"):
        c.replace_gate("g1", GateType.AND, ["a", "g2"])


def test_invalid_edit_rolls_back():
    """A rewire that only freeze() can reject restores the old gate.

    Rewiring a later gate to read from an earlier PO passes every
    per-gate check in replace_gate but violates the freeze invariant
    that a PO drives nothing — the transactional path must restore the
    old wiring and leave the circuit frozen and analyzable.
    """
    c = Circuit("rb")
    a = c.add_gate(GateType.PI, "a")
    b = c.add_gate(GateType.PI, "b")
    g1 = c.add_gate(GateType.AND, "g1", [a, b])
    c.add_gate(GateType.PO, "o1", [g1])  # gid 3, earlier than g2
    g2 = c.add_gate(GateType.NOT, "g2", [g1])
    c.add_gate(GateType.PO, "o2", [g2])
    c.freeze()
    with pytest.raises(CircuitError, match="must not drive"):
        c.replace_gate("g2", GateType.NOT, ["o1"])
    assert c.gate_type(g2) is GateType.NOT
    assert c.fanin(g2) == (g1,)
    assert c.frozen
    assert c.flat is not None
