"""Unit tests for the Circuit data structure."""

import pytest

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, CircuitError, circuit_from_spec


def build_simple() -> Circuit:
    c = Circuit("t")
    a = c.add_gate(GateType.PI, "a")
    b = c.add_gate(GateType.PI, "b")
    g = c.add_gate(GateType.AND, "g", [a, b])
    c.add_gate(GateType.PO, "out", [g])
    return c.freeze()


class TestConstruction:
    def test_basic_shape(self):
        c = build_simple()
        assert c.num_gates == 4
        assert c.inputs == (0, 1)
        assert c.outputs == (3,)
        assert c.num_leads == 3  # two AND pins + PO pin

    def test_gate_lookup_by_name(self):
        c = build_simple()
        assert c.gate_name(c.gate_by_name("g")) == "g"

    def test_duplicate_names_rejected(self):
        c = Circuit("t")
        c.add_gate(GateType.PI, "a")
        with pytest.raises(CircuitError):
            c.add_gate(GateType.PI, "a")

    def test_forward_reference_rejected(self):
        c = Circuit("t")
        with pytest.raises(CircuitError):
            c.add_gate(GateType.NOT, "n", [5])

    def test_pi_with_fanin_rejected(self):
        c = Circuit("t")
        a = c.add_gate(GateType.PI, "a")
        with pytest.raises(CircuitError):
            c.add_gate(GateType.PI, "b", [a])

    def test_not_arity_enforced(self):
        c = Circuit("t")
        a = c.add_gate(GateType.PI, "a")
        b = c.add_gate(GateType.PI, "b")
        with pytest.raises(CircuitError):
            c.add_gate(GateType.NOT, "n", [a, b])

    def test_po_must_not_drive(self):
        c = Circuit("t")
        a = c.add_gate(GateType.PI, "a")
        po = c.add_gate(GateType.PO, "out", [a])
        c.add_gate(GateType.BUF, "b", [po])
        with pytest.raises(CircuitError):
            c.freeze()

    def test_empty_circuit_rejected(self):
        with pytest.raises(CircuitError):
            Circuit("t").freeze()

    def test_no_pi_rejected(self):
        c = Circuit("t")
        with pytest.raises(CircuitError):
            c.add_gate(GateType.AND, "g", [])

    def test_frozen_blocks_add(self):
        c = build_simple()
        with pytest.raises(CircuitError):
            c.add_gate(GateType.PI, "z")

    def test_analysis_requires_freeze(self):
        c = Circuit("t")
        c.add_gate(GateType.PI, "a")
        with pytest.raises(CircuitError):
            _ = c.inputs


class TestLeads:
    def test_lead_indexing_round_trip(self):
        c = build_simple()
        for lead in c.leads():
            assert c.lead_index(lead.dst, lead.pin) == lead.index
            assert c.lead_src(lead.index) == lead.src

    def test_input_leads_pin_order(self):
        c = build_simple()
        g = c.gate_by_name("g")
        leads = list(c.input_leads(g))
        assert [c.lead_pin(l) for l in leads] == [0, 1]
        assert [c.lead_src(l) for l in leads] == [0, 1]

    def test_lead_name_format(self):
        c = build_simple()
        g = c.gate_by_name("g")
        assert c.lead_name(c.lead_index(g, 0)) == "a->g.0"

    def test_bad_pin_raises(self):
        c = build_simple()
        with pytest.raises(IndexError):
            c.lead_index(c.gate_by_name("g"), 7)

    def test_duplicate_source_pins_are_distinct_leads(self):
        c = Circuit("dup")
        a = c.add_gate(GateType.PI, "a")
        g = c.add_gate(GateType.AND, "g", [a, a])
        c.add_gate(GateType.PO, "out", [g])
        c.freeze()
        leads = list(c.input_leads(g))
        assert len(leads) == 2
        assert c.lead_src(leads[0]) == c.lead_src(leads[1]) == a
        assert len(c.fanout(a)) == 2


class TestStructure:
    def test_levels_monotonic(self):
        c = build_simple()
        for gid in range(c.num_gates):
            for src in c.fanin(gid):
                assert c.level(src) < c.level(gid)

    def test_cone_of_po(self):
        c = build_simple()
        assert c.cone_of(c.outputs[0]) == {0, 1, 2, 3}

    def test_reachable_pos(self):
        c = build_simple()
        assert c.reachable_pos(0) == {3}

    def test_copy_is_equal_structure(self):
        c = build_simple()
        d = c.copy()
        assert d.num_gates == c.num_gates
        assert d.frozen
        assert [d.gate_type(g) for g in range(d.num_gates)] == [
            c.gate_type(g) for g in range(c.num_gates)
        ]

    def test_extract_cone_single_output(self):
        c = Circuit("two_out")
        a = c.add_gate(GateType.PI, "a")
        b = c.add_gate(GateType.PI, "b")
        g1 = c.add_gate(GateType.AND, "g1", [a, b])
        g2 = c.add_gate(GateType.OR, "g2", [a, b])
        c.add_gate(GateType.PO, "o1", [g1])
        c.add_gate(GateType.PO, "o2", [g2])
        c.freeze()
        cone, mapping = c.extract_cone(c.gate_by_name("o1"))
        assert len(cone.outputs) == 1
        assert cone.num_gates == 4  # a, b, g1, o1
        assert cone.gate_name(mapping[g1]) == "g1"

    def test_extract_cone_requires_po(self):
        c = build_simple()
        with pytest.raises(CircuitError):
            c.extract_cone(0)


class TestCircuitFromSpec:
    def test_out_of_order_spec(self):
        c = circuit_from_spec(
            "spec",
            [
                ("out", GateType.PO, ["g"]),
                ("g", GateType.AND, ["a", "b"]),
                ("a", GateType.PI, []),
                ("b", GateType.PI, []),
            ],
        )
        assert c.frozen
        assert c.num_gates == 4

    def test_undefined_signal(self):
        with pytest.raises(CircuitError):
            circuit_from_spec("spec", [("out", GateType.PO, ["missing"])])

    def test_cycle_detected(self):
        with pytest.raises(CircuitError):
            circuit_from_spec(
                "spec",
                [
                    ("a", GateType.PI, []),
                    ("g1", GateType.AND, ["a", "g2"]),
                    ("g2", GateType.AND, ["a", "g1"]),
                    ("out", GateType.PO, ["g1"]),
                ],
            )
