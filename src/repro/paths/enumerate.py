"""Explicit path enumeration (generators).

Only usable when the number of paths is small — the classifier in
:mod:`repro.classify` never materialises paths like this; enumeration
exists for small-circuit exact reference computations and tests.
"""

from __future__ import annotations

from typing import Iterator

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.paths.path import FALLING, RISING, LogicalPath, PhysicalPath


def enumerate_physical_paths(
    circuit: Circuit, limit: int | None = 1_000_000
) -> Iterator[PhysicalPath]:
    """Yield every PI→PO physical path (DFS order by PI id, pin order).

    Raises RuntimeError after ``limit`` paths to guard against accidental
    enumeration of huge circuits (pass ``limit=None`` to disable).
    """
    produced = 0
    stack: list[int] = []

    def walk(gate: int) -> Iterator[PhysicalPath]:
        nonlocal produced
        if circuit.gate_type(gate) is GateType.PO:
            produced += 1
            if limit is not None and produced > limit:
                raise RuntimeError(
                    f"more than {limit} paths; use counting instead"
                )
            yield PhysicalPath(tuple(stack))
            return
        for dst, pin in circuit.fanout(gate):
            stack.append(circuit.lead_index(dst, pin))
            yield from walk(dst)
            stack.pop()

    for pi in circuit.inputs:
        yield from walk(pi)


def enumerate_logical_paths(
    circuit: Circuit, limit: int | None = 1_000_000
) -> Iterator[LogicalPath]:
    """Yield both logical paths (rising then falling) of every physical
    path."""
    half = None if limit is None else limit // 2 + 1
    for path in enumerate_physical_paths(circuit, limit=half):
        yield LogicalPath(path, RISING)
        yield LogicalPath(path, FALLING)
