"""Blocking client for the analysis service (``repro-rd classify --remote``).

A thin synchronous wrapper over one socket speaking the JSON-lines
protocol of :mod:`repro.service.protocol`.  Structured server errors
rehydrate as :class:`~repro.errors.RemoteError` (carrying the server's
exception class name in ``error_type``); transport and framing problems
raise :class:`~repro.errors.ServiceError` / ``ProtocolError``.

Usage::

    from repro.service.client import ServiceClient

    with ServiceClient.connect("127.0.0.1:7463") as client:
        result = client.classify(circuit="c17")
        print(result["rd_percent"])
"""

from __future__ import annotations

import socket
from typing import Callable

from repro.circuit.netlist import Circuit
from repro.errors import ProtocolError, RemoteError, ServiceError
from repro.service import protocol

__all__ = ["ServiceClient"]


class ServiceClient:
    """One persistent connection to a running analysis server."""

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._file = sock.makefile("rwb")
        self._next_id = 0

    # -- connecting -----------------------------------------------------
    @classmethod
    def connect(
        cls, spec: str, timeout: "float | None" = None
    ) -> "ServiceClient":
        """Connect to ``host:port`` or a unix socket path."""
        try:
            if ":" in spec:
                host, _, port_text = spec.rpartition(":")
                sock = socket.create_connection(
                    (host or "127.0.0.1", int(port_text)), timeout=timeout
                )
            else:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(timeout)
                sock.connect(spec)
        except (OSError, ValueError) as exc:
            raise ServiceError(
                f"cannot connect to analysis server at {spec!r}: {exc}"
            ) from exc
        return cls(sock)

    def close(self) -> None:
        # shutdown first: it unblocks a reader thread parked in recv()
        # (file.close() alone would deadlock on the buffer lock it holds)
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass  # already disconnected
        try:
            self._file.close()
        except OSError:
            pass  # best effort: flushing a dead socket is not an error
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the protocol ---------------------------------------------------
    def request(
        self,
        op: str,
        on_event: "Callable[[dict], None] | None" = None,
        **fields,
    ) -> dict:
        """One round trip: send a request, stream events to ``on_event``,
        return the final ``result`` (or raise :class:`RemoteError`)."""
        self._next_id += 1
        request_id = self._next_id
        message = {"id": request_id, "op": op}
        message.update(fields)
        try:
            self._file.write(protocol.encode_line(message))
            self._file.flush()
        except OSError as exc:
            raise ServiceError(f"send failed: {exc}") from exc
        while True:
            try:
                line = self._file.readline(protocol.MAX_LINE + 2)
            except OSError as exc:
                raise ServiceError(f"receive failed: {exc}") from exc
            if not line:
                raise ServiceError(
                    "server closed the connection before answering"
                )
            answer = protocol.decode_line(line)
            if answer.get("id") != request_id:
                continue  # a stale event from an abandoned request
            if "event" in answer:
                if on_event is not None:
                    on_event(answer)
                continue
            if answer.get("ok"):
                result = answer.get("result")
                if not isinstance(result, dict):
                    raise ProtocolError("ok response without a result object")
                return result
            error = answer.get("error")
            if not isinstance(error, dict):
                raise ProtocolError("error response without an error object")
            raise RemoteError(
                str(error.get("type", "ReproError")),
                str(error.get("message", "")),
            )

    # -- convenience ops ------------------------------------------------
    def ping(self) -> dict:
        return self.request("ping")

    def stats(self) -> dict:
        return self.request("stats")

    def metrics(self) -> dict:
        """The server's telemetry snapshot (``repro-rd metrics --remote``)."""
        return self.request("metrics")

    def classify(
        self,
        circuit: "Circuit | str | None" = None,
        bench: "str | None" = None,
        criterion: str = "sigma",
        sort: str = "heu2",
        max_accepted: "int | None" = None,
        deadline: "float | None" = None,
        on_event: "Callable[[dict], None] | None" = None,
    ) -> dict:
        """Classify a suite circuit (by name), ``.bench`` text, or an
        in-memory :class:`~repro.circuit.netlist.Circuit` (serialized to
        ``.bench`` on the wire)."""
        fields: dict = {"criterion": criterion, "sort": sort}
        if isinstance(circuit, Circuit):
            from repro.circuit.bench import write_bench

            fields["bench"] = write_bench(circuit)
            fields["name"] = circuit.name
        elif circuit is not None:
            fields["circuit"] = circuit
        if bench is not None:
            fields["bench"] = bench
        if max_accepted is not None:
            fields["max_accepted"] = max_accepted
        if deadline is not None:
            fields["deadline"] = deadline
        return self.request("classify", on_event=on_event, **fields)
