"""Sequential (scan) circuit support.

The paper's theory is combinational; in practice path delay testing is
applied to sequential designs through full scan, where every flip-flop
is controllable/observable and the analysis runs on the combinational
core with flip-flop outputs as pseudo-PIs and flip-flop inputs as
pseudo-POs.  This module provides exactly that expansion for
ISCAS-89-style ``.bench`` netlists (``X = DFF(Y)``).

RD identification, test generation and path selection then apply to
``ScanCircuit.core`` unchanged; the pseudo-I/O bookkeeping lets a test
flow distinguish launch/capture points from real pins.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

from repro.circuit.bench import BenchParseError, parse_bench, _GATE_RE, _IO_RE
from repro.circuit.netlist import Circuit


@dataclass(frozen=True)
class ScanCircuit:
    """A sequential netlist expanded for full-scan delay testing.

    ``core`` is the combinational circuit; each flip-flop contributes a
    pseudo-PI (its output net, named like the FF) and a pseudo-PO
    (capturing its next-state input, named ``<signal>_po``).
    """

    core: Circuit
    #: FF name -> (pseudo-PI gate id, pseudo-PO gate id)
    flipflops: dict

    def as_core(self) -> Circuit:
        """The combinational core — the :class:`Circuit` every analysis
        surface (classify, tightness, signoff) actually runs on."""
        return self.core

    @property
    def name(self) -> str:
        return self.core.name

    @property
    def num_flipflops(self) -> int:
        return len(self.flipflops)

    @property
    def pseudo_inputs(self) -> tuple:
        return tuple(pi for pi, _po in self.flipflops.values())

    @property
    def pseudo_outputs(self) -> tuple:
        return tuple(po for _pi, po in self.flipflops.values())

    @property
    def primary_inputs(self) -> tuple:
        """Real PIs (excluding pseudo-PIs from flip-flops)."""
        pseudo = set(self.pseudo_inputs)
        return tuple(pi for pi in self.core.inputs if pi not in pseudo)

    @property
    def primary_outputs(self) -> tuple:
        """Real POs (excluding pseudo-POs capturing next-state)."""
        pseudo = set(self.pseudo_outputs)
        return tuple(po for po in self.core.outputs if po not in pseudo)

    def next_state(self, vector) -> tuple:
        """One symbolic clock tick: simulate the core on ``vector`` (over
        ``core.inputs`` order) and return the captured next-state values
        in flip-flop declaration order."""
        from repro.logic.simulate import simulate

        values = simulate(self.core, vector)
        return tuple(values[po] for _pi, po in self.flipflops.values())


def parse_sequential_bench(text: str, name: str = "seq") -> ScanCircuit:
    """Parse a ``.bench`` netlist that may contain ``DFF`` gates.

    Every ``X = DFF(Y)`` is removed from the gate list; ``X`` becomes a
    pseudo-PI and ``Y`` gains a pseudo-PO (unless already a declared
    output, in which case the existing PO is reused as the capture
    point).
    """
    ff_defs: dict = {}
    declared_outputs: list = []
    kept_lines: list = []
    defined_signals: set = set()
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            if io_match.group(1).upper() == "OUTPUT":
                declared_outputs.append(io_match.group(2))
            else:
                defined_signals.add(io_match.group(2))
            kept_lines.append(line)
            continue
        gate_match = _GATE_RE.match(line)
        if gate_match:
            defined_signals.add(gate_match.group(1))
        if gate_match and gate_match.group(2).upper() in ("DFF", "DFFSR"):
            out_name = gate_match.group(1)
            args = [a.strip() for a in gate_match.group(3).split(",") if a.strip()]
            if len(args) != 1:
                raise BenchParseError(
                    f"flip-flop {out_name!r} must have exactly one data input"
                )
            if out_name in ff_defs:
                raise BenchParseError(f"flip-flop {out_name!r} redefined")
            ff_defs[out_name] = args[0]
            continue
        kept_lines.append(line)
    if not ff_defs:
        raise BenchParseError(
            "netlist has no flip-flops; use parse_bench for combinational "
            "circuits"
        )
    expanded = []
    for ff_name in ff_defs:
        expanded.append(f"INPUT({ff_name})")
    expanded.extend(kept_lines)
    for data in ff_defs.values():
        if data not in declared_outputs:
            # The pseudo-PO will be a new gate named "<data>_po"; a
            # netlist signal already claiming that name would silently
            # alias the capture point, so reject it up front.
            if f"{data}_po" in defined_signals:
                raise BenchParseError(
                    f"cannot create pseudo-PO {data}_po for flip-flop "
                    f"data net {data!r}: the netlist already defines a "
                    f"signal named {data}_po; rename it"
                )
            declared_outputs.append(data)
            expanded.append(f"OUTPUT({data})")
    core = parse_bench("\n".join(expanded), name=name)
    flipflops = {}
    for ff_name, data in ff_defs.items():
        pseudo_pi = core.gate_by_name(ff_name)
        pseudo_po = core.gate_by_name(f"{data}_po")
        flipflops[ff_name] = (pseudo_pi, pseudo_po)
    return ScanCircuit(core=core, flipflops=flipflops)


_warned_file_helper = False


def parse_sequential_bench_file(path: "str | Path") -> ScanCircuit:
    """Deprecated: use :func:`repro.loading.load` (``load(path,
    scan=True)``), the one adapter every surface accepts."""
    global _warned_file_helper
    if not _warned_file_helper:
        _warned_file_helper = True
        import warnings

        warnings.warn(
            "parse_sequential_bench_file() is deprecated; use "
            "repro.api.load(path, scan=True)",
            DeprecationWarning,
            stacklevel=2,
        )
    from repro.loading import load

    scan = load(Path(path), scan=True)
    assert isinstance(scan, ScanCircuit)
    return scan


#: A small ISCAS-89-style sequential benchmark (s27-like: 4 PIs, 3 FFs,
#: one PO) used in tests and examples.
S27_LIKE = """
# s27-like sequential benchmark
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
"""
