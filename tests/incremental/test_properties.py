"""Property suite for the incremental subsystem.

For random circuits and random single-gate ECO edits:

(a) cones whose transitive fanin is untouched keep their ``rdcfp1:``
    fingerprint,
(b) the diff's DIRTY set covers every cone the edit actually reaches,
(c) ``reanalyze`` through a store is byte-identical to a from-scratch
    cone classify, with per-cone numbers differentially checked against
    the brute-force reference classifier on a sampled subset.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuit.gates import GateType
from repro.classify.conditions import Criterion
from repro.classify.reference import classify_reference
from repro.incremental import (
    cone_classify,
    cone_fingerprints,
    diff_circuits,
    reanalyze,
)
from repro.store.db import ResultStore

from tests.strategies import small_circuits

_FLIPS = {
    GateType.AND: GateType.OR,
    GateType.OR: GateType.AND,
    GateType.NAND: GateType.NOR,
    GateType.NOR: GateType.NAND,
    GateType.NOT: GateType.BUF,
    GateType.BUF: GateType.NOT,
}


@st.composite
def circuit_and_edit(draw):
    """A random circuit plus a random single-gate type flip."""
    circuit = draw(small_circuits())
    editable = [
        gid for gid in range(circuit.num_gates)
        if circuit.gate_type(gid) in _FLIPS
    ]
    gid = draw(st.sampled_from(editable))
    edited = circuit.copy(f"{circuit.name}-eco")
    edited.replace_gate(
        edited.gate_name(gid),
        _FLIPS[edited.gate_type(gid)],
        list(edited.fanin(gid)),
    )
    return circuit, edited, gid


class TestEditProperties:
    @given(circuit_and_edit())
    @settings(max_examples=40, deadline=None)
    def test_untouched_cones_keep_their_fingerprint(self, case):
        base, edited, gid = case
        before = cone_fingerprints(base)
        after = cone_fingerprints(edited)
        reached = {base.gate_name(po) for po in base.reachable_pos(gid)}
        for output, fp in before.items():
            if output not in reached:
                assert after[output] == fp

    @given(circuit_and_edit())
    @settings(max_examples=40, deadline=None)
    def test_dirty_set_covers_every_reached_cone(self, case):
        base, edited, gid = case
        diff = diff_circuits(base, edited)
        reached = {base.gate_name(po) for po in base.reachable_pos(gid)}
        # the edit may be semantically invisible to the fingerprint only
        # if it is structurally invisible — a type flip never is, so
        # every reached cone must be flagged
        assert reached <= set(diff.dirty_outputs)
        # and nothing else: untouched cones must stay CLEAN
        assert set(diff.dirty_outputs) <= reached

    @given(
        case=circuit_and_edit(),
        criterion=st.sampled_from([Criterion.FS, Criterion.NR]),
    )
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_reanalyze_matches_from_scratch(self, tmp_path, case, criterion):
        base, edited, _gid = case
        with ResultStore(tmp_path / "store.sqlite") as store:
            store.clear()  # hypothesis reuses tmp_path across examples
            report = reanalyze(base, edited, store=store, criterion=criterion)
        cold = cone_classify(edited, criterion)
        assert report.edited.table_bytes() == cold.table_bytes()
        # differential: the brute-force reference agrees on a sampled
        # subset of cones (the first two keep runtime bounded)
        for row in report.edited.rows[:2]:
            cone, _mapping = edited.extract_cone(
                edited.gate_by_name(row.output)
            )
            reference = classify_reference(cone, criterion)
            assert row.total_logical == reference.total_logical
            assert row.accepted == reference.accepted
