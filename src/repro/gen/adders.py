"""Adder generators (ripple-carry, carry-lookahead, carry-select).

Adders mix XOR-style sum logic (high path counts, many unsensitizable
paths) with AND-OR carry chains — the structural blend of the mid-size
ISCAS circuits.
"""

from __future__ import annotations

from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import Circuit


def _full_adder(b: CircuitBuilder, a: int, x: int, cin: int, tag: str) -> tuple[int, int]:
    """(sum, carry-out) from expanded simple gates."""
    axb = b.xor(a, x, name=f"{tag}_axb")
    s = b.xor(axb, cin, name=f"{tag}_sum")
    c1 = b.and_(a, x, name=f"{tag}_c1")
    c2 = b.and_(axb, cin, name=f"{tag}_c2")
    cout = b.or_(c1, c2, name=f"{tag}_cout")
    return s, cout


def ripple_carry_adder(width: int, name: str | None = None) -> Circuit:
    """``width``-bit ripple-carry adder: inputs a[i], b[i], cin."""
    if width < 1:
        raise ValueError("width must be >= 1")
    b = CircuitBuilder(name or f"rca{width}")
    a_bits = [b.pi(f"a{i}") for i in range(width)]
    b_bits = [b.pi(f"b{i}") for i in range(width)]
    carry = b.pi("cin")
    for i in range(width):
        s, carry = _full_adder(b, a_bits[i], b_bits[i], carry, f"fa{i}")
        b.po(s, f"s{i}")
    b.po(carry, "cout")
    return b.build()


def carry_lookahead_adder(width: int, name: str | None = None) -> Circuit:
    """``width``-bit adder with flat carry lookahead.

    ``c[i+1] = g[i] + p[i]g[i-1] + ... + p[i]..p[0]c0`` — the deep AND-OR
    carry network creates heavy reconvergent fanout on the p/g signals.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    b = CircuitBuilder(name or f"cla{width}")
    a_bits = [b.pi(f"a{i}") for i in range(width)]
    b_bits = [b.pi(f"b{i}") for i in range(width)]
    c0 = b.pi("cin")
    p = [b.xor(a_bits[i], b_bits[i], name=f"p{i}") for i in range(width)]
    g = [b.and_(a_bits[i], b_bits[i], name=f"g{i}") for i in range(width)]
    carries = [c0]
    for i in range(width):
        terms = [g[i]]
        for j in range(i - 1, -1, -1):
            prefix = [p[k] for k in range(j + 1, i + 1)]
            terms.append(b.and_(g[j], *prefix, name=f"c{i + 1}_t{j}"))
        chain = [p[k] for k in range(i + 1)]
        terms.append(b.and_(c0, *chain, name=f"c{i + 1}_tc"))
        carries.append(b.or_(*terms, name=f"c{i + 1}"))
    for i in range(width):
        b.po(b.xor(p[i], carries[i], name=f"sum{i}"), f"s{i}")
    b.po(carries[width], "cout")
    return b.build()


def carry_select_adder(
    width: int, block: int = 4, name: str | None = None
) -> Circuit:
    """Carry-select adder: each block computed for cin=0 and cin=1, the
    real carry selecting via muxes — duplicated logic with reconvergence,
    a classic source of robust dependent paths."""
    if width < 1 or block < 1:
        raise ValueError("width and block must be >= 1")
    b = CircuitBuilder(name or f"csel{width}x{block}")
    a_bits = [b.pi(f"a{i}") for i in range(width)]
    b_bits = [b.pi(f"b{i}") for i in range(width)]
    carry = b.pi("cin")
    const_pairs: list[tuple[int, int]] = []
    i = 0
    while i < width:
        hi = min(i + block, width)
        # Two copies of the block: assumed carry-in 0 and 1.
        sums0, sums1 = [], []
        c0 = None  # carry chain with cin=0: start as "no carry yet"
        # Build cin=0 copy.
        c_cur = None
        for j in range(i, hi):
            if c_cur is None:
                s = b.xor(a_bits[j], b_bits[j], name=f"b0s{j}")
                c_cur = b.and_(a_bits[j], b_bits[j], name=f"b0c{j}")
            else:
                s, c_cur = _full_adder(b, a_bits[j], b_bits[j], c_cur, f"b0f{j}")
            sums0.append(s)
        c0 = c_cur
        # Build cin=1 copy.
        c_cur = None
        for j in range(i, hi):
            if c_cur is None:
                s = b.xnor(a_bits[j], b_bits[j], name=f"b1s{j}")
                c_cur = b.or_(a_bits[j], b_bits[j], name=f"b1c{j}")
            else:
                s, c_cur = _full_adder(b, a_bits[j], b_bits[j], c_cur, f"b1f{j}")
            sums1.append(s)
        c1 = c_cur
        for k, j in enumerate(range(i, hi)):
            b.po(b.mux(carry, sums0[k], sums1[k], name=f"sel_s{j}"), f"s{j}")
        carry = b.mux(carry, c0, c1, name=f"sel_c{hi}")
        const_pairs.append((c0, c1))
        i = hi
    b.po(carry, "cout")
    return b.build()
