"""Plain-text table rendering for the experiment reports.

The experiment harness prints tables in the same row/column layout as the
paper; this module provides the (dependency-free) formatter.
"""

from __future__ import annotations

from typing import Iterable, Sequence


class TextTable:
    """Accumulates rows and renders an aligned plain-text table."""

    def __init__(self, columns: Sequence[str], title: str = "") -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self._rows: list[list[str]] = []

    def add_row(self, values: Iterable[object]) -> None:
        row = [str(v) for v in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self._rows.append(row)

    @property
    def rows(self) -> list[list[str]]:
        return [list(row) for row in self._rows]

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            return " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

        sep = "-+-".join("-" * w for w in widths)
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt(self.columns))
        lines.append(sep)
        lines.extend(fmt(row) for row in self._rows)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
