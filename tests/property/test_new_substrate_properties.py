"""Property-based tests for the newer substrates: bit-parallel
simulation, fault collapsing, the ATPG flow, simplification, STA and
k-longest paths, TPG."""

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.strategies import small_circuits


@settings(max_examples=40, deadline=None)
@given(circuit=small_circuits(), data=st.data())
def test_bitsim_matches_scalar(circuit, data):
    from repro.logic.bitsim import pack_patterns, simulate_words
    from repro.logic.simulate import simulate

    count = data.draw(st.integers(1, 80))
    patterns = [
        tuple(data.draw(st.integers(0, 1)) for _ in circuit.inputs)
        for _ in range(count)
    ]
    words, mask = pack_patterns(patterns)
    values = simulate_words(circuit, words, mask)
    probe = data.draw(st.integers(0, count - 1))
    scalar = simulate(circuit, patterns[probe])
    for g in range(circuit.num_gates):
        assert (values[g] >> probe) & 1 == scalar[g]


@settings(max_examples=25, deadline=None)
@given(circuit=small_circuits(max_gates=10), data=st.data())
def test_collapse_classes_equivalent(circuit, data):
    from repro.atpg.collapse import equivalence_classes
    from repro.atpg.stuckat import simulate_with_fault
    from repro.logic.simulate import all_vectors, simulate

    classes = [cls for cls in equivalence_classes(circuit) if len(cls) > 1]
    if not classes:
        return
    cls = classes[data.draw(st.integers(0, len(classes) - 1))]
    vectors = list(all_vectors(len(circuit.inputs)))
    signatures = set()
    for fault in cls:
        sig = tuple(
            tuple(
                simulate(circuit, v)[po] != simulate_with_fault(circuit, v, fault)[po]
                for po in circuit.outputs
            )
            for v in vectors
        )
        signatures.add(sig)
    assert len(signatures) == 1


@settings(max_examples=10, deadline=None)
@given(circuit=small_circuits(max_gates=9))
def test_atpg_flow_is_complete_and_sound(circuit):
    from repro.atpg.flow import run_atpg
    from repro.atpg.stuckat import is_redundant
    from repro.logic.bitsim import detected_faults

    result = run_atpg(circuit, random_burst=8)
    assert result.coverage == 1.0
    assert not result.aborted
    regraded = detected_faults(circuit, result.patterns, result.detected)
    assert regraded == result.detected
    for fault in result.redundant:
        assert is_redundant(circuit, fault)


@settings(max_examples=25, deadline=None)
@given(circuit=small_circuits(max_gates=12))
def test_sweep_preserves_function(circuit):
    from repro.circuit.simplify import sweep
    from repro.logic.simulate import truth_table

    assert truth_table(sweep(circuit)) == truth_table(circuit)


@settings(max_examples=20, deadline=None)
@given(circuit=small_circuits(max_gates=10), data=st.data())
def test_sta_and_kpaths_consistent(circuit, data):
    from repro.timing.delays import random_delays
    from repro.timing.kpaths import iter_paths_by_delay
    from repro.timing.pathdelay import logical_path_delay
    from repro.timing.sta import static_timing

    delays = random_delays(circuit, seed=data.draw(st.integers(0, 500)))
    report = static_timing(circuit, delays)
    produced = list(iter_paths_by_delay(circuit, delays))
    values = [d for d, _ in produced]
    assert values == sorted(values, reverse=True)
    assert abs(values[0] - report.critical_delay) < 1e-9
    for delay, lp in produced[:5]:
        assert abs(delay - logical_path_delay(circuit, lp, delays)) < 1e-9


@settings(max_examples=8, deadline=None)
@given(circuit=small_circuits(max_gates=9))
def test_tpg_claims_survive_resimulation(circuit):
    from repro.delaytest.simulator import simulate_test_set
    from repro.delaytest.tpg import generate_test_set
    from repro.paths.enumerate import enumerate_logical_paths

    targets = list(enumerate_logical_paths(circuit))
    result = generate_test_set(circuit, targets)
    resim = simulate_test_set(circuit, result.pairs)
    for lp in result.covered:
        assert lp in resim.robust
    assert set(result.covered) | set(result.untestable) == set(targets)
