"""``repro.api`` — the stable public facade.

Everything a downstream user should import lives here, re-exported
under one explicit ``__all__``; ``import repro`` re-exports the same
names.  Deep imports (``repro.classify.session`` etc.) keep working,
but only the names below are covered by the compatibility promise —
the API-surface snapshot test pins this list, so widening it is a
reviewed decision and narrowing it is a breaking change.

Quickstart::

    from repro.api import Criterion, classify, heuristic2_sort, paper_example_circuit

    circuit = paper_example_circuit()
    result = classify(circuit, Criterion.SIGMA_PI, sort=heuristic2_sort(circuit))
    print(f"{result.rd_percent:.1f}% of logical paths need no robust test")

Observability entry points (:func:`get_registry`, :func:`span`,
:func:`export_jsonl`, ...) are part of the facade: library users
instrument and read the same telemetry spine the CLI and the daemon
use.
"""

from __future__ import annotations

from repro.errors import (
    CircuitError,
    ClassifyError,
    ExactLimitError,
    HarnessError,
    Overloaded,
    ProtocolError,
    RemoteError,
    ReproError,
    ServiceError,
    StoreError,
    TaskCrashed,
    TaskTimeout,
    VerdictError,
)
from repro.circuit import (
    Circuit,
    CircuitBuilder,
    FlatCircuit,
    GateType,
    paper_example_circuit,
    parse_bench,
    parse_bench_file,
    parse_pla,
    parse_pla_file,
    write_bench,
)
from repro.classify import (
    CircuitSession,
    ClassificationResult,
    Criterion,
    check_logical_path,
    classify,
)
from repro.obs import (
    MetricsRegistry,
    export_jsonl,
    format_metrics,
    get_registry,
    histogram_quantile,
    reset_registry,
    span,
)
from repro.paths import (
    LogicalPath,
    PhysicalPath,
    count_paths,
    enumerate_logical_paths,
    enumerate_physical_paths,
)
from repro.sorting import (
    InputSort,
    heuristic1_sort,
    heuristic2_sort,
    pin_order_sort,
    random_sort,
)
from repro.stabilize import (
    CompleteStabilizingAssignment,
    StabilizingSystem,
    all_stabilizing_systems,
    assignment_from_sort,
    compute_stabilizing_system,
)
from repro.baseline import baseline_rd, leafdag_rd_paths
from repro.delaytest import (
    is_nonrobustly_testable,
    is_robustly_testable,
    nonrobust_test,
    robust_test,
)
from repro.timing import (
    DelayAssignment,
    delays_digest,
    logical_path_delay,
    materialize_delays,
    parse_delay_annotations,
    parse_delays_file,
    random_delays,
    settle_time,
    unit_delays,
    write_delay_annotations,
)
from repro.circuit.sequential import ScanCircuit, parse_sequential_bench
from repro.timing import iter_paths_by_delay, k_longest_paths
from repro.loading import as_core, load
from repro.signoff import (
    SignoffReport,
    SignoffRow,
    signoff,
    signoff_core,
    signoff_remote,
)
from repro.store import ResultStore, canonical_form, fingerprint
from repro.incremental import (
    CircuitDiff,
    ConeClassifyReport,
    ConeIndex,
    ReanalyzeReport,
    cone_classify,
    cone_fingerprints,
    cone_index,
    diff_circuits,
    reanalyze,
)
from repro.service import (
    AnalysisServer,
    FleetServer,
    HashRing,
    RetryPolicy,
    ServiceClient,
    WorkerSupervisor,
    serve,
    serve_fleet,
)
from repro.verdict import (
    PathVerdict,
    SensitizationEncoder,
    TightnessReport,
    TightnessRow,
    VerdictOracle,
    run_tightness,
    tightness_row,
)
from repro.util.serialize import classification_payload, info_payload, to_json

__all__ = [
    # errors
    "ReproError",
    "CircuitError",
    "ClassifyError",
    "ExactLimitError",
    "HarnessError",
    "TaskTimeout",
    "TaskCrashed",
    "StoreError",
    "ServiceError",
    "ProtocolError",
    "RemoteError",
    "Overloaded",
    "VerdictError",
    # circuits
    "Circuit",
    "CircuitBuilder",
    "FlatCircuit",
    "GateType",
    "paper_example_circuit",
    "parse_bench",
    "parse_bench_file",
    "parse_pla",
    "parse_pla_file",
    "write_bench",
    # classification
    "CircuitSession",
    "ClassificationResult",
    "Criterion",
    "check_logical_path",
    "classify",
    # observability
    "MetricsRegistry",
    "export_jsonl",
    "format_metrics",
    "get_registry",
    "histogram_quantile",
    "reset_registry",
    "span",
    # paths
    "LogicalPath",
    "PhysicalPath",
    "count_paths",
    "enumerate_logical_paths",
    "enumerate_physical_paths",
    # input sorts
    "InputSort",
    "heuristic1_sort",
    "heuristic2_sort",
    "pin_order_sort",
    "random_sort",
    # stabilizing systems
    "CompleteStabilizingAssignment",
    "StabilizingSystem",
    "all_stabilizing_systems",
    "assignment_from_sort",
    "compute_stabilizing_system",
    # baseline
    "baseline_rd",
    "leafdag_rd_paths",
    # delay-test generation
    "is_nonrobustly_testable",
    "is_robustly_testable",
    "nonrobust_test",
    "robust_test",
    # timing
    "DelayAssignment",
    "delays_digest",
    "iter_paths_by_delay",
    "k_longest_paths",
    "logical_path_delay",
    "materialize_delays",
    "parse_delay_annotations",
    "parse_delays_file",
    "random_delays",
    "settle_time",
    "unit_delays",
    "write_delay_annotations",
    # unified loading
    "ScanCircuit",
    "as_core",
    "load",
    "parse_sequential_bench",
    # timing signoff
    "SignoffReport",
    "SignoffRow",
    "signoff",
    "signoff_core",
    "signoff_remote",
    # result store
    "ResultStore",
    "canonical_form",
    "fingerprint",
    # incremental re-analysis (ECO)
    "CircuitDiff",
    "ConeClassifyReport",
    "ConeIndex",
    "ReanalyzeReport",
    "cone_classify",
    "cone_fingerprints",
    "cone_index",
    "diff_circuits",
    "reanalyze",
    # analysis service + fleet
    "AnalysisServer",
    "FleetServer",
    "HashRing",
    "RetryPolicy",
    "ServiceClient",
    "WorkerSupervisor",
    "serve",
    "serve_fleet",
    # SAT-exact verdicts + tightness
    "PathVerdict",
    "SensitizationEncoder",
    "TightnessReport",
    "TightnessRow",
    "VerdictOracle",
    "run_tightness",
    "tightness_row",
    # serialization
    "classification_payload",
    "info_payload",
    "to_json",
]
