"""Supervised worker processes for the analysis-service fleet.

Each worker is a real operating-system process running the existing
single-process daemon (:mod:`repro.service.server`) over its own unix
socket — full fault isolation: a crash, OOM kill or wedge takes out one
shard's in-flight requests and nothing else.  The
:class:`WorkerSupervisor` lives inside the front-end process
(:mod:`repro.service.fleet`) and runs one *manage loop* per worker:

* **health checks** — a periodic ``metrics`` ping over a short-lived
  connection with a hard timeout.  A worker whose process is gone is
  *crashed*; one whose process is alive but misses
  ``max_health_failures`` consecutive pings is *wedged* (e.g. stopped,
  deadlocked, or swapping) and is killed outright.
* **respawn with exponential backoff** — a dead worker is restarted on
  the same socket path after a delay that doubles per consecutive
  respawn (``backoff_base`` up to ``backoff_max``) and resets once the
  worker has stayed healthy for ``stable_after`` seconds, so a
  crash-looping shard cannot hog the supervisor.
* **routing callbacks** — ``on_worker_down`` / ``on_worker_up`` fire in
  the supervisor's event loop so the front-end can drop the shard from
  its hash ring (re-routing retries elsewhere) and re-add it when the
  replacement passes its readiness ping.

Workers are spawned with ``start_new_session=True``: a Ctrl-C against
the front-end's terminal reaches only the front-end, which drains
in-flight requests against still-healthy workers before terminating
them — not the workers mid-computation.
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
import time

from repro.errors import ServiceError
from repro.obs import get_registry
from repro.service import protocol

__all__ = ["WorkerHandle", "WorkerSupervisor"]


async def unix_rpc(socket_path: str, message: dict, timeout: float) -> dict:
    """One request/response round trip on a fresh unix connection.

    Raises :class:`asyncio.TimeoutError` on a wedged peer and
    :class:`ServiceError`/``OSError`` on a dead one.  Streamed events
    are skipped; the first final (non-event) message is returned.
    """
    reader, writer = await asyncio.wait_for(
        asyncio.open_unix_connection(socket_path, limit=protocol.MAX_LINE),
        timeout,
    )
    try:
        writer.write(protocol.encode_line(message))
        await asyncio.wait_for(writer.drain(), timeout)
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout)
            if not line:
                raise ServiceError(f"{socket_path}: closed before answering")
            answer = protocol.decode_line(line)
            if "event" not in answer:
                return answer
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class WorkerHandle:
    """One supervised worker process and its lifecycle bookkeeping."""

    def __init__(self, index: int, socket_path: str):
        self.index = index
        self.socket_path = socket_path
        self.proc: "subprocess.Popen | None" = None
        self.state = "starting"  # starting | up | respawning | stopped
        self.respawns = 0  # lifetime respawn count (excludes first spawn)
        self.backoff = 0.0  # next respawn delay; set by the supervisor
        self.health_failures = 0
        self.up_since: "float | None" = None
        self.last_metrics: "dict | None" = None
        self.poke = asyncio.Event()  # front-end: "check this worker NOW"

    @property
    def pid(self) -> "int | None":
        return self.proc.pid if self.proc is not None else None

    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    def describe(self) -> dict:
        return {
            "index": self.index,
            "pid": self.pid,
            "state": self.state,
            "alive": self.alive(),
            "respawns": self.respawns,
            "socket": self.socket_path,
        }


class WorkerSupervisor:
    """Spawns, health-checks and respawns the fleet's worker processes."""

    def __init__(
        self,
        count: int,
        socket_dir: str,
        store: "str | None" = None,
        concurrency: int = 8,
        default_deadline: "float | None" = None,
        max_accepted: "int | None" = None,
        health_interval: float = 0.5,
        health_timeout: float = 2.0,
        max_health_failures: int = 2,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        stable_after: float = 5.0,
        spawn_timeout: float = 60.0,
        on_worker_up=None,
        on_worker_down=None,
    ):
        if count < 1:
            raise ValueError("worker count must be >= 1")
        self.store = store
        self.concurrency = concurrency
        self.default_deadline = default_deadline
        self.max_accepted = max_accepted
        self.health_interval = health_interval
        self.health_timeout = health_timeout
        self.max_health_failures = max_health_failures
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.stable_after = stable_after
        self.spawn_timeout = spawn_timeout
        self.on_worker_up = on_worker_up
        self.on_worker_down = on_worker_down
        self.workers = [
            WorkerHandle(i, os.path.join(socket_dir, f"worker-{i}.sock"))
            for i in range(count)
        ]
        self._manage_tasks: "list[asyncio.Task]" = []
        self._stopping = False

    # -- spawning -------------------------------------------------------
    def _argv(self, handle: WorkerHandle) -> "list[str]":
        argv = [
            sys.executable, "-m", "repro", "serve",
            "--socket", handle.socket_path,
            "--concurrency", str(self.concurrency),
        ]
        if self.store is not None:
            argv += ["--store", str(self.store)]
        if self.default_deadline is not None:
            argv += ["--deadline", str(self.default_deadline)]
        if self.max_accepted is not None:
            argv += ["--max-accepted", str(self.max_accepted)]
        return argv

    def _env(self) -> dict:
        """The worker environment; makes a source-tree ``repro`` import
        work even when the package is not installed."""
        import repro

        env = dict(os.environ)
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(
            repro.__file__
        )))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_dir, env.get("PYTHONPATH")) if p
        )
        return env

    def _spawn(self, handle: WorkerHandle) -> None:
        try:
            os.unlink(handle.socket_path)
        except OSError:
            pass
        handle.proc = subprocess.Popen(
            self._argv(handle),
            stdout=subprocess.DEVNULL,  # the per-worker banner is noise
            env=self._env(),
            start_new_session=True,  # terminal SIGINT stays on the front-end
        )
        handle.state = "starting"
        handle.health_failures = 0
        handle.up_since = None

    async def _wait_ready(self, handle: WorkerHandle) -> bool:
        """Poll until the worker answers its readiness ping (True) or
        dies / exceeds ``spawn_timeout`` (False)."""
        deadline = time.monotonic() + self.spawn_timeout
        while time.monotonic() < deadline:
            if not handle.alive():
                return False
            if os.path.exists(handle.socket_path):
                try:
                    answer = await unix_rpc(
                        handle.socket_path, {"op": "metrics"},
                        self.health_timeout,
                    )
                    if answer.get("ok"):
                        handle.last_metrics = answer.get("result")
                        return True
                except (asyncio.TimeoutError, ServiceError, OSError):
                    pass
            await asyncio.sleep(0.05)
        return False

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        """Spawn every worker and wait until all answer their readiness
        ping; raises :class:`ServiceError` if any fails to come up."""
        for handle in self.workers:
            self._spawn(handle)
        ready = await asyncio.gather(
            *(self._wait_ready(h) for h in self.workers)
        )
        if not all(ready):
            await self.stop()
            dead = [h.index for h, ok in zip(self.workers, ready) if not ok]
            raise ServiceError(f"worker(s) {dead} failed to start")
        now = time.monotonic()
        for handle in self.workers:
            handle.state = "up"
            handle.up_since = now
            handle.backoff = self.backoff_base
            self._notify_up(handle)
        self._manage_tasks = [
            asyncio.ensure_future(self._manage(h)) for h in self.workers
        ]

    def note_failure(self, index: int) -> None:
        """Front-end hint: a request against this worker just failed at
        the transport level — health-check it immediately."""
        self.workers[index].poke.set()

    async def stop(self) -> None:
        """Terminate every worker: SIGTERM (graceful drain), bounded
        wait, SIGKILL stragglers."""
        self._stopping = True
        for task in self._manage_tasks:
            task.cancel()
        if self._manage_tasks:
            await asyncio.gather(*self._manage_tasks, return_exceptions=True)
        self._manage_tasks = []
        procs = [h.proc for h in self.workers if h.alive()]
        for proc in procs:
            proc.terminate()
        loop = asyncio.get_event_loop()
        deadline = time.monotonic() + 10.0
        for proc in procs:
            budget = max(0.1, deadline - time.monotonic())
            try:
                await loop.run_in_executor(None, proc.wait, budget)
            except subprocess.TimeoutExpired:
                proc.kill()
                await loop.run_in_executor(None, proc.wait)
        for handle in self.workers:
            handle.state = "stopped"
            try:
                os.unlink(handle.socket_path)
            except OSError:
                pass

    # -- the per-worker manage loop -------------------------------------
    async def _manage(self, handle: WorkerHandle) -> None:
        """Health-check one worker forever; kill-and-respawn on crash or
        wedge.  Cancellation (from :meth:`stop`) exits cleanly."""
        try:
            while not self._stopping:
                try:
                    await asyncio.wait_for(
                        handle.poke.wait(), self.health_interval
                    )
                except asyncio.TimeoutError:
                    pass
                handle.poke.clear()
                if self._stopping:
                    return
                if not handle.alive():
                    await self._respawn(handle, "crashed")
                    continue
                try:
                    answer = await unix_rpc(
                        handle.socket_path, {"op": "metrics"},
                        self.health_timeout,
                    )
                    if not answer.get("ok"):
                        raise ServiceError("health ping answered an error")
                except (asyncio.TimeoutError, ServiceError, OSError):
                    handle.health_failures += 1
                    if handle.health_failures >= self.max_health_failures:
                        await self._respawn(handle, "wedged")
                    continue
                handle.last_metrics = answer.get("result")
                handle.health_failures = 0
                if handle.state != "up":
                    handle.state = "up"
                    handle.up_since = time.monotonic()
                elif (
                    handle.up_since is not None
                    and time.monotonic() - handle.up_since > self.stable_after
                ):
                    handle.backoff = self.backoff_base  # earned a reset
                # always (re)notify: the front-end drops a shard from its
                # ring on any transport error, and this idempotent re-add
                # is how a false positive heals within one interval
                self._notify_up(handle)
        except asyncio.CancelledError:
            pass

    async def _respawn(self, handle: WorkerHandle, why: str) -> None:
        handle.state = "respawning"
        self._notify_down(handle)
        if handle.alive():
            handle.proc.kill()  # wedged: SIGTERM may never be served
            loop = asyncio.get_event_loop()
            await loop.run_in_executor(None, handle.proc.wait)
        delay = max(handle.backoff, self.backoff_base)
        handle.backoff = min(self.backoff_max, delay * 2)
        await asyncio.sleep(delay)
        if self._stopping:
            return
        handle.respawns += 1
        registry = get_registry()
        registry.counter("fleet.respawns").inc()
        registry.counter(f"fleet.worker.{handle.index}.respawns").inc()
        self._spawn(handle)
        if await self._wait_ready(handle):
            handle.state = "up"
            handle.up_since = time.monotonic()
            handle.health_failures = 0
            self._notify_up(handle)
        # on failure the next loop iteration sees a dead process and
        # respawns again, with the doubled backoff

    def _notify_up(self, handle: WorkerHandle) -> None:
        if self.on_worker_up is not None:
            self.on_worker_up(handle.index)

    def _notify_down(self, handle: WorkerHandle) -> None:
        if self.on_worker_down is not None:
            self.on_worker_down(handle.index)

    # -- introspection --------------------------------------------------
    @property
    def respawn_total(self) -> int:
        return sum(h.respawns for h in self.workers)

    def describe(self) -> "list[dict]":
        return [h.describe() for h in self.workers]
