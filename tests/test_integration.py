"""End-to-end integration flows crossing all subsystems."""

import pytest

from repro import (
    Criterion,
    classify,
    count_paths,
    heuristic2_sort,
    parse_bench,
    robust_test,
    write_bench,
)
from repro.baseline.exact_assignment import baseline_rd
from repro.delaytest.testability import is_robustly_testable
from repro.gen.adders import ripple_carry_adder
from repro.gen.twolevel import factored_circuit, random_cover
from repro.logic.simulate import simulate
from repro.selection.strategies import select_by_threshold
from repro.timing.delays import unit_delays
from repro.timing.eventsim import two_pattern_settle
from repro.timing.pathdelay import logical_path_delay


def test_full_flow_classify_generate_validate():
    """Classify an adder, robust-test a non-RD path, inject a delay
    fault on that path, and observe the late output in timing sim."""
    circuit = ripple_carry_adder(3)
    sort = heuristic2_sort(circuit)
    must_test = []
    classify(circuit, Criterion.SIGMA_PI, sort=sort, on_path=must_test.append)
    assert must_test
    lp = pair = None
    for candidate in sorted(must_test, key=lambda p: -len(p.path)):
        pair = robust_test(circuit, candidate)
        if pair is not None:
            lp = candidate
            break
    assert lp is not None, "no robustly testable selected path found"
    v1, v2 = pair
    delays = unit_delays(circuit)
    nominal = two_pattern_settle(circuit, delays, v1, v2)
    victim = circuit.lead_dst(lp.path.leads[0])
    slow = delays.with_gate_delay(victim, 40.0, 40.0)
    late = two_pattern_settle(circuit, slow, v1, v2)
    assert late >= 40.0
    assert late > nominal


def test_bench_roundtrip_preserves_classification():
    """Serialise a generated circuit to .bench, re-parse, and classify:
    RD counts must match exactly."""
    circuit = factored_circuit(random_cover(7, 2, 12, seed=9))
    again = parse_bench(write_bench(circuit))
    for criterion in (Criterion.FS, Criterion.NR):
        assert (
            classify(circuit, criterion).accepted
            == classify(again, criterion).accepted
        )


def test_rd_identification_consistent_across_engines():
    """Three independent computations of 'how many paths need testing'
    on the same circuit must be consistent: baseline <= heu2-exactish
    and both within total."""
    circuit = factored_circuit(random_cover(6, 2, 9, seed=2))
    total = count_paths(circuit).total_logical
    base = baseline_rd(circuit, method="greedy")
    heu2 = classify(circuit, Criterion.SIGMA_PI, sort=heuristic2_sort(circuit))
    assert base.selected <= heu2.accepted <= total
    assert base.total_logical == heu2.total_logical == total


def test_selection_on_top_of_classification():
    """Threshold selection + RD filter: the filtered set is exactly the
    slow non-RD paths, and its robust coverage is at least the raw
    set's."""
    circuit = ripple_carry_adder(2)
    sort = heuristic2_sort(circuit)
    must_test = set()
    classify(circuit, Criterion.SIGMA_PI, sort=sort, on_path=must_test.add)
    delays = unit_delays(circuit)
    sel = select_by_threshold(circuit, delays, 4.0, must_test)
    for lp in sel.selected_non_rd:
        assert logical_path_delay(circuit, lp, delays) >= 4.0
        assert lp in must_test


def test_generated_tests_apply_cleanly():
    """Robust tests returned by the SAT generator simulate to the
    expected stable values at both pattern steps."""
    circuit = ripple_carry_adder(2)
    sort = heuristic2_sort(circuit)
    must_test = []
    classify(circuit, Criterion.SIGMA_PI, sort=sort, on_path=must_test.append)
    checked = 0
    for lp in must_test[:20]:
        pair = robust_test(circuit, lp)
        if pair is None:
            continue
        v1, v2 = pair
        pi = lp.path.source(circuit)
        assert simulate(circuit, v1)[pi] == 1 - lp.final_value
        assert simulate(circuit, v2)[pi] == lp.final_value
        assert is_robustly_testable(circuit, lp)
        checked += 1
    assert checked > 0
