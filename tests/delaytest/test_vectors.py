"""Unit tests for two-pattern test-set persistence."""

import pytest

from repro.delaytest.simulator import simulate_test_set
from repro.delaytest.tpg import generate_test_set
from repro.delaytest.vectors import (
    VectorFormatError,
    dumps_pairs,
    load_pairs,
    loads_pairs,
    save_pairs,
)
from repro.paths.enumerate import enumerate_logical_paths


def test_round_trip(example_circuit):
    pairs = [((0, 0, 0), (1, 0, 0)), ((1, 1, 1), (0, 1, 0))]
    text = dumps_pairs(example_circuit, pairs)
    assert loads_pairs(example_circuit, text) == pairs


def test_round_trip_preserves_coverage(example_circuit, tmp_path):
    """A generated test set survives save/load with identical coverage."""
    targets = list(enumerate_logical_paths(example_circuit))
    result = generate_test_set(example_circuit, targets)
    path = tmp_path / "tests.pat"
    save_pairs(example_circuit, result.pairs, path)
    loaded = load_pairs(example_circuit, path)
    assert loaded == result.pairs
    before = simulate_test_set(example_circuit, result.pairs).robust
    after = simulate_test_set(example_circuit, loaded).robust
    assert before == after


def test_header_mismatch_detected(example_circuit, mux):
    text = dumps_pairs(example_circuit, [((0, 0, 0), (1, 1, 1))])
    with pytest.raises(VectorFormatError):
        loads_pairs(mux, text)
    # Non-strict loading skips the check (same PI count).
    assert loads_pairs(mux, text, strict=False)


@pytest.mark.parametrize(
    "bad",
    [
        "01 1",           # missing half
        "0a0 111",        # bad bit
        "01 01 01",       # too many fields
        "0101 0101",      # wrong width for a 3-PI circuit
    ],
)
def test_malformed_lines(example_circuit, bad):
    with pytest.raises(VectorFormatError):
        loads_pairs(example_circuit, bad)


def test_width_check_on_dump(example_circuit):
    with pytest.raises(VectorFormatError):
        dumps_pairs(example_circuit, [((0, 0), (1, 1))])


def test_comments_and_blanks_ignored(example_circuit):
    text = "# hello\n\n000 100\n# bye\n"
    assert loads_pairs(example_circuit, text) == [((0, 0, 0), (1, 0, 0))]
