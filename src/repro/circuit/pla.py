"""Espresso ``.pla`` two-level cover format and two-level circuit synthesis.

Used for the MCNC-style benchmarks of Table III.  A cover is a list of
cubes over the inputs, one output column per output (``1`` = cube belongs
to the output's ON-set).  ``TwoLevelCover.to_circuit`` builds the AND-OR
(two-level) implementation with shared AND terms and input inverters —
the canonical PLA structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, CircuitError


class PlaParseError(CircuitError):
    """Raised for malformed .pla input."""


@dataclass
class TwoLevelCover:
    """A two-level cover: cubes of ``{'0','1','-'}`` and output parts of
    ``{'0','1'}`` (``1`` means the cube drives that output)."""

    num_inputs: int
    num_outputs: int
    cubes: list[tuple[str, str]] = field(default_factory=list)
    input_names: list[str] = field(default_factory=list)
    output_names: list[str] = field(default_factory=list)
    name: str = "pla"

    def __post_init__(self) -> None:
        if not self.input_names:
            self.input_names = [f"x{i}" for i in range(self.num_inputs)]
        if not self.output_names:
            self.output_names = [f"y{i}" for i in range(self.num_outputs)]
        if len(self.input_names) != self.num_inputs:
            raise PlaParseError("input name count mismatch")
        if len(self.output_names) != self.num_outputs:
            raise PlaParseError("output name count mismatch")
        for in_part, out_part in self.cubes:
            self._check_cube(in_part, out_part)

    def _check_cube(self, in_part: str, out_part: str) -> None:
        if len(in_part) != self.num_inputs:
            raise PlaParseError(f"cube {in_part!r} has wrong input width")
        if len(out_part) != self.num_outputs:
            raise PlaParseError(f"cube output {out_part!r} has wrong width")
        if set(in_part) - set("01-"):
            raise PlaParseError(f"bad literal in cube {in_part!r}")
        if set(out_part) - set("01"):
            raise PlaParseError(f"bad output column in {out_part!r}")

    def add_cube(self, in_part: str, out_part: str) -> None:
        self._check_cube(in_part, out_part)
        self.cubes.append((in_part, out_part))

    def evaluate(self, vector: tuple[int, ...]) -> tuple[int, ...]:
        """Evaluate the cover functionally on a fully specified vector."""
        if len(vector) != self.num_inputs:
            raise ValueError("vector width mismatch")
        out = [0] * self.num_outputs
        for in_part, out_part in self.cubes:
            if all(
                lit == "-" or int(lit) == vector[i] for i, lit in enumerate(in_part)
            ):
                for j, bit in enumerate(out_part):
                    if bit == "1":
                        out[j] = 1
        return tuple(out)

    def to_circuit(self, name: str | None = None) -> Circuit:
        """Two-level AND-OR implementation with shared product terms.

        Literals are realised with one inverter per complemented input;
        single-literal cubes connect straight to the OR plane; outputs
        whose ON-set is empty become constant via an AND of ``x & !x``
        (rare, kept for completeness).
        """
        circuit = Circuit(name or self.name)
        pis = [circuit.add_gate(GateType.PI, nm) for nm in self.input_names]
        inverters: dict[int, int] = {}

        def inverted(i: int) -> int:
            if i not in inverters:
                inverters[i] = circuit.add_gate(
                    GateType.NOT, f"n_{self.input_names[i]}", [pis[i]]
                )
            return inverters[i]

        term_ids: list[int] = []
        for t, (in_part, _out_part) in enumerate(self.cubes):
            literals = []
            for i, lit in enumerate(in_part):
                if lit == "1":
                    literals.append(pis[i])
                elif lit == "0":
                    literals.append(inverted(i))
            if not literals:
                raise PlaParseError(
                    f"cube {t} is the universal cube; outputs it drives are "
                    "constant-1 functions, which have no delay-test meaning"
                )
            if len(literals) == 1:
                term_ids.append(literals[0])
            else:
                term_ids.append(circuit.add_gate(GateType.AND, f"t{t}", literals))
        for j, out_name in enumerate(self.output_names):
            terms = [
                term_ids[t]
                for t, (_in, out_part) in enumerate(self.cubes)
                if out_part[j] == "1"
            ]
            if not terms:
                raise PlaParseError(
                    f"output {out_name!r} has empty ON-set (constant 0)"
                )
            if len(terms) == 1:
                driver = terms[0]
            else:
                driver = circuit.add_gate(GateType.OR, f"or_{out_name}", terms)
            circuit.add_gate(GateType.PO, out_name, [driver])
        return circuit.freeze()


def parse_pla(text: str, name: str = "pla") -> TwoLevelCover:
    """Parse espresso ``.pla`` text into a :class:`TwoLevelCover`."""
    num_inputs = num_outputs = None
    input_names: list[str] = []
    output_names: list[str] = []
    cubes: list[tuple[str, str]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            parts = line.split()
            key = parts[0]
            if key == ".i":
                num_inputs = int(parts[1])
            elif key == ".o":
                num_outputs = int(parts[1])
            elif key == ".ilb":
                input_names = parts[1:]
            elif key == ".ob":
                output_names = parts[1:]
            elif key in (".p", ".e", ".end", ".type"):
                continue
            else:
                raise PlaParseError(f"line {lineno}: unsupported directive {key!r}")
            continue
        parts = line.split()
        if len(parts) != 2:
            raise PlaParseError(f"line {lineno}: expected 'cube outputs', got {raw!r}")
        cubes.append((parts[0], parts[1].replace("~", "0")))
    if num_inputs is None or num_outputs is None:
        raise PlaParseError("missing .i or .o directive")
    return TwoLevelCover(
        num_inputs=num_inputs,
        num_outputs=num_outputs,
        cubes=cubes,
        input_names=input_names,
        output_names=output_names,
        name=name,
    )


def parse_pla_file(path: str | Path) -> TwoLevelCover:
    path = Path(path)
    return parse_pla(path.read_text(), name=path.stem)


def write_pla(cover: TwoLevelCover) -> str:
    """Serialize a cover back to espresso ``.pla`` text."""
    lines = [
        f".i {cover.num_inputs}",
        f".o {cover.num_outputs}",
        ".ilb " + " ".join(cover.input_names),
        ".ob " + " ".join(cover.output_names),
        f".p {len(cover.cubes)}",
    ]
    lines.extend(f"{cube} {out}" for cube, out in cover.cubes)
    lines.append(".e")
    return "\n".join(lines) + "\n"
