"""Extension bench: robust test-set generation and compaction.

Beyond the paper's tables: measures the test-application payoff of RD
identification on real flows — pattern counts with/without
fault-simulation compaction, and the coverage-vs-pattern-count curve
(the practical argument of Section VI).
"""

import pytest

from repro.classify.conditions import Criterion
from repro.classify.engine import classify
from repro.delaytest.simulator import simulate_test_set
from repro.delaytest.tpg import generate_test_set
from repro.gen.adders import carry_lookahead_adder, ripple_carry_adder
from repro.gen.suite import get_circuit
from repro.sorting.heuristics import heuristic2_sort

_CIRCUITS = {
    "rca8": lambda: ripple_carry_adder(8),
    "cla6": lambda: carry_lookahead_adder(6),
    "s880-alu": lambda: get_circuit("s880-alu"),
}


def _targets(circuit):
    targets = []
    classify(
        circuit,
        Criterion.SIGMA_PI,
        sort=heuristic2_sort(circuit),
        on_path=targets.append,
    )
    return targets


@pytest.mark.parametrize("name", sorted(_CIRCUITS))
def test_tpg_with_compaction(benchmark, name):
    circuit = _CIRCUITS[name]()
    targets = _targets(circuit)
    result = benchmark.pedantic(
        generate_test_set, args=(circuit, targets), rounds=1, iterations=1
    )
    # Fault simulation must retire several targets per pattern pair.
    assert result.compaction >= 1.5, f"{name}: compaction {result.compaction}"
    assert set(result.covered) | set(result.untestable) == set(targets)


@pytest.mark.parametrize("name", sorted(_CIRCUITS))
def test_compaction_vs_naive(benchmark, name):
    circuit = _CIRCUITS[name]()
    targets = _targets(circuit)

    def both():
        compact = generate_test_set(circuit, targets, fault_simulate=True)
        naive = generate_test_set(circuit, targets, fault_simulate=False)
        return compact, naive

    compact, naive = benchmark.pedantic(both, rounds=1, iterations=1)
    assert len(compact.pairs) <= len(naive.pairs)
    assert compact.coverage == naive.coverage


def test_coverage_curve_is_monotone(benchmark):
    """The figure-style coverage curve: robust coverage over the target
    set as pattern pairs are applied one by one."""
    circuit = ripple_carry_adder(6)
    targets = set(_targets(circuit))
    result = generate_test_set(circuit, targets)

    def curve():
        points = []
        covered: set = set()
        for i, pair in enumerate(result.pairs, start=1):
            covered |= simulate_test_set(circuit, [pair]).robust & targets
            points.append((i, len(covered) / len(targets)))
        return points

    points = benchmark.pedantic(curve, rounds=1, iterations=1)
    fractions = [f for _i, f in points]
    assert fractions == sorted(fractions)
    assert fractions[-1] == pytest.approx(result.coverage)
    # The first pattern already buys multiple targets (compaction).
    assert fractions[0] >= 2 / len(targets)
