"""Unit tests for the CNF container."""

import pytest

from repro.atpg.cnf import CNF


def test_new_var_sequence():
    cnf = CNF()
    assert cnf.new_var() == 1
    assert cnf.new_var() == 2
    assert cnf.num_vars == 2


def test_add_clause_validation():
    cnf = CNF(2)
    cnf.add_clause([1, -2])
    with pytest.raises(ValueError):
        cnf.add_clause([])
    with pytest.raises(ValueError):
        cnf.add_clause([0])
    with pytest.raises(ValueError):
        cnf.add_clause([3])


def test_evaluate():
    cnf = CNF(2)
    cnf.add_clause([1, 2])
    cnf.add_clause([-1])
    model = [False, False, True]  # x1=False, x2=True
    assert cnf.evaluate(model)
    assert not cnf.evaluate([False, True, False])


def test_evaluate_model_too_short():
    cnf = CNF(3)
    cnf.add_clause([1])
    with pytest.raises(ValueError):
        cnf.evaluate([False, True])


def test_len_and_repr():
    cnf = CNF(1)
    cnf.add_clause([1])
    assert len(cnf) == 1
    assert "vars=1" in repr(cnf)
