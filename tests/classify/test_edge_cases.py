"""Classifier edge cases: buffers, duplicate-input gates, chains,
multi-output sharing, inverter parity."""

from repro.circuit.builder import CircuitBuilder
from repro.classify.conditions import Criterion
from repro.classify.engine import classify
from repro.classify.exact import exact_path_set
from repro.sorting.input_sort import InputSort


def _approx(circuit, criterion, sort=None):
    accepted = set()
    classify(circuit, criterion, sort=sort, on_path=accepted.add)
    return accepted


class TestChains:
    def test_single_wire(self):
        b = CircuitBuilder("wire")
        b.po(b.pi("a"), "out")
        circuit = b.build()
        result = classify(circuit, Criterion.FS)
        assert result.accepted == 2  # rising + falling
        assert result.rd_count == 0

    def test_buffer_and_inverter_chain(self):
        from repro.circuit.examples import chain_circuit

        for invert in (False, True):
            circuit = chain_circuit(5, invert=invert)
            for criterion in (Criterion.FS, Criterion.NR):
                result = classify(circuit, criterion)
                assert result.accepted == 2
                assert result.rd_count == 0


class TestDuplicateInputs:
    def test_and_of_same_signal_twice(self):
        """AND(a, a): the on-path controlling case forces the side pin
        (same net!) to non-controlling — a contradiction the engine must
        catch for NR, matching the exact oracle."""
        b = CircuitBuilder("dup")
        a = b.pi("a")
        g = b.circuit.add_gate
        from repro.circuit.gates import GateType

        gid = g(GateType.AND, "g", [a, a])
        g(GateType.PO, "out", [gid])
        circuit = b.circuit.freeze()
        for criterion in (Criterion.FS, Criterion.NR):
            assert _approx(circuit, criterion) == exact_path_set(
                circuit, criterion
            )
        sort = InputSort.pin_order(circuit)
        assert _approx(circuit, Criterion.SIGMA_PI, sort) == exact_path_set(
            circuit, Criterion.SIGMA_PI, sort
        )


class TestMultiOutputSharing:
    def test_shared_cone_two_pos(self):
        b = CircuitBuilder("shared")
        a, c = b.pi("a"), b.pi("c")
        g = b.and_(a, c, name="g")
        b.po(g, "o1")
        b.po(b.not_(g, "n"), "o2")
        circuit = b.build()
        result = classify(circuit, Criterion.FS)
        assert result.total_logical == 8  # 2 PIs x 2 POs x 2 transitions
        # Paths are classified per PO; accepted counts include both POs.
        accepted = _approx(circuit, Criterion.FS)
        sinks = {lp.path.sink(circuit) for lp in accepted}
        assert sinks == set(circuit.outputs)


class TestBufferOnPath:
    def test_buffers_are_transparent(self):
        """Inserting buffers must not change FS/NR verdicts (they add no
        side conditions)."""
        def build(with_buf):
            b = CircuitBuilder("buf" if with_buf else "nobuf")
            a, s, c = b.pi("a"), b.pi("b"), b.pi("c")
            g_and = b.and_(s, c, name="g_and")
            mid = b.buf(g_and, "mid") if with_buf else g_and
            b.po(b.or_(a, mid, c, name="g_or"), "out")
            return b.build()

        plain = build(False)
        buffered = build(True)
        for criterion in (Criterion.FS, Criterion.NR):
            assert (
                classify(plain, criterion).accepted
                == classify(buffered, criterion).accepted
            )


class TestWideGates:
    def test_five_input_or(self):
        b = CircuitBuilder("wide")
        pis = [b.pi(f"x{i}") for i in range(5)]
        b.po(b.or_(*pis, name="g"), "out")
        circuit = b.build()
        # Every path through a single OR is trivially FS and NR.
        assert classify(circuit, Criterion.FS).accepted == 10
        assert classify(circuit, Criterion.NR).accepted == 10
        # SIGMA_PI with pin order: rising path of pin k requires pins
        # <k non-controlling (0), always satisfiable; falling requires
        # nothing beyond all-0 of others: all selected.
        sort = InputSort.pin_order(circuit)
        assert classify(circuit, Criterion.SIGMA_PI, sort=sort).accepted == 10


class TestNorNandMixes:
    def test_inverting_gate_criteria_match_exact(self):
        b = CircuitBuilder("invmix")
        a, s, c = b.pi("a"), b.pi("b"), b.pi("c")
        n1 = b.nand(a, s, name="n1")
        n2 = b.nor(s, c, name="n2")
        b.po(b.nand(n1, n2, name="root"), "out")
        circuit = b.build()
        for criterion in (Criterion.FS, Criterion.NR):
            assert _approx(circuit, criterion) >= exact_path_set(
                circuit, criterion
            )
        sort = InputSort.pin_order(circuit)
        assert _approx(circuit, Criterion.SIGMA_PI, sort) >= exact_path_set(
            circuit, Criterion.SIGMA_PI, sort
        )
