"""A compact CDCL SAT solver (two-watched literals, 1UIP learning,
activity-based branching, phase saving, geometric restarts).

Built from scratch because the environment is offline and the baseline
RD-identification of [1] needs redundancy checks (UNSAT proofs) on
good/faulty miters.  The solver is deliberately straightforward; circuit
miters in this repository are small (thousands of variables).

Usage::

    result = Solver(cnf).solve(assumptions=[3, -7])
    if result.sat:
        print(result.model[3])
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.atpg.cnf import CNF

_UNASSIGNED = -1


@dataclass
class SolveResult:
    """SAT outcome; ``model[v]`` (1-based) is meaningful when ``sat``."""

    sat: bool
    model: list | None = None
    conflicts: int = 0
    decisions: int = 0

    def __bool__(self) -> bool:
        return self.sat


class Solver:
    """One-shot CDCL solver over a :class:`CNF`.

    A fresh instance should be constructed per query: ``solve`` plants
    its assumptions as level-0 facts, so they persist in the instance.
    """

    def __init__(self, cnf: CNF) -> None:
        self._num_vars = cnf.num_vars
        n = cnf.num_vars + 1
        self._assign: list[int] = [_UNASSIGNED] * n
        self._level: list[int] = [0] * n
        self._reason: list[int] = [-1] * n
        self._activity: list[float] = [0.0] * n
        self._phase: list[int] = [0] * n
        self._trail: list[int] = []  # packed literals, in assignment order
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._clauses: list[list[int]] = []
        self._watches: list[list[int]] = [[] for _ in range(2 * n + 2)]
        self._var_inc = 1.0
        self._ok = True
        self._units: list[int] = []
        for clause in cnf.clauses:
            self._add_clause([self._pack(lit) for lit in clause])

    # -- literal packing: var v -> 2v (positive) / 2v+1 (negative) ------
    @staticmethod
    def _pack(lit: int) -> int:
        return 2 * lit if lit > 0 else -2 * lit + 1

    # ------------------------------------------------------------------
    def _add_clause(self, lits: list[int]) -> None:
        # Deduplicate; drop tautologies.
        seen = set()
        out = []
        for lit in lits:
            if lit ^ 1 in seen:
                return  # clause contains v and !v: always true
            if lit not in seen:
                seen.add(lit)
                out.append(lit)
        if len(out) == 1:
            self._units.append(out[0])
            return
        idx = len(self._clauses)
        self._clauses.append(out)
        self._watches[out[0]].append(idx)
        self._watches[out[1]].append(idx)

    # ------------------------------------------------------------------
    def _lit_value(self, lit: int) -> int:
        v = self._assign[lit >> 1]
        if v == _UNASSIGNED:
            return _UNASSIGNED
        return v ^ (lit & 1)

    def _enqueue(self, lit: int, reason: int) -> bool:
        var = lit >> 1
        value = 1 - (lit & 1)
        if self._assign[var] != _UNASSIGNED:
            return self._assign[var] == value
        self._assign[var] = value
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _propagate(self) -> int:
        """BCP.  Returns a conflicting clause index, or -1."""
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            false_lit = lit ^ 1
            watch_list = self._watches[false_lit]
            i = 0
            while i < len(watch_list):
                ci = watch_list[i]
                clause = self._clauses[ci]
                # Ensure the false literal is at position 1.
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._lit_value(first) == 1:
                    i += 1
                    continue
                # Look for a new literal to watch.
                moved = False
                for k in range(2, len(clause)):
                    if self._lit_value(clause[k]) != 0:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches[clause[1]].append(ci)
                        watch_list[i] = watch_list[-1]
                        watch_list.pop()
                        moved = True
                        break
                if moved:
                    continue
                # Clause is unit or conflicting.
                if self._lit_value(first) == 0:
                    self._qhead = len(self._trail)
                    return ci
                self._enqueue(first, ci)
                i += 1
        return -1

    # ------------------------------------------------------------------
    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100

    def _analyze(self, conflict: int) -> tuple[list[int], int]:
        """1UIP conflict analysis: returns (learnt clause, backjump level).
        The asserting literal is placed first in the learnt clause."""
        learnt: list[int] = []
        seen = [False] * (self._num_vars + 1)
        counter = 0
        lit = -1
        clause = self._clauses[conflict]
        index = len(self._trail)
        current_level = len(self._trail_lim)
        resolved_var = -1
        while True:
            for q in clause:
                var = q >> 1
                if var == resolved_var:
                    continue
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self._level[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(q)
            # Pick the next trail literal (reverse order) that is seen.
            while True:
                index -= 1
                lit = self._trail[index]
                if seen[lit >> 1]:
                    break
            var = lit >> 1
            seen[var] = False
            counter -= 1
            if counter == 0:
                break
            clause = self._clauses[self._reason[var]]
            resolved_var = var
        learnt.insert(0, lit ^ 1)
        if len(learnt) == 1:
            return learnt, 0
        back_level = max(self._level[q >> 1] for q in learnt[1:])
        return learnt, back_level

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        for lit in reversed(self._trail[limit:]):
            var = lit >> 1
            self._phase[var] = self._assign[var]
            self._assign[var] = _UNASSIGNED
            self._reason[var] = -1
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    def _decide(self) -> int:
        best = -1
        best_act = -1.0
        assign = self._assign
        activity = self._activity
        for var in range(1, self._num_vars + 1):
            if assign[var] == _UNASSIGNED and activity[var] > best_act:
                best = var
                best_act = activity[var]
        if best == -1:
            return -1
        return 2 * best + (1 - self._phase[best])

    # ------------------------------------------------------------------
    def solve(self, assumptions: list | None = None, max_conflicts: int | None = None) -> SolveResult:
        """Run CDCL search.  ``assumptions`` are DIMACS literals fixed as
        level-0 facts.  ``max_conflicts`` bounds the search (raises
        RuntimeError when exceeded — redundancy analysis treats that as
        "unknown" and the caller decides)."""
        conflicts = 0
        decisions = 0
        if not self._ok:
            return SolveResult(sat=False, conflicts=conflicts)
        for lit in self._units:
            if not self._enqueue(lit, -1):
                return SolveResult(sat=False)
        self._units.clear()
        for lit in assumptions or []:
            if not self._enqueue(self._pack(lit), -1):
                self._ok = False
                return SolveResult(sat=False)
        if self._propagate() != -1:
            self._ok = False
            return SolveResult(sat=False)
        restart_limit = 100
        restart_conflicts = 0
        while True:
            conflict = self._propagate()
            if conflict != -1:
                conflicts += 1
                restart_conflicts += 1
                if max_conflicts is not None and conflicts > max_conflicts:
                    raise RuntimeError("conflict budget exhausted")
                if not self._trail_lim:
                    self._ok = False
                    return SolveResult(sat=False, conflicts=conflicts, decisions=decisions)
                learnt, back_level = self._analyze(conflict)
                self._backtrack(back_level)
                if len(learnt) == 1:
                    if not self._enqueue(learnt[0], -1):
                        self._ok = False
                        return SolveResult(
                            sat=False, conflicts=conflicts, decisions=decisions
                        )
                else:
                    idx = len(self._clauses)
                    self._clauses.append(learnt)
                    self._watches[learnt[0]].append(idx)
                    self._watches[learnt[1]].append(idx)
                    self._enqueue(learnt[0], idx)
                self._var_inc *= 1.05
                continue
            if restart_conflicts >= restart_limit and self._trail_lim:
                restart_conflicts = 0
                restart_limit = int(restart_limit * 1.5)
                self._backtrack(0)
                continue
            lit = self._decide()
            if lit == -1:
                model = [False] * (self._num_vars + 1)
                for var in range(1, self._num_vars + 1):
                    model[var] = self._assign[var] == 1
                return SolveResult(
                    sat=True, model=model, conflicts=conflicts, decisions=decisions
                )
            decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(lit, -1)


def brute_force_sat(cnf: CNF) -> bool:
    """Exhaustive satisfiability oracle for testing the solver."""
    if cnf.num_vars > 22:
        raise ValueError("brute force refused beyond 22 variables")
    for code in range(1 << cnf.num_vars):
        model = [False] + [bool((code >> i) & 1) for i in range(cnf.num_vars)]
        if cnf.evaluate(model):
            return True
    return False
