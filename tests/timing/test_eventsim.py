"""Unit tests for the event-driven timing simulator."""

import pytest

from repro.logic.simulate import all_vectors, simulate
from repro.timing.delays import random_delays, unit_delays
from repro.timing.eventsim import EventSimulator, settle_time, two_pattern_settle


class TestConvergence:
    def test_settles_to_stable_values(self, small_circuits):
        """The simulator asserts internally that every net reaches its
        stable value; run it over all vectors and random initial states."""
        for circuit in small_circuits:
            delays = random_delays(circuit, seed=42)
            sim = EventSimulator(circuit, delays)
            for vector in all_vectors(len(circuit.inputs)):
                for seed in range(3):
                    from repro.timing.eventsim import random_initial_state

                    sim.run(vector, random_initial_state(circuit, seed))

    def test_consistent_initial_state_no_events(self, example_circuit):
        delays = unit_delays(example_circuit)
        vector = (1, 0, 1)
        stable = simulate(example_circuit, vector)
        changes = EventSimulator(example_circuit, delays).run(vector, stable)
        assert changes == {}


class TestTimingValues:
    def test_chain_delay_adds_up(self):
        from repro.circuit.examples import chain_circuit

        circuit = chain_circuit(4)
        delays = unit_delays(circuit)
        v1 = simulate(circuit, (0,))
        changes = EventSimulator(circuit, delays).run((1,), v1)
        po = circuit.outputs[0]
        assert changes[po] == pytest.approx(5.0)  # 4 BUFs + PO wire

    def test_two_pattern_settle_measures_path(self, example_circuit):
        delays = unit_delays(example_circuit)
        # a: 0->1 with b=c=0: only path a->OR->out toggles: 2 gate delays.
        t = two_pattern_settle(example_circuit, delays, (0, 0, 0), (1, 0, 0))
        assert t == pytest.approx(2.0)

    def test_slow_gate_visible_at_po(self, example_circuit):
        g_or = example_circuit.gate_by_name("g_or")
        delays = unit_delays(example_circuit).with_gate_delay(g_or, 7.0, 7.0)
        t = two_pattern_settle(example_circuit, delays, (0, 0, 0), (1, 0, 0))
        assert t == pytest.approx(8.0)

    def test_settle_time_wrapper(self, example_circuit):
        delays = unit_delays(example_circuit)
        t = settle_time(example_circuit, delays, (1, 0, 0), seed=5)
        stable_bound = 3.0 + 1e-9  # depth of the circuit in unit delays
        assert 0.0 <= t <= stable_bound


class TestGuards:
    def test_wrong_initial_size(self, example_circuit):
        delays = unit_delays(example_circuit)
        with pytest.raises(ValueError):
            EventSimulator(example_circuit, delays).run((1, 0, 0), [0, 1])

    def test_delay_circuit_mismatch(self, example_circuit, mux):
        delays = unit_delays(mux)
        with pytest.raises(ValueError):
            EventSimulator(example_circuit, delays)

    def test_horizon_guard(self, example_circuit):
        delays = unit_delays(example_circuit)
        # Start from the exact complement of the stable state so events
        # are guaranteed to be scheduled past the tiny horizon.
        stable = simulate(example_circuit, (1, 0, 0))
        initial = [1 - v for v in stable]
        with pytest.raises(RuntimeError):
            EventSimulator(example_circuit, delays).run(
                (1, 0, 0), initial, horizon=1e-6
            )
