"""Cross-validation: the approximate classifier against exact oracles.

These are the soundness tests of the paper's Algorithm 2: the computed
``LP^sup`` must contain the exact criterion set (so the derived RD-set is
a true RD-set), Lemma 2's two characterisations of ``LP(σ^π)`` must
coincide, and Remark 2 (drop π3 ⟹ FS) must hold.
"""

import pytest

from repro.classify.conditions import Criterion
from repro.classify.engine import classify
from repro.classify.exact import (
    exact_lp_sigma,
    exact_path_set,
    exists_vector,
    robust_dependent_set,
    satisfies_criterion,
)
from repro.gen.random_logic import random_dag
from repro.paths.enumerate import enumerate_logical_paths
from repro.sorting.heuristics import heuristic1_sort
from repro.sorting.input_sort import InputSort


def _approx_set(circuit, criterion, sort=None):
    accepted = set()
    classify(circuit, criterion, sort=sort, on_path=accepted.add)
    return accepted


@pytest.fixture(scope="module")
def validation_circuits():
    from repro.circuit.examples import (
        mux_circuit,
        paper_example_circuit,
        reconvergent_circuit,
        two_and_tree,
    )

    circuits = [
        paper_example_circuit(),
        mux_circuit(),
        reconvergent_circuit(),
        two_and_tree(),
    ]
    circuits += [random_dag(4, 10, seed=s) for s in range(6)]
    return circuits


class TestSupersetSoundness:
    @pytest.mark.parametrize("criterion", [Criterion.FS, Criterion.NR])
    def test_approx_contains_exact(self, validation_circuits, criterion):
        for circuit in validation_circuits:
            approx = _approx_set(circuit, criterion)
            exact = exact_path_set(circuit, criterion)
            missing = exact - approx
            assert not missing, (
                f"{circuit.name}: {criterion} approximation excludes "
                f"{[lp.describe(circuit) for lp in missing]}"
            )

    def test_sigma_approx_contains_exact(self, validation_circuits):
        for circuit in validation_circuits:
            for sort in (InputSort.pin_order(circuit), heuristic1_sort(circuit)):
                approx = _approx_set(circuit, Criterion.SIGMA_PI, sort)
                exact = exact_path_set(circuit, Criterion.SIGMA_PI, sort)
                assert exact <= approx, f"{circuit.name}: unsound RD claim"


class TestLemma2:
    def test_two_routes_to_lp_sigma_agree(self, validation_circuits):
        """Lemma 2: the path-local conditions characterise exactly the
        paths selected by Algorithm 1 under the min-π policy."""
        for circuit in validation_circuits:
            for sort in (
                InputSort.pin_order(circuit),
                InputSort.pin_order(circuit).inverted(),
                heuristic1_sort(circuit),
            ):
                via_conditions = exact_path_set(circuit, Criterion.SIGMA_PI, sort)
                via_algorithm1 = exact_lp_sigma(circuit, sort)
                assert via_conditions == via_algorithm1, circuit.name


class TestRemark2:
    def test_sigma_without_pi3_is_fs(self, validation_circuits):
        """Remark 2: omitting (π3) yields the FS conditions — checked by
        confirming FS is the union of LP(σ^π) over... a weaker but exact
        consequence: every LP(σ^π) ⊆ FS and every exact-FS path is in
        LP(σ^π) for SOME π among tried ones OR satisfies FS directly."""
        for circuit in validation_circuits:
            fs = exact_path_set(circuit, Criterion.FS)
            for sort in (InputSort.pin_order(circuit), heuristic1_sort(circuit)):
                sigma = exact_path_set(circuit, Criterion.SIGMA_PI, sort)
                assert sigma <= fs, circuit.name


class TestHierarchyLemma1:
    def test_t_subset_sigma_subset_fs(self, validation_circuits):
        for circuit in validation_circuits:
            t_set = exact_path_set(circuit, Criterion.NR)
            fs_set = exact_path_set(circuit, Criterion.FS)
            for sort in (
                InputSort.pin_order(circuit),
                InputSort.pin_order(circuit).inverted(),
            ):
                sigma = exact_path_set(circuit, Criterion.SIGMA_PI, sort)
                assert t_set <= sigma <= fs_set, circuit.name


class TestSatisfiesCriterion:
    def test_fu1_violation(self, example_circuit):
        lp = next(iter(enumerate_logical_paths(example_circuit)))
        # Vector whose PI value contradicts the transition's final value.
        pi = lp.path.source(example_circuit)
        idx = example_circuit.inputs.index(pi)
        vector = [0, 0, 0]
        vector[idx] = 1 - lp.final_value
        assert not satisfies_criterion(
            example_circuit, Criterion.FS, lp, tuple(vector)
        )

    def test_exists_vector_refuses_wide(self):
        from repro.errors import ExactLimitError
        from repro.gen.parity import parity_tree

        circuit = parity_tree(24)
        lp = next(iter(enumerate_logical_paths(circuit)))
        # Still a ValueError (back-compat), but now a taxonomy type whose
        # message points at the SAT-exact mode.
        with pytest.raises(ValueError):
            exists_vector(circuit, Criterion.FS, lp)
        with pytest.raises(ExactLimitError, match="repro.verdict"):
            exists_vector(circuit, Criterion.FS, lp)


class TestRobustDependentSet:
    def test_rd_set_is_complement(self, example_circuit):
        from repro.experiments.figures import example3_sort

        sort = example3_sort(example_circuit)
        rd = robust_dependent_set(example_circuit, sort)
        assert len(rd) == 3
