"""End-to-end tests of the CLI."""

import json

import pytest

import repro.cli as cli
from repro.cli import build_parser, load_circuit, main


class TestLoadCircuit:
    def test_suite_name(self):
        assert load_circuit("s432-rand").name == "s432-rand"

    def test_bench_file(self, tmp_path):
        path = tmp_path / "c.bench"
        path.write_text("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
        circuit = load_circuit(str(path))
        assert circuit.name == "c"

    def test_pla_file(self, tmp_path):
        path = tmp_path / "c.pla"
        path.write_text(".i 2\n.o 1\n11 1\n.e\n")
        circuit = load_circuit(str(path))
        assert len(circuit.inputs) == 2

    def test_unknown(self):
        with pytest.raises(KeyError):
            load_circuit("never-heard-of-it")


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "s499-ecc" in out

    def test_info(self, capsys):
        assert main(["info", "s432-rand"]) == 0
        out = capsys.readouterr().out
        assert "logical paths" in out

    def test_classify_fs(self, capsys, tmp_path):
        path = tmp_path / "c.bench"
        path.write_text(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n"
            "m = AND(b, c)\ny = OR(a, m, c)\n"
        )
        assert main(["classify", str(path), "--criterion", "fs"]) == 0
        out = capsys.readouterr().out
        assert "FS" in out

    def test_classify_sigma_sorts(self, capsys, tmp_path):
        path = tmp_path / "c.bench"
        path.write_text(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n"
            "m = AND(b, c)\ny = OR(a, m, c)\n"
        )
        for sort in ("pin", "heu1", "heu2", "heu2inv", "random"):
            assert main(["classify", str(path), "--sort", sort]) == 0
        out = capsys.readouterr().out
        assert "SIGMA_PI" in out

    def test_baseline(self, capsys, tmp_path):
        path = tmp_path / "c.bench"
        path.write_text(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n"
            "m = AND(b, c)\ny = OR(a, m, c)\n"
        )
        assert main(["baseline", str(path), "--method", "exact"]) == 0
        out = capsys.readouterr().out
        assert "37.50% RD" in out

    def test_testgen(self, capsys, tmp_path):
        path = tmp_path / "c.bench"
        path.write_text(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n"
            "m = AND(b, c)\ny = OR(a, m, c)\n"
        )
        assert main(["testgen", str(path)]) == 0
        out = capsys.readouterr().out
        assert "robust tests" in out
        assert "<" in out  # at least one two-pattern test printed

    def test_select(self, capsys, tmp_path):
        path = tmp_path / "c.bench"
        path.write_text(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n"
            "m = AND(b, c)\ny = OR(a, m, c)\n"
        )
        assert main(["select", str(path), "--fraction", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "RD filtering" in out

    def test_sta(self, capsys):
        assert main(["sta", "xcmp16", "-k", "3"]) == 0
        out = capsys.readouterr().out
        assert "critical delay" in out
        assert "slowest logical paths" in out

    def test_atpg(self, capsys, tmp_path):
        path = tmp_path / "c.bench"
        path.write_text(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n"
            "m = AND(b, c)\ny = OR(a, m, c)\n"
        )
        assert main(["atpg", str(path), "--show-redundant"]) == 0
        out = capsys.readouterr().out
        assert "patterns detect" in out
        assert "redundant:" in out

    def test_dot(self, capsys, tmp_path):
        path = tmp_path / "c.bench"
        path.write_text(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n"
            "m = AND(b, c)\ny = OR(a, m, c)\n"
        )
        assert main(["dot", str(path), "--stabilize", "111"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "color=red" in out

    def test_dot_bad_vector(self, tmp_path):
        path = tmp_path / "c.bench"
        path.write_text("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
        with pytest.raises(SystemExit):
            main(["dot", str(path), "--stabilize", "10"])

    def test_table1_json_flag_parses(self):
        parser = build_parser()
        args = parser.parse_args(["table1", "--json"])
        assert args.json

    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out

    def test_parser_help_lists_subcommands(self):
        parser = build_parser()
        text = parser.format_help()
        for cmd in ("info", "classify", "baseline", "table1"):
            assert cmd in text


class TestSupervisionFlags:
    @pytest.mark.parametrize("bad", ["0", "-1", "-8"])
    def test_nonpositive_jobs_rejected_by_argparse(self, bad, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["table1", "--jobs", bad])
        assert excinfo.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    def test_non_integer_jobs_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--jobs", "two"])
        assert "invalid" in capsys.readouterr().err

    @pytest.mark.parametrize("table", ["table1", "table2", "table3"])
    def test_supervision_flags_parse(self, table):
        args = build_parser().parse_args(
            [
                table,
                "--jobs", "4",
                "--checkpoint", "rows.jsonl",
                "--resume",
                "--task-timeout", "90",
                "--max-retries", "5",
            ]
        )
        assert args.jobs == 4
        assert args.checkpoint == "rows.jsonl"
        assert args.resume
        assert args.task_timeout == 90.0
        assert args.max_retries == 5

    def test_resume_requires_checkpoint(self):
        with pytest.raises(SystemExit):
            main(["table1", "--resume"])

    def test_keyboard_interrupt_exits_130(self, monkeypatch, capsys):
        import repro.experiments.table1 as table1_mod

        def interrupted(**_kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(table1_mod, "main", interrupted)
        assert main(["table1"]) == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "--resume" in err


class TestSharedFlagFamily:
    """One parent parser: every run-style subcommand spells every
    shared flag the same way."""

    RUN_COMMANDS = [
        ["classify", "c17"],
        ["baseline", "c17"],
        ["compare-sorts", "c17"],
        ["sweep", "parity_tree", "--params", "2"],
        ["table1"],
        ["table2"],
        ["table3"],
    ]

    @pytest.mark.parametrize(
        "base", RUN_COMMANDS, ids=[c[0] for c in RUN_COMMANDS]
    )
    def test_family_parses_everywhere(self, base):
        args = build_parser().parse_args(
            base
            + [
                "--jobs", "2",
                "--store", "s.sqlite",
                "--checkpoint", "c.jsonl",
                "--resume",
                "--trace-out", "t.jsonl",
                "-v",
                "--task-budget", "9",
                "--retries", "2",
            ]
        )
        assert args.jobs == 2
        assert args.store == "s.sqlite"
        assert args.checkpoint == "c.jsonl"
        assert args.resume
        assert args.trace_out == "t.jsonl"
        assert args.verbose
        assert args.task_timeout == 9.0
        assert args.max_retries == 2

    def test_deprecated_aliases_still_parse(self, monkeypatch):
        monkeypatch.setattr(cli, "_warned_aliases", set())
        with pytest.warns(DeprecationWarning, match="--task-budget"):
            args = build_parser().parse_args(
                ["table1", "--task-timeout", "30"]
            )
        assert args.task_timeout == 30.0
        with pytest.warns(DeprecationWarning, match="--retries"):
            args = build_parser().parse_args(["table1", "--max-retries", "2"])
        assert args.max_retries == 2

    def test_deprecated_alias_warns_once_per_process(self, monkeypatch, capsys):
        monkeypatch.setattr(cli, "_warned_aliases", set())
        parser = build_parser()
        parser.parse_args(["table1", "--task-timeout", "1"])
        parser.parse_args(["table1", "--task-timeout", "2"])
        assert capsys.readouterr().err.count("deprecated") == 1


class TestJsonOutputs:
    def test_info_json(self, capsys):
        assert main(["info", "c17", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "c17"
        assert payload["logical_paths"] == 22
        assert payload["physical_paths"] == 11

    def test_classify_json_stable_keys(self, capsys):
        assert main(["classify", "c17", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert sorted(payload) == [
            "accepted", "criterion", "edges_visited", "elapsed",
            "fingerprint", "name", "rd_count", "rd_percent", "session",
            "sort", "total_logical",
        ]
        assert payload["criterion"] == "SIGMA_PI"
        assert payload["session"]["classify_passes"] >= 1

    def test_metrics_local_json(self, capsys):
        assert main(["metrics", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["metrics"]) == {"counters", "gauges", "histograms"}

    def test_metrics_local_human(self, capsys):
        main(["classify", "c17"])
        capsys.readouterr()
        assert main(["metrics"]) == 0
        assert "classify" in capsys.readouterr().out


class TestNewSubcommands:
    def test_trace_out_writes_spans_and_metrics(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main(["classify", "c17", "--trace-out", str(path)]) == 0
        assert "trace:" in capsys.readouterr().err
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[-1]["type"] == "metrics"
        assert any(l.get("name") == "classify.pass" for l in lines)

    def test_classify_jobs_cone_fanout_fs(self, capsys):
        assert main(["classify", "c17", "--criterion", "fs", "--jobs", "2"]) == 0
        serial_like = capsys.readouterr().out
        assert main(["classify", "c17", "--criterion", "fs"]) == 0
        serial = capsys.readouterr().out
        # cone decomposition preserves the counts
        assert serial_like.split("accepted")[0] == serial.split("accepted")[0]

    def test_classify_jobs_sigma_warns_and_runs(self, capsys):
        assert main(["classify", "c17", "--jobs", "2"]) == 0
        captured = capsys.readouterr()
        assert "SIGMA_PI" in captured.out
        assert "no effect" in captured.err

    def test_compare_sorts(self, capsys):
        code = main(
            ["compare-sorts", "c17", "--sorts", "pin,heu2", "--sample-size", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "c17[pin]" in out and "c17[heu2]" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "parity_tree", "--params", "2,3"]) == 0
        out = capsys.readouterr().out
        assert "Sweep: parity_tree" in out
        assert "logical paths" in out

    def test_sweep_bad_params(self):
        with pytest.raises(SystemExit):
            main(["sweep", "parity_tree", "--params", "two"])

    def test_sweep_checkpoint_resume(self, tmp_path, capsys):
        ckpt = str(tmp_path / "sweep.jsonl")
        assert main(
            ["sweep", "parity_tree", "--params", "2,3", "--checkpoint", ckpt]
        ) == 0
        first = capsys.readouterr().out
        assert main(
            ["sweep", "parity_tree", "--params", "2,3",
             "--checkpoint", ckpt, "--resume"]
        ) == 0
        assert capsys.readouterr().out == first

    def test_tightness_table(self, capsys):
        assert main(["tightness", "c17", "apex-a"]) == 0
        out = capsys.readouterr().out
        assert "c17" in out and "apex-a" in out
        assert "exact" in out

    def test_tightness_json_invariants(self, capsys):
        assert main(["tightness", "c17", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["criterion"] == "SIGMA_PI"
        (row,) = payload["rows"]
        assert row["exact_rd_percent"] >= row["approx_rd_percent"]
        assert row["witness_replays"] == row["exact_accepted"]

    def test_tightness_jobs_byte_identical(self, capsys):
        assert main(["tightness", "c17", "apex-a", "--json"]) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(
            ["tightness", "c17", "apex-a", "--json", "--jobs", "2"]
        ) == 0
        fanned = json.loads(capsys.readouterr().out)
        # rows are deterministic modulo solver diagnostics and timing
        volatile = ("conflicts", "decisions", "learned_reuse", "elapsed")
        for got, want in zip(fanned["rows"], serial["rows"]):
            for key in volatile:
                got.pop(key), want.pop(key)
            assert got == want

    def test_tightness_store_round_trip(self, tmp_path, capsys):
        store = str(tmp_path / "verdicts.sqlite")
        assert main(["tightness", "c17", "--store", store, "--json"]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert main(["tightness", "c17", "--store", store, "--json"]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert cold["rows"][0]["source"] == "computed"
        assert warm["rows"][0]["source"] == "store"

    def test_tightness_skip_row_for_wide_circuit(self, capsys):
        assert main(
            ["tightness", "s432-rand", "--max-inputs", "10"]
        ) == 0
        assert "SKIP" in capsys.readouterr().out

    def test_tightness_criterion_nr(self, capsys):
        assert main(["tightness", "c17", "--criterion", "nr", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["criterion"] == "NR"
        assert payload["sort"] == "none"


class TestVersion:
    def test_version_subcommand(self, capsys):
        assert main(["version"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("repro-rd ")
        assert out.split()[1][0].isdigit()

    def test_version_flag_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro-rd " in capsys.readouterr().out

    def test_flag_and_subcommand_agree(self, capsys):
        main(["version"])
        sub = capsys.readouterr().out
        with pytest.raises(SystemExit):
            main(["--version"])
        assert capsys.readouterr().out == sub


class TestStoreFlags:
    def test_classify_store_cold_then_warm(self, capsys, tmp_path):
        store = str(tmp_path / "s.sqlite")
        assert main(["classify", "c17", "--store", store, "-v"]) == 0
        cold = capsys.readouterr().out
        assert "store=0/" in cold  # all misses
        assert main(["classify", "c17", "--store", store, "-v"]) == 0
        warm = capsys.readouterr().out
        assert "hit (100%)" in warm
        assert cold.splitlines()[0] == warm.splitlines()[0]  # same result

    def test_cache_stats_gc_clear(self, capsys, tmp_path):
        store = str(tmp_path / "s.sqlite")
        main(["classify", "c17", "--store", store])
        capsys.readouterr()
        assert main(["cache", "stats", store]) == 0
        out = capsys.readouterr().out
        assert "entries:" in out and "schema:" in out
        assert main(["cache", "gc", store]) == 0
        assert "removed 0 entries" in capsys.readouterr().out
        assert main(["cache", "clear", store]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "stats", store]) == 0
        assert "entries: 0" in capsys.readouterr().out

    def test_cache_stats_breaks_out_tightness_entries(self, capsys, tmp_path):
        store = str(tmp_path / "s.sqlite")
        main(["tightness", "c17", "--store", store])
        capsys.readouterr()
        assert main(["cache", "stats", store]) == 0
        assert "tightness=1" in capsys.readouterr().out

    def test_cache_gc_missing_store_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["cache", "gc", str(tmp_path / "absent.sqlite")])

    def test_table_store_flag_parses(self):
        for table in ("table1", "table2", "table3"):
            args = build_parser().parse_args([table, "--store", "f.sqlite"])
            assert args.store == "f.sqlite"

    def test_serve_needs_exactly_one_endpoint(self):
        with pytest.raises(SystemExit):
            main(["serve"])
        with pytest.raises(SystemExit):
            main(["serve", "--socket", "a.sock", "--port", "1"])

    def test_serve_rejects_nonpositive_workers(self):
        for bad in ("0", "-1"):
            with pytest.raises(SystemExit) as exc_info:
                main(["serve", "--socket", "a.sock", "--workers", bad])
            assert exc_info.value.code == 2  # argparse usage error

    def test_serve_rejects_nonpositive_max_pending(self):
        for bad in ("0", "-3"):
            with pytest.raises(SystemExit) as exc_info:
                main(["serve", "--socket", "a.sock", "--max-pending", bad])
            assert exc_info.value.code == 2

    def test_serve_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["serve", "--help"])
        assert exc_info.value.code == 0
        out = capsys.readouterr().out
        assert "exit status" in out
        assert "130" in out and "SIGINT" in out

    def test_classify_remote_connection_refused(self, tmp_path, capsys):
        missing = str(tmp_path / "nothing.sock")
        assert main(["classify", "c17", "--remote", missing]) == 1
        assert "remote classify failed" in capsys.readouterr().err
