"""Near-maximum RD-sets by optimising over all stabilizing assignments.

For every input vector the candidate stabilizing systems are enumerated
(Algorithm 1 with all Step-2(b) resolutions); we then pick one candidate
per vector so the union of their logical path sets is as small as
possible.  The complement of that union is the RD-set.  This is the
objective of [1] (the two formulations are equivalent, Section III of
the paper), implemented as:

* duplicate-candidate merging (vectors with identical candidate sets are
  interchangeable),
* a warm start from ``σ^π`` with the Heuristic-2 sort (so the baseline
  never loses to the fast approach it is compared against, matching the
  paper's Table III where the approach of [1] dominates),
* greedy selection and local-improvement sweeps over the candidates,
* optional exact branch-and-bound for tiny instances,
* a per-vector candidate cap: vectors whose choice space explodes fall
  back to their warm-start system (graceful degradation instead of
  memory blow-up — the full method of [1] is exponential by nature).

Each output cone is optimised independently — paths of different POs
never interact in the union.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.circuit.netlist import Circuit
from repro.logic.simulate import all_vectors
from repro.paths.count import count_paths
from repro.sorting.heuristics import heuristic2_sort
from repro.sorting.input_sort import InputSort
from repro.stabilize.system import (
    all_stabilizing_systems,
    compute_stabilizing_system,
)
from repro.util.timer import Stopwatch

_MAX_CONE_INPUTS = 14


@dataclass
class BaselineResult:
    """Outcome of the baseline optimisation over a whole circuit."""

    circuit_name: str
    total_logical: int
    selected: int
    elapsed: float = 0.0
    #: number of selected (must-test) paths per PO gate id
    per_po: dict = field(default_factory=dict)
    method: str = "greedy"

    @property
    def rd_count(self) -> int:
        return self.total_logical - self.selected

    @property
    def rd_fraction(self) -> float:
        if self.total_logical == 0:
            return 0.0
        return self.rd_count / self.total_logical

    @property
    def rd_percent(self) -> float:
        return 100.0 * self.rd_fraction

    def __str__(self) -> str:
        return (
            f"{self.circuit_name} [baseline/{self.method}]: "
            f"{self.selected}/{self.total_logical} selected, "
            f"{self.rd_percent:.2f}% RD, {self.elapsed:.2f}s"
        )


@dataclass
class _Group:
    """One equivalence class of input vectors: same candidate path sets."""

    candidates: list  # list[frozenset[LogicalPath]]
    seed: frozenset  # warm-start candidate (σ^π(heu2) system)
    multiplicity: int = 1


def _candidate_groups(
    circuit: Circuit,
    po: int,
    sort: InputSort,
    max_candidates_per_vector: int,
    total_candidate_budget: int = 80_000,
) -> list:
    """Deduplicated per-vector candidate lists with warm-start seeds.

    Two safety valves keep the (inherently exponential) enumeration
    usable: vectors whose own choice space exceeds
    ``max_candidates_per_vector``, and all vectors after the cumulative
    ``total_candidate_budget`` is exhausted, fall back to their
    warm-start system only.
    """
    n = len(circuit.inputs)
    if n > _MAX_CONE_INPUTS:
        raise ValueError(
            f"cone has {n} inputs; baseline enumeration refused (max "
            f"{_MAX_CONE_INPUTS})"
        )

    def sigma_policy(
        c: Circuit, gate: int, pins: Sequence[int], values: Sequence[int]
    ) -> int:
        return sort.min_rank_pin(gate, pins)

    groups: dict = {}
    budget = total_candidate_budget
    for vector in all_vectors(n):
        seed_system = compute_stabilizing_system(circuit, po, vector, sigma_policy)
        seed = frozenset(seed_system.logical_paths())
        if budget <= 0:
            candidates = [seed]
        else:
            try:
                enumerated = set()
                for system in all_stabilizing_systems(
                    circuit, po, vector,
                    limit=min(max_candidates_per_vector, budget),
                ):
                    enumerated.add(frozenset(system.logical_paths()))
                budget -= max(len(enumerated), 1)
                candidates = sorted(enumerated, key=_path_set_key)
            except RuntimeError:
                budget -= min(max_candidates_per_vector, budget)
                candidates = [seed]  # choice space too large: keep warm start
        key = (seed, tuple(candidates))
        if key in groups:
            groups[key].multiplicity += 1
        else:
            groups[key] = _Group(candidates=list(candidates), seed=seed)
    return list(groups.values())


def _path_set_key(path_set: frozenset) -> tuple:
    return tuple(sorted((lp.path.leads, lp.final_value) for lp in path_set))


def _optimize_union(groups: list, passes: int = 8) -> set:
    """Warm-started greedy + local improvement union minimisation."""
    counts: dict = {}

    def add(paths: frozenset) -> None:
        for p in paths:
            counts[p] = counts.get(p, 0) + 1

    def remove(paths: frozenset) -> None:
        for p in paths:
            counts[p] -= 1
            if not counts[p]:
                del counts[p]

    def cost(paths: frozenset) -> int:
        return sum(1 for p in paths if p not in counts)

    chosen: list = [group.seed for group in groups]
    for paths in chosen:
        add(paths)
    order = sorted(range(len(groups)), key=lambda i: len(groups[i].candidates))
    for _ in range(passes):
        changed = False
        for i in order:
            group = groups[i]
            if len(group.candidates) <= 1:
                continue
            current = chosen[i]
            remove(current)
            best = min(group.candidates, key=lambda c: (cost(c), len(c)))
            if cost(best) < cost(current):
                chosen[i] = best
                add(best)
                changed = True
            else:
                add(current)
        if not changed:
            break
    return set(counts)


def _exact_union(groups: list, node_budget: int = 2_000_000) -> set:
    """Branch-and-bound exact minimisation (tiny instances only)."""
    groups = sorted(groups, key=lambda g: len(g.candidates))
    forced_suffix: list = [set() for _ in range(len(groups) + 1)]
    for i in range(len(groups) - 1, -1, -1):
        inter = set(groups[i].candidates[0])
        for cand in groups[i].candidates[1:]:
            inter &= cand
        forced_suffix[i] = forced_suffix[i + 1] | inter
    best_union = _optimize_union(groups)
    best_size = len(best_union)
    nodes = [0]

    def dfs(i: int, current: set) -> None:
        nonlocal best_union, best_size
        nodes[0] += 1
        if nodes[0] > node_budget:
            raise RuntimeError("branch-and-bound node budget exhausted")
        bound = len(current | forced_suffix[i])
        if bound >= best_size:
            return
        if i == len(groups):
            best_size = len(current)
            best_union = set(current)
            return
        for cand in sorted(groups[i].candidates, key=lambda c: len(c - current)):
            dfs(i + 1, current | cand)

    dfs(0, set())
    return best_union


def minimize_assignment(
    circuit: Circuit,
    po: int,
    method: str = "greedy",
    max_candidates_per_vector: int = 4_000,
    sort: InputSort | None = None,
) -> set:
    """``min_σ LP(σ)`` for one output cone; returns the selected path set
    (as :class:`~repro.paths.path.LogicalPath` objects of ``circuit``)."""
    if sort is None:
        sort = heuristic2_sort(circuit)
    groups = _candidate_groups(circuit, po, sort, max_candidates_per_vector)
    if method == "greedy":
        return _optimize_union(groups)
    if method == "exact":
        return _exact_union(groups)
    raise ValueError(f"unknown method {method!r} (use 'greedy' or 'exact')")


def baseline_rd(
    circuit: Circuit,
    method: str = "greedy",
    max_candidates_per_vector: int = 4_000,
) -> BaselineResult:
    """Optimise every output cone and aggregate (Table III baseline).

    Each cone is extracted so vector enumeration ranges only over the
    cone's support.
    """
    counts = count_paths(circuit)
    per_po: dict = {}
    with Stopwatch() as sw:
        for po in circuit.outputs:
            cone, _mapping = circuit.extract_cone(po)
            selected = minimize_assignment(
                cone,
                cone.outputs[0],
                method=method,
                max_candidates_per_vector=max_candidates_per_vector,
            )
            per_po[po] = len(selected)
    return BaselineResult(
        circuit_name=circuit.name,
        total_logical=counts.total_logical,
        selected=sum(per_po.values()),
        elapsed=sw.elapsed,
        per_po=per_po,
        method=method,
    )
