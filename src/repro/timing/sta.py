"""Structural (topological) static timing analysis.

Computes, per net and transition direction, the latest structural
arrival time under a :class:`~repro.timing.delays.DelayAssignment` —
i.e. the longest path delay ending at that net with that final
transition, ignoring logic masking (the standard pessimistic STA model,
which is exactly the "expected delay" the paper's Section VI threshold
strategy speaks about).

Directions follow the path-delay convention of
:mod:`repro.timing.pathdelay`: the direction at a net is the *final
value* the transition leaves there, and it flips through inverting
gates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.gates import GateType, is_inverting
from repro.circuit.netlist import Circuit
from repro.paths.path import LogicalPath
from repro.timing.delays import DelayAssignment


@dataclass(frozen=True)
class TimingReport:
    """Arrival tables of one STA run.

    ``arrival[g][v]`` — longest structural delay of a transition
    arriving at gate ``g``'s output with final value ``v``;
    ``critical_delay`` — the circuit's longest logical path delay.
    """

    circuit: Circuit
    delays: DelayAssignment
    arrival: tuple

    @property
    def critical_delay(self) -> float:
        return max(
            max(self.arrival[po]) for po in self.circuit.outputs
        )

    def po_arrival(self, po: int) -> float:
        return max(self.arrival[po])

    def critical_path(self) -> LogicalPath:
        """One logical path realising ``critical_delay`` (ties broken by
        lowest gate id), traced back through the arrival tables."""
        circuit = self.circuit
        best_po, best_dir = max(
            ((po, v) for po in circuit.outputs for v in (0, 1)),
            key=lambda t: (self.arrival[t[0]][t[1]], -t[0], -t[1]),
        )
        leads: list = []
        gate, direction = best_po, best_dir
        while circuit.gate_type(gate) is not GateType.PI:
            gdelay = self.delays.delay(gate, direction)
            upstream = (
                1 - direction
                if is_inverting(circuit.gate_type(gate))
                else direction
            )
            target = self.arrival[gate][direction] - gdelay
            for pin, src in enumerate(circuit.fanin(gate)):
                if abs(self.arrival[src][upstream] - target) < 1e-12:
                    leads.append(circuit.lead_index(gate, pin))
                    gate, direction = src, upstream
                    break
            else:
                raise RuntimeError("inconsistent arrival tables")
        leads.reverse()
        from repro.paths.path import PhysicalPath

        return LogicalPath(PhysicalPath(tuple(leads)), direction)


def static_timing(circuit: Circuit, delays: DelayAssignment) -> TimingReport:
    """One topological STA pass over both transition directions."""
    if delays.circuit is not circuit:
        raise ValueError("delay assignment belongs to a different circuit")
    arrival = [[float("-inf"), float("-inf")] for _ in range(circuit.num_gates)]
    for gid in circuit.topo_order:
        gtype = circuit.gate_type(gid)
        if gtype is GateType.PI:
            arrival[gid][0] = arrival[gid][1] = 0.0
            continue
        inverting = is_inverting(gtype)
        for direction in (0, 1):
            upstream = 1 - direction if inverting else direction
            incoming = max(
                arrival[src][upstream] for src in circuit.fanin(gid)
            )
            if incoming > float("-inf"):
                arrival[gid][direction] = incoming + delays.delay(
                    gid, direction
                )
    return TimingReport(
        circuit=circuit,
        delays=delays,
        arrival=tuple(tuple(a) for a in arrival),
    )
