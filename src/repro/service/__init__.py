"""Concurrent classification daemon, sharded fleet + client.

A stdlib-only asyncio JSON-over-TCP (or unix socket) service exposing
the RD classifier: requests carry a ``.bench`` netlist or a suite
generator name; responses stream back structured JSON.

Two server shapes behind one wire protocol:

* :class:`AnalysisServer` (``repro-rd serve``) — a single process
  classifying through a shared, store-backed session pool with bounded
  concurrency and per-request wall-clock deadlines.
* :class:`FleetServer` (``repro-rd serve --workers N``) — a front-end
  that consistent-hashes requests by circuit fingerprint onto N
  supervised :class:`AnalysisServer` worker processes
  (:class:`WorkerSupervisor` health-checks and respawns them), with
  single-flight coalescing of identical concurrent requests and
  bounded per-worker admission control.

Both drain gracefully on SIGTERM/SIGINT.  See
:mod:`repro.service.protocol` for the wire format and
:class:`ServiceClient` (+ :class:`RetryPolicy`) for the fault-tolerant
blocking client used by ``repro-rd classify --remote``.
"""

from repro.service.client import RetryPolicy, ServiceClient
from repro.service.fleet import FleetServer, serve_fleet
from repro.service.hashring import HashRing
from repro.service.server import AnalysisServer, JsonLineServer, serve
from repro.service.supervisor import WorkerSupervisor

__all__ = [
    "AnalysisServer",
    "FleetServer",
    "HashRing",
    "JsonLineServer",
    "RetryPolicy",
    "ServiceClient",
    "WorkerSupervisor",
    "serve",
    "serve_fleet",
]
