"""Cone-granularity classification, the cone store, and the ECO flow."""

import sqlite3

import pytest

from repro.classify import CircuitSession, Criterion, classify
from repro.circuit.gates import GateType
from repro.errors import ClassifyError
from repro.gen.suite import get_circuit
from repro.incremental import cone_classify, diff_circuits, reanalyze
from repro.obs import get_registry
from repro.sorting import heuristic2_sort
from repro.store.db import STORE_FORMAT_VERSION, ResultStore

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


@pytest.fixture
def store(tmp_path):
    with ResultStore(tmp_path / "store.sqlite") as s:
        yield s


def _one_gate_edit(circuit, name=None):
    """Copy + flip the type of the first AND/OR gate (a 1-gate ECO)."""
    flips = {
        GateType.AND: GateType.OR,
        GateType.OR: GateType.AND,
        GateType.NAND: GateType.NOR,
        GateType.NOR: GateType.NAND,
    }
    edited = circuit.copy(name or f"{circuit.name}-eco")
    gid = next(
        g for g in range(edited.num_gates) if edited.gate_type(g) in flips
    )
    flipped = flips[edited.gate_type(gid)]
    edited.replace_gate(edited.gate_name(gid), flipped, list(edited.fanin(gid)))
    return edited


class TestConeClassify:
    def test_aggregate_matches_whole_circuit(self):
        c = get_circuit("c17")
        whole = classify(c, Criterion.FS)
        report = cone_classify(c, Criterion.FS)
        assert report.result.accepted == whole.accepted
        assert report.result.total_logical == whole.total_logical
        assert report.cones_total == len(c.outputs)
        assert report.cones_reused == 0  # storeless run computes all

    def test_explicit_sort_restricted_per_cone(self):
        c = get_circuit("c17")
        sort = heuristic2_sort(c)
        whole = classify(c, Criterion.SIGMA_PI, sort=sort)
        report = cone_classify(c, Criterion.SIGMA_PI, sort=sort)
        assert report.result.accepted == whole.accepted
        assert report.result.total_logical == whole.total_logical

    def test_cold_then_warm_roundtrip(self, store):
        c = get_circuit("c17")
        cold = cone_classify(c, Criterion.FS, store=store)
        assert cold.cones_reused == 0
        warm = cone_classify(c, Criterion.FS, store=store)
        assert warm.cones_reused == warm.cones_total
        assert warm.reuse_ratio == 1.0
        assert warm.table_bytes() == cold.table_bytes()
        snapshot = get_registry().snapshot()["counters"]
        assert snapshot["incremental.cone_store_hits"] == warm.cones_total
        assert snapshot["incremental.cones_dirty"] == cold.cones_total

    def test_variants_do_not_alias(self, store):
        """Criterion, sort and budget each key distinct cone rows."""
        c = get_circuit("c17")
        cone_classify(c, Criterion.FS, store=store)
        nr = cone_classify(c, Criterion.NR, store=store)
        assert nr.cones_reused == 0  # FS rows must not satisfy NR
        heu = cone_classify(c, Criterion.SIGMA_PI, sort="heu2", store=store)
        assert heu.cones_reused == 0
        budget = cone_classify(
            c, Criterion.FS, max_accepted=10_000, store=store
        )
        assert budget.cones_reused == 0  # budget is part of the key

    def test_jobs_parallel_is_deterministic(self, store):
        c = get_circuit("s1908-csel")
        serial = cone_classify(c, Criterion.FS)
        parallel = cone_classify(c, Criterion.FS, jobs=2)
        assert parallel.table_bytes() == serial.table_bytes()
        # counters are bumped in the parent: totals independent of jobs
        counters = get_registry().snapshot()["counters"]
        assert counters["incremental.cones_dirty"] == 2 * serial.cones_total

    def test_budget_abort_raises_and_writes_nothing(self, store):
        c = get_circuit("c17")
        with pytest.raises(ClassifyError):
            cone_classify(c, Criterion.FS, max_accepted=0, store=store)
        conn = sqlite3.connect(store.path)
        try:
            budget_rows = conn.execute(
                "SELECT COUNT(*) FROM cone_entries WHERE variant LIKE '%|0'"
            ).fetchone()[0]
        finally:
            conn.close()
        assert budget_rows == 0  # the aborted variant never hits the disk


class TestReanalyze:
    def test_byte_identical_and_mostly_reused(self, store):
        base = get_circuit("s1908-csel")
        edited = _one_gate_edit(base)
        report = reanalyze(base, edited, store=store, criterion=Criterion.FS)
        cold = cone_classify(edited, Criterion.FS)
        assert report.edited.table_bytes() == cold.table_bytes()
        assert report.base.cones_reused == 0  # cold store: base computed
        assert report.edited.cones_reused == len(report.diff.clean)
        assert report.edited.cones_computed == len(
            report.diff.dirty_outputs
        )
        assert report.reuse_ratio > 0.5
        assert "reused" in report.render()

    def test_steady_state_base_is_free(self, store):
        base = get_circuit("c17")
        edited = _one_gate_edit(base)
        reanalyze(base, edited, store=store, criterion=Criterion.FS)
        again = reanalyze(base, edited, store=store, criterion=Criterion.FS)
        assert again.base.cones_reused == again.base.cones_total
        assert again.edited.cones_reused == again.edited.cones_total

    def test_to_dict_shape(self, store):
        base = get_circuit("c17")
        report = reanalyze(
            base, _one_gate_edit(base), store=store, criterion=Criterion.FS
        )
        payload = report.to_dict()
        assert set(payload) == {"diff", "base", "edited", "reuse_ratio"}
        assert payload["diff"]["counts"]["DIRTY"] >= 1
        assert isinstance(payload["edited"]["cones"], list)
        assert payload["edited"]["cones_total"] == len(
            payload["edited"]["cones"]
        )
        assert payload["edited"]["cones_reused"] >= 1


class TestStoreResilience:
    def test_corrupt_cone_row_is_a_miss_not_a_crash(self, store):
        c = get_circuit("c17")
        cold = cone_classify(c, Criterion.FS, store=store)
        conn = sqlite3.connect(store.path)
        try:
            conn.execute(
                "UPDATE cone_entries SET payload='{not json' "
                "WHERE rowid=(SELECT MIN(rowid) FROM cone_entries)"
            )
            conn.commit()
        finally:
            conn.close()
        warm = cone_classify(c, Criterion.FS, store=store)
        assert warm.table_bytes() == cold.table_bytes()
        assert warm.cones_reused == warm.cones_total - 1
        # the poisoned row was recomputed and replaced, not served
        final = cone_classify(c, Criterion.FS, store=store)
        assert final.cones_reused == final.cones_total

    def test_legacy_v1_store_degrades_gracefully(self, tmp_path):
        path = tmp_path / "v1.sqlite"
        conn = sqlite3.connect(path)
        conn.execute(
            "CREATE TABLE entries ("
            "fingerprint TEXT NOT NULL, kind TEXT NOT NULL, "
            "variant TEXT NOT NULL, schema INTEGER NOT NULL, "
            "payload TEXT NOT NULL, created REAL NOT NULL, "
            "last_used REAL NOT NULL, hits INTEGER NOT NULL DEFAULT 0, "
            "PRIMARY KEY (fingerprint, kind, variant, schema))"
        )
        conn.commit()
        conn.close()
        with ResultStore(path) as legacy:
            assert not legacy.supports_cones
            # cone API degrades: put is a no-op, get always misses
            legacy.cone_put("rdcfp1:x", "FS|none|-", {"total_logical": 1})
            assert legacy.cone_get("rdcfp1:x", "FS|none|-") is None
            # cone_classify still answers, it just never reuses
            c = get_circuit("c17")
            first = cone_classify(c, Criterion.FS, store=legacy)
            second = cone_classify(c, Criterion.FS, store=legacy)
            assert first.cones_reused == 0 and second.cones_reused == 0
            assert second.table_bytes() == first.table_bytes()
            # whole-circuit entries still work on the v1 file
            session = CircuitSession(c, store=legacy)
            session.classify(Criterion.FS)
            session.classify(Criterion.FS)
            assert session.stats.store_hits >= 1
            stats = legacy.stats()
            assert not stats.supports_cones
            assert "disabled" in stats.render()
            # clear() upgrades the file to v2 in place
            legacy.clear()
            assert legacy.supports_cones
            assert cone_classify(
                c, Criterion.FS, store=legacy
            ).cones_reused == 0
            assert cone_classify(
                c, Criterion.FS, store=legacy
            ).cones_reused == len(c.outputs)
        conn = sqlite3.connect(path)
        try:
            version = conn.execute("PRAGMA user_version").fetchone()[0]
        finally:
            conn.close()
        assert version == STORE_FORMAT_VERSION

    def test_stats_and_gc_cover_cone_table(self, store):
        c = get_circuit("c17")
        session = CircuitSession(c, store=store)
        session.classify(Criterion.FS)  # whole-circuit row
        cone_classify(c, Criterion.FS, store=store)  # cone rows
        cone_classify(c, Criterion.FS, store=store)  # warm: hits
        stats = store.stats()
        assert stats.entries >= 1
        assert stats.cone_entries == len(c.outputs)
        assert stats.cone_hits == len(c.outputs)
        assert stats.cone_payload_bytes > 0
        assert "cone:" in stats.render()
        # a stale-schema cone row is visible in stats and reclaimed by gc
        conn = sqlite3.connect(store.path)
        try:
            conn.execute(
                "INSERT INTO cone_entries VALUES "
                "('rdcfp1:dead', 'FS|none|-', 999, '{}', 0.0, 0.0, 0)"
            )
            conn.commit()
        finally:
            conn.close()
        assert store.stats().cone_stale == 1
        assert store.gc() >= 1
        assert store.stats().cone_stale == 0
        assert store.stats().cone_entries == len(c.outputs)


class TestSessionCones:
    def test_read_through_and_stats(self, store):
        c = get_circuit("c17")
        session = CircuitSession(c, store=store)
        whole = classify(c, Criterion.FS)
        first = session.classify(Criterion.FS, cones=True)
        second = session.classify(Criterion.FS, cones=True)
        assert first.accepted == second.accepted == whole.accepted
        assert first.total_logical == whole.total_logical
        assert session.stats.cone_misses == len(c.outputs)
        assert session.stats.cone_hits == len(c.outputs)
        assert "cones=" in session.stats.summary()

    def test_whole_circuit_only_features_rejected(self):
        session = CircuitSession(get_circuit("c17"))
        with pytest.raises(ValueError, match="whole-circuit"):
            session.classify(Criterion.FS, cones=True, collect_lead_counts=True)
        with pytest.raises(ValueError, match="whole-circuit"):
            session.classify(
                Criterion.FS, cones=True, on_path=lambda path: None
            )
