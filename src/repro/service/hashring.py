"""Consistent hashing over the ``rdfp1:`` fingerprint key space.

The fleet front-end (:mod:`repro.service.fleet`) routes every classify
request to one of N worker processes by its circuit fingerprint, so a
given circuit always lands on the same worker — that worker's session
pool keeps the circuit's implication engine hot and its store handle
keeps the circuit's result rows in page cache.  A plain ``hash(key) %
N`` would remap almost every key when a worker dies; a consistent hash
ring remaps only the dead worker's share.

Implementation: each node owns ``replicas`` points on a 64-bit ring,
placed by SHA-256 of ``"<node>#<replica>"`` — fully deterministic
across processes and Python versions (no ``PYTHONHASHSEED``
sensitivity), so a restarted front-end routes identically.  Lookup is
a binary search for the first point clockwise of SHA-256(key).
"""

from __future__ import annotations

import bisect
import hashlib

from repro.errors import ServiceError

__all__ = ["HashRing"]


def _point(data: str) -> int:
    """A deterministic 64-bit ring position for an arbitrary string."""
    return int.from_bytes(
        hashlib.sha256(data.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """A consistent hash ring of hashable node ids.

    ``replicas`` virtual points per node trade memory for balance: with
    the default 64, routing 10k random keys across 4 nodes lands within
    a few percent of even.  All mutation and lookup is O(log points);
    the ring is not thread-safe (the fleet mutates it only from its
    event loop).
    """

    def __init__(self, nodes=(), replicas: int = 64):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._points: "list[int]" = []
        self._owners: "list" = []  # parallel to _points
        self._nodes: "set" = set()
        for node in nodes:
            self.add(node)

    # -- membership -----------------------------------------------------
    @property
    def nodes(self) -> "frozenset":
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node) -> bool:
        return node in self._nodes

    def add(self, node) -> None:
        """Insert ``node``'s points (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for replica in range(self.replicas):
            point = _point(f"{node}#{replica}")
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, node)

    def remove(self, node) -> None:
        """Drop ``node``'s points (idempotent) — its keys redistribute
        to the clockwise survivors; every other key keeps its owner."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        keep = [
            (p, o) for p, o in zip(self._points, self._owners) if o != node
        ]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    # -- routing --------------------------------------------------------
    def route(self, key: str):
        """The node owning ``key`` (e.g. an ``rdfp1:...`` fingerprint).

        Raises :class:`ServiceError` when the ring is empty — the
        caller decides whether to wait for a respawn or fail the
        request as a structured error.
        """
        if not self._points:
            raise ServiceError("hash ring is empty: no workers available")
        index = bisect.bisect(self._points, _point(key))
        if index == len(self._points):
            index = 0  # wrap past the highest point
        return self._owners[index]

    def spread(self, keys) -> dict:
        """Diagnostic: how many of ``keys`` each node would receive."""
        counts: dict = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.route(key)] += 1
        return counts
