"""Unit tests for Algorithm 1 and stabilizing systems."""

import pytest

from repro.circuit.examples import chain_circuit, two_and_tree
from repro.logic.simulate import all_vectors
from repro.stabilize.system import (
    all_stabilizing_systems,
    compute_stabilizing_system,
    first_pin_policy,
)


class TestAlgorithm1:
    def test_or_with_one_controlling_input_is_forced(self, example_circuit):
        # v=100: only a=1 controls the OR.
        s = compute_stabilizing_system(
            example_circuit, example_circuit.outputs[0], (1, 0, 0)
        )
        lead_names = {example_circuit.lead_name(l) for l in s.leads}
        assert lead_names == {"a->g_or.0", "g_or->out.0"}

    def test_uncontrolled_gate_includes_all_inputs(self, example_circuit):
        # v=010: out=0, OR uncontrolled: all three inputs included.
        s = compute_stabilizing_system(
            example_circuit, example_circuit.outputs[0], (0, 1, 0)
        )
        names = {example_circuit.lead_name(l) for l in s.leads}
        assert "a->g_or.0" in names
        assert "g_and->g_or.1" in names
        assert "c->g_or.2" in names
        # AND has controlling input c=0: exactly one of its leads chosen.
        assert "c->g_and.1" in names and "b->g_and.0" not in names

    def test_chain_includes_whole_path(self):
        circuit = chain_circuit(3, invert=True)
        s = compute_stabilizing_system(circuit, circuit.outputs[0], (1,))
        assert len(s.leads) == 4  # 3 NOT input leads + PO lead

    def test_policy_controls_choice(self, example_circuit):
        def pick_last(circuit, gate, pins, values):
            return max(pins)

        s = compute_stabilizing_system(
            example_circuit, example_circuit.outputs[0], (1, 1, 1), pick_last
        )
        names = {example_circuit.lead_name(l) for l in s.leads}
        assert "c->g_or.2" in names  # pin 2 preferred over pin 0

    def test_bad_policy_rejected(self, example_circuit):
        def rogue(circuit, gate, pins, values):
            return 1 if 1 not in pins else 0

        with pytest.raises(ValueError):
            compute_stabilizing_system(
                example_circuit, example_circuit.outputs[0], (1, 0, 0), rogue
            )

    def test_requires_po(self, example_circuit):
        with pytest.raises(ValueError):
            compute_stabilizing_system(example_circuit, 0, (1, 1, 1))


class TestStabilizationProperty:
    def test_every_system_stabilizes(self, small_circuits):
        for circuit in small_circuits:
            for vector in all_vectors(len(circuit.inputs)):
                for po in circuit.outputs:
                    s = compute_stabilizing_system(circuit, po, vector)
                    assert s.stabilizes(trials=8), (
                        f"{circuit.name} v={vector} system does not stabilize"
                    )

    def test_minimality_dropping_a_lead_breaks_it(self, example_circuit):
        """The paper: removing any lead from S voids the guarantee.
        Checked for the forced single-lead system of v=100."""
        from dataclasses import replace

        po = example_circuit.outputs[0]
        s = compute_stabilizing_system(example_circuit, po, (1, 0, 0))
        for lead in s.leads:
            if example_circuit.lead_dst(lead) == po:
                continue  # the PO lead is structural
            crippled = replace(s, leads=frozenset(s.leads - {lead}))
            assert not crippled.stabilizes(trials=64), (
                f"dropping {example_circuit.lead_name(lead)} still stabilizes"
            )


class TestLogicalPathsOfSystem:
    def test_paths_of_forced_system(self, example_circuit):
        s = compute_stabilizing_system(
            example_circuit, example_circuit.outputs[0], (1, 0, 0)
        )
        paths = s.logical_paths()
        assert len(paths) == 1
        (lp,) = paths
        assert lp.describe(example_circuit) == "a -> g_or -> out [0->1]"

    def test_transition_final_value_matches_pi(self, example_circuit):
        s = compute_stabilizing_system(
            example_circuit, example_circuit.outputs[0], (0, 1, 0)
        )
        for lp in s.logical_paths():
            pi = lp.path.source(example_circuit)
            pi_index = example_circuit.inputs.index(pi)
            assert lp.final_value == (0, 1, 0)[pi_index]


class TestAllStabilizingSystems:
    def test_three_systems_for_111(self, example_circuit):
        """Figure 1 of the paper."""
        systems = list(
            all_stabilizing_systems(example_circuit, example_circuit.outputs[0], (1, 1, 1))
        )
        assert len(systems) == 3
        assert len({s.leads for s in systems}) == 3

    def test_enumeration_contains_policy_system(self, small_circuits):
        for circuit in small_circuits:
            for vector in all_vectors(len(circuit.inputs)):
                for po in circuit.outputs:
                    default = compute_stabilizing_system(
                        circuit, po, vector, first_pin_policy
                    )
                    every = {
                        s.leads
                        for s in all_stabilizing_systems(circuit, po, vector)
                    }
                    assert default.leads in every

    def test_all_enumerated_systems_stabilize(self, example_circuit):
        for vector in all_vectors(3):
            for s in all_stabilizing_systems(
                example_circuit, example_circuit.outputs[0], vector
            ):
                assert s.stabilizes(trials=8)

    def test_limit_guard(self):
        from repro.gen.random_logic import random_dag

        circuit = random_dag(8, 60, seed=5)
        po = circuit.outputs[0]
        with pytest.raises(RuntimeError):
            for vector in all_vectors(8):
                list(
                    all_stabilizing_systems(circuit, po, vector, limit=1)
                )


def test_describe_mentions_vector(example_circuit):
    s = compute_stabilizing_system(
        example_circuit, example_circuit.outputs[0], (1, 0, 0)
    )
    assert "v=100" in s.describe()
