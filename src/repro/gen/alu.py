"""A small ALU generator (c880-like control-dominated logic).

Control/datapath mixes have very few robust dependent paths (the paper
reports 0.9-3.2% for c880): most paths are through selection logic that
every operation exercises.
"""

from __future__ import annotations

from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import Circuit
from repro.gen.adders import _full_adder


def simple_alu(width: int = 4, name: str | None = None) -> Circuit:
    """``width``-bit ALU with ops AND/OR/XOR/ADD selected by s1 s0.

    op = 00 → AND, 01 → OR, 10 → XOR, 11 → ADD (with cin).
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    b = CircuitBuilder(name or f"alu{width}")
    s1, s0 = b.pi("s1"), b.pi("s0")
    a_bits = [b.pi(f"a{i}") for i in range(width)]
    b_bits = [b.pi(f"b{i}") for i in range(width)]
    cin = b.pi("cin")
    and_res = [b.and_(a_bits[i], b_bits[i], name=f"and{i}") for i in range(width)]
    or_res = [b.or_(a_bits[i], b_bits[i], name=f"or{i}") for i in range(width)]
    xor_res = [b.xor(a_bits[i], b_bits[i], name=f"xr{i}") for i in range(width)]
    add_res = []
    carry = cin
    for i in range(width):
        s, carry = _full_adder(b, a_bits[i], b_bits[i], carry, f"fa{i}")
        add_res.append(s)
    ns1, ns0 = b.not_(s1, "ns1"), b.not_(s0, "ns0")
    sel = [
        b.and_(ns1, ns0, name="sel_and"),
        b.and_(ns1, s0, name="sel_or"),
        b.and_(s1, ns0, name="sel_xor"),
        b.and_(s1, s0, name="sel_add"),
    ]
    for i in range(width):
        terms = [
            b.and_(sel[0], and_res[i], name=f"t_and{i}"),
            b.and_(sel[1], or_res[i], name=f"t_or{i}"),
            b.and_(sel[2], xor_res[i], name=f"t_xor{i}"),
            b.and_(sel[3], add_res[i], name=f"t_add{i}"),
        ]
        b.po(b.or_(*terms, name=f"y{i}"), f"out{i}")
    b.po(b.and_(sel[3], carry, name="t_cout"), "cout")
    return b.build()
