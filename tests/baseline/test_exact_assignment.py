"""Unit tests for the baseline assignment optimiser."""

import pytest

from repro.baseline.exact_assignment import baseline_rd, minimize_assignment
from repro.classify.conditions import Criterion
from repro.classify.engine import classify
from repro.classify.exact import exact_path_set
from repro.paths.enumerate import enumerate_logical_paths
from repro.sorting.heuristics import heuristic2_sort
from repro.sorting.input_sort import InputSort


class TestPaperExample:
    def test_greedy_finds_optimum(self, example_circuit):
        result = baseline_rd(example_circuit, method="greedy")
        assert result.selected == 5

    def test_exact_finds_optimum(self, example_circuit):
        result = baseline_rd(example_circuit, method="exact")
        assert result.selected == 5
        assert result.rd_percent == pytest.approx(37.5)

    def test_unknown_method(self, example_circuit):
        with pytest.raises(ValueError):
            baseline_rd(example_circuit, method="magic")


class TestSelectionValidity:
    def test_selected_set_is_a_union_of_systems(self, small_circuits):
        """The optimiser must return a genuine LP(σ): for every vector a
        whole candidate system is inside the selection."""
        from repro.logic.simulate import all_vectors
        from repro.stabilize.system import all_stabilizing_systems

        for circuit in small_circuits:
            for po in circuit.outputs:
                cone, _ = circuit.extract_cone(po)
                selected = minimize_assignment(cone, cone.outputs[0])
                for vector in all_vectors(len(cone.inputs)):
                    candidates = [
                        frozenset(s.logical_paths())
                        for s in all_stabilizing_systems(
                            cone, cone.outputs[0], vector
                        )
                    ]
                    assert any(c <= selected for c in candidates), (
                        f"{circuit.name} v={vector}: no full system selected"
                    )

    def test_exact_never_worse_than_greedy(self, small_circuits):
        for circuit in small_circuits:
            greedy = baseline_rd(circuit, method="greedy")
            exact = baseline_rd(circuit, method="exact")
            assert exact.selected <= greedy.selected


class TestAgainstHeuristic2:
    def test_baseline_at_least_matches_heu2(self, small_circuits):
        """Table III shape: the baseline (larger search space, exact
        path sets) reports at least as many RD paths as Heuristic 2."""
        for circuit in small_circuits:
            base = baseline_rd(circuit, method="greedy")
            sort = heuristic2_sort(circuit)
            heu2 = classify(circuit, Criterion.SIGMA_PI, sort=sort)
            assert base.rd_count >= heu2.rd_count, circuit.name

    def test_baseline_upper_bounded_by_exact_sigma(self, example_circuit):
        """min over all σ <= |LP(σ^π)| for any particular π."""
        base = baseline_rd(example_circuit, method="exact")
        pin = exact_path_set(
            example_circuit, Criterion.SIGMA_PI,
            InputSort.pin_order(example_circuit),
        )
        assert base.selected <= len(pin)


class TestResultContainer:
    def test_per_po_sums(self, small_circuits):
        for circuit in small_circuits:
            result = baseline_rd(circuit)
            assert sum(result.per_po.values()) == result.selected
            assert set(result.per_po) == set(circuit.outputs)

    def test_total_matches_enumeration(self, example_circuit):
        result = baseline_rd(example_circuit)
        assert result.total_logical == len(
            list(enumerate_logical_paths(example_circuit))
        )

    def test_str(self, example_circuit):
        assert "baseline/greedy" in str(baseline_rd(example_circuit))


def test_wide_cone_refused():
    from repro.gen.parity import parity_tree

    circuit = parity_tree(16)
    with pytest.raises(ValueError):
        baseline_rd(circuit)
