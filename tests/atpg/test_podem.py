"""PODEM cross-validated against the SAT engine and brute force."""

import pytest

from repro.atpg.podem import PodemResult, generate_test_podem, podem
from repro.atpg.stuckat import (
    StuckAtFault,
    is_redundant,
    simulate_with_fault,
)
from repro.logic.simulate import simulate


def _all_faults(circuit):
    for lead in range(circuit.num_leads):
        for value in (0, 1):
            yield StuckAtFault(lead, value)


class TestAgainstSat:
    def test_same_verdict_every_fault(self, small_circuits):
        for circuit in small_circuits:
            for fault in _all_faults(circuit):
                sat_testable = not is_redundant(circuit, fault)
                result = podem(circuit, fault)
                assert result.testable == sat_testable, (
                    f"{circuit.name}: {fault.describe(circuit)} "
                    f"podem={result.testable} sat={sat_testable}"
                )

    def test_same_verdict_random_circuits(self):
        from repro.gen.random_logic import random_dag

        for seed in range(5):
            circuit = random_dag(5, 12, seed=seed)
            for fault in _all_faults(circuit):
                assert podem(circuit, fault).testable == (
                    not is_redundant(circuit, fault)
                ), f"seed {seed}: {fault.describe(circuit)}"


class TestVectorsDetect:
    def test_generated_vectors_really_detect(self, small_circuits):
        for circuit in small_circuits:
            for fault in _all_faults(circuit):
                vector = generate_test_podem(circuit, fault)
                if vector is None:
                    continue
                good = simulate(circuit, vector)
                bad = simulate_with_fault(circuit, vector, fault)
                assert any(
                    good[po] != bad[po] for po in circuit.outputs
                ), f"{circuit.name}: {fault.describe(circuit)} undetected"


class TestMechanics:
    def test_redundant_fault_returns_none(self, example_circuit):
        g_and = example_circuit.gate_by_name("g_and")
        b_pin = example_circuit.lead_index(g_and, 0)
        result = podem(example_circuit, StuckAtFault(b_pin, 0))
        assert result.vector is None
        assert result.backtracks >= 1

    def test_result_counters(self, example_circuit):
        g_or = example_circuit.gate_by_name("g_or")
        lead = example_circuit.lead_index(g_or, 0)
        result = podem(example_circuit, StuckAtFault(lead, 1))
        assert isinstance(result, PodemResult)
        assert result.decisions >= 1

    def test_backtrack_budget(self, example_circuit):
        from repro.atpg.podem import PodemAbort

        g_and = example_circuit.gate_by_name("g_and")
        b_pin = example_circuit.lead_index(g_and, 0)
        with pytest.raises(PodemAbort):
            podem(example_circuit, StuckAtFault(b_pin, 0), max_backtracks=0)

    def test_adder_faults(self):
        """A medium structural circuit: every collapsed-sample fault
        agrees with the SAT engine."""
        from repro.gen.adders import ripple_carry_adder

        circuit = ripple_carry_adder(3)
        for lead in range(0, circuit.num_leads, 5):
            for value in (0, 1):
                fault = StuckAtFault(lead, value)
                assert podem(circuit, fault).testable == (
                    not is_redundant(circuit, fault)
                ), fault.describe(circuit)
