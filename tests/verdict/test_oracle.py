"""The SAT-exact verdict oracle against the brute-force ground truth.

``VerdictOracle.decide`` must agree with ``exact.exists_vector`` on
every logical path of every small circuit, for every criterion and
sort — SAT answers are only trustworthy because this differential
holds.  SAT witnesses must replay through the concrete simulator.
"""

import pytest

from repro.circuit.examples import mux_circuit, paper_example_circuit
from repro.classify.conditions import Criterion
from repro.classify.exact import exists_vector, satisfies_criterion
from repro.errors import VerdictError
from repro.gen.suite import get_circuit
from repro.paths.enumerate import enumerate_logical_paths
from repro.sorting import heuristic2_sort, pin_order_sort
from repro.verdict import SensitizationEncoder, VerdictOracle


def _sorts_for(circuit, criterion):
    if criterion is Criterion.SIGMA_PI:
        return [pin_order_sort(circuit), heuristic2_sort(circuit)]
    return [None]


class TestDifferential:
    @pytest.mark.parametrize("make", [paper_example_circuit, mux_circuit])
    @pytest.mark.parametrize(
        "criterion", [Criterion.FS, Criterion.NR, Criterion.SIGMA_PI]
    )
    def test_matches_brute_force_examples(self, make, criterion):
        circuit = make()
        for sort in _sorts_for(circuit, criterion):
            oracle = VerdictOracle(circuit)
            for lp in enumerate_logical_paths(circuit):
                verdict = oracle.decide(lp, criterion, sort)
                expected = exists_vector(circuit, criterion, lp, sort)
                assert verdict.in_set == expected, (lp, criterion)

    @pytest.mark.parametrize("name", ["c17", "apex-a"])
    def test_matches_brute_force_suite(self, name):
        circuit = get_circuit(name)
        sort = heuristic2_sort(circuit)
        oracle = VerdictOracle(circuit)
        for lp in enumerate_logical_paths(circuit):
            verdict = oracle.decide(lp, Criterion.SIGMA_PI, sort)
            expected = exists_vector(circuit, Criterion.SIGMA_PI, lp, sort)
            assert verdict.in_set == expected, lp


class TestWitnesses:
    def test_every_sat_verdict_carries_a_replayed_witness(self):
        circuit = get_circuit("c17")
        sort = heuristic2_sort(circuit)
        oracle = VerdictOracle(circuit)
        for lp in enumerate_logical_paths(circuit):
            verdict = oracle.decide(lp, Criterion.SIGMA_PI, sort)
            if verdict.in_set:
                assert verdict.witness is not None
                # the certificate is independently checkable
                assert satisfies_criterion(
                    circuit, Criterion.SIGMA_PI, lp, verdict.witness, sort
                )
            else:
                assert verdict.witness is None

    def test_witness_replay_can_be_disabled(self):
        circuit = paper_example_circuit()
        oracle = VerdictOracle(circuit, replay_witnesses=False)
        lp = next(iter(enumerate_logical_paths(circuit)))
        verdict = oracle.decide(lp, Criterion.FS)
        # still decides; witnesses still decoded, just not replayed
        assert verdict.in_set == exists_vector(circuit, Criterion.FS, lp)


class TestIncrementality:
    def test_one_solver_serves_all_paths(self):
        """The oracle keeps one solver across queries and its cumulative
        stats grow monotonically — the incremental CDCL contract."""
        circuit = get_circuit("apex-a")
        sort = heuristic2_sort(circuit)
        oracle = VerdictOracle(circuit)
        paths = list(enumerate_logical_paths(circuit))
        solves_seen = 0
        for lp in paths:
            oracle.decide(lp, Criterion.SIGMA_PI, sort)
            stats = oracle.solver_stats()
            assert stats["solves"] >= solves_seen
            solves_seen = stats["solves"]
        # some queries are trivially unsat (contradictory assumptions)
        # and never reach the solver, so solves <= paths
        assert 0 < solves_seen <= len(paths)

    def test_trivially_unsat_skips_the_solver(self):
        circuit = paper_example_circuit()
        oracle = VerdictOracle(circuit)
        before = oracle.solver_stats()["solves"]
        refuted = 0
        for lp in enumerate_logical_paths(circuit):
            if not oracle.decide(lp, Criterion.NR).in_set:
                refuted += 1
        assert refuted > 0  # paper example: NR refutes some paths
        # at least one refutation came from contradictory assumptions
        assert oracle.solver_stats()["solves"] - before < 8

    def test_budget_exhaustion_raises_verdict_error(self):
        """A blown conflict budget surfaces as VerdictError (taxonomy),
        never a bare RuntimeError, and leaves the oracle usable."""
        circuit = get_circuit("misex-f")
        sort = heuristic2_sort(circuit)
        oracle = VerdictOracle(circuit, max_conflicts=0)
        errors = 0
        for lp in enumerate_logical_paths(circuit):
            try:
                oracle.decide(lp, Criterion.SIGMA_PI, sort)
            except VerdictError:
                errors += 1
        assert errors >= 1  # misex-f needs search on at least one path
        # same oracle, restored budget: every path decides cleanly
        oracle.max_conflicts = 100_000
        for lp in enumerate_logical_paths(circuit):
            oracle.decide(lp, Criterion.SIGMA_PI, sort)


class TestEncoder:
    def test_sigma_requires_a_sort(self):
        circuit = paper_example_circuit()
        encoder = SensitizationEncoder(circuit)
        lp = next(iter(enumerate_logical_paths(circuit)))
        with pytest.raises(ValueError, match="sort"):
            encoder.query(lp, Criterion.SIGMA_PI, None)

    def test_assumptions_are_pure_units(self):
        """The per-path query adds no clauses — only unit assumptions
        over the base encoding, so one solver serves every path."""
        circuit = paper_example_circuit()
        encoder = SensitizationEncoder(circuit)
        num_clauses = len(encoder.encoding.cnf.clauses)
        for lp in enumerate_logical_paths(circuit):
            query = encoder.query(lp, Criterion.FS, None)
            if not query.trivially_unsat:
                assert query.assumptions
        assert len(encoder.encoding.cnf.clauses) == num_clauses
