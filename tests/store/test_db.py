"""The SQLite result store: round trips, corruption handling, schema
versioning, maintenance, pickling across process boundaries."""

import json
import pickle
import sqlite3

import pytest

from repro.store.db import ResultStore, as_store
from repro.store.fingerprint import SCHEMA_VERSION

FP = "rdfp1:" + "ab" * 32


@pytest.fixture
def store(tmp_path):
    with ResultStore(tmp_path / "s.sqlite") as s:
        yield s


class TestRoundTrip:
    def test_put_get(self, store):
        store.put(FP, "counts", "", {"up": [1, 2], "down": [2, 1]})
        assert store.get(FP, "counts") == {"up": [1, 2], "down": [2, 1]}

    def test_missing_is_none(self, store):
        assert store.get(FP, "counts") is None
        assert store.get(FP, "classify", "FS|none") is None

    def test_variants_are_distinct(self, store):
        store.put(FP, "classify", "FS|none", {"accepted": 1})
        store.put(FP, "classify", "NR|none", {"accepted": 2})
        assert store.get(FP, "classify", "FS|none") == {"accepted": 1}
        assert store.get(FP, "classify", "NR|none") == {"accepted": 2}

    def test_replace(self, store):
        store.put(FP, "counts", "", {"v": 1})
        store.put(FP, "counts", "", {"v": 2})
        assert store.get(FP, "counts") == {"v": 2}

    def test_hits_counted(self, store):
        store.put(FP, "counts", "", {"v": 1})
        store.get(FP, "counts")
        store.get(FP, "counts")
        assert store.stats().total_hits == 2


class TestCorruptionAndSchema:
    def _raw_insert(self, store, payload: str, schema: int = SCHEMA_VERSION):
        conn = sqlite3.connect(store.path)
        conn.execute(
            "INSERT OR REPLACE INTO entries VALUES (?,?,?,?,?,0,0,0)",
            (FP, "counts", "", schema, payload),
        )
        conn.commit()
        conn.close()

    def test_undecodable_payload_is_a_miss_and_deleted(self, store):
        store.put(FP, "counts", "", {"v": 1})  # ensure table exists
        self._raw_insert(store, "{not json")
        assert store.get(FP, "counts") is None
        assert store.stats().entries == 0  # deleted, not kept

    def test_non_object_payload_is_a_miss(self, store):
        store.put(FP, "counts", "", {"v": 1})
        self._raw_insert(store, json.dumps([1, 2, 3]))
        assert store.get(FP, "counts") is None

    def test_other_schema_version_is_invisible(self, store):
        store.put(FP, "counts", "", {"v": 1})
        store.clear()
        self._raw_insert(store, json.dumps({"v": 1}), schema=SCHEMA_VERSION + 1)
        assert store.get(FP, "counts") is None
        stats = store.stats()
        assert stats.entries == 0
        assert stats.stale_entries == 1

    def test_gc_reclaims_stale_schema_rows(self, store):
        store.put(FP, "counts", "", {"v": 1})
        self._raw_insert(store, json.dumps({"v": 1}), schema=SCHEMA_VERSION + 1)
        # schema is part of the primary key, so both rows coexist
        assert store.gc() == 1
        assert store.stats().stale_entries == 0
        assert store.get(FP, "counts") == {"v": 1}

    def test_gc_max_age(self, store):
        store.stats()  # force schema creation before the raw insert
        self._raw_insert(store, json.dumps({"v": 1}))  # last_used=0 (1970)
        assert store.gc(max_age_days=1) == 1
        assert store.get(FP, "counts") is None


class TestMaintenance:
    def test_stats_render(self, store):
        store.put(FP, "counts", "", {"v": 1})
        store.put(FP, "classify", "FS|none", {"accepted": 0})
        text = store.stats().render()
        assert "classify=1" in text and "counts=1" in text
        assert f"schema:  {SCHEMA_VERSION}" in text

    def test_clear(self, store):
        store.put(FP, "counts", "", {"v": 1})
        assert store.clear() == 1
        assert store.stats().entries == 0

    def test_delete(self, store):
        store.put(FP, "counts", "", {"v": 1})
        store.delete(FP, "counts")
        assert store.get(FP, "counts") is None


class TestProcessBoundaries:
    def test_pickles_as_path(self, store):
        store.put(FP, "counts", "", {"v": 7})
        clone = pickle.loads(pickle.dumps(store))
        assert clone.path == store.path
        assert clone.get(FP, "counts") == {"v": 7}
        clone.close()

    def test_two_handles_share_one_file(self, tmp_path):
        path = tmp_path / "shared.sqlite"
        with ResultStore(path) as a, ResultStore(path) as b:
            a.put(FP, "counts", "", {"v": 1})
            assert b.get(FP, "counts") == {"v": 1}


class TestAsStore:
    def test_none(self):
        assert as_store(None) is None

    def test_instance_passthrough(self, store):
        assert as_store(store) is store

    def test_path(self, tmp_path):
        s = as_store(tmp_path / "x.sqlite")
        assert isinstance(s, ResultStore)
        s.close()
