"""Canonical content-addressed fingerprints for frozen circuits.

The persistent result store (:mod:`repro.store.db`) keys every cached
artifact by a *fingerprint* of the circuit it was computed on.  Two
requirements shape the design:

* **Declaration-order insensitivity.**  The same netlist read from a
  permuted ``.bench`` file (gates listed in any topological order, any
  gate names) must produce the same fingerprint, or re-runs would never
  hit the cache.  Gate *names* carry no structure, so they are ignored.
* **Pin-order sensitivity.**  The order of a gate's fanin pins is the
  circuit's default input sort (it decides ``σ^π`` for ``sort=None``
  classification and numbers the leads every per-lead artifact is
  indexed by), so ``AND(a, b)`` and ``AND(b, a)`` fingerprint
  differently.

The construction is a canonical form, not just a hash:

1. Two rounds of Weisfeiler-Leman-style refinement give every gate a
   structural label combining its transitive-fanin shape (pin order
   preserved) and its transitive-fanout shape (order-insensitive).
2. A canonical topological numbering repeatedly emits the ready gate
   with the smallest ``(label, canonical fanin numbers)`` key.  Ties
   after that key are WL-equivalent gates in symmetric positions, where
   either order encodes the same structure.
3. The fingerprint hashes, in canonical order, each gate's type and its
   fanin gates' canonical numbers in pin order — an encoding from which
   the circuit could be rebuilt up to gate names, so two circuits
   fingerprint equal only if they are structurally identical (modulo
   SHA-256 collisions).

The canonical numbering also yields a canonical *lead* order, used to
re-index per-lead payloads (input-sort ranks, per-lead path counts) so
they can be stored once and mapped onto any permutation of the netlist.

``SCHEMA_VERSION`` tags both the fingerprint prefix and every store
entry; bumping it after any change to this algorithm or to a payload
format makes every stale entry invisible (never served, reclaimed by
``gc``).
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass
from typing import Sequence

from repro.circuit.netlist import Circuit

__all__ = [
    "SCHEMA_VERSION",
    "CanonicalForm",
    "canonical_form",
    "fingerprint",
]

#: Version of the fingerprint algorithm *and* of every store payload
#: format.  Bump on any incompatible change; old entries become
#: invisible rather than wrong.
SCHEMA_VERSION = 1

_PREFIX = f"rdfp{SCHEMA_VERSION}"


def _h(*parts: bytes) -> bytes:
    """Collision-resistant combiner: length-prefixed SHA-256."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(len(part).to_bytes(4, "big"))
        digest.update(part)
    return digest.digest()


def _refine(circuit: Circuit, label: "list[bytes]") -> "list[bytes]":
    """One WL refinement round: combine each gate's label with its
    transitive-fanin shape (pin order significant) and transitive-fanout
    shape (order-insensitive)."""
    n = circuit.num_gates
    up = [b""] * n
    for gid in circuit.topo_order:
        up[gid] = _h(label[gid], *(up[src] for src in circuit.fanin(gid)))
    down = [b""] * n
    for gid in reversed(circuit.topo_order):
        branches = sorted(
            _h(pin.to_bytes(4, "big"), down[dst])
            for dst, pin in circuit.fanout(gid)
        )
        down[gid] = _h(label[gid], *branches)
    return [_h(u, d) for u, d in zip(up, down)]


def _gate_labels(circuit: Circuit) -> "list[bytes]":
    labels = [
        circuit.gate_type(gid).name.encode()
        for gid in range(circuit.num_gates)
    ]
    labels = _refine(circuit, labels)
    # A second round separates DAG-sharing patterns the first cannot
    # (e.g. one shared subtree vs two structurally equal copies).
    return _refine(circuit, labels)


@dataclass(frozen=True)
class CanonicalForm:
    """The declaration-order-independent view of one frozen circuit.

    ``gate_order[i]`` / ``lead_order[i]`` are the *original* gate/lead
    ids sitting at canonical position ``i``; per-gate and per-lead
    arrays are stored in canonical order and mapped back through them.
    """

    fingerprint: str
    gate_order: "tuple[int, ...]"
    lead_order: "tuple[int, ...]"

    def pack_leads(self, values: Sequence) -> list:
        """Re-index a per-lead array (original order) canonically."""
        return [values[lead] for lead in self.lead_order]

    def unpack_leads(self, values: Sequence) -> list:
        """Inverse of :meth:`pack_leads`."""
        out = [None] * len(self.lead_order)
        for position, lead in enumerate(self.lead_order):
            out[lead] = values[position]
        return out

    def pack_gates(self, values: Sequence) -> list:
        """Re-index a per-gate array (original order) canonically."""
        return [values[gid] for gid in self.gate_order]

    def unpack_gates(self, values: Sequence) -> list:
        """Inverse of :meth:`pack_gates`."""
        out = [None] * len(self.gate_order)
        for position, gid in enumerate(self.gate_order):
            out[gid] = values[position]
        return out

    def sort_key(self, ranks: Sequence[int]) -> str:
        """Content hash of an input sort's rank array, canonical lead
        order — equal for the "same" sort on any permutation of the
        netlist."""
        blob = b",".join(b"%d" % ranks[lead] for lead in self.lead_order)
        return hashlib.sha256(blob).hexdigest()[:32]


def _canonical_gate_order(circuit: Circuit, labels: "list[bytes]") -> "list[int]":
    """Canonical topological numbering (see module docstring)."""
    n = circuit.num_gates
    remaining = [len(circuit.fanin(gid)) for gid in range(n)]
    number = [-1] * n
    ready: list = []
    for gid in range(n):
        if remaining[gid] == 0:
            heapq.heappush(ready, (labels[gid], (), gid))
    order: "list[int]" = []
    while ready:
        _label, _fanin_key, gid = heapq.heappop(ready)
        number[gid] = len(order)
        order.append(gid)
        for dst, _pin in circuit.fanout(gid):
            remaining[dst] -= 1
            if remaining[dst] == 0:
                fanin_key = tuple(number[src] for src in circuit.fanin(dst))
                heapq.heappush(ready, (labels[dst], fanin_key, dst))
    return order


def canonical_form(circuit: Circuit) -> CanonicalForm:
    """Compute the full canonical form of a frozen circuit (O(E log V))."""
    circuit._require_frozen()  # noqa: SLF001 - deliberate check
    labels = _gate_labels(circuit)
    gate_order = _canonical_gate_order(circuit, labels)
    number = [0] * circuit.num_gates
    for position, gid in enumerate(gate_order):
        number[gid] = position
    digest = hashlib.sha256()
    digest.update(b"%d" % circuit.num_gates)
    for gid in gate_order:
        digest.update(b"|")
        digest.update(circuit.gate_type(gid).name.encode())
        for src in circuit.fanin(gid):
            digest.update(b",%d" % number[src])
    lead_order = [
        lead for gid in gate_order for lead in circuit.input_leads(gid)
    ]
    return CanonicalForm(
        fingerprint=f"{_PREFIX}:{digest.hexdigest()}",
        gate_order=tuple(gate_order),
        lead_order=tuple(lead_order),
    )


def fingerprint(circuit: Circuit) -> str:
    """The content-addressed fingerprint of a frozen circuit."""
    return canonical_form(circuit).fingerprint
