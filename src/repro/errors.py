"""The library-wide exception taxonomy.

Every error the library raises deliberately derives from
:class:`ReproError`, split by subsystem::

    ReproError
    ├── CircuitError        parse / construction / validation
    │   ├── BenchParseError   (repro.circuit.bench)
    │   └── ExactLimitError   brute-force oracle refused (too many PIs)
    ├── ClassifyError       classification aborted (budget exhausted)
    ├── SignoffError        timing-signoff query aborted (repro.signoff)
    ├── VerdictError        SAT-exact verdict failed (repro.verdict)
    ├── HarnessError        supervised experiment execution
    │   ├── TaskTimeout       a pool task exceeded its wall-clock budget
    │   └── TaskCrashed       a pool worker died (crash / kill / OOM)
    ├── StoreError          persistent result store (repro.store)
    └── ServiceError        analysis service (repro.service)
        ├── ProtocolError     malformed wire message
        ├── RemoteError       the server answered with a structured error
        └── Overloaded        admission control shed the request

Callers that want "anything this library can throw" catch
:class:`ReproError`; subsystem code catches the narrow type.  For
backwards compatibility the circuit and classification errors also
subclass the builtin types they historically were (``ValueError`` and
``RuntimeError`` respectively), so pre-taxonomy ``except`` clauses keep
working.

This module is a leaf: it imports nothing from the rest of the library,
so any subsystem may import it without cycles.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every deliberate error in this library."""


class CircuitError(ReproError, ValueError):
    """Invalid circuit input: parse errors, bad construction, failed
    validation.  (Also a ``ValueError`` for backwards compatibility.)"""


class ClassifyError(ReproError, RuntimeError):
    """A classification pass aborted — e.g. ``max_accepted`` exhausted.
    (Also a ``RuntimeError`` for backwards compatibility.)"""


class SignoffError(ReproError, RuntimeError):
    """A timing-signoff query aborted — e.g. the candidate-path or
    frontier-state budget was exhausted, or a domain job failed.  (Also
    a ``RuntimeError``, matching :class:`ClassifyError`.)"""


class ExactLimitError(CircuitError):
    """A brute-force exact oracle (``repro.classify.exact``) refused a
    circuit with too many primary inputs — the ``2^n`` vector sweep is
    infeasible.  The SAT-exact verdict subsystem
    (:class:`repro.verdict.VerdictOracle`) decides the same questions
    without the input-count ceiling; the error message points there.
    (A ``CircuitError``, hence also a ``ValueError``, for backwards
    compatibility with pre-taxonomy ``except`` clauses.)"""


class VerdictError(ReproError):
    """The SAT-exact verdict subsystem failed internally: a SAT witness
    did not replay through simulation (certificate check failed), or the
    solver exhausted its conflict budget on one path query."""


class HarnessError(ReproError):
    """Supervised experiment execution failed."""


class TaskTimeout(HarnessError):
    """A supervised task exceeded its wall-clock budget.

    The supervisor tears the pool down (the worker may be hung) and
    retries; this type surfaces in :class:`RowFailure` records and in
    retry bookkeeping.
    """

    def __init__(self, label: str, budget: float):
        super().__init__(
            f"task {label!r} exceeded its {budget:g}s wall-clock budget"
        )
        self.label = label
        self.budget = budget


class TaskCrashed(HarnessError):
    """A pool worker died before returning a result (killed process,
    ``BrokenProcessPool``, unpicklable payload...)."""

    def __init__(self, label: str, cause: str):
        super().__init__(f"worker running task {label!r} crashed: {cause}")
        self.label = label
        self.cause = cause


class StoreError(ReproError):
    """The persistent result store is unusable (database corrupt beyond
    SQLite's own recovery, still locked after bounded retries, ...).

    Note the store never raises for a *content* problem — a corrupted or
    version-mismatched entry is simply treated as a miss and recomputed.
    """


class ServiceError(ReproError):
    """Analysis-service failure (connection, protocol, remote error)."""


class ProtocolError(ServiceError):
    """A wire message could not be parsed (not JSON, oversized line,
    wrong framing)."""


class RemoteError(ServiceError):
    """The analysis server answered a request with a structured error.

    ``error_type`` carries the server-side exception class name (e.g.
    ``"TaskTimeout"``, ``"CircuitError"``) so clients can dispatch
    without string-matching messages.
    """

    def __init__(self, error_type: str, message: str):
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.message = message
        #: optional server backoff hint (seconds) — set when the remote
        #: error was an :class:`Overloaded` shed, ``None`` otherwise
        self.retry_after: "float | None" = None


class Overloaded(ServiceError):
    """The service shed this request: every eligible worker's pending
    queue is full.  ``retry_after`` is the server's backoff hint in
    seconds (serialized on the wire, surfaced on the client's
    :class:`RemoteError` as ``retry_after``); retrying after roughly
    that long is expected to succeed under a draining queue.
    """

    def __init__(self, message: str, retry_after: "float | None" = None):
        super().__init__(message)
        self.retry_after = retry_after
