"""Signoff rows and reports: the deterministic query result surface.

A :class:`SignoffRow` is one robustly-testable logical path with its
delay under the queried :class:`~repro.timing.delays.DelayAssignment`.
Rows are canonically ordered — slowest first, ties broken by the
lexicographic ``(gate name, pin)`` path spelling, then transition — so
the same query renders byte-identically whether it was computed whole,
fanned out per scan domain, served from the store, or answered by a
remote fleet.  Wall-clock and stage counters live outside
:meth:`SignoffReport.table_payload` for exactly that reason.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.serialize import to_json
from repro.util.tables import TextTable

#: Store/wire schema for signoff rows (bumped on layout changes).
SIGNOFF_SCHEMA = 1


@dataclass(frozen=True)
class SignoffRow:
    """One robustly-testable logical path under an annotated delay map."""

    #: capture point: the PO (or pseudo-PO) gate name — the scan domain.
    capture: str
    #: launch point: the PI (or pseudo-PI) gate name.
    source: str
    #: transition at the launch point, ``"0->1"`` or ``"1->0"``.
    transition: str
    #: total path delay under the queried assignment.
    delay: float
    #: the physical path as ``(gate name, input pin)`` per lead.
    pins: tuple

    def sort_key(self) -> tuple:
        """Canonical report order: slowest first, then the path's
        lexicographic spelling, then transition.  A pure function of
        the (named) circuit + delays — independent of enumeration
        order, job count, or store state."""
        return (-self.delay, self.pins, self.transition)

    def describe(self) -> str:
        gates = [self.source] + [g for g, _pin in self.pins]
        return " -> ".join(gates) + f" [{self.transition}]"

    def table_row(self) -> dict:
        return {
            "capture": self.capture,
            "source": self.source,
            "transition": self.transition,
            "delay": self.delay,
            "path": [[g, p] for g, p in self.pins],
        }

    @classmethod
    def from_table_row(cls, row: dict) -> "SignoffRow":
        """Rebuild a row from its :meth:`table_row` payload (the wire
        form); raises on anything malformed."""
        pins = tuple((str(g), int(p)) for g, p in row["path"])
        transition = str(row["transition"])
        if transition not in ("0->1", "1->0"):
            raise ValueError(f"bad transition {transition!r}")
        return cls(
            capture=str(row["capture"]),
            source=str(row["source"]),
            transition=transition,
            delay=float(row["delay"]),
            pins=pins,
        )


@dataclass(frozen=True)
class SignoffReport:
    """One signoff query's answer across all launch/capture domains."""

    circuit: str
    mode: str  #: "k" | "slack"
    k: "int | None"
    slack: "float | None"
    exact: bool
    delays_digest: str
    domains: tuple  #: capture-point names queried, sorted
    rows: tuple  #: SignoffRow, canonical order
    #: aggregated stage counters (candidates, prefilter_rejects,
    #: oracle_refuted, robust_refuted, robust_confirmed) — diagnostics,
    #: excluded from the deterministic table.
    counters: dict = field(default_factory=dict)
    #: per-domain provenance ("computed" | "store") — diagnostics.
    sources: dict = field(default_factory=dict)
    wall_seconds: float = 0.0

    def table_payload(self) -> dict:
        """The deterministic answer: byte-identical at any ``--jobs``,
        worker count, or store temperature.  ``--exact`` is absent on
        purpose — the final verdict stage makes rows mode-independent,
        so escalation may only change the diagnostics."""
        return {
            "schema": SIGNOFF_SCHEMA,
            "circuit": self.circuit,
            "mode": self.mode,
            "k": self.k,
            "slack": self.slack,
            "delays_digest": self.delays_digest,
            "domains": list(self.domains),
            "paths": len(self.rows),
            "rows": [row.table_row() for row in self.rows],
        }

    def table_bytes(self) -> bytes:
        return to_json(self.table_payload()).encode()

    def to_dict(self) -> dict:
        payload = self.table_payload()
        payload["exact"] = self.exact
        payload["counters"] = dict(self.counters)
        payload["sources"] = dict(self.sources)
        payload["wall_seconds"] = self.wall_seconds
        return payload

    def render(self) -> str:
        what = (
            f"{self.k} longest" if self.mode == "k"
            else f"slack >= {self.slack:g}"
        )
        table = TextTable(
            ["#", "delay", "launch", "transition", "capture", "path"],
            title=(
                f"Robustly-testable paths — {what} "
                f"({self.circuit}, {len(self.domains)} domains)"
            ),
        )
        for rank, row in enumerate(self.rows, start=1):
            table.add_row(
                [
                    rank,
                    f"{row.delay:.3f}",
                    row.source,
                    row.transition,
                    row.capture,
                    " -> ".join(g for g, _pin in row.pins),
                ]
            )
        if not self.rows:
            table.add_row(["-", "-", "-", "-", "-", "(no robust paths)"])
        return table.render()


def merge_rows(
    row_lists, k: "int | None"
) -> tuple:
    """Merge per-domain row lists into the canonical report order and
    apply the K-truncation.

    Each domain contributes its own top-K *plus delay ties*; since the
    globally K-th delay is at least any single domain's K-th delay,
    the union is a superset of the global answer whose extras all rank
    past K — so sorting and truncating here is exactly equivalent to
    having run the query on the whole core.
    """
    rows = [row for rows in row_lists for row in rows]
    rows.sort(key=lambda row: row.sort_key())
    if k is not None:
        rows = rows[:k]
    return tuple(rows)


__all__ = [
    "SIGNOFF_SCHEMA",
    "SignoffReport",
    "SignoffRow",
    "merge_rows",
]
