"""Table III — quality/time of the baseline of [1] vs Heuristic 2.

The baseline optimises over all complete stabilizing assignments (the
exact objective of [1], see :mod:`repro.baseline`); Heuristic 2 is the
paper's fast approximation.  The paper reports a mean quality gap of
2.05% and speedups of one to three orders of magnitude.

Runs are supervised: a circuit whose task failed even after retry and
in-process degradation renders as a ``FAILED`` row instead of aborting
the table, and ``checkpoint``/``resume`` make long runs restartable
(see :mod:`repro.experiments.supervisor`).
"""

from __future__ import annotations

from typing import Iterable

from repro.circuit.netlist import Circuit
from repro.classify.session import format_session_stats
from repro.experiments.harness import Table3Row, run_table3_rows
from repro.experiments.supervisor import RowFailure, TaskRunner
from repro.gen.suite import table3_suite
from repro.util.tables import TextTable
from repro.util.timer import format_duration


def run(
    circuits: Iterable[Circuit] | None = None,
    baseline_method: str = "greedy",
    jobs: int = 1,
    *,
    checkpoint: "str | None" = None,
    resume: bool = False,
    task_timeout: "float | None" = None,
    max_retries: "int | None" = None,
    runner: "TaskRunner | None" = None,
    store: "str | None" = None,
) -> "tuple[TextTable, list[Table3Row | RowFailure]]":
    extra = {} if max_retries is None else {"max_retries": max_retries}
    rows = run_table3_rows(
        circuits if circuits is not None else table3_suite(),
        baseline_method=baseline_method,
        jobs=jobs,
        checkpoint=checkpoint,
        resume=resume,
        task_timeout=task_timeout,
        runner=runner,
        store=store,
        **extra,
    )
    table = TextTable(
        [
            "circuit",
            "logical paths",
            "baseline RD%",
            "baseline time",
            "Heu2 RD%",
            "Heu2 time",
            "gap",
            "speedup",
        ],
        title="Table III: approach of [1] vs Heuristic 2 (MCNC-like stand-ins)",
    )
    for row in rows:
        if isinstance(row, RowFailure):
            table.add_row([row.label] + ["FAILED"] * 7)
            continue
        table.add_row(
            [
                row.name,
                f"{row.total_logical:,}",
                f"{row.baseline_percent:.2f} %",
                format_duration(row.baseline_time),
                f"{row.heu2_percent:.2f} %",
                format_duration(row.heu2_time),
                f"{row.quality_gap:+.2f} %",
                f"{row.speedup:.1f}x",
            ]
        )
    return table, rows


def main(
    jobs: int = 1,
    *,
    checkpoint: "str | None" = None,
    resume: bool = False,
    task_timeout: "float | None" = None,
    max_retries: "int | None" = None,
    store: "str | None" = None,
    verbose: bool = False,
) -> None:
    table, rows = run(
        jobs=jobs,
        checkpoint=checkpoint,
        resume=resume,
        task_timeout=task_timeout,
        max_retries=max_retries,
        store=store,
    )
    print(table.render())
    if verbose:
        for row in rows:
            if isinstance(row, Table3Row) and row.session_stats is not None:
                print(f"   {row.name}: {format_session_stats(row.session_stats)}")
    failures = [row for row in rows if isinstance(row, RowFailure)]
    for failure in failures:
        print(f"!! {failure}")
    gaps = [row.quality_gap for row in rows if isinstance(row, Table3Row)]
    if gaps:
        print(f"mean quality gap: {sum(gaps) / len(gaps):.2f} % (paper: 2.05 %)")


if __name__ == "__main__":
    main()
