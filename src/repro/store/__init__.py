"""Persistent, content-addressed result store (see :mod:`repro.store.db`).

Within one process, :class:`~repro.classify.session.CircuitSession`
caches make repeated passes over a circuit cheap; this package makes
them cheap *across* processes and machines: classification results,
exact path counts and heuristic sort analyses are keyed by a canonical
circuit fingerprint (:mod:`repro.store.fingerprint`) in one SQLite file
that the process-pool harness, the CLI and the analysis service all
share.

Usage::

    from repro import CircuitSession, ResultStore

    store = ResultStore("results.sqlite")
    session = CircuitSession(circuit, store=store)
    session.classify(Criterion.FS)      # cold: computed, written back
    CircuitSession(circuit, store=store).classify(Criterion.FS)  # warm: O(1)
"""

from repro.store.db import ResultStore, StoreStats, as_store
from repro.store.fingerprint import (
    SCHEMA_VERSION,
    CanonicalForm,
    canonical_form,
    fingerprint,
)

__all__ = [
    "SCHEMA_VERSION",
    "CanonicalForm",
    "ResultStore",
    "StoreStats",
    "as_store",
    "canonical_form",
    "fingerprint",
]
