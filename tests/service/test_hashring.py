"""The consistent hash ring: determinism, balance, minimal remapping."""

import pytest

from repro.errors import ServiceError
from repro.service.hashring import HashRing


def _keys(n):
    return [f"rdfp1:{i:064x}" for i in range(n)]


class TestRouting:
    def test_deterministic_across_instances(self):
        a = HashRing([0, 1, 2, 3])
        b = HashRing([3, 1, 0, 2])  # insertion order must not matter
        for key in _keys(500):
            assert a.route(key) == b.route(key)

    def test_route_is_stable(self):
        ring = HashRing([0, 1, 2])
        key = "rdfp1:" + "ab" * 32
        assert all(ring.route(key) == ring.route(key) for _ in range(10))

    def test_empty_ring_raises_service_error(self):
        with pytest.raises(ServiceError):
            HashRing().route("rdfp1:00")
        ring = HashRing([0])
        ring.remove(0)
        with pytest.raises(ServiceError):
            ring.route("rdfp1:00")

    def test_single_node_gets_everything(self):
        ring = HashRing([7])
        assert all(ring.route(k) == 7 for k in _keys(100))


class TestBalance:
    def test_spread_is_roughly_even(self):
        ring = HashRing(range(4), replicas=64)
        counts = ring.spread(_keys(8000))
        assert set(counts) == {0, 1, 2, 3}
        for share in counts.values():
            # 8000/4 = 2000 expected; consistent hashing with 64
            # replicas stays well within 2x of fair share
            assert 1000 <= share <= 4000

    def test_more_replicas_balance_better(self):
        keys = _keys(8000)

        def imbalance(replicas):
            counts = HashRing(range(4), replicas=replicas).spread(keys)
            return max(counts.values()) - min(counts.values())

        assert imbalance(128) < imbalance(4)


class TestMembership:
    def test_removal_only_remaps_the_dead_nodes_keys(self):
        ring = HashRing(range(4))
        keys = _keys(2000)
        before = {k: ring.route(k) for k in keys}
        ring.remove(2)
        for key, owner in before.items():
            if owner == 2:
                assert ring.route(key) != 2
            else:
                # the consistent-hashing contract: survivors keep keys
                assert ring.route(key) == owner

    def test_re_adding_restores_exact_ownership(self):
        ring = HashRing(range(4))
        keys = _keys(1000)
        before = {k: ring.route(k) for k in keys}
        ring.remove(1)
        ring.add(1)
        assert {k: ring.route(k) for k in keys} == before

    def test_add_remove_idempotent(self):
        ring = HashRing([0, 1])
        ring.add(1)
        ring.add(1)
        assert len(ring) == 2
        ring.remove(1)
        ring.remove(1)
        assert len(ring) == 1
        assert 0 in ring and 1 not in ring

    def test_replicas_validated(self):
        with pytest.raises(ValueError):
            HashRing(replicas=0)
