"""Chaos: the persistent store composed with checkpoint/resume under
injected worker crashes.  A run that dies partway and is resumed with
``--resume --store`` must produce tables byte-identical to a clean
straight-through run — and the store must never serve results written
by a worker that crashed mid-row."""

import os

import pytest

from repro.circuit.examples import mux_circuit, paper_example_circuit
from repro.experiments import table1
from repro.experiments.harness import run_table1_rows
from repro.experiments.supervisor import RowFailure, TaskRunner
from repro.store.db import ResultStore

pytestmark = pytest.mark.chaos


def _circuits():
    return [paper_example_circuit(), mux_circuit()]


# -- fault hooks (module-level: must be picklable) ----------------------


def kill_mux_first_attempt(label, attempt):
    if "mux" in label and attempt == 0:
        os._exit(3)


def kill_always(label, attempt):
    os._exit(3)


class TestStoreWithResume:
    def test_crashed_run_resumed_with_store_is_byte_identical(self, tmp_path):
        """Crash a worker, leave a partial checkpoint + partially-warm
        store, resume: the final rendered table matches a clean run."""
        store = str(tmp_path / "store.sqlite")
        ckpt = tmp_path / "t1.jsonl"
        straight, _ = table1.run(_circuits(), jobs=1)

        runner = TaskRunner(
            jobs=2,
            fault_hook=kill_mux_first_attempt,
            max_retries=0,
            backoff_base=0.01,
            degrade_in_process=False,
        )
        broken = run_table1_rows(
            _circuits(), checkpoint=str(ckpt), store=store, runner=runner
        )
        assert any(isinstance(row, RowFailure) for row in broken)

        resumed, rows = table1.run(
            _circuits(),
            jobs=2,
            checkpoint=str(ckpt),
            resume=True,
            store=store,
        )
        assert resumed.render() == straight.render()
        assert not any(isinstance(row, RowFailure) for row in rows)

    def test_warm_rerun_after_crash_recovery_is_byte_identical(self, tmp_path):
        """After crash + resume, a third fully-warm run must still be
        byte-identical and 100% served from the store."""
        store = str(tmp_path / "store.sqlite")
        ckpt = tmp_path / "t1.jsonl"
        straight, _ = table1.run(_circuits(), jobs=1)

        runner = TaskRunner(
            jobs=2,
            fault_hook=kill_mux_first_attempt,
            max_retries=0,
            backoff_base=0.01,
            degrade_in_process=False,
        )
        run_table1_rows(
            _circuits(), checkpoint=str(ckpt), store=store, runner=runner
        )
        table1.run(
            _circuits(), jobs=2, checkpoint=str(ckpt), resume=True,
            store=store,
        )

        warm, rows = table1.run(_circuits(), jobs=2, store=store)
        assert warm.render() == straight.render()
        for row in rows:
            assert row.session_stats["store_hits"] > 0
            assert row.session_stats["store_misses"] == 0
            assert row.session_stats["count_paths_calls"] == 0

    def test_all_workers_crashing_leaves_store_unpoisoned(self, tmp_path):
        """Workers killed on every attempt produce only RowFailures;
        whatever partial entries landed in the store must still yield a
        byte-identical table on the next healthy run."""
        store = str(tmp_path / "store.sqlite")
        straight, _ = table1.run(_circuits(), jobs=1)

        runner = TaskRunner(
            jobs=2,
            fault_hook=kill_always,
            max_retries=0,
            backoff_base=0.01,
            degrade_in_process=False,
        )
        broken = run_table1_rows(_circuits(), store=store, runner=runner)
        assert all(isinstance(row, RowFailure) for row in broken)

        healthy, rows = table1.run(_circuits(), jobs=2, store=store)
        assert healthy.render() == straight.render()
        assert not any(isinstance(row, RowFailure) for row in rows)

    def test_store_survives_crashes_with_valid_entries_only(self, tmp_path):
        """Every entry a crash-then-retry run writes is readable and of
        the current schema (SQLite WAL keeps the file consistent even
        when a writer process is killed)."""
        store_path = tmp_path / "store.sqlite"
        runner = TaskRunner(
            jobs=2, fault_hook=kill_mux_first_attempt, backoff_base=0.01
        )
        rows = run_table1_rows(_circuits(), store=str(store_path), runner=runner)
        assert not any(isinstance(row, RowFailure) for row in rows)
        with ResultStore(store_path) as store:
            stats = store.stats()
            assert stats.stale_entries == 0
            assert stats.entries > 0
