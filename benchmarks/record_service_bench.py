"""Record service-fleet throughput and latency under load and chaos.

Runs the full scenario matrix — 1-worker vs. 2-worker fleet, clean vs.
chaos (one worker SIGKILLed mid-run) — against real ``repro-rd serve``
subprocesses, plus a single-flight coalescing demonstration, and writes
``BENCH_service.json`` at the repo root:

* per-scenario requests/second, exact client-side p50/p99 latencies,
  and the server-side p50/p99 estimated from the fleet's
  ``fleet.request_seconds`` histogram (:func:`repro.obs.histogram_quantile`);
* the chaos scenarios additionally record worker respawns and assert
  **zero dropped requests** — every request gets an answer or a
  structured error, never a raw disconnect;
* the coalescing demo fires K identical concurrent classifies at a
  fleet with a fresh result store and asserts exactly one computation
  happened (one store write, K-1 responses flagged ``coalesced``).

The committed file is the reference point for spotting service-layer
regressions; rerun after any fleet/server/client change:

    PYTHONPATH=src python benchmarks/record_service_bench.py

``--against ADDR --duration S [--kill-one]`` instead load-tests an
already-running fleet (the CI smoke step) and prints the scenario JSON
to stdout, exiting non-zero on any dropped request:

    PYTHONPATH=src python benchmarks/record_service_bench.py \\
        --against /tmp/fleet.sock --duration 5 --kill-one
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.errors import RemoteError, ReproError  # noqa: E402
from repro.obs import histogram_quantile  # noqa: E402
from repro.service.client import RetryPolicy, ServiceClient  # noqa: E402
from repro.store.db import ResultStore  # noqa: E402

OUT = REPO / "BENCH_service.json"

#: (circuit, criterion) pairs cycled by the load threads — small/medium
#: circuits so a run measures service overhead, not one giant classify;
#: distinct pairs so steady-state load is not flattered by coalescing
WORKLOAD = (
    ("c17", "fs"),
    ("c17", "sigma"),
    ("misex-f", "fs"),
    ("z5xp-b", "fs"),
    ("bw-d", "sigma"),
    ("xcmp16", "fs"),
)

#: the coalescing demo's circuit: slow enough (~seconds) that K clients
#: reliably overlap in flight
COALESCE_CIRCUIT = "s499-ecc"


def percentile(samples: "list[float]", q: float) -> "float | None":
    """Exact client-side percentile (nearest-rank) of sorted samples."""
    if not samples:
        return None
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
    return ordered[rank]


class Fleet:
    """One ``repro-rd serve`` subprocess fleet on a unix socket."""

    def __init__(self, workers: int, store: "str | None" = None):
        self.workers = workers
        self._dir = tempfile.mkdtemp(prefix="repro-svc-bench-")
        self.address = os.path.join(self._dir, "fleet.sock")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        cmd = [
            sys.executable, "-m", "repro", "serve",
            "--socket", self.address,
            "--workers", str(workers),
            "--concurrency", "4",
        ]
        if store is not None:
            cmd += ["--store", store]
        self.proc = subprocess.Popen(
            cmd, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        # the fleet binds its listener only after every worker answers
        # pings, so one successful connect means fully ready
        with ServiceClient.connect(
            self.address,
            retry=RetryPolicy(attempts=120, base_delay=0.25, max_delay=0.5),
        ) as client:
            client.ping()

    def __enter__(self) -> "Fleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.proc.terminate()
        try:
            self.proc.wait(60)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait()


def worker_pids(address: str) -> "list[int]":
    with ServiceClient.connect(address, retry=RetryPolicy()) as client:
        stats = client.stats()
    return [w["pid"] for w in stats["workers"] if w.get("pid")]


def run_load(
    address: str,
    duration: float,
    threads: int = 4,
    kill_one: bool = False,
) -> dict:
    """Drive classify load for ``duration`` seconds; with ``kill_one``,
    SIGKILL one worker a third of the way in (the fleet must answer
    every request regardless — retried, or failed *structurally*)."""
    stop_at = time.monotonic() + duration
    latencies: "list[float]" = []
    counts = {"ok": 0, "structured_errors": 0, "dropped": 0}
    lock = threading.Lock()

    def drive(index: int) -> None:
        with ServiceClient.connect(
            address, retry=RetryPolicy(base_delay=0.05)
        ) as client:
            step = index  # stagger so threads cycle different pairs
            while time.monotonic() < stop_at:
                circuit, criterion = WORKLOAD[step % len(WORKLOAD)]
                step += threads
                t0 = time.monotonic()
                try:
                    client.classify(circuit=circuit, criterion=criterion)
                    outcome = "ok"
                except RemoteError:
                    outcome = "structured_errors"
                except ReproError:
                    # transport-level failure that survived the retry
                    # policy: the one thing the fleet must never emit
                    outcome = "dropped"
                elapsed = time.monotonic() - t0
                with lock:
                    counts[outcome] += 1
                    if outcome == "ok":
                        latencies.append(elapsed)

    pool = [
        threading.Thread(target=drive, args=(i,)) for i in range(threads)
    ]
    started = time.monotonic()
    for t in pool:
        t.start()
    if kill_one:
        time.sleep(duration / 3)
        os.kill(worker_pids(address)[0], signal.SIGKILL)
    for t in pool:
        t.join(duration + 120)
    wall = time.monotonic() - started

    with ServiceClient.connect(address, retry=RetryPolicy()) as client:
        snapshot = client.metrics()
        stats = client.stats()
    server_hist = (
        snapshot["metrics"]["histograms"].get("fleet.request_seconds") or {}
    )
    return {
        "duration_s": round(wall, 2),
        "threads": threads,
        "requests": sum(counts.values()),
        "ok": counts["ok"],
        "structured_errors": counts["structured_errors"],
        "dropped": counts["dropped"],
        "rps": round(counts["ok"] / wall, 1),
        "client_p50_s": round(percentile(latencies, 0.50) or 0.0, 4),
        "client_p99_s": round(percentile(latencies, 0.99) or 0.0, 4),
        "server_p50_s": round(histogram_quantile(server_hist, 0.50) or 0.0, 4),
        "server_p99_s": round(histogram_quantile(server_hist, 0.99) or 0.0, 4),
        "respawns": stats["respawns"],
    }


def run_coalesce_demo(clients: int = 6) -> dict:
    """K identical concurrent classifies against a fresh store leave
    exactly the store footprint of ONE classify (single-flight
    coalescing collapsed them into one computation), and K-1 responses
    come back flagged ``coalesced``."""
    with tempfile.TemporaryDirectory(prefix="repro-svc-bench-") as tmp:
        # baseline: one request, one fresh store — the write count a
        # single computation produces (one classify persists several
        # entry kinds: classification passes, path counts, sort order)
        single_path = os.path.join(tmp, "single.sqlite")
        with Fleet(workers=1, store=single_path) as fleet:
            with ServiceClient.connect(
                fleet.address, retry=RetryPolicy()
            ) as client:
                client.classify(circuit=COALESCE_CIRCUIT)
        with ResultStore(single_path) as store:
            single_writes = store.stats().entries

        store_path = os.path.join(tmp, "coalesced.sqlite")
        with Fleet(workers=2, store=store_path) as fleet:
            barrier = threading.Barrier(clients)
            results: "list[dict | None]" = [None] * clients

            def fire(i: int) -> None:
                with ServiceClient.connect(
                    fleet.address, retry=RetryPolicy()
                ) as client:
                    barrier.wait()
                    results[i] = client.classify(circuit=COALESCE_CIRCUIT)

            pool = [
                threading.Thread(target=fire, args=(i,))
                for i in range(clients)
            ]
            for t in pool:
                t.start()
            for t in pool:
                t.join(300)
            assert all(r is not None for r in results), "a client hung"
            coalesced = sum(1 for r in results if r["coalesced"])
            accepted = {r["accepted"] for r in results}
        with ResultStore(store_path) as store:
            writes = store.stats().entries
    assert coalesced == clients - 1, f"{coalesced}/{clients - 1} coalesced"
    assert writes == single_writes, (
        f"{clients} coalesced requests wrote {writes} store entries; "
        f"a single request writes {single_writes}"
    )
    assert len(accepted) == 1, "coalesced answers diverged"
    return {
        "circuit": COALESCE_CIRCUIT,
        "concurrent_clients": clients,
        "coalesced_responses": coalesced,
        "computations": 1,
        "store_writes": writes,
        "single_request_writes": single_writes,
    }


def run_matrix(duration: float) -> dict:
    scenarios = {}
    for workers in (1, 2):
        for chaos in (False, True):
            label = f"{workers}w-{'chaos' if chaos else 'clean'}"
            print(f"  scenario {label} ({duration:.0f}s)...", flush=True)
            with Fleet(workers=workers) as fleet:
                scenario = run_load(
                    fleet.address, duration, kill_one=chaos
                )
            scenario["workers"] = workers
            scenario["chaos"] = chaos
            if scenario["dropped"]:
                raise SystemExit(
                    f"{label}: {scenario['dropped']} dropped request(s) — "
                    "the fleet broke its no-raw-disconnect contract"
                )
            if chaos and scenario["respawns"] < 1:
                raise SystemExit(f"{label}: the killed worker never respawned")
            scenarios[label] = scenario
    print("  coalescing demo...", flush=True)
    coalesce = run_coalesce_demo()
    return {
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
        },
        "workload": [list(pair) for pair in WORKLOAD],
        "scenarios": scenarios,
        "coalescing": coalesce,
    }


def main() -> int:
    parser = argparse.ArgumentParser(
        description="service fleet load generator / benchmark recorder"
    )
    parser.add_argument(
        "--against", metavar="ADDR", default=None,
        help="load-test a running fleet at this address instead of "
        "recording the full matrix (CI smoke mode; JSON to stdout)",
    )
    parser.add_argument(
        "--duration", type=float, default=6.0, metavar="S",
        help="seconds of load per scenario (default: 6)",
    )
    parser.add_argument(
        "--threads", type=int, default=4, metavar="N",
        help="concurrent client threads (default: 4)",
    )
    parser.add_argument(
        "--kill-one", action="store_true",
        help="with --against: SIGKILL one worker a third of the way in",
    )
    args = parser.parse_args()

    if args.against:
        scenario = run_load(
            args.against, args.duration,
            threads=args.threads, kill_one=args.kill_one,
        )
        print(json.dumps(scenario, indent=2))
        if scenario["dropped"]:
            print(
                f"FAIL: {scenario['dropped']} dropped request(s)",
                file=sys.stderr,
            )
            return 1
        return 0

    payload = run_matrix(args.duration)
    OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUT}")
    for label, s in payload["scenarios"].items():
        print(
            f"  {label:<9} rps={s['rps']:<7} p50={s['client_p50_s']}s "
            f"p99={s['client_p99_s']}s respawns={s['respawns']}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
