"""Gate-level combinational netlist substrate.

The paper's circuit model (Section II): a combinational circuit consists of
*gates* (simple gates AND/OR/NAND/NOR/NOT plus primary inputs and outputs)
and *leads* (wires connecting an output pin to one input pin; a fanout stem
contributes one lead per fanout branch).
"""

from repro.circuit.gates import (
    GateType,
    controlling_value,
    noncontrolling_value,
    is_inverting,
    evaluate_gate,
)
from repro.circuit.flat import FlatCircuit, LiteralClosures
from repro.circuit.netlist import Circuit, Lead
from repro.circuit.builder import CircuitBuilder
from repro.circuit.bench import parse_bench, parse_bench_file, write_bench
from repro.circuit.pla import parse_pla, parse_pla_file, TwoLevelCover
from repro.circuit.examples import paper_example_circuit
from repro.circuit.sequential import (
    ScanCircuit,
    parse_sequential_bench,
    parse_sequential_bench_file,
)
from repro.circuit.dot import to_dot
from repro.circuit import transforms

__all__ = [
    "GateType",
    "controlling_value",
    "noncontrolling_value",
    "is_inverting",
    "evaluate_gate",
    "Circuit",
    "FlatCircuit",
    "LiteralClosures",
    "Lead",
    "CircuitBuilder",
    "parse_bench",
    "parse_bench_file",
    "write_bench",
    "parse_pla",
    "parse_pla_file",
    "TwoLevelCover",
    "paper_example_circuit",
    "ScanCircuit",
    "parse_sequential_bench",
    "parse_sequential_bench_file",
    "to_dot",
    "transforms",
]
