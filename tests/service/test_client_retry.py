"""The fault-tolerant client against scripted fake servers: bounded
retry with backoff, idempotent-only resend, deadline budgets, and the
close()-during-request race."""

import json
import socket
import threading
import time

import pytest

from repro.errors import RemoteError, ServiceError, TaskTimeout
from repro.service.client import IDEMPOTENT_OPS, RetryPolicy, ServiceClient


class ScriptedServer:
    """A unix-socket server whose per-connection behavior is a script:
    ``script(server, conn_index, file)`` drives one connection."""

    def __init__(self, tmp_path, script):
        self.path = str(tmp_path / "scripted.sock")
        self.script = script
        self.connections = 0
        self.received = []  # every request message any connection read
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.bind(self.path)
        self._sock.listen(8)
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _loop(self):
        while True:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            index = self.connections
            self.connections += 1
            threading.Thread(
                target=self._serve, args=(conn, index), daemon=True
            ).start()

    def _serve(self, conn, index):
        try:
            with conn, conn.makefile("rwb") as file:
                self.script(self, index, file)
        except (OSError, ValueError):
            pass

    def read(self, file) -> dict:
        message = json.loads(file.readline())
        self.received.append(message)
        return message

    def send(self, file, payload: dict) -> None:
        file.write(json.dumps(payload).encode() + b"\n")
        file.flush()

    def close(self):
        self._sock.close()


@pytest.fixture
def scripted(tmp_path):
    servers = []

    def factory(script):
        server = ScriptedServer(tmp_path, script)
        servers.append(server)
        return server

    yield factory
    for server in servers:
        server.close()


def _ok(request, **result):
    result.setdefault("name", "fake")
    return {"id": request["id"], "ok": True, "result": result}


class TestRetryPolicy:
    def test_delays_grow_and_cap(self):
        policy = RetryPolicy(
            attempts=6, base_delay=0.1, max_delay=0.5, jitter=0.0
        )
        delays = [policy.delay(k) for k in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=1.0, jitter=0.5)
        lo = policy.delay(0, rng=lambda: 0.0)
        hi = policy.delay(0, rng=lambda: 1.0)
        assert lo == pytest.approx(0.5)
        assert hi == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_all_current_ops_are_idempotent(self):
        assert IDEMPOTENT_OPS == {
            "classify", "metrics", "ping", "signoff", "stats", "tightness",
        }


class TestConnectRetry:
    def test_connect_retries_until_server_appears(self, tmp_path):
        path = str(tmp_path / "late.sock")
        server_box = {}

        def bind_late():
            time.sleep(0.3)
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.bind(path)
            sock.listen(1)
            server_box["sock"] = sock

        threading.Thread(target=bind_late, daemon=True).start()
        policy = RetryPolicy(attempts=20, base_delay=0.05, max_delay=0.1)
        client = ServiceClient.connect(path, retry=policy)
        client.close()
        server_box["sock"].close()

    def test_connect_without_policy_fails_fast(self, tmp_path):
        with pytest.raises(ServiceError) as exc_info:
            ServiceClient.connect(str(tmp_path / "absent.sock"))
        assert "after 1 attempt" in str(exc_info.value)

    def test_malformed_port_never_retries(self):
        started = time.monotonic()
        with pytest.raises(ServiceError):
            ServiceClient.connect(
                "127.0.0.1:notaport",
                retry=RetryPolicy(attempts=5, base_delay=1.0),
            )
        assert time.monotonic() - started < 0.5


class TestRequestRetry:
    def test_reset_mid_request_resends_transparently(self, scripted):
        def script(server, index, file):
            request = server.read(file)
            if index == 0:
                return  # close before answering: a dying worker
            server.send(file, _ok(request, answer=42))

        server = scripted(script)
        with ServiceClient.connect(
            server.path, retry=RetryPolicy(base_delay=0.01)
        ) as client:
            result = client.request("classify", circuit="c17")
        assert result["answer"] == 42
        assert server.connections == 2  # reconnected exactly once

    def test_no_policy_means_no_retry(self, scripted):
        def script(server, index, file):
            server.read(file)

        server = scripted(script)
        with ServiceClient.connect(server.path) as client:
            with pytest.raises(ServiceError):
                client.request("classify", circuit="c17")
        assert server.connections == 1

    def test_non_idempotent_op_is_never_resent(self, scripted):
        def script(server, index, file):
            request = server.read(file)
            if index == 0:
                return
            server.send(file, _ok(request))

        server = scripted(script)
        with ServiceClient.connect(
            server.path, retry=RetryPolicy(base_delay=0.01)
        ) as client:
            with pytest.raises(ServiceError):
                client.request("mutate", target="x")
        # the scripted server would have answered a resend; the client
        # must not have reconnected for an op outside IDEMPOTENT_OPS
        assert server.connections == 1

    def test_structured_error_is_an_answer_not_a_retry(self, scripted):
        def script(server, index, file):
            request = server.read(file)
            server.send(file, {
                "id": request["id"], "ok": False,
                "error": {"type": "CircuitError", "message": "bad"},
            })

        server = scripted(script)
        with ServiceClient.connect(
            server.path, retry=RetryPolicy(base_delay=0.01)
        ) as client:
            with pytest.raises(RemoteError) as exc_info:
                client.request("classify", circuit="nope")
        assert exc_info.value.error_type == "CircuitError"
        assert server.connections == 1

    def test_retry_after_hint_is_surfaced(self, scripted):
        def script(server, index, file):
            request = server.read(file)
            server.send(file, {
                "id": request["id"], "ok": False,
                "error": {
                    "type": "Overloaded", "message": "queue full",
                    "retry_after": 1.5,
                },
            })

        server = scripted(script)
        with ServiceClient.connect(server.path) as client:
            with pytest.raises(RemoteError) as exc_info:
                client.request("classify", circuit="c17")
        assert exc_info.value.error_type == "Overloaded"
        assert exc_info.value.retry_after == 1.5


class TestDeadlineBudget:
    def test_budget_exhausted_locally_raises_task_timeout(self, scripted):
        def script(server, index, file):
            server.read(file)  # never answer: every attempt resets

        server = scripted(script)
        policy = RetryPolicy(attempts=50, base_delay=0.05, jitter=0.0)
        with ServiceClient.connect(server.path, retry=policy) as client:
            started = time.monotonic()
            with pytest.raises(TaskTimeout):
                client.request("classify", circuit="c17", deadline=0.4)
            elapsed = time.monotonic() - started
        # the budget, not the 50-attempt policy, bounded the wait
        assert elapsed < 5.0

    def test_deadline_shrinks_across_attempts(self, scripted):
        def script(server, index, file):
            request = server.read(file)
            if index == 0:
                return  # force a retry
            server.send(file, _ok(request))

        server = scripted(script)
        policy = RetryPolicy(base_delay=0.05, jitter=0.0)
        with ServiceClient.connect(server.path, retry=policy) as client:
            client.request("classify", circuit="c17", deadline=30.0)
        first, second = server.received
        assert first["deadline"] == 30.0  # first hop: untouched budget
        assert second["deadline"] < 30.0  # retry: what remains


class TestCloseRace:
    def test_close_during_streaming_request_raises_clean_remote_error(
        self, scripted
    ):
        request_seen = threading.Event()

        def script(server, index, file):
            request = server.read(file)
            server.send(file, {
                "id": request["id"], "event": "start", "name": "slow",
            })
            request_seen.set()
            time.sleep(30)  # never answer; the client will close first

        server = scripted(script)
        client = ServiceClient.connect(server.path)
        outcome = {}

        def run_request():
            try:
                client.request("classify", circuit="slow-circuit")
            except BaseException as exc:  # noqa: BLE001 - assert on type
                outcome["exc"] = exc

        thread = threading.Thread(target=run_request)
        thread.start()
        assert request_seen.wait(10), "request never reached the server"
        client.close()
        thread.join(10)
        assert not thread.is_alive(), "reader hung after close()"
        exc = outcome.get("exc")
        assert isinstance(exc, RemoteError), f"got {type(exc).__name__}: {exc}"
        assert exc.error_type == "ClientClosed"

    def test_close_then_request_is_clean(self, scripted):
        def script(server, index, file):
            request = server.read(file)
            server.send(file, _ok(request))

        server = scripted(script)
        client = ServiceClient.connect(server.path)
        client.ping()
        client.close()
        with pytest.raises(RemoteError) as exc_info:
            client.ping()
        assert exc_info.value.error_type == "ClientClosed"
