"""Simplification passes verified by exhaustive functional equivalence."""

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.circuit.simplify import (
    propagate_constants,
    remove_double_inverters,
    sweep,
)
from repro.logic.simulate import all_vectors, output_values, simulate


class TestDoubleInverters:
    def test_collapses_pairs(self):
        b = CircuitBuilder("t")
        a = b.pi("a")
        n1 = b.not_(a, "n1")
        n2 = b.not_(n1, "n2")
        b.po(n2, "out")
        circuit = b.build()
        simplified, mapping = remove_double_inverters(circuit)
        assert simplified.num_gates == circuit.num_gates - 1
        # n2 resolves to a.
        assert simplified.gate_name(mapping[n2]) == "a"
        for (v,) in all_vectors(1):
            assert output_values(simplified, (v,)) == output_values(
                circuit, (v,)
            )

    def test_long_chain(self):
        from repro.circuit.examples import chain_circuit

        circuit = chain_circuit(6, invert=True)  # even: identity
        simplified = sweep(circuit)
        assert simplified.num_gates < circuit.num_gates
        for (v,) in all_vectors(1):
            assert output_values(simplified, (v,)) == (v,)

    def test_no_op_when_clean(self, example_circuit):
        simplified, mapping = remove_double_inverters(example_circuit)
        assert simplified.num_gates == example_circuit.num_gates
        assert mapping == {g: g for g in range(example_circuit.num_gates)}

    def test_random_circuits_equivalent(self):
        from repro.gen.random_logic import random_dag
        from repro.logic.simulate import truth_table

        for seed in range(6):
            circuit = random_dag(5, 14, seed=seed)
            simplified = sweep(circuit)
            assert truth_table(simplified) == truth_table(circuit), seed


class TestConstantPropagation:
    def _circuit(self):
        b = CircuitBuilder("t")
        a, s, c = b.pi("a"), b.pi("s"), b.pi("c")
        g1 = b.and_(a, s, name="g1")
        g2 = b.or_(g1, c, name="g2")
        b.po(g2, "out")
        return b.build(), (a, s, c)

    def test_noncontrolling_constant_drops_pin(self):
        circuit, (a, s, c) = self._circuit()
        # s = 1: AND passes a through; g1 disappears (alias to a).
        simplified, mapping = propagate_constants(circuit, {s: 1})
        assert simplified.num_gates < circuit.num_gates
        for va, vc in all_vectors(2):
            expected = output_values(circuit, (va, 1, vc))
            # simplified keeps all three PIs; s is dangling.
            got = output_values(simplified, (va, 0, vc))
            assert got == expected

    def test_controlling_constant_folds_gate(self):
        circuit, (a, s, c) = self._circuit()
        # s = 0 kills g1; g2 = OR(0, c) aliases to c.
        simplified, mapping = propagate_constants(circuit, {s: 0})
        for va, vc in all_vectors(2):
            assert output_values(simplified, (va, 1, vc)) == (vc,)

    def test_constant_po_rejected(self):
        b = CircuitBuilder("t")
        a, c = b.pi("a"), b.pi("c")
        b.po(b.and_(a, c, name="g"), "out")
        circuit = b.build()
        with pytest.raises(ValueError):
            propagate_constants(circuit, {a: 0})

    def test_nand_with_nc_constant_becomes_inverter(self):
        from repro.circuit.gates import GateType

        b = CircuitBuilder("t")
        a, c = b.pi("a"), b.pi("c")
        b.po(b.nand(a, c, name="g"), "out")
        circuit = b.build()
        simplified, mapping = propagate_constants(
            circuit, {circuit.gate_by_name("c"): 1}
        )
        g = mapping[circuit.gate_by_name("g")]
        assert simplified.gate_type(g) is GateType.NOT
        for (va,) in all_vectors(1):
            assert output_values(simplified, (va, 0)) == (1 - va,)

    def test_equivalence_on_random_circuits(self):
        from repro.gen.random_logic import random_dag

        for seed in range(6):
            circuit = random_dag(5, 12, seed=seed + 50)
            pi = circuit.inputs[0]
            for value in (0, 1):
                try:
                    simplified, _ = propagate_constants(circuit, {pi: value})
                except ValueError:
                    continue  # a PO became constant: legitimately refused
                for vector in all_vectors(5):
                    if vector[0] != value:
                        continue
                    assert output_values(simplified, vector) == (
                        output_values(circuit, vector)
                    ), (seed, value, vector)
