"""Extension bench: fault coverage vs input sort (the Section-III claim
that minimising |LP(σ)| maximises fault coverage, measured)."""

import pytest

from repro.experiments.coverage_study import compare_sorts
from repro.gen.suite import get_circuit
from repro.sorting.heuristics import heuristic2_sort, pin_order_sort

_CIRCUITS = ["s880-alu", "s5315-rca"]


@pytest.mark.parametrize("name", _CIRCUITS)
def test_coverage_vs_sort(benchmark, name):
    circuit = get_circuit(name)
    sorts = {
        "pin": pin_order_sort(circuit),
        "heu2": heuristic2_sort(circuit),
    }
    estimates = benchmark.pedantic(
        compare_sorts,
        args=(circuit, sorts),
        kwargs={"sample_size": 60},
        rounds=1,
        iterations=1,
    )
    # The better sort never selects more paths, and its sampled coverage
    # is never materially worse (sampling noise margin 10 points).
    assert estimates["heu2"].selected <= estimates["pin"].selected
    assert (
        estimates["heu2"].coverage >= estimates["pin"].coverage - 0.10
    ), name
