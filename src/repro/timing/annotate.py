"""Per-gate delay annotations for the ``.bench`` family.

Real timing signoff runs on annotated netlists, not unit delays.  Two
equivalent textual forms feed :class:`~repro.timing.delays.DelayAssignment`:

* **comment form** — ``# delay: <gate> <rise> <fall>`` lines inside the
  ``.bench`` file itself (ordinary parsers skip them as comments);
* **sidecar form** — a ``.delays`` file next to the netlist with plain
  ``<gate> <rise> <fall>`` lines (``#`` comments allowed).

Both parse to the same ``{gate_name: (rise, fall)}`` dict and are
materialized by :func:`materialize_delays`, which overlays the
annotations on a deterministic seeded base assignment so partially
annotated (or completely unannotated) suites still get reproducible
timing.  :func:`delays_digest` hashes an assignment in *canonical* gate
order — stable across netlist renames and declaration-order shuffles —
so it can safely extend an ``rdfp1:`` store key.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

from repro.circuit.bench import BenchParseError
from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.timing.delays import DelayAssignment, random_delays, unit_delays

#: Marker introducing an annotation inside a ``.bench`` comment.
DELAY_PREFIX = "delay:"


def _parse_payload(payload: str, err) -> "tuple[str, float, float]":
    parts = payload.split()
    if len(parts) != 3:
        raise err(f"expected '<gate> <rise> <fall>', got {payload!r}")
    name, rise_text, fall_text = parts
    try:
        rise = float(rise_text)
        fall = float(fall_text)
    except ValueError:
        raise err(f"non-numeric delay in {payload!r}") from None
    if rise < 0 or fall < 0:
        raise err(f"negative delay in {payload!r}")
    return name, rise, fall


def _err_factory(source: "str | None"):
    def err(message: str, line_no: "int | None" = None):
        prefix = f"{source}: " if source else ""
        where = f"line {line_no}: " if line_no is not None else ""
        return BenchParseError(f"{prefix}{where}{message}")

    return err


def parse_delay_annotations(
    text: str, source: "str | None" = None
) -> "dict[str, tuple[float, float]]":
    """Extract ``# delay: <gate> <rise> <fall>`` comment lines.

    Lenient towards everything that is not a delay comment (netlist
    lines, ordinary comments); strict about the payload of lines that
    are.  Duplicate annotations for one gate are an error.
    """
    err = _err_factory(source)
    out: "dict[str, tuple[float, float]]" = {}
    for line_no, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.strip()
        if not stripped.startswith("#"):
            continue
        body = stripped.lstrip("#").strip()
        if not body.lower().startswith(DELAY_PREFIX):
            continue
        payload = body[len(DELAY_PREFIX):].strip()
        name, rise, fall = _parse_payload(
            payload, lambda m, n=line_no: err(m, n)
        )
        if name in out:
            raise err(f"duplicate delay annotation for {name!r}", line_no)
        out[name] = (rise, fall)
    return out


def parse_delay_lines(
    text: str, source: "str | None" = None
) -> "dict[str, tuple[float, float]]":
    """Parse sidecar (``.delays``) text: one ``<gate> <rise> <fall>`` per
    line, ``#`` comments and blank lines allowed.  The comment form is
    accepted too, so a sidecar can be produced by grepping a ``.bench``.

    Unlike :func:`parse_delay_annotations` every non-comment line must
    be a valid annotation — a sidecar has no netlist lines to skip.
    """
    err = _err_factory(source)
    out: "dict[str, tuple[float, float]]" = {}
    for line_no, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.strip()
        if stripped.startswith("#"):
            body = stripped.lstrip("#").strip()
            if not body.lower().startswith(DELAY_PREFIX):
                continue
            payload = body[len(DELAY_PREFIX):].strip()
        else:
            payload = stripped.split("#", 1)[0].strip()
            if not payload:
                continue
        name, rise, fall = _parse_payload(
            payload, lambda m, n=line_no: err(m, n)
        )
        if name in out:
            raise err(f"duplicate delay annotation for {name!r}", line_no)
        out[name] = (rise, fall)
    return out


def parse_delays_file(path: "str | Path") -> "dict[str, tuple[float, float]]":
    path = Path(path)
    return parse_delay_lines(path.read_text(), source=str(path))


def sidecar_path(bench_path: "str | Path") -> Path:
    """The conventional sidecar location for a netlist file."""
    return Path(bench_path).with_suffix(".delays")


def materialize_delays(
    circuit: Circuit,
    annotations: "dict[str, tuple[float, float]] | None" = None,
    *,
    seed: int = 0,
    base: str = "random",
    strict: bool = False,
) -> DelayAssignment:
    """Turn name-keyed annotations into a :class:`DelayAssignment`.

    Unannotated gates fall back to a deterministic base assignment:
    ``base="random"`` (seeded, the default — reproducible timing for
    unannotated suites) or ``base="unit"``.  With ``strict=True`` every
    non-PI gate must be annotated instead (the wire-transfer contract:
    no fallback ambiguity between client and server).

    Annotating an unknown gate or a primary input (PIs switch at t=0 by
    definition) raises :class:`BenchParseError`.
    """
    if base == "random":
        assignment = random_delays(circuit, seed=seed)
    elif base == "unit":
        assignment = unit_delays(circuit)
    else:
        raise ValueError(f"unknown base {base!r}; use 'random' or 'unit'")
    rise = list(assignment.rise)
    fall = list(assignment.fall)
    annotated = set()
    for name, (r, f) in (annotations or {}).items():
        try:
            gid = circuit.gate_by_name(name)
        except KeyError:
            raise BenchParseError(
                f"delay annotation for unknown gate {name!r}"
            ) from None
        if circuit.gate_type(gid) is GateType.PI:
            raise BenchParseError(
                f"cannot annotate primary input {name!r}: PIs switch at t=0"
            )
        rise[gid] = r
        fall[gid] = f
        annotated.add(gid)
    if strict:
        missing = [
            circuit.gate_name(g)
            for g in range(circuit.num_gates)
            if circuit.gate_type(g) is not GateType.PI and g not in annotated
        ]
        if missing:
            raise BenchParseError(
                "strict materialization is missing annotations for: "
                + ", ".join(sorted(missing)[:5])
                + ("..." if len(missing) > 5 else "")
            )
    return DelayAssignment(circuit=circuit, rise=tuple(rise), fall=tuple(fall))


def write_delay_annotations(
    delays: DelayAssignment, *, comment: bool = False
) -> str:
    """Serialize an assignment as annotation text (round-trippable).

    One line per non-PI gate in declaration order; ``repr`` floats, so
    values survive the round trip bit-exactly.  ``comment=True`` emits
    the ``# delay:`` comment form suitable for appending to a
    ``.bench``; otherwise the plain sidecar form.
    """
    circuit = delays.circuit
    prefix = "# delay: " if comment else ""
    lines = []
    for gid in range(circuit.num_gates):
        if circuit.gate_type(gid) is GateType.PI:
            continue
        lines.append(
            f"{prefix}{circuit.gate_name(gid)} "
            f"{delays.rise[gid]!r} {delays.fall[gid]!r}"
        )
    return "\n".join(lines) + ("\n" if lines else "")


def delays_digest(delays: DelayAssignment, canonical=None) -> str:
    """Content hash of an assignment in canonical gate order.

    Equal for the same timing on any renaming/reordering of the netlist
    — the safe companion to the isomorphism-insensitive ``rdfp1:``
    circuit fingerprint in store keys.
    """
    if canonical is None:
        from repro.store.fingerprint import canonical_form

        canonical = canonical_form(delays.circuit)
    blob = ";".join(
        f"{r!r},{f!r}"
        for r, f in zip(
            canonical.pack_gates(delays.rise), canonical.pack_gates(delays.fall)
        )
    ).encode("ascii")
    return "rdly1:" + hashlib.sha256(blob).hexdigest()[:32]


__all__ = [
    "DELAY_PREFIX",
    "delays_digest",
    "materialize_delays",
    "parse_delay_annotations",
    "parse_delay_lines",
    "parse_delays_file",
    "sidecar_path",
    "write_delay_annotations",
]
