"""Record classifier throughput on the frozen Table-I suite.

Runs one FS and one SIGMA_PI (Heuristic-1 sort) classification pass per
suite circuit through a shared :class:`~repro.classify.session.CircuitSession`
and writes ``BENCH_classify.json`` at the repo root: per-circuit
path-edge counts, wall time, and edges/second, plus suite totals.  The
committed file is the reference point for spotting classifier-core
regressions; rerun after any engine change:

    PYTHONPATH=src python benchmarks/record_classify_bench.py
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path

from repro.classify.conditions import Criterion
from repro.classify.session import CircuitSession
from repro.gen.suite import table1_suite

OUT = Path(__file__).resolve().parent.parent / "BENCH_classify.json"


def bench_circuit(circuit) -> dict:
    session = CircuitSession(circuit)
    passes = {}
    for label, criterion, sort in (
        ("fs", Criterion.FS, None),
        ("sigma_heu1", Criterion.SIGMA_PI, session.heuristic1_sort()),
    ):
        result = session.classify(criterion, sort=sort)
        passes[label] = {
            "accepted": result.accepted,
            "rd_percent": round(result.rd_percent, 2),
            "edges_visited": result.edges_visited,
            "elapsed_s": round(result.elapsed, 4),
            "edges_per_second": round(result.edges_per_second),
        }
    return {
        "circuit": circuit.name,
        "gates": circuit.num_gates,
        "total_logical_paths": session.counts.total_logical,
        "passes": passes,
    }


def main() -> None:
    circuits = table1_suite()
    rows = []
    for circuit in circuits:
        row = bench_circuit(circuit)
        rows.append(row)
        fs = row["passes"]["fs"]
        print(
            f"{row['circuit']:<16} {fs['edges_visited']:>9} edges "
            f"{fs['elapsed_s']:>8.2f}s  {fs['edges_per_second']:>8} edges/s"
        )
    edges = sum(
        p["edges_visited"] for r in rows for p in r["passes"].values()
    )
    elapsed = sum(
        p["elapsed_s"] for r in rows for p in r["passes"].values()
    )
    doc = {
        "benchmark": "classify-throughput",
        "unit": "path-edge extensions per second",
        "suite": [r["circuit"] for r in rows],
        "python": platform.python_version(),
        "totals": {
            "edges_visited": edges,
            "elapsed_s": round(elapsed, 2),
            "edges_per_second": round(edges / elapsed) if elapsed else 0,
        },
        "circuits": rows,
    }
    OUT.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    print(f"\ntotal: {doc['totals']['edges_per_second']} edges/s -> {OUT}")


if __name__ == "__main__":
    sys.exit(main())
