"""Fault-injection tests for the supervised experiment harness.

Each test wires a hook into the pool-worker entrypoint
(:func:`repro.experiments.supervisor._supervised_call`) that kills,
hangs or blows up workers, then asserts the supervisor recovers and the
final tables are identical to a clean ``jobs=1`` run — the harness's
core robustness contract.  Hooks are module-level functions (they cross
the process boundary by pickle) and fire only in pool workers, never on
the in-process degradation path.

All tests here are marked ``chaos``; CI runs them as a separate step.
"""

import os
import time

import pytest

from repro.circuit.examples import mux_circuit, paper_example_circuit
from repro.experiments import table1, table3
from repro.experiments.harness import run_table1_rows, run_table3_rows
from repro.experiments.supervisor import RowFailure, TaskRunner

pytestmark = pytest.mark.chaos

#: injected hang length; must exceed every task_timeout used below but
#: never shows up in wall-clock (the hung worker is killed)
_HANG = 60.0


def _circuits():
    return [paper_example_circuit(), mux_circuit()]


def _percent_columns(rows):
    return [
        (
            row.name,
            row.total_logical,
            row.fus_percent,
            row.heu1_percent,
            row.heu2_percent,
            row.heu2_inverse_percent,
        )
        for row in rows
    ]


# -- fault hooks (module-level: must be picklable) ----------------------


def kill_mux_first_attempt(label, attempt):
    if "mux" in label and attempt == 0:
        os._exit(3)  # simulate an OOM-killed worker


def kill_always(label, attempt):
    os._exit(3)


def hang_mux_first_attempt(label, attempt):
    if "mux" in label and attempt == 0:
        time.sleep(_HANG)


def raise_always(label, attempt):
    raise RuntimeError("injected task fault")


def crash_and_hang(label, attempt):
    if attempt == 0 and "mux" in label:
        os._exit(3)
    if attempt == 0 and "paper" in label:
        time.sleep(_HANG)


# -- recovery tests -----------------------------------------------------


class TestWorkerCrash:
    def test_killed_worker_is_retried(self):
        clean = run_table1_rows(_circuits())
        runner = TaskRunner(
            jobs=2, fault_hook=kill_mux_first_attempt, backoff_base=0.01
        )
        rows = run_table1_rows(_circuits(), runner=runner)
        assert _percent_columns(rows) == _percent_columns(clean)
        assert any(e.kind == "crashed" for e in runner.events)

    def test_kill_every_attempt_degrades_in_process(self):
        """A worker that dies on every pool attempt still yields a row:
        the in-process rerun (where the hook does not fire) saves it."""
        clean = run_table1_rows(_circuits())
        runner = TaskRunner(
            jobs=2, fault_hook=kill_always, max_retries=1, backoff_base=0.01
        )
        rows = run_table1_rows(_circuits(), runner=runner)
        assert _percent_columns(rows) == _percent_columns(clean)
        assert any(e.kind == "degraded" for e in runner.events)

    def test_table3_crash_recovery(self):
        clean = run_table3_rows(_circuits())
        runner = TaskRunner(
            jobs=2, fault_hook=kill_mux_first_attempt, backoff_base=0.01
        )
        rows = run_table3_rows(_circuits(), runner=runner)
        assert [(r.name, r.total_logical, r.baseline_percent, r.heu2_percent)
                for r in rows] == [
            (r.name, r.total_logical, r.baseline_percent, r.heu2_percent)
            for r in clean
        ]


class TestTaskRaises:
    def test_raising_task_degrades_to_identical_rows(self):
        clean = run_table1_rows(_circuits())
        runner = TaskRunner(
            jobs=2, fault_hook=raise_always, max_retries=1, backoff_base=0.01
        )
        rows = run_table1_rows(_circuits(), runner=runner)
        assert _percent_columns(rows) == _percent_columns(clean)
        assert any(e.kind == "raised" for e in runner.events)
        assert any(e.kind == "degraded" for e in runner.events)

    def test_exhausted_without_degradation_yields_row_failure(self):
        runner = TaskRunner(
            jobs=2,
            fault_hook=raise_always,
            max_retries=0,
            backoff_base=0.01,
            degrade_in_process=False,
        )
        rows = run_table1_rows(_circuits(), runner=runner)
        assert all(isinstance(row, RowFailure) for row in rows)
        assert [row.label for row in rows] == [c.name for c in _circuits()]
        # a failed table still renders instead of raising
        table, _rows = table1.run(_circuits(), runner=TaskRunner(
            jobs=2,
            fault_hook=raise_always,
            max_retries=0,
            backoff_base=0.01,
            degrade_in_process=False,
        ))
        assert "FAILED" in table.render()


class TestHungWorker:
    def test_hang_times_out_and_recovers(self):
        clean = run_table1_rows(_circuits())
        runner = TaskRunner(
            jobs=2, fault_hook=hang_mux_first_attempt, backoff_base=0.01
        )
        started = time.monotonic()
        rows = run_table1_rows(_circuits(), runner=runner, task_timeout=1.0)
        elapsed = time.monotonic() - started
        assert _percent_columns(rows) == _percent_columns(clean)
        assert any(e.kind == "timeout" for e in runner.events)
        assert elapsed < _HANG / 2  # the hung worker was killed, not joined


class TestAcceptance:
    def test_crash_plus_hang_table1_byte_identical(self):
        """The ISSUE's acceptance scenario: one injected worker crash
        plus one injected hang; every row present and the rendered
        Table I byte-identical to a clean ``jobs=1`` run."""
        runner = TaskRunner(
            jobs=2, fault_hook=crash_and_hang, backoff_base=0.01
        )
        started = time.monotonic()
        faulty, rows = table1.run(
            _circuits(), runner=runner, task_timeout=1.5
        )
        elapsed = time.monotonic() - started
        clean, _ = table1.run(_circuits(), jobs=1)
        assert not any(isinstance(row, RowFailure) for row in rows)
        assert faulty.render() == clean.render()
        assert elapsed < _HANG / 2  # the hang never ran to completion
        # both faults were handled — which kind the hang surfaces as
        # depends on interleaving (the crash may break the pool first,
        # turning the hung worker into a pool casualty), so assert
        # recovery happened rather than an exact event sequence
        kinds = {e.kind for e in runner.events}
        assert "crashed" in kinds
        assert kinds & {"timeout", "requeued", "crashed"}

    def test_table3_percent_columns_after_faults(self):
        runner = TaskRunner(
            jobs=2, fault_hook=crash_and_hang, backoff_base=0.01
        )
        _table, rows = table3.run(
            _circuits(), runner=runner, task_timeout=1.5
        )
        _clean_table, clean = table3.run(_circuits(), jobs=1)
        assert [(r.name, r.baseline_percent, r.heu2_percent) for r in rows] \
            == [(r.name, r.baseline_percent, r.heu2_percent) for r in clean]
