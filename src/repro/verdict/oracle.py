"""The SAT-backed exact verdict oracle.

:class:`VerdictOracle` owns one :class:`SensitizationEncoder` and one
incremental :class:`repro.atpg.sat.Solver` per circuit and answers true
``LP(σ^π)`` / ``FS(C)`` / ``T(C)`` membership per logical path —
without the ``2^n`` input-count ceiling of
:func:`repro.classify.exact.exists_vector`.

Every SAT answer is a *checkable certificate*: the model is decoded to
a PI vector and replayed through :mod:`repro.logic.simulate` (via
:func:`repro.classify.exact.satisfies_criterion`); a witness that does
not replay raises :class:`VerdictError` — the oracle refuses to return
an unverified positive.  UNSAT answers carry no witness; on small
circuits they are differential-tested against ``exists_vector``.

Telemetry: ``verdict.queries`` / ``verdict.sat`` / ``verdict.unsat`` /
``verdict.trivial_unsat`` counters, solver work as
``verdict.conflicts`` / ``verdict.decisions`` /
``verdict.learned_reuse``, and ``verdict.witness_replays`` for the
certificate checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.atpg.sat import Solver
from repro.circuit.netlist import Circuit
from repro.classify.conditions import Criterion
from repro.classify.exact import satisfies_criterion
from repro.errors import VerdictError
from repro.obs import get_registry
from repro.paths.path import LogicalPath
from repro.verdict.encode import SensitizationEncoder

if TYPE_CHECKING:
    from repro.sorting.input_sort import InputSort

#: Per-query conflict ceiling.  Path queries are almost pure BCP; a
#: query that burns this many conflicts indicates an encoding bug, so
#: the oracle surfaces it as :class:`VerdictError` instead of looping.
DEFAULT_MAX_CONFLICTS = 100_000


@dataclass(frozen=True)
class PathVerdict:
    """The exact answer for one (path, criterion) membership question.

    ``witness`` is a simulation-replayed PI vector when ``in_set``
    (``None`` for UNSAT); the solver-work fields are diagnostics and
    depend on query order, so deterministic tables must not include
    them.
    """

    in_set: bool
    witness: "tuple[int, ...] | None" = None
    conflicts: int = 0
    decisions: int = 0
    learned_reuse: int = 0

    def __bool__(self) -> bool:
        return self.in_set


class VerdictOracle:
    """Incremental exact decisions for every path of one circuit."""

    def __init__(
        self,
        circuit: Circuit,
        max_conflicts: int = DEFAULT_MAX_CONFLICTS,
        replay_witnesses: bool = True,
    ) -> None:
        self.circuit = circuit
        self.encoder = SensitizationEncoder(circuit)
        self.solver = Solver(self.encoder.encoding.cnf)
        self.max_conflicts = max_conflicts
        self.replay_witnesses = replay_witnesses

    def decide(
        self,
        logical_path: LogicalPath,
        criterion: Criterion = Criterion.SIGMA_PI,
        sort: "InputSort | None" = None,
    ) -> PathVerdict:
        """Exact membership of ``logical_path`` in the criterion set."""
        registry = get_registry()
        registry.counter("verdict.queries").inc()
        query = self.encoder.query(logical_path, criterion, sort)
        if query.trivially_unsat:
            registry.counter("verdict.trivial_unsat").inc()
            registry.counter("verdict.unsat").inc()
            return PathVerdict(in_set=False)
        try:
            result = self.solver.solve(
                assumptions=list(query.assumptions),
                max_conflicts=self.max_conflicts,
            )
        except RuntimeError as exc:
            raise VerdictError(
                f"solver exhausted {self.max_conflicts} conflicts deciding "
                f"path {logical_path.describe(self.circuit)} under "
                f"{criterion.name}"
            ) from exc
        registry.counter("verdict.conflicts").inc(result.conflicts)
        registry.counter("verdict.decisions").inc(result.decisions)
        registry.counter("verdict.learned_reuse").inc(result.learned_reuse)
        if not result.sat:
            registry.counter("verdict.unsat").inc()
            return PathVerdict(
                in_set=False,
                conflicts=result.conflicts,
                decisions=result.decisions,
                learned_reuse=result.learned_reuse,
            )
        witness = self.encoder.decode_witness(result.model)
        if self.replay_witnesses:
            if not satisfies_criterion(
                self.circuit, criterion, logical_path, witness, sort
            ):
                raise VerdictError(
                    f"SAT witness {witness} failed simulation replay for "
                    f"path {logical_path.describe(self.circuit)} under "
                    f"{criterion.name} — encoder/solver disagree"
                )
            registry.counter("verdict.witness_replays").inc()
        registry.counter("verdict.sat").inc()
        return PathVerdict(
            in_set=True,
            witness=witness,
            conflicts=result.conflicts,
            decisions=result.decisions,
            learned_reuse=result.learned_reuse,
        )

    def solver_stats(self) -> dict:
        """Cumulative solver counters across every query so far."""
        return self.solver.stats.to_dict()
