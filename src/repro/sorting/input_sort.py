"""Input sorts (Definition 7 of the paper).

An input sort ``π`` totally orders the input leads of every gate;
``π(g, l)`` is the position of lead ``l`` among the inputs of ``g``.
The induced complete stabilizing assignment ``σ^π`` always resolves
Step 2(b) of Algorithm 1 towards the lead with the smallest position,
and Lemma 2's condition (π3) refers to the *low-order* side inputs —
those with a smaller position than the on-path lead.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.circuit.netlist import Circuit


class InputSort:
    """A per-gate total order of input leads, stored as a dense rank
    array indexed by lead id: ``rank[l] = π(dst(l), l)`` in ``0..k-1``."""

    def __init__(self, circuit: Circuit, rank: Sequence[int]) -> None:
        if len(rank) != circuit.num_leads:
            raise ValueError(
                f"rank array has {len(rank)} entries, "
                f"circuit has {circuit.num_leads} leads"
            )
        self.circuit = circuit
        self._rank = tuple(rank)
        self._validate()

    def _validate(self) -> None:
        circuit = self.circuit
        for gid in range(circuit.num_gates):
            leads = circuit.input_leads(gid)
            ranks = sorted(self._rank[l] for l in leads)
            if ranks != list(range(len(leads))):
                raise ValueError(
                    f"ranks of gate {circuit.gate_name(gid)} are not a "
                    f"permutation of 0..{len(leads) - 1}: {ranks}"
                )

    def rank(self, lead: int) -> int:
        """π(dst(lead), lead)."""
        return self._rank[lead]

    @property
    def ranks(self) -> tuple[int, ...]:
        """The dense rank array, indexed by lead id.  Hashable — two
        sorts with equal ranks induce the same σ^π, so this is the
        cache key used by analysis sessions."""
        return self._rank

    def low_order_side_pins(self, lead: int) -> list[int]:
        """Pins of ``dst(lead)`` whose lead has a smaller π-position
        (footnote 2: the low-order side-inputs of ``lead``)."""
        circuit = self.circuit
        dst = circuit.lead_dst(lead)
        my_rank = self._rank[lead]
        return [
            circuit.lead_pin(other)
            for other in circuit.input_leads(dst)
            if self._rank[other] < my_rank
        ]

    def min_rank_pin(self, gate: int, pins: Sequence[int]) -> int:
        """Among ``pins`` of ``gate``, the pin whose lead has minimum π."""
        if not pins:
            raise ValueError("empty candidate pin set")
        return min(pins, key=lambda p: self._rank[self.circuit.lead_index(gate, p)])

    def inverted(self) -> "InputSort":
        """The reversed sort (used for the paper's Heu2-bar column)."""
        circuit = self.circuit
        rank = list(self._rank)
        for gid in range(circuit.num_gates):
            leads = list(circuit.input_leads(gid))
            k = len(leads)
            for l in leads:
                rank[l] = k - 1 - self._rank[l]
        return InputSort(circuit, rank)

    @classmethod
    def from_key(
        cls, circuit: Circuit, key: Callable[[int], object]
    ) -> "InputSort":
        """Build a sort ranking each gate's leads by ``key(lead)``
        ascending (ties broken by pin order, i.e. stably)."""
        rank = [0] * circuit.num_leads
        for gid in range(circuit.num_gates):
            leads = sorted(circuit.input_leads(gid), key=key)
            for position, lead in enumerate(leads):
                rank[lead] = position
        return cls(circuit, rank)

    @classmethod
    def pin_order(cls, circuit: Circuit) -> "InputSort":
        """The trivial sort: π follows the netlist pin order."""
        rank = [0] * circuit.num_leads
        for gid in range(circuit.num_gates):
            for position, lead in enumerate(circuit.input_leads(gid)):
                rank[lead] = position
        return cls(circuit, rank)
