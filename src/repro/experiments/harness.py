"""Per-circuit experiment pipelines shared by the table generators.

A Table-I/II row runs the full paper pipeline on one circuit:

1. exact path counting (the "total no. of logical paths" column);
2. one FS pass — its RD side is the FUS column of Table I;
3. Heuristic 1: path-count input sort + one SIGMA_PI pass;
4. Heuristic 2 (Algorithm 3): FS and NR passes with per-lead counts,
   the induced sort, + one SIGMA_PI pass;
5. the inverted-Heuristic-2 control (the paper's "Heu2-bar" column).

All passes of one row run through a single
:class:`~repro.classify.session.CircuitSession`, so the exact path
counts are computed once and condition tables are reused across passes.
Timings
follow the paper's accounting: Heu1 = sort + one classification pass;
Heu2 = three classification passes + sort.

Multi-circuit runs fan out through the supervised
:class:`~repro.experiments.supervisor.TaskRunner` when ``jobs > 1`` (one
session per worker process); ``jobs=1`` is the deterministic in-process
fallback.  Task payloads stay tiny because circuits pickle as their bare
netlist dict (name/types/names/fanin — a few KB): workers rebuild the
flat IR, literal closures and session caches locally on first use, and
lead numbering/fingerprints come out identical on both sides by
construction, so store keys written by a worker hit from the parent.  Results are identical either way — only wall-clock changes —
because every pass is deterministic and the runner preserves input
order.  The supervisor adds per-task wall-clock budgets derived from
each circuit's exact path count, bounded retry with pool respawn on
worker crashes, and in-process degradation: a row is recorded as a
structured :class:`~repro.experiments.supervisor.RowFailure` only after
retries *and* the in-process rerun failed, so one bad circuit never
aborts a table run.

Completed rows can be streamed to a JSONL checkpoint (``checkpoint=``)
and skipped on a rerun (``resume=True``) — the final tables are
byte-identical whether a run went straight through, was resumed after a
kill, or degraded around faults.

Passing ``store=`` (a path or :class:`~repro.store.db.ResultStore`)
warm-starts every row from the persistent content-addressed cache: each
worker opens its own connection to the shared SQLite file (WAL mode
makes concurrent pool access safe), completed passes are written back,
and a repeated or resumed table run serves its classification passes and
path counts in O(1).  Rows record their session's cache counters in
``session_stats`` so callers can verify warm runs did no recounting.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Callable, Iterable

from repro.baseline.exact_assignment import BaselineResult, baseline_rd
from repro.circuit.netlist import Circuit
from repro.classify.conditions import Criterion
from repro.classify.results import ClassificationResult
from repro.classify.session import CircuitSession
from repro.errors import HarnessError
from repro.obs import span
from repro.experiments.supervisor import (
    DEFAULT_MAX_RETRIES,
    Checkpoint,
    RowFailure,
    TaskRunner,
    as_checkpoint,
    default_task_budget,
)
from repro.paths.count import count_paths
from repro.sorting.heuristics import heuristic2_analysis
from repro.sorting.input_sort import InputSort
from repro.store.db import ResultStore
from repro.util.timer import Stopwatch


def _store_spec(store: "ResultStore | str | None") -> "str | None":
    """Normalize a ``store=`` argument to a picklable path (pool tasks
    carry the path; every worker opens its own connection)."""
    if store is None:
        return None
    if isinstance(store, ResultStore):
        return store.path
    return str(store)


def _make_runner(
    runner: "TaskRunner | None", jobs: int, max_retries: int
) -> TaskRunner:
    """The caller's preconfigured runner, or a fresh default one."""
    if runner is not None:
        return runner
    return TaskRunner(jobs=jobs, max_retries=max_retries)


def _circuit_budgets(
    circuits: "list[Circuit]", task_timeout: "float | None"
) -> "list[float]":
    """Per-task wall-clock budgets: a flat override, or derived from
    each circuit's exact logical path count (a cheap DP — no
    enumeration)."""
    if task_timeout is not None:
        return [task_timeout] * len(circuits)
    return [
        default_task_budget(count_paths(circuit).total_logical)
        for circuit in circuits
    ]


@dataclass
class Table1Row:
    """All measurements of one circuit for Tables I and II."""

    name: str
    total_logical: int
    fus_percent: float
    heu1_percent: float
    heu2_percent: float
    heu2_inverse_percent: float
    time_heu1: float
    time_heu2: float
    #: cache counters of the session that produced this row (see
    #: :meth:`~repro.classify.session.SessionStats.to_dict`); rendered
    #: by ``--verbose`` table runs, never part of the table itself
    session_stats: "dict | None" = field(default=None, compare=False)

    def check_expected_shape(self) -> list[str]:
        """The paper's qualitative claims, as violated-claim strings
        (empty = all hold).  Heu2 ≥ Heu1 is a strong trend in the paper
        (it holds for every circuit in Table I), both dominate FUS by
        Lemma 1, and the inverted sort collapses towards FUS."""
        problems = []
        if self.heu1_percent + 1e-9 < self.fus_percent:
            problems.append("Heu1 below FUS (violates Lemma 1)")
        if self.heu2_percent + 1e-9 < self.fus_percent:
            problems.append("Heu2 below FUS (violates Lemma 1)")
        if self.heu2_inverse_percent + 1e-9 < self.fus_percent:
            problems.append("inverse Heu2 below FUS (violates Lemma 1)")
        if self.heu2_inverse_percent > self.heu2_percent + 1e-9:
            problems.append("inverse sort beats Heu2")
        return problems

    def to_dict(self) -> dict:
        """JSON-safe form for checkpointing (floats round-trip exactly)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "Table1Row":
        return cls(**data)


def run_table1_row(
    circuit: Circuit,
    max_accepted: int | None = None,
    session: CircuitSession | None = None,
    store: "ResultStore | str | None" = None,
) -> Table1Row:
    """The full pipeline on one circuit (see module docstring).

    Exactly one ``count_paths`` runs per circuit: the session computes
    it lazily and every pass (including the Heuristic-1 sort) reuses it.
    With ``store=`` (ignored when a ``session`` is supplied) the counts
    and every completed pass are read through the persistent store — a
    warm row runs no enumeration at all.
    """
    if session is None:
        session = CircuitSession(circuit, store=store)
    with span("table1.row", circuit=circuit.name):
        counts = session.counts
        # --- Heuristic 1 -------------------------------------------------
        with Stopwatch() as sw1:
            sort1 = session.heuristic1_sort()
            res1 = session.classify(
                Criterion.SIGMA_PI, sort=sort1, max_accepted=max_accepted
            )
        # --- Heuristic 2 (Algorithm 3: FS + NR + final pass) -------------
        with Stopwatch() as sw2:
            analysis = heuristic2_analysis(
                circuit, max_accepted=max_accepted, session=session
            )
            res2 = session.classify(
                Criterion.SIGMA_PI,
                sort=analysis.sort,
                max_accepted=max_accepted,
            )
        # --- inverse control ---------------------------------------------
        res2_inv = session.classify(
            Criterion.SIGMA_PI,
            sort=analysis.sort.inverted(),
            max_accepted=max_accepted,
        )
    return Table1Row(
        name=circuit.name,
        total_logical=counts.total_logical,
        fus_percent=analysis.fs_result.rd_percent,
        heu1_percent=res1.rd_percent,
        heu2_percent=res2.rd_percent,
        heu2_inverse_percent=res2_inv.rd_percent,
        time_heu1=sw1.elapsed,
        time_heu2=sw2.elapsed,
        session_stats=session.stats.to_dict(),
    )


def _table1_task(
    payload: "tuple[Circuit, int | None, str | None]",
) -> Table1Row:
    """Top-level worker (must be picklable for the process pool)."""
    circuit, max_accepted, store = payload
    return run_table1_row(circuit, max_accepted=max_accepted, store=store)


def _run_checkpointed_rows(
    circuits: "list[Circuit]",
    task,
    payload_of,
    row_type,
    kind: str,
    jobs: int,
    checkpoint,
    resume: bool,
    task_timeout: "float | None",
    max_retries: int,
    runner: "TaskRunner | None",
) -> list:
    """Shared supervised/checkpointed driver for the table-row runners.

    Rows come back in ``circuits`` order, one entry per circuit: a
    ``row_type`` instance, or a :class:`RowFailure` if the task failed
    even after retry and in-process degradation.  With ``resume=True``
    circuits whose rows are already in the checkpoint are not recomputed
    (rows are keyed by circuit name, so names must be unique).
    """
    circuits = list(circuits)
    ckpt: "Checkpoint | None" = as_checkpoint(checkpoint, kind)
    done: dict = {}
    if ckpt is not None and resume:
        done = {
            name: row_type.from_dict(data)
            for name, data in ckpt.load().items()
        }
    todo = [circuit for circuit in circuits if circuit.name not in done]
    results = dict(done)

    def on_result(index: int, result) -> None:
        if ckpt is not None and isinstance(result, row_type):
            ckpt.record(result.name, result.to_dict())

    supervisor = _make_runner(runner, jobs, max_retries)
    pooled = supervisor.jobs > 1 and len(todo) > 1
    fresh = supervisor.map(
        task,
        [payload_of(circuit) for circuit in todo],
        labels=[circuit.name for circuit in todo],
        budgets=_circuit_budgets(todo, task_timeout) if pooled else None,
        on_result=on_result,
    )
    for circuit, result in zip(todo, fresh):
        results[circuit.name] = result
    return [results[circuit.name] for circuit in circuits]


def run_table1_rows(
    circuits: Iterable[Circuit],
    max_accepted: int | None = None,
    jobs: int = 1,
    *,
    checkpoint: "str | Checkpoint | None" = None,
    resume: bool = False,
    task_timeout: "float | None" = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    runner: "TaskRunner | None" = None,
    store: "ResultStore | str | None" = None,
) -> "list[Table1Row | RowFailure]":
    """Table-I rows for several circuits, optionally in parallel.

    ``jobs=1`` runs in-process; ``jobs > 1`` fans circuits out across a
    supervised process pool (see :mod:`repro.experiments.supervisor`).
    Row order always follows ``circuits``, and all RD-percentage columns
    are bit-identical across job counts, faults and resumes.

    ``checkpoint`` (a path or :class:`Checkpoint`) streams each
    completed row to JSONL; ``resume=True`` skips circuits already
    recorded there.  ``task_timeout`` is a flat per-task wall-clock
    budget overriding the path-count-derived default; ``runner`` lets a
    caller supply a preconfigured :class:`TaskRunner` (e.g. with a fault
    hook — then ``jobs``/``max_retries`` here are ignored).  ``store``
    (a path or :class:`~repro.store.db.ResultStore`) warm-starts rows
    from the persistent result cache; it composes with every other
    option — checkpoints record finished *rows*, the store caches the
    *passes* inside a row, so a resumed run recomputes nothing at all.
    """
    spec = _store_spec(store)
    return _run_checkpointed_rows(
        list(circuits),
        _table1_task,
        lambda circuit: (circuit, max_accepted, spec),
        Table1Row,
        "table1",
        jobs,
        checkpoint,
        resume,
        task_timeout,
        max_retries,
        runner,
    )


@dataclass
class Table3Row:
    """Baseline-of-[1] vs Heuristic 2 on one small multi-level circuit."""

    name: str
    total_logical: int
    baseline_percent: float
    baseline_time: float
    heu2_percent: float
    heu2_time: float
    #: cache counters of the session that produced this row
    session_stats: "dict | None" = field(default=None, compare=False)

    @property
    def quality_gap(self) -> float:
        """Baseline RD%% minus Heu2 RD%% (the paper reports 2.05%% mean)."""
        return self.baseline_percent - self.heu2_percent

    @property
    def speedup(self) -> float:
        """Baseline time / Heu2 time (the paper's headline is >10-1000x)."""
        if self.heu2_time <= 0:
            return float("inf")
        return self.baseline_time / self.heu2_time

    def to_dict(self) -> dict:
        """JSON-safe form for checkpointing (floats round-trip exactly)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "Table3Row":
        return cls(**data)


def run_table3_row(
    circuit: Circuit,
    baseline_method: str = "greedy",
    session: CircuitSession | None = None,
    store: "ResultStore | str | None" = None,
) -> Table3Row:
    if session is None:
        session = CircuitSession(circuit, store=store)
    with span("table3.row", circuit=circuit.name):
        baseline: BaselineResult = baseline_rd(circuit, method=baseline_method)
        with Stopwatch() as sw:
            analysis = heuristic2_analysis(circuit, session=session)
            res2 = session.classify(Criterion.SIGMA_PI, sort=analysis.sort)
    return Table3Row(
        name=circuit.name,
        total_logical=baseline.total_logical,
        baseline_percent=baseline.rd_percent,
        baseline_time=baseline.elapsed,
        heu2_percent=res2.rd_percent,
        heu2_time=sw.elapsed,
        session_stats=session.stats.to_dict(),
    )


def _table3_task(payload: "tuple[Circuit, str, str | None]") -> Table3Row:
    circuit, baseline_method, store = payload
    return run_table3_row(circuit, baseline_method=baseline_method, store=store)


def run_table3_rows(
    circuits: Iterable[Circuit],
    baseline_method: str = "greedy",
    jobs: int = 1,
    *,
    checkpoint: "str | Checkpoint | None" = None,
    resume: bool = False,
    task_timeout: "float | None" = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    runner: "TaskRunner | None" = None,
    store: "ResultStore | str | None" = None,
) -> "list[Table3Row | RowFailure]":
    """Table-III rows for several circuits, optionally in parallel.

    Supervision, checkpointing, resume and the persistent ``store`` work
    exactly as in :func:`run_table1_rows` (checkpoint kind ``table3``;
    the store accelerates the Heu2 passes, never the exact baseline).
    """
    spec = _store_spec(store)
    return _run_checkpointed_rows(
        list(circuits),
        _table3_task,
        lambda circuit: (circuit, baseline_method, spec),
        Table3Row,
        "table3",
        jobs,
        checkpoint,
        resume,
        task_timeout,
        max_retries,
        runner,
    )


def _cone_task(
    payload: "tuple[Circuit, int, Criterion, Callable[[Circuit], InputSort] | None]",
) -> ClassificationResult:
    circuit, po, criterion, sort_builder = payload
    cone, _mapping = circuit.extract_cone(po)
    session = CircuitSession(cone)
    sort = sort_builder(cone) if sort_builder is not None else None
    return session.classify(criterion, sort=sort)


def classify_cones(
    circuit: Circuit,
    criterion: Criterion,
    sort_builder: "Callable[[Circuit], InputSort] | None" = None,
    jobs: int = 1,
    runner: "TaskRunner | None" = None,
) -> ClassificationResult:
    """Classify per extracted PO cone and combine (the paper applies its
    single-output theory cone by cone; every PI→PO path lies in exactly
    one cone, so the accepted counts add up).

    ``sort_builder`` builds the per-cone sort for ``SIGMA_PI`` (e.g.
    :func:`~repro.sorting.heuristics.heuristic1_sort`); for ``jobs > 1``
    it must be picklable (a module-level function, not a lambda).
    ``elapsed`` sums per-cone CPU time — the paper's accounting — not
    pool wall-clock.  Cone tasks run supervised (crashed workers are
    retried, then degraded in-process), but because a combined result
    needs *every* cone, a cone that still fails raises
    :class:`~repro.errors.HarnessError` instead of degrading to a
    partial sum.
    """
    work = [(circuit, po, criterion, sort_builder) for po in circuit.outputs]
    parts = _make_runner(runner, jobs, DEFAULT_MAX_RETRIES).map(
        _cone_task,
        work,
        labels=[f"{circuit.name}/cone[{po}]" for po in circuit.outputs],
    )
    failures = [part for part in parts if isinstance(part, RowFailure)]
    if failures:
        raise HarnessError(
            "cone classification failed: "
            + "; ".join(str(failure) for failure in failures)
        )
    return ClassificationResult(
        circuit_name=circuit.name,
        criterion=criterion,
        total_logical=sum(p.total_logical for p in parts),
        accepted=sum(p.accepted for p in parts),
        elapsed=sum(p.elapsed for p in parts),
        edges_visited=sum(p.edges_visited for p in parts),
    )


def sigma_pi_percent(
    circuit: Circuit,
    sort: InputSort,
    session: CircuitSession | None = None,
) -> float:
    """RD%% of one SIGMA_PI pass (ablation helper)."""
    if session is None:
        session = CircuitSession(circuit)
    return session.classify(Criterion.SIGMA_PI, sort=sort).rd_percent
