"""Additional datapath generators: barrel shifter, comparator, priority
encoder.

These widen the structural spread of the suite: the barrel shifter is a
layered mux network with shared shift controls (mux-tree-like RD
behaviour at scale), the magnitude comparator is a ripple of
equality/greater cells (deep AND chains), and the priority encoder is
control logic with strongly ordered side conditions.
"""

from __future__ import annotations

from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import Circuit


def barrel_shifter(width_log2: int, name: "str | None" = None) -> Circuit:
    """A ``2^width_log2``-bit logical left barrel shifter.

    ``width_log2`` mux layers; layer ``k`` shifts by ``2^k`` when its
    select bit is set (zero-filled).
    """
    if width_log2 < 1:
        raise ValueError("width_log2 must be >= 1")
    width = 1 << width_log2
    b = CircuitBuilder(name or f"bshift{width}")
    selects = [b.pi(f"s{k}") for k in range(width_log2)]
    data = [b.pi(f"d{i}") for i in range(width)]
    zero = b.and_(data[0], b.not_(data[0], "nz0"), name="zero")
    nodes = list(data)
    for k in range(width_log2):
        shift = 1 << k
        nxt = []
        for i in range(width):
            shifted = nodes[i - shift] if i >= shift else zero
            nxt.append(
                b.mux(selects[k], nodes[i], shifted, name=f"l{k}_{i}")
            )
        nodes = nxt
    for i, node in enumerate(nodes):
        b.po(node, f"y{i}")
    return b.build()


def magnitude_comparator(width: int, name: "str | None" = None) -> Circuit:
    """``width``-bit unsigned comparator with outputs eq, gt, lt.

    Classic ripple from the MSB: ``gt = Σ_i (a_i > b_i) ∧ eq_{msb..i+1}``.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    b = CircuitBuilder(name or f"cmp{width}")
    a_bits = [b.pi(f"a{i}") for i in range(width)]
    b_bits = [b.pi(f"b{i}") for i in range(width)]
    eq_bits = [
        b.xnor(a_bits[i], b_bits[i], name=f"eq{i}") for i in range(width)
    ]
    gt_terms = []
    lt_terms = []
    prefix = None  # equality of all more-significant bits
    for i in range(width - 1, -1, -1):
        nb = b.not_(b_bits[i], f"nb{i}")
        na = b.not_(a_bits[i], f"na{i}")
        gt_here = b.and_(a_bits[i], nb, name=f"gtc{i}")
        lt_here = b.and_(na, b_bits[i], name=f"ltc{i}")
        if prefix is None:
            gt_terms.append(gt_here)
            lt_terms.append(lt_here)
            prefix = eq_bits[i]
        else:
            gt_terms.append(b.and_(prefix, gt_here, name=f"gtt{i}"))
            lt_terms.append(b.and_(prefix, lt_here, name=f"ltt{i}"))
            prefix = b.and_(prefix, eq_bits[i], name=f"eqp{i}")
    b.po(prefix, "eq")
    b.po(gt_terms[0] if len(gt_terms) == 1 else b.or_(*gt_terms, name="gt_or"), "gt")
    b.po(lt_terms[0] if len(lt_terms) == 1 else b.or_(*lt_terms, name="lt_or"), "lt")
    return b.build()


def priority_encoder(width: int, name: "str | None" = None) -> Circuit:
    """``width``-input priority encoder: outputs the binary index of the
    highest-priority (lowest-index) asserted request plus a valid flag."""
    if width < 2:
        raise ValueError("width must be >= 2")
    b = CircuitBuilder(name or f"prienc{width}")
    reqs = [b.pi(f"r{i}") for i in range(width)]
    # grant_i = r_i AND none of r_0..r_{i-1}
    grants = [reqs[0]]
    blocked = b.not_(reqs[0], "nblk0")
    for i in range(1, width):
        grants.append(b.and_(reqs[i], blocked, name=f"g{i}"))
        if i < width - 1:
            blocked = b.and_(blocked, b.not_(reqs[i], f"nr{i}"), name=f"blk{i}")
    bits = max(1, (width - 1).bit_length())
    for k in range(bits):
        members = [grants[i] for i in range(width) if (i >> k) & 1]
        if not members:
            # No grant index has this bit: output is constant 0 — tie it
            # to an observable non-constant form instead: grant0 AND NOT
            # grant0 would be constant; omit the output entirely.
            continue
        driver = members[0] if len(members) == 1 else b.or_(
            *members, name=f"idx{k}_or"
        )
        b.po(driver, f"idx{k}")
    b.po(b.or_(*reqs, name="any_or"), "valid")
    return b.build()
