"""Unit tests for binary/ternary full simulation."""

import pytest

from repro.circuit.examples import paper_example_circuit
from repro.logic.simulate import (
    all_vectors,
    output_values,
    simulate,
    simulate_ternary,
    truth_table,
)
from repro.logic.values import X


def test_simulate_known_vectors(example_circuit):
    values = simulate(example_circuit, (1, 1, 1))
    assert values[example_circuit.gate_by_name("g_and")] == 1
    assert values[example_circuit.outputs[0]] == 1
    values = simulate(example_circuit, (0, 1, 0))
    assert values[example_circuit.outputs[0]] == 0


def test_simulate_wrong_width(example_circuit):
    with pytest.raises(ValueError):
        simulate(example_circuit, (0, 1))


def test_ternary_partial_assignment(example_circuit):
    a = example_circuit.gate_by_name("a")
    values = simulate_ternary(example_circuit, {a: 1})
    # a=1 controls the OR regardless of b, c.
    assert values[example_circuit.outputs[0]] == 1
    values = simulate_ternary(example_circuit, {a: 0})
    assert values[example_circuit.outputs[0]] == X


def test_ternary_agrees_with_binary_when_fully_assigned(example_circuit):
    for vector in all_vectors(3):
        full = dict(zip(example_circuit.inputs, vector))
        assert simulate_ternary(example_circuit, full) == simulate(
            example_circuit, vector
        )


def test_truth_table_shape():
    table = truth_table(paper_example_circuit())
    assert len(table) == 8
    assert all(len(row) == 1 for row in table)


def test_truth_table_refuses_wide_circuits():
    from repro.gen.parity import parity_tree

    with pytest.raises(ValueError):
        truth_table(parity_tree(24))


def test_all_vectors_msb_order():
    vectors = list(all_vectors(2))
    assert vectors == [(0, 0), (0, 1), (1, 0), (1, 1)]


def test_output_values_order():
    from repro.circuit.builder import CircuitBuilder

    b = CircuitBuilder("t")
    a, c = b.pi("a"), b.pi("c")
    b.po(a, "first")
    b.po(c, "second")
    circuit = b.build()
    assert output_values(circuit, (1, 0)) == (1, 0)
