"""Exact path-delay-fault testability (robust and non-robust).

Used for the fault-coverage side of the paper (Example 3: an optimal σ
selects only robustly testable paths → 100% coverage) and as the exact
``T(C)`` reference of Lemma 1.
"""

from repro.delaytest.testability import (
    robust_test,
    nonrobust_test,
    fs_vector,
    is_robustly_testable,
    is_nonrobustly_testable,
    coverage,
)
from repro.delaytest.simulator import (
    SimulatedCoverage,
    robust_coverage_of_test_set,
    sensitized_paths,
    simulate_test_set,
)

__all__ = [
    "robust_test",
    "nonrobust_test",
    "fs_vector",
    "is_robustly_testable",
    "is_nonrobustly_testable",
    "coverage",
    "SimulatedCoverage",
    "robust_coverage_of_test_set",
    "sensitized_paths",
    "simulate_test_set",
]
