"""Delay assignments: a concrete ``C_m`` implementation of a circuit.

Every gate has separate rise/fall output delays (a late-falling NAND and
a fast-rising one are different manufacturing outcomes); PIs switch at
time 0; PO sink gates may carry wire delay.  Delays are floats ≥ 0.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit


@dataclass(frozen=True)
class DelayAssignment:
    """Per-gate (rise, fall) output delays of one implementation."""

    circuit: Circuit
    rise: tuple
    fall: tuple

    def __post_init__(self) -> None:
        n = self.circuit.num_gates
        if len(self.rise) != n or len(self.fall) != n:
            raise ValueError("delay tables must cover every gate")
        if any(d < 0 for d in self.rise) or any(d < 0 for d in self.fall):
            raise ValueError("delays must be non-negative")

    def delay(self, gate: int, new_value: int) -> float:
        """Delay of an output transition of ``gate`` to ``new_value``."""
        return self.rise[gate] if new_value == 1 else self.fall[gate]

    def scaled(self, factor: float) -> "DelayAssignment":
        return DelayAssignment(
            circuit=self.circuit,
            rise=tuple(d * factor for d in self.rise),
            fall=tuple(d * factor for d in self.fall),
        )

    def with_gate_delay(
        self, gate: int, rise: float, fall: float
    ) -> "DelayAssignment":
        """A copy with one gate's delays replaced (fault injection)."""
        new_rise = list(self.rise)
        new_fall = list(self.fall)
        new_rise[gate] = rise
        new_fall[gate] = fall
        return DelayAssignment(
            circuit=self.circuit, rise=tuple(new_rise), fall=tuple(new_fall)
        )


def unit_delays(circuit: Circuit) -> DelayAssignment:
    """1.0 rise/fall on every gate except PIs (which switch at t=0)."""
    rise = [0.0 if circuit.gate_type(g) is GateType.PI else 1.0
            for g in range(circuit.num_gates)]
    return DelayAssignment(circuit=circuit, rise=tuple(rise), fall=tuple(rise))


def random_delays(
    circuit: Circuit,
    seed: int = 0,
    low: float = 0.5,
    high: float = 2.0,
    asymmetric: bool = True,
) -> DelayAssignment:
    """Uniformly random delays in ``[low, high]`` (process variation).

    ``asymmetric=False`` makes rise == fall per gate.
    """
    if low < 0 or high < low:
        raise ValueError("need 0 <= low <= high")
    rng = random.Random(seed)
    rise = []
    fall = []
    for g in range(circuit.num_gates):
        if circuit.gate_type(g) is GateType.PI:
            rise.append(0.0)
            fall.append(0.0)
            continue
        r = rng.uniform(low, high)
        f = rng.uniform(low, high) if asymmetric else r
        rise.append(r)
        fall.append(f)
    return DelayAssignment(circuit=circuit, rise=tuple(rise), fall=tuple(fall))
