"""The baseline RD-identification of Lam et al. [1].

Two implementations, both exponential and only usable on small circuits
(which is the point of the paper's comparison in Table III):

* :mod:`repro.baseline.exact_assignment` — optimise
  ``min_σ |LP(σ)|`` directly over *all* complete stabilizing assignments
  (the paper proves in Section III that this search space characterises
  exactly the RD-sets of [1]'s Theorems 2.1/2.2).  Greedy with local
  improvement, plus exact branch-and-bound for tiny cones.
* :mod:`repro.baseline.leafdag_rd` — the literal mechanism of [1]:
  unfold the cone into its leaf-dag and harvest redundant single
  stuck-at faults on PI branches as RD logical paths, with iterative
  redundancy removal.
"""

from repro.baseline.exact_assignment import (
    BaselineResult,
    minimize_assignment,
    baseline_rd,
)
from repro.baseline.leafdag_rd import leafdag_rd_paths

__all__ = [
    "BaselineResult",
    "minimize_assignment",
    "baseline_rd",
    "leafdag_rd_paths",
]
