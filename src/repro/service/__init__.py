"""Concurrent classification daemon + client (``repro-rd serve``).

A stdlib-only asyncio JSON-over-TCP (or unix socket) service exposing
the RD classifier: requests carry a ``.bench`` netlist or a suite
generator name; responses stream back structured JSON.  The server
classifies through a shared, store-backed session pool with bounded
concurrency and per-request wall-clock deadlines, and drains gracefully
on SIGTERM/SIGINT.  See :mod:`repro.service.protocol` for the wire
format and :mod:`repro.service.client` for the blocking client used by
``repro-rd classify --remote``.
"""

from repro.service.client import ServiceClient
from repro.service.server import AnalysisServer, serve

__all__ = ["AnalysisServer", "ServiceClient", "serve"]
