"""Unit tests for SAT equivalence checking."""

import pytest

from repro.atpg.equiv import check_equivalence
from repro.circuit.builder import CircuitBuilder
from repro.logic.simulate import output_values


def _or_circuit(style):
    b = CircuitBuilder(f"or_{style}")
    a, c = b.pi("a"), b.pi("c")
    if style == "plain":
        b.po(b.or_(a, c), "out")
    elif style == "demorgan":
        b.po(b.nand(b.not_(a), b.not_(c)), "out")
    else:  # broken: actually AND
        b.po(b.and_(a, c), "out")
    return b.build()


def test_equivalent_implementations():
    result = check_equivalence(_or_circuit("plain"), _or_circuit("demorgan"))
    assert result
    assert result.counterexample is None


def test_inequivalent_gives_counterexample():
    left = _or_circuit("plain")
    right = _or_circuit("broken")
    result = check_equivalence(left, right)
    assert not result
    vector = result.counterexample
    assert output_values(left, vector) != output_values(right, vector)


def test_pi_name_mismatch_rejected():
    b = CircuitBuilder("x")
    b.po(b.pi("weird"), "out")
    with pytest.raises(ValueError):
        check_equivalence(_or_circuit("plain"), b.build())


def test_simplify_passes_validated_by_equivalence():
    from repro.circuit.simplify import sweep
    from repro.gen.random_logic import random_dag

    for seed in range(4):
        circuit = random_dag(7, 25, seed=seed + 200)
        assert check_equivalence(circuit, sweep(circuit))


def test_bench_round_trip_equivalence(example_circuit):
    from repro.circuit.bench import parse_bench, write_bench

    again = parse_bench(write_bench(example_circuit))
    # PO names change in the round trip: positional matching kicks in.
    assert check_equivalence(example_circuit, again)


def test_multi_output_positional_match():
    def build(name, swap):
        b = CircuitBuilder(name)
        a, c = b.pi("a"), b.pi("c")
        x, y = b.and_(a, c, name="x"), b.or_(a, c, name="y")
        b.po(x, "p")
        b.po(y, "q")
        return b.build()

    assert check_equivalence(build("l", False), build("r", False))
