"""Unit tests for the implicit-enumeration classifier."""

import pytest

from repro.classify.conditions import Criterion
from repro.classify.engine import check_logical_path, classify
from repro.paths.enumerate import enumerate_logical_paths
from repro.sorting.input_sort import InputSort


class TestClassifyBasics:
    def test_fs_on_example(self, example_circuit):
        result = classify(example_circuit, Criterion.FS)
        assert result.total_logical == 8
        assert result.accepted == 8  # every example path is FS
        assert result.rd_count == 0

    def test_nr_on_example(self, example_circuit):
        result = classify(example_circuit, Criterion.NR)
        assert result.accepted == 5  # T(C) of the example

    def test_sigma_requires_sort(self, example_circuit):
        with pytest.raises(ValueError):
            classify(example_circuit, Criterion.SIGMA_PI)

    def test_max_accepted_guard(self, example_circuit):
        with pytest.raises(RuntimeError):
            classify(example_circuit, Criterion.FS, max_accepted=2)

    def test_elapsed_recorded(self, example_circuit):
        assert classify(example_circuit, Criterion.FS).elapsed >= 0.0


class TestAcceptedPathsCallback:
    def test_on_path_yields_each_accepted(self, example_circuit):
        seen = []
        classify(example_circuit, Criterion.NR, on_path=seen.append)
        assert len(seen) == 5
        for lp in seen:
            lp.path.validate(example_circuit)

    def test_callback_matches_single_path_checker(self, small_circuits):
        for circuit in small_circuits:
            for criterion in (Criterion.FS, Criterion.NR):
                accepted = set()
                classify(circuit, criterion, on_path=accepted.add)
                for lp in enumerate_logical_paths(circuit):
                    assert check_logical_path(circuit, criterion, lp) == (
                        lp in accepted
                    )


class TestLeadCounts:
    def test_lead_counts_disabled_by_default(self, example_circuit):
        assert classify(example_circuit, Criterion.FS).lead_ctrl_counts == []

    def test_lead_counts_match_manual_accumulation(self, small_circuits):
        from repro.circuit.gates import controlling_value, has_controlling_value
        from repro.paths.path import LogicalPath

        for circuit in small_circuits:
            accepted = []
            result = classify(
                circuit, Criterion.FS, collect_lead_counts=True,
                on_path=accepted.append,
            )
            manual = [0] * circuit.num_leads
            for lp in accepted:
                value = lp.final_value
                for lead in lp.path.leads:
                    dst = circuit.lead_dst(lead)
                    gtype = circuit.gate_type(dst)
                    if (
                        has_controlling_value(gtype)
                        and value == controlling_value(gtype)
                    ):
                        manual[lead] += 1
                    from repro.circuit.gates import is_inverting

                    if is_inverting(gtype):
                        value = 1 - value
            assert result.lead_ctrl_counts == manual


class TestSigmaPiOnExample:
    def test_pin_order_accepts_all(self, example_circuit):
        sort = InputSort.pin_order(example_circuit)
        assert classify(example_circuit, Criterion.SIGMA_PI, sort=sort).accepted == 8

    def test_optimal_sort_accepts_five(self, example_circuit):
        from repro.experiments.figures import example3_sort

        sort = example3_sort(example_circuit)
        assert classify(example_circuit, Criterion.SIGMA_PI, sort=sort).accepted == 5


class TestCheckLogicalPath:
    def test_rejects_non_path(self, example_circuit):
        from repro.paths.path import LogicalPath, PhysicalPath

        g_and = example_circuit.gate_by_name("g_and")
        # A lead path ending inside the circuit (no PO) is invalid.
        inner = PhysicalPath((example_circuit.lead_index(g_and, 0),))
        with pytest.raises(ValueError):
            check_logical_path(example_circuit, Criterion.FS, LogicalPath(inner, 1))

    def test_known_rejected_path(self, example_circuit):
        from repro.paths.path import LogicalPath

        # bA rising is FS but not NR (side conditions c=1 at AND vs c=0 at OR).
        for lp in enumerate_logical_paths(example_circuit):
            if lp.describe(example_circuit) == "b -> g_and -> g_or -> out [0->1]":
                assert check_logical_path(example_circuit, Criterion.FS, lp)
                assert not check_logical_path(example_circuit, Criterion.NR, lp)
