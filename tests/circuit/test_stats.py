"""Unit tests for circuit statistics."""

from repro.circuit.examples import paper_example_circuit
from repro.circuit.stats import circuit_stats, internal_fanout_count


def test_stats_of_paper_example():
    stats = circuit_stats(paper_example_circuit())
    assert stats.num_gates == 6
    assert stats.num_inputs == 3
    assert stats.num_outputs == 1
    assert stats.num_leads == 6
    assert stats.depth == 3
    assert stats.max_fanout == 2  # PI c drives the AND and the OR
    assert stats.gate_counts["PI"] == 3
    assert stats.gate_counts["AND"] == 1
    assert stats.gate_counts["OR"] == 1


def test_internal_fanout_count():
    circuit = paper_example_circuit()
    # Only the PI c fans out; no internal gate does.
    assert internal_fanout_count(circuit) == 0


def test_stats_render():
    text = str(circuit_stats(paper_example_circuit()))
    assert "paper_example" in text
    assert "6 gates" in text
