"""Delay-test flow for a sequential (full-scan) design.

The paper's theory is combinational; scan makes it apply to sequential
logic: flip-flop outputs become pseudo-PIs, flip-flop inputs pseudo-POs,
and RD identification / test generation run on the combinational core.

This example takes an ISCAS-89-style netlist (the bundled s27-like
benchmark), expands it for scan, identifies the robust dependent paths,
and generates a compact robust test set for the rest — reporting
separately the state-to-state paths, which a scan tester exercises with
launch/capture cycles.

Run:  python examples/scan_design_flow.py
"""

from repro import Criterion, classify, heuristic2_sort
from repro.circuit.sequential import S27_LIKE, parse_sequential_bench
from repro.delaytest.tpg import generate_test_set


def main():
    scan = parse_sequential_bench(S27_LIKE, name="s27_like")
    core = scan.core
    print(f"{core.name}: {scan.num_flipflops} flip-flops, "
          f"{len(scan.primary_inputs)} PIs, "
          f"{len(scan.primary_outputs)} POs "
          f"(core: {core.num_gates} gates)")

    sort = heuristic2_sort(core)
    targets = []
    result = classify(core, Criterion.SIGMA_PI, sort=sort,
                      on_path=targets.append)
    print(f"logical paths: {result.total_logical}, robust dependent: "
          f"{result.rd_count} ({result.rd_percent:.1f}%)")

    pseudo_in = set(scan.pseudo_inputs)
    pseudo_out = set(scan.pseudo_outputs)
    by_kind = {"PI->PO": 0, "PI->state": 0, "state->PO": 0, "state->state": 0}
    for lp in targets:
        src_state = lp.path.source(core) in pseudo_in
        dst_state = lp.path.sink(core) in pseudo_out
        key = (
            f"{'state' if src_state else 'PI'}->"
            f"{'state' if dst_state else 'PO'}"
        )
        by_kind[key] += 1
    print("paths to test, by launch/capture kind:")
    for kind, count in by_kind.items():
        print(f"  {kind:14s} {count}")

    tests = generate_test_set(core, targets)
    print(tests)
    for lp in tests.untestable:
        print(f"  DFT candidate: {lp.describe(core)}")


if __name__ == "__main__":
    main()
