"""Classical path selection strategies, composable with RD filtering.

Each strategy returns a :class:`PathSelection` with both the raw
selection and the RD-filtered one, so callers can report the saving.
The ``must_test`` predicate is any container/callable deciding whether a
logical path needs testing — typically the accepted set of a
``Criterion.SIGMA_PI`` classification.

All strategies enumerate paths explicitly and are meant for the
*selection* regime (after RD filtering has reduced the problem), with a
limit guard for safety.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Container, Iterable

from repro.circuit.netlist import Circuit
from repro.paths.enumerate import enumerate_logical_paths
from repro.paths.path import LogicalPath
from repro.timing.delays import DelayAssignment
from repro.timing.pathdelay import logical_path_delay


@dataclass(frozen=True)
class PathSelection:
    """Result of one selection strategy."""

    strategy: str
    selected: tuple
    selected_non_rd: tuple

    @property
    def saving(self) -> int:
        """Paths the RD filter removed from the raw selection."""
        return len(self.selected) - len(self.selected_non_rd)

    def __str__(self) -> str:
        return (
            f"{self.strategy}: {len(self.selected)} selected, "
            f"{len(self.selected_non_rd)} after RD filtering "
            f"({self.saving} saved)"
        )


def _needs_test(must_test, lp: LogicalPath) -> bool:
    if callable(must_test):
        return bool(must_test(lp))
    return lp in must_test


def select_by_threshold(
    circuit: Circuit,
    delays: DelayAssignment,
    threshold: float,
    must_test: "Container[LogicalPath] | Callable[[LogicalPath], bool]",
    limit: int = 1_000_000,
) -> PathSelection:
    """All logical paths with estimated delay ≥ ``threshold`` (the
    paper's 'expected delay greater than a given threshold' strategy)."""
    selected = tuple(
        lp
        for lp in enumerate_logical_paths(circuit, limit=limit)
        if logical_path_delay(circuit, lp, delays) >= threshold
    )
    non_rd = tuple(lp for lp in selected if _needs_test(must_test, lp))
    return PathSelection(
        strategy=f"threshold>={threshold:g}",
        selected=selected,
        selected_non_rd=non_rd,
    )


def select_per_lead_limit(
    circuit: Circuit,
    delays: DelayAssignment,
    per_lead: int,
    must_test: "Container[LogicalPath] | Callable[[LogicalPath], bool]",
    limit: int = 1_000_000,
) -> PathSelection:
    """For each lead, the ``per_lead`` slowest logical paths through it
    (the paper's 'limited number of logical paths per line' strategy,
    after Li–Reddy–Sahni [19]).

    With RD composition, the per-lead quota is filled from non-RD paths
    only — a path skipped as RD frees its slot for a testable one, so
    coverage per lead is preserved.
    """
    if per_lead < 1:
        raise ValueError("per_lead must be >= 1")
    scored = sorted(
        (
            (logical_path_delay(circuit, lp, delays), i, lp)
            for i, lp in enumerate(enumerate_logical_paths(circuit, limit=limit))
        ),
        key=lambda t: (-t[0], t[1]),
    )

    def pick(paths: Iterable) -> tuple:
        quota = [0] * circuit.num_leads
        out = []
        for _delay, _i, lp in paths:
            if any(quota[lead] < per_lead for lead in lp.path.leads):
                out.append(lp)
                for lead in lp.path.leads:
                    quota[lead] += 1
        return tuple(out)

    selected = pick(scored)
    non_rd = pick(t for t in scored if _needs_test(must_test, t[2]))
    return PathSelection(
        strategy=f"per-lead<={per_lead}",
        selected=selected,
        selected_non_rd=non_rd,
    )


def select_by_threshold_lazy(
    circuit: Circuit,
    delays: DelayAssignment,
    threshold: float,
    must_test: "Container[LogicalPath] | Callable[[LogicalPath], bool]",
    max_paths: int = 1_000_000,
) -> PathSelection:
    """Threshold selection without full enumeration: the slow paths are
    produced lazily in decreasing-delay order by
    :func:`repro.timing.kpaths.paths_above_threshold`, so this works on
    circuits whose total path count is astronomically large (only the
    above-threshold slice is ever materialised)."""
    from repro.timing.kpaths import paths_above_threshold

    selected = tuple(
        lp
        for _delay, lp in paths_above_threshold(
            circuit, delays, threshold, max_paths=max_paths
        )
    )
    non_rd = tuple(lp for lp in selected if _needs_test(must_test, lp))
    return PathSelection(
        strategy=f"threshold>={threshold:g} (lazy)",
        selected=selected,
        selected_non_rd=non_rd,
    )


def select_longest_per_po(
    circuit: Circuit,
    delays: DelayAssignment,
    per_po: int,
    must_test: "Container[LogicalPath] | Callable[[LogicalPath], bool]",
    limit: int = 1_000_000,
) -> PathSelection:
    """The ``per_po`` slowest logical paths into each primary output."""
    if per_po < 1:
        raise ValueError("per_po must be >= 1")
    by_po: dict = {po: [] for po in circuit.outputs}
    for i, lp in enumerate(enumerate_logical_paths(circuit, limit=limit)):
        by_po[lp.path.sink(circuit)].append(
            (logical_path_delay(circuit, lp, delays), i, lp)
        )

    def pick(filtered: bool) -> tuple:
        out = []
        for po, entries in by_po.items():
            pool = [
                t for t in entries
                if not filtered or _needs_test(must_test, t[2])
            ]
            pool.sort(key=lambda t: (-t[0], t[1]))
            out.extend(lp for _d, _i, lp in pool[:per_po])
        return tuple(out)

    return PathSelection(
        strategy=f"per-po<={per_po}",
        selected=pick(False),
        selected_non_rd=pick(True),
    )
