"""Unit tests for the InputSort abstraction (Definition 7)."""

import pytest

from repro.sorting.input_sort import InputSort


class TestValidation:
    def test_pin_order_valid(self, example_circuit):
        sort = InputSort.pin_order(example_circuit)
        for lead in range(example_circuit.num_leads):
            assert sort.rank(lead) == example_circuit.lead_pin(lead)

    def test_wrong_length_rejected(self, example_circuit):
        with pytest.raises(ValueError):
            InputSort(example_circuit, [0])

    def test_non_permutation_rejected(self, example_circuit):
        rank = [0] * example_circuit.num_leads
        with pytest.raises(ValueError):
            InputSort(example_circuit, rank)


class TestLowOrderSides:
    def test_pin_order_low_order(self, example_circuit):
        sort = InputSort.pin_order(example_circuit)
        g_or = example_circuit.gate_by_name("g_or")
        lead_mid = example_circuit.lead_index(g_or, 1)
        assert sort.low_order_side_pins(lead_mid) == [0]
        lead_last = example_circuit.lead_index(g_or, 2)
        assert sorted(sort.low_order_side_pins(lead_last)) == [0, 1]
        lead_first = example_circuit.lead_index(g_or, 0)
        assert sort.low_order_side_pins(lead_first) == []


class TestMinRankPin:
    def test_picks_minimum(self, example_circuit):
        sort = InputSort.pin_order(example_circuit)
        g_or = example_circuit.gate_by_name("g_or")
        assert sort.min_rank_pin(g_or, [2, 1]) == 1
        assert sort.min_rank_pin(g_or, [0, 1, 2]) == 0

    def test_empty_candidates_rejected(self, example_circuit):
        sort = InputSort.pin_order(example_circuit)
        with pytest.raises(ValueError):
            sort.min_rank_pin(example_circuit.gate_by_name("g_or"), [])


class TestInversion:
    def test_inverted_reverses_each_gate(self, example_circuit):
        sort = InputSort.pin_order(example_circuit)
        inv = sort.inverted()
        g_or = example_circuit.gate_by_name("g_or")
        leads = list(example_circuit.input_leads(g_or))
        assert [inv.rank(l) for l in leads] == [2, 1, 0]

    def test_double_inversion_is_identity(self, example_circuit):
        sort = InputSort.pin_order(example_circuit)
        twice = sort.inverted().inverted()
        for lead in range(example_circuit.num_leads):
            assert twice.rank(lead) == sort.rank(lead)


class TestFromKey:
    def test_orders_by_key_ascending(self, example_circuit):
        key = lambda lead: -lead  # reverse of lead order within gates
        sort = InputSort.from_key(example_circuit, key)
        g_or = example_circuit.gate_by_name("g_or")
        leads = list(example_circuit.input_leads(g_or))
        assert [sort.rank(l) for l in leads] == [2, 1, 0]

    def test_ties_keep_pin_order(self, example_circuit):
        sort = InputSort.from_key(example_circuit, lambda lead: 0)
        for lead in range(example_circuit.num_leads):
            assert sort.rank(lead) == example_circuit.lead_pin(lead)
