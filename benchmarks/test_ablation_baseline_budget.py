"""Ablation: the baseline's enumeration budget vs result quality.

DESIGN.md calls out the candidate-budget cap as our main engineering
choice inside the baseline of [1] (graceful degradation of an
exponential search).  This bench sweeps the per-cone candidate budget on
one Table-III circuit and asserts the expected monotone shape: more
budget never hurts the RD fraction, and even a zero budget (pure σ^π
warm start, no enumeration) stays within the Heuristic-2 quality.
"""

import pytest

from repro.baseline.exact_assignment import baseline_rd
from repro.classify.conditions import Criterion
from repro.classify.engine import classify
from repro.gen.suite import get_circuit
from repro.sorting.heuristics import heuristic2_sort

_BUDGETS = [0, 200, 2_000, 20_000]


@pytest.mark.parametrize("budget", _BUDGETS)
def test_budget_sweep(benchmark, budget):
    circuit = get_circuit("apex-a")
    result = benchmark.pedantic(
        baseline_rd,
        args=(circuit,),
        kwargs={"max_candidates_per_vector": max(budget, 1)}
        if budget
        else {"max_candidates_per_vector": 1},
        rounds=1,
        iterations=1,
    )
    assert 0 <= result.rd_percent <= 100


def test_budget_monotonicity(benchmark):
    circuit = get_circuit("apex-a")

    def sweep():
        return [
            baseline_rd(circuit, max_candidates_per_vector=b or 1).rd_count
            for b in _BUDGETS
        ]

    rd_counts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # More enumeration never loses RD paths (warm start is the floor).
    assert rd_counts == sorted(rd_counts)
    # Even the no-enumeration floor matches the heu2 classifier result.
    heu2 = classify(
        circuit, Criterion.SIGMA_PI, sort=heuristic2_sort(circuit)
    )
    assert rd_counts[0] >= heu2.rd_count
