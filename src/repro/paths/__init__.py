"""Physical/logical path objects, exact path counting, enumeration."""

from repro.paths.path import PhysicalPath, LogicalPath, RISING, FALLING
from repro.paths.count import PathCounts, count_paths
from repro.paths.enumerate import (
    enumerate_physical_paths,
    enumerate_logical_paths,
)

__all__ = [
    "PhysicalPath",
    "LogicalPath",
    "RISING",
    "FALLING",
    "PathCounts",
    "count_paths",
    "enumerate_physical_paths",
    "enumerate_logical_paths",
]
