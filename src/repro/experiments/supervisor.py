"""Supervised task execution for the experiment harness.

The process-pool fan-out of :mod:`repro.experiments.harness` (PR 1) is
fast but brittle: one hung worker (a pathological generated circuit),
one OOM-killed process (``BrokenProcessPool``) or one unpicklable
payload used to take the whole Table-I/III run down with a raw
traceback and zero partial results.  This module wraps every pool task
in a supervisor with three independent defenses:

**Per-task wall-clock budgets.**  Each task gets a timeout derived from
the circuit's exact logical path count (:func:`default_task_budget`) or
a flat caller override.  A task over budget is presumed hung: the pool
is torn down (hung workers are killed, not joined), and the task is
retried in a fresh pool.

**Bounded retry with exponential backoff.**  Worker crashes
(``BrokenProcessPool``), pickling errors, timeouts and in-task
exceptions are retried up to ``max_retries`` times; each retry round
sleeps ``backoff_base * 2**round`` (capped) before respawning the pool.
Tasks that merely shared a pool with the faulty one are re-queued
*without* being charged an attempt.

**Graceful degradation.**  A task that exhausts its pool retries is
re-run once in-process (the deterministic ``jobs=1`` path).  Only if
that also fails is it recorded as a structured :class:`RowFailure` in
the result list — a run never aborts because of one bad row.

Fault injection for the chaos suite (``tests/chaos``) hangs off the
worker entrypoint: :attr:`TaskRunner.fault_hook` is called (with the
task label and attempt number) inside every *pool* worker before the
real task body, and never on the in-process degradation path — so a
hook that kills, hangs or raises exercises exactly the recovery
machinery.  Hooks must be picklable (module-level functions).

Completed rows can be streamed to an append-only JSONL
:class:`Checkpoint`; re-running with ``resume=True`` skips every row
already on disk, making long sweeps restartable after a SIGKILL with
byte-identical final tables.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.errors import TaskCrashed, TaskTimeout
from repro.obs import (
    get_registry,
    merge_observation,
    task_observation_begin,
    task_observation_collect,
)

#: default retry budget: a task may fail ``1 + DEFAULT_MAX_RETRIES``
#: times in the pool before it degrades to the in-process rerun.
DEFAULT_MAX_RETRIES = 2


def default_task_budget(
    total_logical: int,
    floor: float = 60.0,
    per_million: float = 120.0,
) -> float:
    """Wall-clock budget (seconds) for one circuit task.

    Derived from the circuit's exact logical path count — the one robust
    a-priori predictor of classification cost (Table II scales with it).
    Generous by design: the budget exists to catch *hangs*, not to race
    healthy tasks; a false timeout only costs a retry (the task result
    is unaffected thanks to in-process degradation).
    """
    return floor + per_million * (total_logical / 1_000_000.0)


@dataclass(frozen=True)
class RowFailure:
    """Structured record of a task that failed after retry *and*
    in-process degradation.  Appears in result lists in place of the row
    so the rest of the run is preserved."""

    label: str
    kind: str  # "timeout" | "crashed" | "error"
    message: str
    attempts: int

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "kind": self.kind,
            "message": self.message,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RowFailure":
        return cls(**data)

    def __str__(self) -> str:
        return (
            f"{self.label}: FAILED after {self.attempts} attempt(s) "
            f"[{self.kind}] {self.message}"
        )


def _failure_kind(exc: BaseException) -> str:
    if isinstance(exc, TaskTimeout):
        return "timeout"
    if isinstance(exc, (TaskCrashed, BrokenProcessPool)):
        return "crashed"
    return "error"


@dataclass(frozen=True)
class SupervisorEvent:
    """One recovery action, for observability and the chaos tests.

    ``kind`` is one of ``timeout`` (budget exceeded, pool torn down),
    ``crashed`` (worker died), ``raised`` (task body raised in the
    pool), ``requeued`` (innocent victim of a pool teardown),
    ``degraded`` (retries exhausted, re-run in-process) or ``failed``
    (the in-process rerun failed too → :class:`RowFailure`).
    """

    kind: str
    label: str
    attempt: int


@dataclass
class _ObsResult:
    """A pool task's result bundled with its telemetry delta.

    Workers reset their process-local metrics/trace state per task, so
    the observation is exactly this task's work; the parent unwraps the
    result and folds the observation into its own registry and trace
    buffer (:meth:`TaskRunner._unwrap`).
    """

    result: object
    observation: dict


def _supervised_call(fn, payload, label, attempt, fault_hook):
    """Top-level pool-worker entrypoint (must be picklable).

    The fault hook fires *only* here — in pool workers — never on the
    in-process degradation path, so chaos tests can crash, hang or blow
    up workers while the supervised rerun stays clean.
    """
    if fault_hook is not None:
        fault_hook(label, attempt)
    task_observation_begin()
    result = fn(payload)
    return _ObsResult(result, task_observation_collect())


@dataclass
class TaskRunner:
    """Supervised, order-preserving ``map`` over a process pool.

    ``jobs=1`` (or a single task) runs everything in-process — the
    deterministic fallback; no pool, no timeouts, no fault hook.  With
    ``jobs > 1`` tasks fan out under the supervision policy described in
    the module docstring.  Results always come back in input order and
    are bit-identical across job counts (every task is deterministic);
    only wall-clock and the recovery :attr:`events` differ.
    """

    jobs: int = 1
    max_retries: int = DEFAULT_MAX_RETRIES
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    degrade_in_process: bool = True
    fault_hook: "Callable[[str, int], None] | None" = None
    events: "list[SupervisorEvent]" = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")

    # -- public API -----------------------------------------------------
    def map(
        self,
        fn: Callable,
        payloads: Sequence,
        labels: "Sequence[str] | None" = None,
        budgets: "Sequence[float | None] | None" = None,
        on_result: "Callable[[int, object], None] | None" = None,
    ) -> list:
        """Run ``fn`` over ``payloads``; return results in input order.

        ``labels`` name the tasks in events/failures (default
        ``task-<i>``); ``budgets`` are per-task wall-clock seconds
        (``None`` = wait forever), only enforced in pool mode;
        ``on_result`` fires once per task as soon as its final result
        (row or :class:`RowFailure`) is known — the checkpoint streaming
        hook.  Slots of failed tasks hold :class:`RowFailure`.
        """
        payloads = list(payloads)
        n = len(payloads)
        labels = list(labels) if labels is not None else [
            f"task-{i}" for i in range(n)
        ]
        if len(labels) != n:
            raise ValueError("labels must match payloads")
        if budgets is not None and len(budgets) != n:
            raise ValueError("budgets must match payloads")
        if self.jobs <= 1 or n <= 1:
            results = []
            for i, payload in enumerate(payloads):
                result = self._run_in_process(fn, payload, labels[i], attempts=1)
                results.append(result)
                if on_result is not None:
                    on_result(i, result)
            return results
        return self._map_pool(fn, payloads, labels, budgets, on_result)

    # -- internals ------------------------------------------------------
    def _note(self, kind: str, label: str, attempt: int) -> None:
        self.events.append(SupervisorEvent(kind, label, attempt))
        get_registry().counter(f"supervisor.{kind}").inc()

    @staticmethod
    def _unwrap(value):
        """Unpack a pool task's :class:`_ObsResult`: merge the worker's
        telemetry into this (parent) process, return the bare result."""
        if isinstance(value, _ObsResult):
            merge_observation(value.observation)
            return value.result
        return value

    def _run_in_process(self, fn, payload, label, attempts: int):
        """The degradation path: one plain in-process call, exceptions
        captured into :class:`RowFailure` (``KeyboardInterrupt`` and
        friends still propagate)."""
        try:
            return fn(payload)
        except Exception as exc:  # noqa: BLE001 - the capture is the point
            self._note("failed", label, attempts)
            return RowFailure(
                label=label,
                kind=_failure_kind(exc),
                message=str(exc),
                attempts=attempts,
            )

    @staticmethod
    def _terminate_pool(pool: ProcessPoolExecutor) -> None:
        """Tear down a pool that may contain hung workers.

        ``shutdown(wait=True)`` would block on the hang, so: stop new
        work, kill every worker process, then reap them.
        """
        pool.shutdown(wait=False, cancel_futures=True)
        # _processes is private but stable across 3.9-3.13; it becomes
        # None once the executor has shut down or broken
        processes = list((getattr(pool, "_processes", None) or {}).values())
        for proc in processes:
            proc.terminate()
        for proc in processes:
            proc.join(timeout=5.0)

    def _map_pool(self, fn, payloads, labels, budgets, on_result):
        n = len(payloads)
        unset = object()
        results = [unset] * n
        attempts = [0] * n  # pool attempts charged so far
        pending = list(range(n))
        retry_round = 0

        def finish(i, result):
            results[i] = result
            if on_result is not None:
                on_result(i, result)

        while pending:
            # exhausted tasks leave the pool entirely
            still = []
            for i in pending:
                if attempts[i] <= self.max_retries:
                    still.append(i)
                elif self.degrade_in_process:
                    self._note("degraded", labels[i], attempts[i])
                    finish(
                        i,
                        self._run_in_process(
                            fn, payloads[i], labels[i], attempts[i] + 1
                        ),
                    )
                else:
                    self._note("failed", labels[i], attempts[i])
                    finish(
                        i,
                        RowFailure(
                            label=labels[i],
                            kind="error",
                            message="pool retries exhausted",
                            attempts=attempts[i],
                        ),
                    )
            pending = still
            if not pending:
                break
            if retry_round:
                time.sleep(
                    min(
                        self.backoff_cap,
                        self.backoff_base * (2 ** (retry_round - 1)),
                    )
                )

            pool = ProcessPoolExecutor(
                max_workers=min(self.jobs, len(pending))
            )
            torn_down = False
            next_pending = []
            try:
                futures = {
                    i: pool.submit(
                        _supervised_call,
                        fn,
                        payloads[i],
                        labels[i],
                        attempts[i],
                        self.fault_hook,
                    )
                    for i in pending
                }
                for i in pending:
                    fut = futures[i]
                    if torn_down:
                        # the pool died under an earlier task: harvest
                        # whatever finished, requeue the rest uncharged
                        if not fut.done():
                            self._note("requeued", labels[i], attempts[i])
                            next_pending.append(i)
                            continue
                        try:
                            finish(i, self._unwrap(fut.result()))
                        except (BrokenProcessPool, CancelledError):
                            self._note("requeued", labels[i], attempts[i])
                            next_pending.append(i)
                        except Exception:  # noqa: BLE001
                            self._note("raised", labels[i], attempts[i])
                            attempts[i] += 1
                            next_pending.append(i)
                        continue
                    budget = budgets[i] if budgets is not None else None
                    try:
                        finish(i, self._unwrap(fut.result(timeout=budget)))
                    except _FutTimeout:
                        # presumed hung: the worker holds the task and
                        # will never return — kill the whole pool
                        self._note("timeout", labels[i], attempts[i])
                        attempts[i] += 1
                        next_pending.append(i)
                        self._terminate_pool(pool)
                        torn_down = True
                    except BrokenProcessPool:
                        self._note("crashed", labels[i], attempts[i])
                        attempts[i] += 1
                        next_pending.append(i)
                        self._terminate_pool(pool)
                        torn_down = True
                    except Exception:  # noqa: BLE001 - task raised in pool
                        self._note("raised", labels[i], attempts[i])
                        attempts[i] += 1
                        next_pending.append(i)
            except BaseException:
                # KeyboardInterrupt & co: never block on hung workers
                self._terminate_pool(pool)
                torn_down = True
                raise
            finally:
                if not torn_down:
                    try:
                        pool.shutdown(wait=True)
                    except Exception:  # noqa: BLE001 - already broken
                        self._terminate_pool(pool)
            pending = next_pending
            retry_round += 1
        return results


# ---------------------------------------------------------------------------
# checkpointing
# ---------------------------------------------------------------------------


class Checkpoint:
    """Append-only JSONL record of completed experiment rows.

    One JSON object per line: ``{"kind": ..., "key": ..., "row": {...}}``.
    ``kind`` namespaces the producer (``table1``/``table3``/``sweep``)
    so a shared file cannot cross-contaminate; ``key`` identifies the
    row (circuit name, sweep parameter).  Every record is flushed and
    fsynced, so a SIGKILL loses at most the row being written — and
    :meth:`load` tolerates that torn tail line.  Floats survive the JSON
    round trip exactly (``repr``-based), which is what makes resumed
    tables byte-identical to straight-through runs.
    """

    def __init__(self, path: "str | Path", kind: str):
        self.path = Path(path)
        self.kind = kind

    def load(self) -> "dict[str, dict]":
        """All recorded rows of this checkpoint's kind, ``key → row``.

        Unparsable lines (a torn tail after a crash) and foreign kinds
        are skipped; later records win over earlier ones for the same
        key.
        """
        rows: dict[str, dict] = {}
        if not self.path.exists():
            return rows
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail write — the row will be recomputed
            if (
                not isinstance(record, dict)
                or record.get("kind") != self.kind
                or "key" not in record
                or not isinstance(record.get("row"), dict)
            ):
                continue
            rows[str(record["key"])] = record["row"]
        return rows

    def record(self, key: str, row: dict) -> None:
        """Append one completed row durably (flush + fsync)."""
        get_registry().counter("checkpoint.records").inc()
        line = json.dumps(
            {"kind": self.kind, "key": str(key), "row": row}, sort_keys=True
        )
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())


def as_checkpoint(
    checkpoint: "str | Path | Checkpoint | None", kind: str
) -> "Checkpoint | None":
    """Normalize a harness ``checkpoint=`` argument (path or instance)."""
    if checkpoint is None or isinstance(checkpoint, Checkpoint):
        return checkpoint
    return Checkpoint(checkpoint, kind)
