"""Frozen suite netlists.

Every suite circuit is also shipped as a ``.bench`` file under
``repro/data/`` — written once from the seeded generators and pinned by
the test suite.  Downstream users get byte-stable netlists independent
of any future generator change, and results cite a concrete artifact
(the role the ISCAS tarballs play for the paper).
"""

from __future__ import annotations

from pathlib import Path

from repro.circuit.bench import parse_bench
from repro.circuit.netlist import Circuit

_DATA_DIR = Path(__file__).resolve().parent.parent / "data"


def frozen_names() -> list:
    """Names of all shipped frozen netlists."""
    return sorted(p.stem for p in _DATA_DIR.glob("*.bench"))


def load_frozen(name: str) -> Circuit:
    """Load a frozen suite netlist by name."""
    path = _DATA_DIR / f"{name}.bench"
    if not path.exists():
        raise KeyError(
            f"no frozen netlist {name!r}; available: {', '.join(frozen_names())}"
        )
    circuit = parse_bench(path.read_text(), name=name)
    return circuit


def frozen_path(name: str) -> Path:
    """Filesystem path of a frozen netlist (for external tools)."""
    path = _DATA_DIR / f"{name}.bench"
    if not path.exists():
        raise KeyError(f"no frozen netlist {name!r}")
    return path
