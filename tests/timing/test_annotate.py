"""Delay annotations: comment form ≡ sidecar form ≡ in-memory dict."""

import pytest

from repro.circuit.bench import BenchParseError, parse_bench
from repro.timing.annotate import (
    delays_digest,
    materialize_delays,
    parse_delay_annotations,
    parse_delay_lines,
    parse_delays_file,
    sidecar_path,
    write_delay_annotations,
)
from repro.timing.delays import random_delays

BENCH = """\
INPUT(a)
INPUT(b)
OUTPUT(y)
n = NOT(a)
y = AND(n, b)
"""

ANNOTATED = BENCH + """\
# delay: n 0.5 0.75
# delay: y 1.25 1.0
"""

SIDECAR = """\
# a sidecar comment
n 0.5 0.75
y 1.25 1.0   # trailing comment
"""

ANNOS = {"n": (0.5, 0.75), "y": (1.25, 1.0)}


def _circuit():
    return parse_bench(BENCH, name="tiny")


class TestParsing:
    def test_comment_form(self):
        assert parse_delay_annotations(ANNOTATED) == ANNOS

    def test_sidecar_form(self):
        assert parse_delay_lines(SIDECAR) == ANNOS

    def test_sidecar_accepts_comment_form_lines(self):
        assert parse_delay_lines("# delay: n 0.5 0.75\n") == {"n": (0.5, 0.75)}

    def test_plain_bench_has_no_annotations(self):
        assert parse_delay_annotations(BENCH) == {}

    def test_duplicate_is_error(self):
        text = "# delay: n 1 1\n# delay: n 2 2\n"
        with pytest.raises(BenchParseError, match="duplicate"):
            parse_delay_annotations(text)

    def test_malformed_payload_carries_source_and_line(self):
        with pytest.raises(BenchParseError, match=r"x\.delays: line 1"):
            parse_delay_lines("n 0.5\n", source="x.delays")

    def test_non_numeric_rejected(self):
        with pytest.raises(BenchParseError, match="non-numeric"):
            parse_delay_lines("n fast slow\n")

    def test_negative_rejected(self):
        with pytest.raises(BenchParseError, match="negative"):
            parse_delay_lines("n -1 1\n")

    def test_sidecar_is_strict_about_junk_lines(self):
        with pytest.raises(BenchParseError):
            parse_delay_lines("y = AND(n, b)\n")

    def test_sidecar_path_convention(self):
        assert sidecar_path("suite/c17.bench").name == "c17.delays"


class TestMaterialize:
    def test_three_forms_agree(self, tmp_path):
        circuit = _circuit()
        sidecar = tmp_path / "tiny.delays"
        sidecar.write_text(SIDECAR)
        from_comments = materialize_delays(
            circuit, parse_delay_annotations(ANNOTATED)
        )
        from_sidecar = materialize_delays(circuit, parse_delays_file(sidecar))
        from_memory = materialize_delays(circuit, ANNOS)
        assert from_comments == from_sidecar == from_memory

    def test_annotations_overlay_seeded_base(self):
        circuit = _circuit()
        delays = materialize_delays(circuit, {"n": (0.5, 0.75)}, seed=7)
        base = random_delays(circuit, seed=7)
        n = circuit.gate_by_name("n")
        y = circuit.gate_by_name("y")
        assert (delays.rise[n], delays.fall[n]) == (0.5, 0.75)
        assert (delays.rise[y], delays.fall[y]) == (base.rise[y], base.fall[y])

    def test_unit_base(self):
        circuit = _circuit()
        delays = materialize_delays(circuit, {}, base="unit")
        y = circuit.gate_by_name("y")
        assert delays.rise[y] == delays.fall[y] == 1.0

    def test_unknown_gate_rejected(self):
        with pytest.raises(BenchParseError, match="unknown gate"):
            materialize_delays(_circuit(), {"nope": (1.0, 1.0)})

    def test_pi_annotation_rejected(self):
        with pytest.raises(BenchParseError, match="primary input"):
            materialize_delays(_circuit(), {"a": (1.0, 1.0)})

    def test_strict_requires_full_coverage(self):
        circuit = _circuit()
        with pytest.raises(BenchParseError, match="missing annotations"):
            materialize_delays(circuit, ANNOS, strict=True)
        full = dict(ANNOS)
        full["y_po"] = (0.0, 0.0)
        materialize_delays(circuit, full, strict=True)  # no raise


class TestRoundTripAndDigest:
    def test_write_parse_round_trip_is_bit_exact(self):
        circuit = _circuit()
        delays = random_delays(circuit, seed=3)
        for comment in (False, True):
            text = write_delay_annotations(delays, comment=comment)
            parse = parse_delay_lines if not comment else parse_delay_annotations
            rebuilt = materialize_delays(circuit, parse(text), strict=True)
            assert rebuilt == delays

    def test_digest_stable_and_content_addressed(self):
        circuit = _circuit()
        a = materialize_delays(circuit, ANNOS)
        b = materialize_delays(circuit, dict(reversed(list(ANNOS.items()))))
        assert delays_digest(a).startswith("rdly1:")
        assert delays_digest(a) == delays_digest(b)
        assert delays_digest(a) != delays_digest(
            materialize_delays(circuit, ANNOS, seed=1)
        )

    def test_digest_invariant_under_renaming(self):
        circuit = _circuit()
        renamed = parse_bench(
            BENCH.replace("n", "inv").replace("y", "out"), name="tiny2"
        )
        d1 = materialize_delays(circuit, {"n": (0.5, 0.75)}, base="unit")
        d2 = materialize_delays(renamed, {"inv": (0.5, 0.75)}, base="unit")
        assert delays_digest(d1) == delays_digest(d2)
