"""The SQLite-backed, content-addressed result store.

One :class:`ResultStore` is a single-file database mapping
``(fingerprint, kind, variant)`` to a JSON payload:

=============  =============================================  ============
kind           variant                                        payload
=============  =============================================  ============
``counts``     ``""``                                         ``up``/``down`` DP arrays, canonical gate order
``classify``   ``<CRITERION>|<sort key>``                     accepted/total/edges + optional per-lead counts
``sort``       ``heu1`` / ``heu2``                            rank array, canonical lead order
``tightness``  ``<schema>|<CRITERION>|<sort>|<budget>``       exact-vs-approximate verdict counts per circuit
``signoff``    ``<schema>|<delay digest>|k=N`` / ``slack=T``  accepted robust-path set as canonical lead positions
=============  =============================================  ============

Every row is stamped with :data:`~repro.store.fingerprint.SCHEMA_VERSION`;
reads only ever see rows of the *current* schema, so a payload-format or
fingerprint-algorithm change can never serve stale data — old rows just
stop being visible until ``gc`` reclaims them.

Concurrency: the database runs in WAL mode with a busy timeout, so the
``jobs=N`` process pool of the experiment harness and the threads of the
analysis service can all read and write one store file concurrently.
Connections are opened lazily *per process* (the store object pickles as
its path, and a fork is detected by PID), every statement is retried on
``database is locked``/``busy``, and a corrupted or undecodable payload
is deleted and reported as a miss — a store can make a run faster, never
wrong, and never dead.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import StoreError
from repro.obs import get_registry
from repro.store.fingerprint import CONE_SCHEMA_VERSION, SCHEMA_VERSION

__all__ = ["STORE_FORMAT_VERSION", "ResultStore", "StoreStats"]

#: On-disk layout version, stamped into ``PRAGMA user_version``.  v2
#: adds the cone-level ``cone_entries`` table.  A v1 file (created
#: before cone support) still opens cleanly — whole-circuit entries work
#: exactly as before and the cone API degrades to always-miss/no-op
#: (:attr:`ResultStore.supports_cones` is ``False``) until the file is
#: ``clear``-ed, which upgrades it.
STORE_FORMAT_VERSION = 2

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS entries (
    fingerprint TEXT NOT NULL,
    kind        TEXT NOT NULL,
    variant     TEXT NOT NULL,
    schema      INTEGER NOT NULL,
    payload     TEXT NOT NULL,
    created     REAL NOT NULL,
    last_used   REAL NOT NULL,
    hits        INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (fingerprint, kind, variant, schema)
)
"""

#: Cone-granularity results (schema v2): keyed by the *cone* fingerprint
#: (``rdcfp1:``) plus the classification variant — criterion, sort and
#: acceptance budget — so an edited netlist reuses every untouched
#: cone's rows.
_CONE_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS cone_entries (
    cone_fp     TEXT NOT NULL,
    variant     TEXT NOT NULL,
    schema      INTEGER NOT NULL,
    payload     TEXT NOT NULL,
    created     REAL NOT NULL,
    last_used   REAL NOT NULL,
    hits        INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (cone_fp, variant, schema)
)
"""

#: bounded retry for statements that hit a held write lock even after
#: SQLite's own busy timeout
_LOCK_RETRIES = 8
_LOCK_SLEEP = 0.05


def _is_locked(exc: sqlite3.OperationalError) -> bool:
    text = str(exc).lower()
    return "locked" in text or "busy" in text


@dataclass(frozen=True)
class StoreStats:
    """A snapshot of one store file, for ``repro-rd cache stats``.

    ``entries``/``by_kind`` count the whole-circuit table; the cone-level
    table (schema v2) is broken out separately so cache pressure from
    fine-grained ECO rows is visible at a glance.
    """

    path: str
    entries: int
    by_kind: "dict[str, int]"
    stale_entries: int  #: rows of other schema versions (gc reclaims)
    total_hits: int
    size_bytes: int
    whole_payload_bytes: int = 0
    cone_entries: int = 0
    cone_stale: int = 0
    cone_hits: int = 0
    cone_payload_bytes: int = 0
    supports_cones: bool = True

    def render(self) -> str:
        kinds = ", ".join(
            f"{kind}={count}" for kind, count in sorted(self.by_kind.items())
        )
        if self.supports_cones:
            cone_line = (
                f"cone:    {self.cone_entries} entries, "
                f"{self.cone_payload_bytes:,} payload bytes, "
                f"{self.cone_hits} hits"
            )
        else:
            cone_line = "cone:    disabled (schema v1 store; `cache clear` upgrades)"
        return "\n".join(
            [
                f"store:   {self.path}",
                f"entries: {self.entries} ({kinds or 'empty'})",
                f"whole:   {self.entries} entries, "
                f"{self.whole_payload_bytes:,} payload bytes, "
                f"{self.total_hits} hits",
                cone_line,
                f"stale:   {self.stale_entries + self.cone_stale} "
                "(other schema versions)",
                f"hits:    {self.total_hits + self.cone_hits}",
                f"size:    {self.size_bytes:,} bytes",
                f"schema:  {SCHEMA_VERSION} (cone {CONE_SCHEMA_VERSION})",
            ]
        )


class ResultStore:
    """A content-addressed cache of analysis results in one SQLite file.

    ``path`` may be ``":memory:"`` for tests — such a store is private
    to the process that opened it (workers forked by the harness see an
    empty database).
    """

    def __init__(self, path: "str | Path", busy_timeout: float = 10.0):
        self.path = str(path)
        self.busy_timeout = busy_timeout
        self._local_conn: "sqlite3.Connection | None" = None
        self._pid = -1
        self._lock = threading.Lock()
        self._cone_ok = False  # set by _connect

    # -- connection management -----------------------------------------
    def _connect(self) -> sqlite3.Connection:
        try:
            conn = sqlite3.connect(
                self.path,
                timeout=self.busy_timeout,
                check_same_thread=False,
                isolation_level=None,  # autocommit: every statement durable
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            # a pre-cone (v1) file keeps working with cone features off;
            # anything newer (or fresh) gets the cone table and the v2 stamp
            tables = {
                row[0]
                for row in conn.execute(
                    "SELECT name FROM sqlite_master WHERE type='table'"
                )
            }
            version = conn.execute("PRAGMA user_version").fetchone()[0]
            legacy_v1 = (
                "entries" in tables
                and "cone_entries" not in tables
                and version < STORE_FORMAT_VERSION
            )
            conn.execute(_SCHEMA_SQL)
            if not legacy_v1:
                conn.execute(_CONE_SCHEMA_SQL)
                if version < STORE_FORMAT_VERSION:
                    conn.execute(f"PRAGMA user_version={STORE_FORMAT_VERSION:d}")
            self._cone_ok = not legacy_v1
        except sqlite3.Error as exc:
            raise StoreError(f"cannot open result store {self.path!r}: {exc}")
        return conn

    @property
    def supports_cones(self) -> bool:
        """Whether this file has the cone-level table (schema v2).  A v1
        store answers ``False`` and the cone API degrades gracefully:
        every ``cone_get`` misses, every ``cone_put`` is a no-op."""
        self._conn  # noqa: B018 - connect (and detect the layout) lazily
        return self._cone_ok

    @property
    def _conn(self) -> sqlite3.Connection:
        # reopen after fork: SQLite connections must not cross processes
        if self._local_conn is None or self._pid != os.getpid():
            self._local_conn = self._connect()
            self._pid = os.getpid()
        return self._local_conn

    def close(self) -> None:
        if self._local_conn is not None and self._pid == os.getpid():
            self._local_conn.close()
        self._local_conn = None
        self._pid = -1

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __reduce__(self):
        # pickles as its path: each pool worker opens its own connection
        return (type(self), (self.path, self.busy_timeout))

    def _execute(self, sql: str, params: tuple = ()):
        """One statement with bounded retry on a held write lock."""
        with self._lock:
            for attempt in range(_LOCK_RETRIES):
                try:
                    return self._conn.execute(sql, params)
                except sqlite3.OperationalError as exc:
                    if not _is_locked(exc) or attempt == _LOCK_RETRIES - 1:
                        raise StoreError(
                            f"result store {self.path!r}: {exc}"
                        ) from exc
                    time.sleep(_LOCK_SLEEP * (attempt + 1))
                except sqlite3.DatabaseError as exc:
                    raise StoreError(
                        f"result store {self.path!r}: {exc}"
                    ) from exc
        raise AssertionError("unreachable")

    # -- the content-addressed API -------------------------------------
    def get(self, fingerprint: str, kind: str, variant: str = "") -> "dict | None":
        """The payload stored under this key at the current schema
        version, or ``None``.  An undecodable payload is deleted and
        reported as a miss (never served, never fatal)."""
        registry = get_registry()
        registry.counter("store.gets").inc()
        started = time.perf_counter()
        row = self._execute(
            "SELECT payload FROM entries WHERE fingerprint=? AND kind=? "
            "AND variant=? AND schema=?",
            (fingerprint, kind, variant, SCHEMA_VERSION),
        ).fetchone()
        if row is None:
            registry.counter("store.misses").inc()
            registry.histogram("store.get_seconds").observe(
                time.perf_counter() - started
            )
            return None
        try:
            payload = json.loads(row[0])
            if not isinstance(payload, dict):
                raise ValueError("payload is not an object")
        except (ValueError, TypeError):
            registry.counter("store.corrupt_entries").inc()
            registry.counter("store.misses").inc()
            self.delete(fingerprint, kind, variant)
            return None
        self._execute(
            "UPDATE entries SET hits=hits+1, last_used=? WHERE fingerprint=? "
            "AND kind=? AND variant=? AND schema=?",
            (time.time(), fingerprint, kind, variant, SCHEMA_VERSION),
        )
        registry.counter("store.hits").inc()
        registry.histogram("store.get_seconds").observe(
            time.perf_counter() - started
        )
        return payload

    def put(self, fingerprint: str, kind: str, variant: str, payload: dict) -> None:
        """Insert or replace one entry (stamped with the current schema)."""
        registry = get_registry()
        registry.counter("store.puts").inc()
        started = time.perf_counter()
        now = time.time()
        self._execute(
            "INSERT OR REPLACE INTO entries "
            "(fingerprint, kind, variant, schema, payload, created, "
            "last_used, hits) VALUES (?, ?, ?, ?, ?, ?, ?, 0)",
            (
                fingerprint,
                kind,
                variant,
                SCHEMA_VERSION,
                json.dumps(payload, sort_keys=True, separators=(",", ":")),
                now,
                now,
            ),
        )
        registry.histogram("store.put_seconds").observe(
            time.perf_counter() - started
        )

    def delete(self, fingerprint: str, kind: str, variant: str = "") -> None:
        self._execute(
            "DELETE FROM entries WHERE fingerprint=? AND kind=? AND variant=?",
            (fingerprint, kind, variant),
        )

    # -- the cone-granularity API (schema v2) --------------------------
    def cone_get(self, cone_fp: str, variant: str) -> "dict | None":
        """The cone-level payload under ``(cone_fp, variant)`` at the
        current cone schema version, or ``None``.  Same never-wrong
        contract as :meth:`get`; on a v1 store this is always a miss."""
        registry = get_registry()
        registry.counter("store.cone_gets").inc()
        if not self.supports_cones:
            registry.counter("store.cone_misses").inc()
            return None
        row = self._execute(
            "SELECT payload FROM cone_entries WHERE cone_fp=? AND variant=? "
            "AND schema=?",
            (cone_fp, variant, CONE_SCHEMA_VERSION),
        ).fetchone()
        if row is None:
            registry.counter("store.cone_misses").inc()
            return None
        try:
            payload = json.loads(row[0])
            if not isinstance(payload, dict):
                raise ValueError("payload is not an object")
        except (ValueError, TypeError):
            registry.counter("store.corrupt_entries").inc()
            registry.counter("store.cone_misses").inc()
            self.cone_delete(cone_fp, variant)
            return None
        self._execute(
            "UPDATE cone_entries SET hits=hits+1, last_used=? WHERE cone_fp=? "
            "AND variant=? AND schema=?",
            (time.time(), cone_fp, variant, CONE_SCHEMA_VERSION),
        )
        registry.counter("store.cone_hits").inc()
        return payload

    def cone_put(self, cone_fp: str, variant: str, payload: dict) -> None:
        """Insert or replace one cone-level entry (no-op on a v1 store)."""
        if not self.supports_cones:
            return
        get_registry().counter("store.cone_puts").inc()
        now = time.time()
        self._execute(
            "INSERT OR REPLACE INTO cone_entries "
            "(cone_fp, variant, schema, payload, created, last_used, hits) "
            "VALUES (?, ?, ?, ?, ?, ?, 0)",
            (
                cone_fp,
                variant,
                CONE_SCHEMA_VERSION,
                json.dumps(payload, sort_keys=True, separators=(",", ":")),
                now,
                now,
            ),
        )

    def cone_delete(self, cone_fp: str, variant: str) -> None:
        if not self.supports_cones:
            return
        self._execute(
            "DELETE FROM cone_entries WHERE cone_fp=? AND variant=?",
            (cone_fp, variant),
        )

    # -- maintenance (the ``repro-rd cache`` subcommand) ----------------
    def stats(self) -> StoreStats:
        by_kind: "dict[str, int]" = {}
        for kind, count in self._execute(
            "SELECT kind, COUNT(*) FROM entries WHERE schema=? GROUP BY kind",
            (SCHEMA_VERSION,),
        ).fetchall():
            by_kind[kind] = count
        stale = self._execute(
            "SELECT COUNT(*) FROM entries WHERE schema != ?", (SCHEMA_VERSION,)
        ).fetchone()[0]
        hits = self._execute(
            "SELECT COALESCE(SUM(hits), 0) FROM entries WHERE schema=?",
            (SCHEMA_VERSION,),
        ).fetchone()[0]
        whole_bytes = self._execute(
            "SELECT COALESCE(SUM(LENGTH(payload)), 0) FROM entries WHERE schema=?",
            (SCHEMA_VERSION,),
        ).fetchone()[0]
        cone_entries = cone_stale = cone_hits = cone_bytes = 0
        if self.supports_cones:
            cone_entries = self._execute(
                "SELECT COUNT(*) FROM cone_entries WHERE schema=?",
                (CONE_SCHEMA_VERSION,),
            ).fetchone()[0]
            cone_stale = self._execute(
                "SELECT COUNT(*) FROM cone_entries WHERE schema != ?",
                (CONE_SCHEMA_VERSION,),
            ).fetchone()[0]
            cone_hits = self._execute(
                "SELECT COALESCE(SUM(hits), 0) FROM cone_entries WHERE schema=?",
                (CONE_SCHEMA_VERSION,),
            ).fetchone()[0]
            cone_bytes = self._execute(
                "SELECT COALESCE(SUM(LENGTH(payload)), 0) FROM cone_entries "
                "WHERE schema=?",
                (CONE_SCHEMA_VERSION,),
            ).fetchone()[0]
        try:
            size = os.path.getsize(self.path)
        except OSError:
            size = 0
        return StoreStats(
            path=self.path,
            entries=sum(by_kind.values()),
            by_kind=by_kind,
            stale_entries=stale,
            total_hits=hits,
            size_bytes=size,
            whole_payload_bytes=whole_bytes,
            cone_entries=cone_entries,
            cone_stale=cone_stale,
            cone_hits=cone_hits,
            cone_payload_bytes=cone_bytes,
            supports_cones=self.supports_cones,
        )

    def gc(self, max_age_days: "float | None" = None) -> int:
        """Reclaim stale rows: every other-schema entry (in both tables),
        plus (when ``max_age_days`` is given) entries not used for that
        long.  Returns the number of rows removed."""
        removed = self._execute(
            "DELETE FROM entries WHERE schema != ?", (SCHEMA_VERSION,)
        ).rowcount
        if self.supports_cones:
            removed += self._execute(
                "DELETE FROM cone_entries WHERE schema != ?",
                (CONE_SCHEMA_VERSION,),
            ).rowcount
        if max_age_days is not None:
            cutoff = time.time() - max_age_days * 86400.0
            removed += self._execute(
                "DELETE FROM entries WHERE last_used < ?", (cutoff,)
            ).rowcount
            if self.supports_cones:
                removed += self._execute(
                    "DELETE FROM cone_entries WHERE last_used < ?", (cutoff,)
                ).rowcount
        self._execute("VACUUM")
        return removed

    def clear(self) -> int:
        """Drop every entry (all schema versions, both tables).  Returns
        the count.  Clearing a v1 store also upgrades it to the current
        layout (the cone table is created and the file stamped v2)."""
        removed = self._execute("DELETE FROM entries").rowcount
        if self.supports_cones:
            removed += self._execute("DELETE FROM cone_entries").rowcount
        else:
            self._execute(_CONE_SCHEMA_SQL)
            self._execute(f"PRAGMA user_version={STORE_FORMAT_VERSION:d}")
            self._cone_ok = True
        self._execute("VACUUM")
        return removed

    def __repr__(self) -> str:
        return f"ResultStore({self.path!r})"


def as_store(store: "ResultStore | str | Path | None") -> "ResultStore | None":
    """Normalize a ``store=`` argument (path or instance or None)."""
    if store is None or isinstance(store, ResultStore):
        return store
    return ResultStore(store)
