"""Property-based tests: path counting vs enumeration on random circuits."""

from hypothesis import given, settings

from repro.paths.count import count_paths
from repro.paths.enumerate import enumerate_physical_paths

from tests.strategies import small_circuits


@settings(max_examples=60, deadline=None)
@given(circuit=small_circuits())
def test_dp_count_equals_enumeration(circuit):
    counts = count_paths(circuit)
    enumerated = list(enumerate_physical_paths(circuit, limit=None))
    assert counts.total_physical == len(enumerated)


@settings(max_examples=60, deadline=None)
@given(circuit=small_circuits())
def test_per_lead_counts_are_consistent(circuit):
    counts = count_paths(circuit)
    per_lead = [0] * circuit.num_leads
    for p in enumerate_physical_paths(circuit, limit=None):
        for lead in p.leads:
            per_lead[lead] += 1
    assert list(counts.through_lead) == per_lead


@settings(max_examples=60, deadline=None)
@given(circuit=small_circuits())
def test_pi_po_count_duality(circuit):
    counts = count_paths(circuit)
    assert sum(counts.down[pi] for pi in circuit.inputs) == sum(
        counts.up[po] for po in circuit.outputs
    )
