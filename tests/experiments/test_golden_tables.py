"""Golden regression: the flat-IR engine reproduces the committed tables.

``tests/golden/tables_fingerprints.json`` was captured with the
pre-refactor object-graph engine.  Every fingerprint and every Table
I/III cell must come out *byte-identical* (exact float equality, not
approximate) from the bitset kernel, at ``jobs=1`` (in-process) and
``jobs=4`` (process pool — also exercising the flat pickling contract).
"""

import json
from pathlib import Path

import pytest

from repro.experiments.harness import run_table1_rows, run_table3_rows
from repro.gen.suite import get_circuit, table1_suite, table3_suite
from repro.store.db import ResultStore
from repro.store.fingerprint import fingerprint

GOLDEN = json.loads(
    (Path(__file__).parent.parent / "golden" / "tables_fingerprints.json")
    .read_text()
)

#: quick-subset circuits — small enough for unmarked tier-1 tests
_QUICK_TABLE1 = ("s432-rand", "s499-ecc")


def _table1_cells(row) -> dict:
    return {
        "name": row.name,
        "total_logical": row.total_logical,
        "fus_percent": row.fus_percent,
        "heu1_percent": row.heu1_percent,
        "heu2_percent": row.heu2_percent,
        "heu2_inverse_percent": row.heu2_inverse_percent,
    }


def _table3_cells(row) -> dict:
    return {
        "name": row.name,
        "total_logical": row.total_logical,
        "baseline_percent": row.baseline_percent,
        "heu2_percent": row.heu2_percent,
    }


def _golden_rows(table: str) -> dict:
    return {row["name"]: row for row in GOLDEN[table]}


class TestGoldenFingerprints:
    def test_all_suite_fingerprints_unchanged(self):
        for name, expected in GOLDEN["fingerprints"].items():
            assert fingerprint(get_circuit(name)) == expected, name

    def test_fingerprint_count(self):
        assert len(GOLDEN["fingerprints"]) == 17


class TestGoldenTable1Quick:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_quick_rows_match_golden(self, jobs):
        golden = _golden_rows("table1")
        circuits = [get_circuit(name) for name in _QUICK_TABLE1]
        rows = run_table1_rows(circuits, jobs=jobs)
        for row in rows:
            assert _table1_cells(row) == golden[row.name]

    def test_warm_store_rows_and_fingerprints_stable(self, tmp_path):
        golden = _golden_rows("table1")
        store_path = tmp_path / "warm.sqlite"
        circuits = [get_circuit(name) for name in _QUICK_TABLE1]
        cold = run_table1_rows(circuits, store=str(store_path))
        warm = run_table1_rows(
            [get_circuit(name) for name in _QUICK_TABLE1],
            store=str(store_path),
        )
        for row in cold + warm:
            assert _table1_cells(row) == golden[row.name]
        # the warm pass hit the store under the *same* fingerprints the
        # cold pass wrote — i.e. rebuilt circuits re-key identically
        with ResultStore(store_path) as store:
            fps = {
                row[0]
                for row in store._execute(
                    "SELECT DISTINCT fingerprint FROM entries"
                ).fetchall()
            }
        assert fps == {
            GOLDEN["fingerprints"][name] for name in _QUICK_TABLE1
        }


@pytest.mark.slow
class TestGoldenFullSuite:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_table1_all_nine_circuits(self, jobs):
        golden = _golden_rows("table1")
        rows = run_table1_rows(table1_suite(), jobs=jobs)
        assert [row.name for row in rows] == [
            row["name"] for row in GOLDEN["table1"]
        ]
        for row in rows:
            assert _table1_cells(row) == golden[row.name]
        # Table II is the same rows joined with the exact path counts —
        # golden-equal rows render a golden-equal table
        from repro.experiments import table2

        text = table2.run(rows=rows, include_count_only=True).render()
        for row in GOLDEN["table1"]:
            assert f"{row['total_logical']:,}" in text

    def test_table3_all_eight_circuits_serial(self):
        golden = _golden_rows("table3")
        rows = run_table3_rows(table3_suite(), jobs=1)
        assert [row.name for row in rows] == [
            row["name"] for row in GOLDEN["table3"]
        ]
        for row in rows:
            assert _table3_cells(row) == golden[row.name]

    def test_table3_smallest_circuits_pooled(self):
        # the full Table-III suite is dominated by the exact baseline
        # (not the classifier under test), so the pooled parity check
        # runs on the three smallest circuits only
        golden = _golden_rows("table3")
        names = ("apex-a", "z5xp-b", "bw-d")
        rows = run_table3_rows(
            [get_circuit(name) for name in names], jobs=4
        )
        for row in rows:
            assert _table3_cells(row) == golden[row.name]
