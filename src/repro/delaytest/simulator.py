"""Path delay fault simulation for two-pattern tests.

Given a test pair ``(v1, v2)``, which logical paths does it *robustly*
(or non-robustly) sensitize?  This is the fault-simulation counterpart
of the per-path SAT queries in :mod:`repro.delaytest.testability`
(after Schulz, Fink & Fuchs [6], the paper's reference for non-robust
sensitization): the two stable value frames are simulated once, then all
sensitized paths are enumerated by a DFS that extends path segments only
while the per-gate side conditions hold — the same prime-segment pruning
idea as the RD classifier, so cost tracks the sensitized set, not the
total path count.

Per-gate conditions for the pair (``c`` controlling value of the gate,
``val1/val2`` the on-path stable values):

* the on-path signal must actually transition: ``val1 = ¬val2``;
* ``val2 = c``  (transition *to* controlling): non-robust needs all side
  inputs non-controlling under v2; robust additionally under v1 (steady);
* ``val2 = ¬c`` (transition to non-controlling): both classes need all
  side inputs non-controlling under v2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.circuit.gates import (
    GateType,
    controlling_value,
    has_controlling_value,
)
from repro.circuit.netlist import Circuit
from repro.logic.simulate import simulate
from repro.paths.path import LogicalPath, PhysicalPath


@dataclass
class SimulatedCoverage:
    """Paths sensitized by one or more test pairs."""

    robust: set = field(default_factory=set)
    nonrobust: set = field(default_factory=set)

    def merge(self, other: "SimulatedCoverage") -> None:
        self.robust |= other.robust
        self.nonrobust |= other.nonrobust


def sensitized_paths(
    circuit: Circuit,
    v1: Sequence[int],
    v2: Sequence[int],
    max_paths: int = 1_000_000,
) -> SimulatedCoverage:
    """All logical paths the pair ``(v1, v2)`` sensitizes.

    Non-robustly sensitized paths are a superset of the robustly
    sensitized ones by construction.
    """
    values1 = simulate(circuit, v1)
    values2 = simulate(circuit, v2)
    coverage = SimulatedCoverage()
    stack: list[int] = []
    budget = [max_paths]

    def extend(gate: int, robust_ok: bool, pi_final: int) -> None:
        for dst, pin in circuit.fanout(gate):
            gtype = circuit.gate_type(dst)
            lead = circuit.lead_index(dst, pin)
            if gtype is GateType.PO:
                stack.append(lead)
                lp = LogicalPath(PhysicalPath(tuple(stack)), pi_final)
                coverage.nonrobust.add(lp)
                if robust_ok:
                    coverage.robust.add(lp)
                budget[0] -= 1
                if budget[0] < 0:
                    raise RuntimeError(
                        f"more than {max_paths} sensitized paths"
                    )
                stack.pop()
                continue
            # The gate output must transition for the path to continue.
            if values1[dst] == values2[dst]:
                continue
            if gtype in (GateType.NOT, GateType.BUF):
                stack.append(lead)
                extend(dst, robust_ok, pi_final)
                stack.pop()
                continue
            if not has_controlling_value(gtype):
                continue
            c = controlling_value(gtype)
            nc = 1 - c
            fanin = circuit.fanin(dst)
            sides_nc_v2 = all(
                values2[src] == nc
                for p, src in enumerate(fanin)
                if p != pin
            )
            if not sides_nc_v2:
                continue  # not even non-robustly sensitized
            if values2[gate] == c:
                sides_steady = all(
                    values1[src] == nc
                    for p, src in enumerate(fanin)
                    if p != pin
                )
                child_robust = robust_ok and sides_steady
            else:
                child_robust = robust_ok
            stack.append(lead)
            extend(dst, child_robust, pi_final)
            stack.pop()

    for pi in circuit.inputs:
        if values1[pi] != values2[pi]:
            extend(pi, True, values2[pi])
    return coverage


def simulate_test_set(
    circuit: Circuit,
    pairs: "Sequence[tuple]",
    max_paths: int = 1_000_000,
) -> SimulatedCoverage:
    """Union of the coverage of several test pairs."""
    total = SimulatedCoverage()
    for v1, v2 in pairs:
        total.merge(sensitized_paths(circuit, v1, v2, max_paths=max_paths))
    return total


def robust_coverage_of_test_set(
    circuit: Circuit,
    pairs: "Sequence[tuple]",
    target_paths,
) -> float:
    """Fraction of ``target_paths`` robustly covered by ``pairs``."""
    targets = set(target_paths)
    if not targets:
        return 1.0
    covered = simulate_test_set(circuit, pairs).robust & targets
    return len(covered) / len(targets)
