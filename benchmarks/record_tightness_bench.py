"""Record the SAT-exact tightness sweep on the brute-force-checkable suite.

For every suite circuit with at most 20 primary inputs: stream the
word-parallel classifier's accept set, decide true ``LP(sigma^pi)``
membership per accepted path with the incremental CDCL oracle
(:mod:`repro.verdict`), and write ``BENCH_exact.json`` at the repo root
with per-circuit wall times, verdict counts, solver work (conflicts,
decisions, learned-clause reuse) and the Lemma-2 gap — the committed
ground truth every approximation claim is scored against.  The 20-PI
ceiling keeps each circuit independently cross-checkable against
``repro.classify.exact.exists_vector``:

    PYTHONPATH=src python benchmarks/record_tightness_bench.py

``--smoke`` is the CI guard: two small circuits driven through the
``repro-rd tightness`` command line with ``--json``, asserting the
soundness chain (exact RD% >= approximate RD%), at least one replayed
certificate, and a warm-store second pass.  It writes no file and
finishes in seconds:

    PYTHONPATH=src python benchmarks/record_tightness_bench.py --smoke
"""

from __future__ import annotations

import contextlib
import io
import json
import platform
import sys
import tempfile
from pathlib import Path

from repro.classify.conditions import Criterion
from repro.gen.suite import get_circuit
from repro.verdict import default_suite_circuits, run_tightness

OUT = Path(__file__).resolve().parent.parent / "BENCH_exact.json"

MAX_INPUTS = 20
MAX_ACCEPTED = 50_000


def main() -> int:
    report = run_tightness(
        criterion=Criterion.SIGMA_PI,
        sort="heu2",
        max_inputs=MAX_INPUTS,
        max_accepted=MAX_ACCEPTED,
    )
    print(report.render())
    rows = []
    for row in report.rows:
        entry = row.to_dict()
        entry["elapsed"] = round(entry["elapsed"], 4)
        for key in ("approx_rd_percent", "exact_rd_percent", "gap_percent"):
            entry[key] = round(entry[key], 4)
        rows.append(entry)
    decided = [r for r in report.rows if not r.skipped]
    for row in decided:
        if not row.exact_accepted <= row.approx_accepted:
            raise AssertionError(f"{row.circuit}: soundness chain violated")
        if row.witness_replays != row.exact_accepted:
            raise AssertionError(f"{row.circuit}: unreplayed certificates")
    doc = {
        "benchmark": "sat-exact-tightness",
        "unit": "wall seconds per circuit (classify + SAT verdicts)",
        "criterion": "SIGMA_PI",
        "sort": "heu2",
        "max_inputs": MAX_INPUTS,
        "max_accepted": MAX_ACCEPTED,
        "python": platform.python_version(),
        "totals": {
            "circuits": len(report.rows),
            "decided": len(decided),
            "skipped": len(report.rows) - len(decided),
            "sat_queries": sum(r.approx_accepted for r in decided),
            "sat_confirmed": sum(r.exact_accepted for r in decided),
            "refuted": sum(r.refuted for r in decided),
            "witness_replays": sum(r.witness_replays for r in decided),
            "conflicts": sum(r.conflicts for r in decided),
            "decisions": sum(r.decisions for r in decided),
            "learned_reuse": sum(r.learned_reuse for r in decided),
            "circuits_with_gap": sum(
                1 for r in decided if r.refuted > 0
            ),
            "wall_s": round(report.wall_seconds, 2),
        },
        "rows": rows,
    }
    OUT.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    gaps = [r.circuit for r in decided if r.refuted > 0]
    print(
        f"\n{len(decided)} circuits decided in {report.wall_seconds:.1f}s, "
        f"{doc['totals']['refuted']} refuted paths "
        f"(gap on: {', '.join(gaps) or 'none'}) -> {OUT}"
    )
    return 0


def _cli_json(argv: list) -> dict:
    """Run the repro-rd CLI in-process and parse its --json output."""
    from repro.cli import main as cli_main

    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = cli_main(argv)
    if code not in (0, None):
        raise AssertionError(f"repro-rd {argv[0]} exited {code}")
    return json.loads(buffer.getvalue())


def smoke() -> int:
    """CI guard: the tightness command line works end to end."""
    # keep the ScanCircuit substrate honest too: the suite's seq-g core
    # goes through the same verdict path as the combinational circuits
    get_circuit("seq-g")
    with tempfile.TemporaryDirectory() as tmp:
        store_path = str(Path(tmp) / "verdicts.sqlite")
        cold = _cli_json(
            ["tightness", "c17", "apex-a", "--store", store_path, "--json"]
        )
        assert cold["criterion"] == "SIGMA_PI", cold
        assert len(cold["rows"]) == 2, cold
        for row in cold["rows"]:
            assert not row["skipped"], row
            assert row["source"] == "computed", row
            assert row["exact_rd_percent"] >= row["approx_rd_percent"], row
            assert row["witness_replays"] == row["exact_accepted"], row
            assert row["witness_replays"] >= 1, row
        warm = _cli_json(
            ["tightness", "c17", "apex-a", "--store", store_path, "--json"]
        )
        for cold_row, warm_row in zip(cold["rows"], warm["rows"]):
            assert warm_row["source"] == "store", warm_row
            for key in ("total_logical", "approx_accepted", "exact_accepted"):
                assert warm_row[key] == cold_row[key], key
    replays = sum(r["witness_replays"] for r in cold["rows"])
    print(f"tightness smoke ok: c17+apex-a, {replays} certificates replayed")
    return 0


if __name__ == "__main__":
    sys.exit(smoke() if "--smoke" in sys.argv[1:] else main())
