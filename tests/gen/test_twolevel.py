"""Unit tests for random covers and the multi-level factoring pass."""

import pytest

from repro.circuit.gates import GateType
from repro.gen.twolevel import factored_circuit, random_cover
from repro.logic.simulate import all_vectors, output_values


class TestRandomCover:
    def test_deterministic(self):
        a = random_cover(6, 2, 10, seed=3)
        b = random_cover(6, 2, 10, seed=3)
        assert a.cubes == b.cubes

    def test_every_output_covered(self):
        for seed in range(6):
            cover = random_cover(7, 3, 12, seed=seed)
            for j in range(cover.num_outputs):
                assert any(out[j] == "1" for _, out in cover.cubes), (
                    f"seed {seed}: output {j} uncovered"
                )

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            random_cover(1, 1, 4)
        with pytest.raises(ValueError):
            random_cover(6, 3, 2)
        with pytest.raises(ValueError):
            random_cover(6, 1, 4, redundancy=1.5)

    def test_redundancy_creates_specialised_cubes(self):
        cover = random_cover(8, 2, 24, seed=1, redundancy=0.6)

        def literals(cube):
            return {
                (i, lit) for i, lit in enumerate(cube) if lit != "-"
            }

        specialised = 0
        for i, (cube_i, out_i) in enumerate(cover.cubes):
            for j, (cube_j, out_j) in enumerate(cover.cubes):
                if i == j:
                    continue
                if literals(cube_j) < literals(cube_i):
                    specialised += 1
                    break
        assert specialised > 0


class TestFactoredCircuit:
    @pytest.mark.parametrize("seed", range(5))
    def test_function_preserved(self, seed):
        cover = random_cover(7, 3, 14, seed=seed)
        circuit = factored_circuit(cover)
        for vector in all_vectors(7):
            assert output_values(circuit, vector) == cover.evaluate(vector), (
                f"seed {seed} vector {vector}"
            )

    def test_two_input_gates_only(self):
        cover = random_cover(7, 2, 12, seed=2)
        circuit = factored_circuit(cover)
        for g in range(circuit.num_gates):
            if circuit.gate_type(g) in (GateType.AND, GateType.OR):
                assert len(circuit.fanin(g)) == 2

    def test_sharing_creates_internal_fanout(self):
        from repro.circuit.transforms import has_internal_fanout

        cover = random_cover(8, 3, 20, seed=4, redundancy=0.5)
        circuit = factored_circuit(cover)
        assert has_internal_fanout(circuit)

    def test_smaller_than_flat_two_level(self):
        """Hash-consing + extraction shouldn't blow the netlist up
        relative to the flat AND-OR form by more than the 2-input
        decomposition factor."""
        cover = random_cover(8, 3, 20, seed=4)
        flat = cover.to_circuit()
        multi = factored_circuit(cover)
        literal_count = sum(
            sum(1 for lit in cube if lit != "-") for cube, _ in cover.cubes
        )
        assert multi.num_gates <= flat.num_gates + literal_count
