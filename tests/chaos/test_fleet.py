"""Chaos tests for the service fleet: real worker processes killed,
wedged and crashed mid-request, with the front-end's recovery contract
asserted from the client's side of the wire.

The contract under fire:

* a SIGKILLed worker mid-request yields a *transparent retry* on a
  surviving shard or a *structured error* — never a hang, never a
  dropped client connection;
* a SIGSTOPped (wedged) worker fails its health checks and is respawned
  by the supervisor, and routing to its shard resumes;
* answers produced through crashes and coalescing are byte-identical
  (modulo run-varying telemetry keys) to a clean single request.

All tests here are marked ``chaos``; CI runs them as a separate step.
"""

import os
import signal
import threading
import time

import pytest

from repro.errors import RemoteError, ServiceError
from repro.obs import get_registry
from repro.service.client import RetryPolicy, ServiceClient

from tests.service.fleet_harness import FleetHarness, stable_result

pytestmark = pytest.mark.chaos

#: big enough to keep a worker busy for a second or two, so a kill
#: reliably lands mid-request
SLOW_CIRCUIT = "s499-ecc"


def _fast_harness(**overrides):
    """A fleet tuned for quick failure detection in tests."""
    kwargs = dict(
        workers=2,
        health_interval=0.2,
        health_timeout=1.0,
        max_health_failures=2,
        backoff_base=0.05,
        backoff_max=0.5,
    )
    kwargs.update(overrides)
    return FleetHarness(**kwargs)


def _classify_on_thread(address, outcomes, index, **fields):
    def run():
        with ServiceClient.connect(
            address, retry=RetryPolicy(base_delay=0.05)
        ) as client:
            try:
                outcomes[index] = client.classify(**fields)
            except (RemoteError, ServiceError) as exc:
                outcomes[index] = exc

    thread = threading.Thread(target=run)
    thread.start()
    return thread


def _wait_for_respawn(harness, baseline, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if harness.server.supervisor.respawn_total > baseline:
            return True
        time.sleep(0.1)
    return False


def _wait_all_up(harness, timeout=30.0):
    deadline = time.monotonic() + timeout
    workers = harness.server.supervisor.workers
    while time.monotonic() < deadline:
        if all(h.state == "up" for h in workers):
            return True
        time.sleep(0.1)
    return False


class TestKillMidRequest:
    def test_sigkill_yields_answer_or_structured_error_never_hang(
        self, tmp_path
    ):
        harness = _fast_harness()
        harness.start(str(tmp_path / "fleet.sock"))
        try:
            # a clean reference answer first
            with ServiceClient.connect(harness.address) as client:
                clean = client.classify(circuit=SLOW_CIRCUIT)
            respawns_before = harness.server.supervisor.respawn_total

            home = clean["worker"]
            started = threading.Event()
            outcomes: list = [None]

            def on_event(event):
                started.set()

            thread = _classify_on_thread(
                harness.address, outcomes, 0,
                circuit=SLOW_CIRCUIT, on_event=on_event,
            )
            assert started.wait(60), "request never started on a worker"
            os.kill(harness.worker_pid(home), signal.SIGKILL)
            thread.join(120)
            assert not thread.is_alive(), "client hung after worker kill"

            outcome = outcomes[0]
            if isinstance(outcome, dict):
                # transparent retry on the surviving shard: the answer
                # must match the clean run exactly
                assert stable_result(outcome) == stable_result(clean)
            else:
                # or a structured error — a RemoteError from the wire,
                # never a raw disconnect surfacing as ServiceError
                assert isinstance(outcome, RemoteError), repr(outcome)

            assert _wait_for_respawn(harness, respawns_before)
            assert _wait_all_up(harness)

            # the respawned shard serves its old keys again
            with ServiceClient.connect(
                harness.address, retry=RetryPolicy()
            ) as client:
                after = client.classify(circuit=SLOW_CIRCUIT)
            assert after["worker"] == home
            assert stable_result(after) == stable_result(clean)
        finally:
            harness.stop()

    def test_respawn_counter_reaches_the_metrics_op(self, tmp_path):
        harness = _fast_harness()
        harness.start(str(tmp_path / "fleet.sock"))
        try:
            before = get_registry().counter("fleet.respawns").value
            os.kill(harness.worker_pid(0), signal.SIGKILL)
            assert _wait_for_respawn(harness, 0)
            assert _wait_all_up(harness)
            with ServiceClient.connect(
                harness.address, retry=RetryPolicy()
            ) as client:
                snapshot = client.metrics()
                stats = client.stats()
            counters = snapshot["metrics"]["counters"]
            assert counters["fleet.respawns"] > before
            assert stats["respawns"] >= 1
        finally:
            harness.stop()


class TestWedgedWorker:
    def test_sigstop_worker_is_respawned_by_health_checks(self, tmp_path):
        harness = _fast_harness(health_timeout=0.5)
        harness.start(str(tmp_path / "fleet.sock"))
        try:
            pid = harness.worker_pid(1)
            respawns_before = harness.server.supervisor.respawn_total
            os.kill(pid, signal.SIGSTOP)
            try:
                # health checks must notice the wedge (no crash signal —
                # the process is alive but unresponsive) and respawn
                assert _wait_for_respawn(harness, respawns_before), (
                    "supervisor never respawned the wedged worker"
                )
            finally:
                # SIGKILL superseded the stop during respawn, but be
                # safe: never leak a stopped process from a failed test
                try:
                    os.kill(pid, signal.SIGCONT)
                except ProcessLookupError:
                    pass
            assert _wait_all_up(harness)
            assert harness.worker_pid(1) != pid

            # the fleet answers on both shards afterwards
            with ServiceClient.connect(
                harness.address, retry=RetryPolicy()
            ) as client:
                result = client.classify(circuit="c17")
            assert result["total_logical"] == 22
        finally:
            harness.stop()


class TestCoalescingUnderFire:
    def test_coalesced_followers_share_the_leaders_fate(self, tmp_path):
        """Kill the worker while K identical requests are coalesced on
        it: every client gets the *same* outcome (all the retried
        answer, or all the same structured error), and nobody hangs."""
        harness = _fast_harness()
        harness.start(str(tmp_path / "fleet.sock"))
        try:
            with ServiceClient.connect(harness.address) as client:
                clean = client.classify(circuit=SLOW_CIRCUIT)
            home = clean["worker"]

            count = 3
            started = threading.Event()
            outcomes: list = [None] * count
            threads = [
                _classify_on_thread(
                    harness.address, outcomes, i,
                    circuit=SLOW_CIRCUIT,
                    on_event=lambda event: started.set(),
                )
                for i in range(count)
            ]
            assert started.wait(60), "leader never reached a worker"
            os.kill(harness.worker_pid(home), signal.SIGKILL)
            for thread in threads:
                thread.join(120)
            assert not any(t.is_alive() for t in threads), (
                "a coalesced client hung after the worker kill"
            )
            assert all(o is not None for o in outcomes)
            answers = [o for o in outcomes if isinstance(o, dict)]
            errors = [o for o in outcomes if not isinstance(o, dict)]
            for answer in answers:
                assert stable_result(answer) == stable_result(clean)
            for error in errors:
                assert isinstance(error, RemoteError), repr(error)
            kinds = {type(o).__name__ for o in outcomes}
            assert len(kinds) == 1, f"divergent outcomes: {outcomes!r}"
        finally:
            harness.stop()

    def test_coalesced_answer_is_byte_identical_to_uncoalesced(
        self, tmp_path
    ):
        harness = _fast_harness()
        harness.start(str(tmp_path / "fleet.sock"))
        try:
            with ServiceClient.connect(harness.address) as client:
                uncoalesced = client.classify(circuit=SLOW_CIRCUIT)

            count = 3
            barrier = threading.Barrier(count)
            outcomes: list = [None] * count

            def run(i):
                with ServiceClient.connect(harness.address) as client:
                    barrier.wait()
                    outcomes[i] = client.classify(circuit=SLOW_CIRCUIT)

            threads = [
                threading.Thread(target=run, args=(i,))
                for i in range(count)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(120)
            assert all(isinstance(o, dict) for o in outcomes)
            assert any(o["coalesced"] for o in outcomes)
            reference = stable_result(uncoalesced)
            for outcome in outcomes:
                assert stable_result(outcome) == reference
        finally:
            harness.stop()
