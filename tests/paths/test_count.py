"""Unit tests for DP path counting (validated against enumeration)."""

from repro.circuit.examples import paper_example_circuit, two_and_tree
from repro.gen.multiplier import array_multiplier
from repro.gen.parity import parity_tree
from repro.paths.count import count_paths
from repro.paths.enumerate import enumerate_logical_paths, enumerate_physical_paths


def test_paper_example_counts():
    counts = count_paths(paper_example_circuit())
    assert counts.total_physical == 4
    assert counts.total_logical == 8


def test_counts_match_enumeration(small_circuits):
    for circuit in small_circuits:
        counts = count_paths(circuit)
        assert counts.total_physical == sum(
            1 for _ in enumerate_physical_paths(circuit)
        )
        assert counts.total_logical == sum(
            1 for _ in enumerate_logical_paths(circuit)
        )


def test_per_lead_counts_match_enumeration(small_circuits):
    for circuit in small_circuits:
        counts = count_paths(circuit)
        per_lead = [0] * circuit.num_leads
        for p in enumerate_physical_paths(circuit):
            for lead in p.leads:
                per_lead[lead] += 1
        assert list(counts.through_lead) == per_lead


def test_remark4_identities():
    """|LP_c(l)| = 1/2 |LP(l)| = |P(l)| (Remark 4 of the paper)."""
    counts = count_paths(paper_example_circuit())
    for lead in range(counts.circuit.num_leads):
        p = counts.physical_through_lead(lead)
        assert counts.logical_through_lead(lead) == 2 * p
        assert counts.controlling_logical_through_lead(lead) == p


def test_tree_counts():
    counts = count_paths(two_and_tree())
    assert counts.total_physical == 4  # one path per leaf in a tree


def test_bigint_counting_no_overflow():
    circuit = array_multiplier(12)
    counts = count_paths(circuit)
    assert counts.total_logical > 10**15  # exact big-int arithmetic
    # consistency: total equals the PO-side sum
    assert counts.total_physical == sum(counts.up[po] for po in circuit.outputs)


def test_up_down_consistency():
    circuit = parity_tree(16)
    counts = count_paths(circuit)
    pi_side = sum(counts.down[pi] for pi in circuit.inputs)
    po_side = sum(counts.up[po] for po in circuit.outputs)
    assert pi_side == po_side == counts.total_physical
