"""Wall-clock measurement helpers used by the experiment harness."""

from __future__ import annotations

import time


class Stopwatch:
    """A restartable wall-clock stopwatch.

    Usage::

        with Stopwatch() as sw:
            do_work()
        print(sw.elapsed)
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def start(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("stopwatch was never started")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def format_duration(seconds: float) -> str:
    """Render seconds as the paper's ``h:mm:ss`` / ``m:ss`` CPU-time style."""
    if seconds < 0:
        raise ValueError("duration must be non-negative")
    total = int(round(seconds))
    hours, rem = divmod(total, 3600)
    minutes, secs = divmod(rem, 60)
    if hours:
        return f"{hours}:{minutes:02d}:{secs:02d}"
    if seconds < 10 and total != seconds:
        return f"{minutes}:{seconds:05.2f}"
    return f"{minutes}:{secs:02d}"
