"""Full analysis of c17 — the one genuine ISCAS-85 netlist small enough
to bundle.  Everything here is computed against exhaustive oracles, so
these are real reference numbers for the real benchmark."""

import pytest

from repro.baseline.exact_assignment import baseline_rd
from repro.classify.conditions import Criterion
from repro.classify.engine import classify
from repro.classify.exact import exact_path_set
from repro.delaytest.testability import is_robustly_testable
from repro.gen.frozen import load_frozen
from repro.paths.count import count_paths
from repro.paths.enumerate import enumerate_logical_paths
from repro.sorting.heuristics import heuristic1_sort, heuristic2_sort


@pytest.fixture(scope="module")
def c17():
    return load_frozen("c17")


def test_structure(c17):
    assert len(c17.inputs) == 5
    assert len(c17.outputs) == 2
    # 5 PIs + 6 NANDs + 2 POs
    assert c17.num_gates == 13


def test_path_counts(c17):
    counts = count_paths(c17)
    assert counts.total_physical == 11
    assert counts.total_logical == 22


def test_classification_is_exact_on_c17(c17):
    """The local-implication approximation is exact on c17 for all
    three criteria (verified against brute force)."""
    for criterion in (Criterion.FS, Criterion.NR):
        approx = set()
        classify(c17, criterion, on_path=approx.add)
        assert approx == exact_path_set(c17, criterion)
    for sort in (heuristic1_sort(c17), heuristic2_sort(c17)):
        approx = set()
        classify(c17, Criterion.SIGMA_PI, sort=sort, on_path=approx.add)
        assert approx == exact_path_set(c17, Criterion.SIGMA_PI, sort)


def test_c17_reference_numbers(c17):
    """Reference results for the real benchmark: every path of c17 is
    functionally sensitizable and robustly testable, and no RD paths
    exist (its reconvergence is too shallow to make any path
    dispensable)."""
    fs = classify(c17, Criterion.FS)
    assert fs.accepted == 22
    robust = sum(
        1
        for lp in enumerate_logical_paths(c17)
        if is_robustly_testable(c17, lp)
    )
    assert robust == 22
    base = baseline_rd(c17, method="exact")
    assert base.rd_count == 0


def test_c17_atpg_flow(c17):
    from repro.atpg.flow import run_atpg

    result = run_atpg(c17, random_burst=16)
    assert result.coverage == 1.0
    assert not result.redundant  # c17 is fully irredundant
