"""Path classification: the paper's fast RD-set identification.

The central entry point is :func:`repro.classify.engine.classify`, which
implicitly enumerates all logical paths with prime-segment pruning and
local-implication checking (Algorithm 2), for one of three criteria:

* ``Criterion.FS``        — functional sensitizability (Definition 4, [2]);
* ``Criterion.NR``        — non-robust testability (Definition 5, [6]);
* ``Criterion.SIGMA_PI``  — membership in ``LP(σ^π)`` (Lemma 2).

The computed path set is a superset of the exact criterion set, hence the
derived RD-set is sound (a true RD-set per Theorem 1).
"""

from repro.classify.conditions import Criterion
from repro.classify.engine import classify, check_logical_path
from repro.classify.exact import (
    exact_path_set,
    satisfies_criterion,
    exact_lp_sigma,
)
from repro.classify.results import ClassificationResult
from repro.classify.session import CircuitSession, SessionStats

__all__ = [
    "Criterion",
    "CircuitSession",
    "SessionStats",
    "classify",
    "check_logical_path",
    "exact_path_set",
    "satisfies_criterion",
    "exact_lp_sigma",
    "ClassificationResult",
]
