"""Ternary (0 / 1 / X) logic values.

``X`` is represented as ``-1`` so values pack into plain ints; 0 and 1 are
themselves.  This module provides gate evaluation over the ternary domain
— the basis of three-valued simulation and of conflict detection in the
implication engine.
"""

from __future__ import annotations

from typing import Sequence

from repro.circuit.gates import (
    GateType,
    controlling_value,
    has_controlling_value,
    is_inverting,
)

#: The unknown value.
X = -1


def ternary_gate_eval(gate_type: GateType, inputs: Sequence[int]) -> int:
    """Evaluate one gate over ternary inputs (each ``0``, ``1`` or ``X``).

    Returns ``X`` unless the known inputs determine the output: a single
    controlling input decides a simple gate even when others are ``X``.
    """
    if gate_type in (GateType.PI, GateType.PO, GateType.BUF):
        return inputs[0]
    if gate_type is GateType.NOT:
        v = inputs[0]
        return X if v == X else 1 - v
    if not has_controlling_value(gate_type):
        raise ValueError(f"cannot evaluate gate type {gate_type.name}")
    c = controlling_value(gate_type)
    inv = is_inverting(gate_type)
    out: int
    if any(v == c for v in inputs):
        out = c
    elif all(v == 1 - c for v in inputs):
        out = 1 - c
    else:
        return X
    return (1 - out) if inv else out


def controlled_output(gate_type: GateType) -> int:
    """Output of a simple gate when at least one input is controlling."""
    c = controlling_value(gate_type)
    return (1 - c) if is_inverting(gate_type) else c


def uncontrolled_output(gate_type: GateType) -> int:
    """Output of a simple gate when all inputs are non-controlling."""
    return 1 - controlled_output(gate_type)
