"""Result container for classification runs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.classify.conditions import Criterion


@dataclass
class ClassificationResult:
    """Outcome of one implicit-enumeration classification pass.

    ``accepted`` is ``|LP^sup|`` — the number of logical paths that
    passed the local-implication check for the criterion; every other
    logical path is provably robust dependent (for SIGMA_PI) or provably
    outside the criterion set (FS/NR).
    """

    circuit_name: str
    criterion: Criterion
    total_logical: int
    accepted: int
    elapsed: float = 0.0
    #: accepted logical paths through each lead whose final value at the
    #: lead is the destination gate's controlling value (|FS_c^sup(l)| /
    #: |T_c^sup(l)| of Algorithm 3); only filled when requested.
    lead_ctrl_counts: list = field(default_factory=list)
    #: path-edge extensions attempted by the DFS (accepted or pruned) —
    #: the classifier's unit of work, used for throughput accounting.
    edges_visited: int = 0

    @property
    def rd_count(self) -> int:
        """Logical paths identified as not needing a robust test."""
        return self.total_logical - self.accepted

    @property
    def rd_fraction(self) -> float:
        """Fraction of logical paths identified RD (the paper's tables
        report this as a percentage)."""
        if self.total_logical == 0:
            return 0.0
        return self.rd_count / self.total_logical

    @property
    def rd_percent(self) -> float:
        return 100.0 * self.rd_fraction

    @property
    def edges_per_second(self) -> float:
        """Classifier throughput in path-edge extensions per second."""
        if self.elapsed <= 0:
            return 0.0
        return self.edges_visited / self.elapsed

    def __str__(self) -> str:
        return (
            f"{self.circuit_name} [{self.criterion.name}]: "
            f"{self.accepted}/{self.total_logical} accepted, "
            f"{self.rd_percent:.2f}% RD, {self.elapsed:.2f}s"
        )
