"""Redundancy removal: equivalence-preserving, converging, complete."""

import pytest

from repro.atpg.equiv import check_equivalence
from repro.atpg.redundancy_removal import (
    is_irredundant,
    remove_redundancies,
)
from repro.logic.simulate import all_vectors, output_values


class TestPaperExample:
    def test_removes_the_absorbed_term(self, example_circuit):
        """out = a + bc + c: the bc term is absorbed by c; removal must
        find it and shrink the netlist to out = a + c."""
        result = remove_redundancies(example_circuit)
        assert result.removed  # something was redundant
        assert result.circuit.num_gates < example_circuit.num_gates
        assert is_irredundant(result.circuit)
        # Function preserved (a OR c, b irrelevant).
        for a, b, c in all_vectors(3):
            # The simplified circuit may have dropped unused PIs from
            # its support; map by name.
            vector = []
            values = {"a": a, "b": b, "c": c}
            for pi in result.circuit.inputs:
                vector.append(values[result.circuit.gate_name(pi)])
            assert output_values(result.circuit, vector) == (a | c,)

    def test_result_reporting(self, example_circuit):
        result = remove_redundancies(example_circuit)
        assert result.gates_saved > 0
        text = str(result)
        assert "redundant" in text and "->" in text


class TestGeneralProperties:
    def test_already_irredundant_is_untouched(self, mux):
        result = remove_redundancies(mux)
        assert not result.removed
        assert result.circuit.num_gates == mux.num_gates

    def test_equivalence_on_redundant_covers(self):
        from repro.gen.twolevel import factored_circuit, random_cover

        for seed in (1, 4):
            circuit = factored_circuit(
                random_cover(7, 2, 14, seed=seed, redundancy=0.5)
            )
            result = remove_redundancies(circuit)
            assert check_equivalence(circuit, result.circuit)
            assert is_irredundant(result.circuit)

    def test_verification_can_be_disabled(self, example_circuit):
        result = remove_redundancies(example_circuit, verify=False)
        assert check_equivalence(example_circuit, result.circuit)

    def test_c17_is_already_irredundant(self):
        from repro.gen.frozen import load_frozen

        assert is_irredundant(load_frozen("c17"))
