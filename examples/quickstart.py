"""Quickstart: identify robust dependent path delay faults in a circuit.

Builds a small circuit with the public builder API, counts its paths,
runs the paper's fast classifier with both sorting heuristics, and
prints which logical paths actually need a robust delay test.

Run:  python examples/quickstart.py
"""

from repro import (
    CircuitBuilder,
    Criterion,
    classify,
    count_paths,
    enumerate_logical_paths,
    heuristic1_sort,
    heuristic2_sort,
)
from repro.classify.engine import check_logical_path


def build_circuit():
    """y = (a AND b) OR (b AND c) OR c — reconvergent fanout on b and c."""
    builder = CircuitBuilder("quickstart")
    a, b, c = builder.pi("a"), builder.pi("b"), builder.pi("c")
    ab = builder.and_(a, b, name="ab")
    bc = builder.and_(b, c, name="bc")
    builder.po(builder.or_(ab, bc, c, name="y"), "out")
    return builder.build()


def main():
    circuit = build_circuit()
    counts = count_paths(circuit)
    print(f"circuit {circuit.name}: {circuit.num_gates} gates, "
          f"{counts.total_logical} logical paths")

    for label, sort in [
        ("Heuristic 1", heuristic1_sort(circuit)),
        ("Heuristic 2", heuristic2_sort(circuit)),
    ]:
        result = classify(circuit, Criterion.SIGMA_PI, sort=sort)
        print(f"{label}: {result.accepted} paths must be tested, "
              f"{result.rd_count} are robust dependent "
              f"({result.rd_percent:.1f}% RD)")

    # Show the verdict per path for the better sort.
    sort = heuristic2_sort(circuit)
    print("\nper-path verdicts (Heuristic 2 sort):")
    for lp in enumerate_logical_paths(circuit):
        needed = check_logical_path(circuit, Criterion.SIGMA_PI, lp, sort)
        verdict = "TEST" if needed else "robust dependent"
        print(f"  {lp.describe(circuit):42s} {verdict}")


if __name__ == "__main__":
    main()
