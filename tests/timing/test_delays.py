"""Unit tests for delay assignments and path delays."""

import pytest

from repro.paths.enumerate import enumerate_logical_paths
from repro.timing.delays import DelayAssignment, random_delays, unit_delays
from repro.timing.pathdelay import logical_path_delay, max_path_delay


class TestDelayAssignment:
    def test_unit_delays(self, example_circuit):
        delays = unit_delays(example_circuit)
        for g in range(example_circuit.num_gates):
            expected = 0.0 if g in example_circuit.inputs else 1.0
            assert delays.delay(g, 1) == expected
            assert delays.delay(g, 0) == expected

    def test_random_delays_in_range(self, example_circuit):
        delays = random_delays(example_circuit, seed=1, low=0.5, high=2.0)
        for g in range(example_circuit.num_gates):
            if g in example_circuit.inputs:
                continue
            assert 0.5 <= delays.delay(g, 1) <= 2.0
            assert 0.5 <= delays.delay(g, 0) <= 2.0

    def test_random_deterministic(self, example_circuit):
        a = random_delays(example_circuit, seed=7)
        b = random_delays(example_circuit, seed=7)
        assert a.rise == b.rise and a.fall == b.fall

    def test_symmetric_option(self, example_circuit):
        delays = random_delays(example_circuit, seed=1, asymmetric=False)
        assert delays.rise == delays.fall

    def test_negative_rejected(self, example_circuit):
        n = example_circuit.num_gates
        with pytest.raises(ValueError):
            DelayAssignment(
                circuit=example_circuit,
                rise=tuple([-1.0] * n),
                fall=tuple([1.0] * n),
            )

    def test_wrong_size_rejected(self, example_circuit):
        with pytest.raises(ValueError):
            DelayAssignment(circuit=example_circuit, rise=(1.0,), fall=(1.0,))

    def test_scaled(self, example_circuit):
        delays = unit_delays(example_circuit).scaled(2.5)
        g = example_circuit.gate_by_name("g_or")
        assert delays.delay(g, 1) == 2.5

    def test_with_gate_delay(self, example_circuit):
        g = example_circuit.gate_by_name("g_and")
        slow = unit_delays(example_circuit).with_gate_delay(g, 9.0, 8.0)
        assert slow.delay(g, 1) == 9.0
        assert slow.delay(g, 0) == 8.0


class TestPathDelay:
    def test_unit_delay_equals_length(self, example_circuit):
        delays = unit_delays(example_circuit)
        for lp in enumerate_logical_paths(example_circuit):
            assert logical_path_delay(example_circuit, lp, delays) == len(
                lp.path
            )

    def test_direction_dependent_delay(self, example_circuit):
        g_or = example_circuit.gate_by_name("g_or")
        delays = unit_delays(example_circuit).with_gate_delay(g_or, 5.0, 1.0)
        rising = next(
            lp
            for lp in enumerate_logical_paths(example_circuit)
            if lp.describe(example_circuit) == "a -> g_or -> out [0->1]"
        )
        falling = next(
            lp
            for lp in enumerate_logical_paths(example_circuit)
            if lp.describe(example_circuit) == "a -> g_or -> out [1->0]"
        )
        # Rising at a propagates as a rise at the OR: uses the 5.0 delay,
        # plus 1.0 for the PO wire gate.
        assert logical_path_delay(example_circuit, rising, delays) == 6.0
        assert logical_path_delay(example_circuit, falling, delays) == 2.0

    def test_inversion_flips_direction(self):
        from repro.circuit.examples import chain_circuit
        from repro.paths.enumerate import enumerate_logical_paths

        circuit = chain_circuit(1, invert=True)
        n0 = circuit.gate_by_name("n0")
        delays = unit_delays(circuit).with_gate_delay(n0, 10.0, 1.0)
        rising_in = next(
            lp for lp in enumerate_logical_paths(circuit) if lp.final_value == 1
        )
        # Input rises -> NOT output falls: fall delay (1.0) + PO (1.0).
        assert logical_path_delay(circuit, rising_in, delays) == 2.0

    def test_max_path_delay(self, example_circuit):
        delays = unit_delays(example_circuit)
        paths = list(enumerate_logical_paths(example_circuit))
        assert max_path_delay(example_circuit, paths, delays) == 3.0
        assert max_path_delay(example_circuit, [], delays) == 0.0
