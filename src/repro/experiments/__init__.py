"""Experiment harness regenerating every table and figure of the paper."""

from repro.experiments.harness import Table1Row, run_table1_row, run_table3_row
from repro.experiments import table1, table2, table3, figures

__all__ = [
    "Table1Row",
    "run_table1_row",
    "run_table3_row",
    "table1",
    "table2",
    "table3",
    "figures",
]
