"""Bit-parallel simulation validated against the scalar simulator."""

import pytest

from repro.atpg.stuckat import StuckAtFault, simulate_with_fault
from repro.logic.bitsim import (
    detected_faults,
    pack_patterns,
    random_patterns,
    simulate_patterns,
    simulate_words,
)
from repro.logic.simulate import all_vectors, output_values, simulate


class TestPacking:
    def test_pack_round_trip(self):
        patterns = [(1, 0, 1), (0, 0, 0), (1, 1, 1)]
        words, mask = pack_patterns(patterns)
        assert mask == 0b111
        for i, vector in enumerate(patterns):
            for j, bit in enumerate(vector):
                assert (words[j] >> i) & 1 == bit

    def test_empty(self):
        assert pack_patterns([]) == ([], 0)

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            pack_patterns([(1, 0), (1,)])


class TestAgainstScalarSim:
    def test_exhaustive_agreement(self, small_circuits):
        for circuit in small_circuits:
            patterns = list(all_vectors(len(circuit.inputs)))
            packed = simulate_patterns(circuit, patterns)
            for vector, got in zip(patterns, packed):
                assert got == output_values(circuit, vector), circuit.name

    def test_every_net_agrees(self, small_circuits):
        for circuit in small_circuits:
            patterns = random_patterns(circuit, 100, seed=5)
            words, mask = pack_patterns(patterns)
            values = simulate_words(circuit, words, mask)
            for i, vector in enumerate(patterns):
                scalar = simulate(circuit, vector)
                for g in range(circuit.num_gates):
                    assert (values[g] >> i) & 1 == scalar[g]

    def test_word_width_beyond_64(self, example_circuit):
        """Python ints are unbounded: 1000 patterns in one pass."""
        patterns = random_patterns(example_circuit, 1000, seed=1)
        packed = simulate_patterns(example_circuit, patterns)
        assert len(packed) == 1000
        # Spot-check a tail pattern.
        assert packed[977] == output_values(example_circuit, patterns[977])

    def test_wrong_word_count(self, example_circuit):
        with pytest.raises(ValueError):
            simulate_words(example_circuit, [0], 1)


class TestFaultGrading:
    def test_detection_matches_scalar_fault_sim(self, small_circuits):
        for circuit in small_circuits:
            patterns = list(all_vectors(len(circuit.inputs)))
            faults = [
                StuckAtFault(lead, v)
                for lead in range(circuit.num_leads)
                for v in (0, 1)
            ]
            fast = detected_faults(circuit, patterns, faults)
            for fault in faults:
                slow = any(
                    any(
                        simulate(circuit, vec)[po]
                        != simulate_with_fault(circuit, vec, fault)[po]
                        for po in circuit.outputs
                    )
                    for vec in patterns
                )
                assert (fault in fast) == slow, (
                    f"{circuit.name}: {fault.describe(circuit)}"
                )

    def test_no_patterns_detect_nothing(self, example_circuit):
        assert detected_faults(example_circuit, [], [StuckAtFault(0, 0)]) == set()

    def test_type_check(self, example_circuit):
        with pytest.raises(TypeError):
            detected_faults(example_circuit, [(0, 0, 0)], ["not-a-fault"])
