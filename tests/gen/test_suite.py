"""Sanity checks on the named benchmark suite."""

import pytest

from repro.classify.exact import is_po_constant
from repro.gen.suite import (
    SUITE,
    count_only_suite,
    extra_suite,
    get_circuit,
    table1_suite,
    table3_suite,
)
from repro.paths.count import count_paths


def test_get_circuit_by_name():
    circuit = get_circuit("s432-rand")
    assert circuit.name == "s432-rand"


def test_unknown_name_lists_alternatives():
    with pytest.raises(KeyError, match="s432-rand"):
        get_circuit("nope")


def test_suites_are_disjoint_unions():
    names = set(SUITE)
    t1 = {c.name for c in table1_suite()}
    t3 = {c.name for c in table3_suite()}
    co = {c.name for c in count_only_suite()}
    extra = {c.name for c in extra_suite()}
    assert t1 | t3 | co | extra == names
    assert not (t1 & t3) and not (extra & (t1 | t3 | co))


def test_table1_path_count_spread():
    """The suite must span several orders of magnitude of path counts
    (the paper's 17k..57M spread, scaled)."""
    totals = [count_paths(c).total_logical for c in table1_suite()]
    assert min(totals) < 2_000
    assert max(totals) > 1_000_000


def test_count_only_monster_has_huge_path_count():
    totals = [count_paths(c).total_logical for c in count_only_suite()]
    assert max(totals) > 10**20  # the c6288 role


def test_table3_circuits_are_baseline_sized():
    for circuit in table3_suite():
        assert len(circuit.inputs) <= 12
        assert count_paths(circuit).total_logical < 2_000


def test_table3_outputs_not_constant():
    for circuit in table3_suite():
        for po in circuit.outputs:
            assert not is_po_constant(circuit, po), (
                f"{circuit.name}: {circuit.gate_name(po)} is constant"
            )


def test_all_suite_circuits_build_and_freeze():
    for name in SUITE:
        circuit = get_circuit(name)
        assert circuit.frozen
        assert circuit.inputs and circuit.outputs
