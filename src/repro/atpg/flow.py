"""A complete classical stuck-at ATPG flow.

Collapse → generate → fault-simulate → compact:

1. collapse the lead-fault universe structurally
   (:mod:`repro.atpg.collapse`);
2. grade a burst of random patterns with the bit-parallel fault
   simulator (:mod:`repro.logic.bitsim`) — random patterns catch the
   easy majority for free;
3. run deterministic ATPG (PODEM by default, SAT optionally) on each
   remaining fault, fault-simulating every new vector against the
   remaining list so one vector retires many faults;
4. report coverage, the proved-redundant faults, and the final compact
   pattern set.

This is the machinery redundancy identification rests on (the baseline
of [1] is "find redundant faults"), packaged as the standard flow a
test engineer runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.atpg.collapse import collapse_faults
from repro.atpg.podem import PodemAbort, podem
from repro.atpg.stuckat import StuckAtFault, generate_test
from repro.circuit.netlist import Circuit
from repro.logic.bitsim import detected_faults, random_patterns
from repro.util.timer import Stopwatch


@dataclass
class AtpgResult:
    """Outcome of one full stuck-at ATPG run."""

    circuit_name: str
    patterns: list = field(default_factory=list)
    detected: set = field(default_factory=set)
    redundant: set = field(default_factory=set)
    aborted: set = field(default_factory=set)
    elapsed: float = 0.0

    @property
    def num_faults(self) -> int:
        return len(self.detected) + len(self.redundant) + len(self.aborted)

    @property
    def coverage(self) -> float:
        """Detected / detectable (redundant faults are undetectable by
        definition and excluded, the standard fault-efficiency metric)."""
        detectable = self.num_faults - len(self.redundant)
        if not detectable:
            return 1.0
        return len(self.detected) / detectable

    def __str__(self) -> str:
        return (
            f"{self.circuit_name}: {len(self.patterns)} patterns detect "
            f"{len(self.detected)}/{self.num_faults} collapsed faults "
            f"({100 * self.coverage:.1f}% of detectable), "
            f"{len(self.redundant)} redundant, {len(self.aborted)} aborted"
        )


def run_atpg(
    circuit: Circuit,
    engine: str = "podem",
    random_burst: int = 64,
    seed: int = 0,
    max_backtracks: int = 50_000,
    faults: "Sequence[StuckAtFault] | None" = None,
) -> AtpgResult:
    """Run the full flow (see module docstring).

    ``engine``: ``"podem"`` or ``"sat"``.  ``random_burst``: number of
    random patterns graded before deterministic generation (0 disables).
    """
    if engine not in ("podem", "sat"):
        raise ValueError("engine must be 'podem' or 'sat'")
    targets = list(faults) if faults is not None else collapse_faults(circuit)
    result = AtpgResult(circuit_name=circuit.name)
    remaining = set(targets)
    with Stopwatch() as sw:
        if random_burst > 0 and remaining:
            burst = random_patterns(circuit, random_burst, seed=seed)
            caught = detected_faults(circuit, burst, remaining)
            if caught:
                # Keep only the useful patterns: greedily re-grade.
                for vector in burst:
                    hits = detected_faults(circuit, [vector], remaining)
                    if hits:
                        result.patterns.append(vector)
                        result.detected |= hits
                        remaining -= hits
                    if not remaining:
                        break
        for fault in sorted(remaining, key=lambda f: (f.lead, f.value)):
            if fault not in remaining:
                continue
            vector = None
            try:
                if engine == "podem":
                    vector = podem(
                        circuit, fault, max_backtracks=max_backtracks
                    ).vector
                else:
                    vector = generate_test(circuit, fault)
            except PodemAbort:
                result.aborted.add(fault)
                remaining.discard(fault)
                continue
            if vector is None:
                result.redundant.add(fault)
                remaining.discard(fault)
                continue
            result.patterns.append(vector)
            hits = detected_faults(circuit, [vector], remaining)
            result.detected |= hits
            remaining -= hits
    result.elapsed = sw.elapsed
    return result
