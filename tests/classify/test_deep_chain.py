"""Deep-circuit regression: the iterative engine must survive circuits
far deeper than any Python recursion limit, without touching it.

The old recursive DFS needed a ``sys.setrecursionlimit`` bump scaled to
circuit depth (one interpreter frame per path edge); a ~5k-gate inverter
chain is ~5x past the default limit of 1000 and would crash it."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

import repro
from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.classify.conditions import Criterion
from repro.classify.engine import classify
from repro.classify.session import CircuitSession
from repro.sorting.input_sort import InputSort

CHAIN_DEPTH = 5_000


def _chain(depth: int) -> Circuit:
    """PI -> depth alternating NOT/BUF gates -> PO (one physical path)."""
    circuit = Circuit(f"chain{depth}")
    node = circuit.add_gate(GateType.PI, "x")
    for i in range(depth):
        gtype = GateType.NOT if i % 2 == 0 else GateType.BUF
        node = circuit.add_gate(gtype, f"g{i}", [node])
    circuit.add_gate(GateType.PO, "y", [node])
    return circuit.freeze()


@pytest.mark.parametrize(
    "criterion", [Criterion.FS, Criterion.NR, Criterion.SIGMA_PI]
)
def test_deep_chain_classifies_without_recursionlimit_mutation(criterion):
    circuit = _chain(CHAIN_DEPTH)
    assert circuit.num_gates > CHAIN_DEPTH
    limit_before = sys.getrecursionlimit()
    assert CHAIN_DEPTH > limit_before, (
        "chain must be deeper than the recursion limit for this test "
        "to prove anything"
    )
    sort = InputSort.pin_order(circuit) if criterion.needs_sort else None
    result = classify(circuit, criterion, sort=sort)
    assert sys.getrecursionlimit() == limit_before
    # One physical path, both transitions propagate through NOT/BUF.
    assert result.total_logical == 2
    assert result.accepted == 2
    assert result.edges_visited == 2 * (CHAIN_DEPTH + 1)


def test_deep_chain_streams_paths_and_lead_counts():
    circuit = _chain(CHAIN_DEPTH)
    session = CircuitSession(circuit)
    paths: list = []
    result = session.classify(
        Criterion.FS, collect_lead_counts=True, on_path=paths.append
    )
    assert result.accepted == 2
    assert len(paths) == 2
    assert all(len(lp.path.leads) == CHAIN_DEPTH + 1 for lp in paths)
    # NOT/BUF/PO destinations have no controlling value.
    assert sum(result.lead_ctrl_counts) == 0


def test_no_recursionlimit_mutation_anywhere_in_library():
    """Enforce the acceptance criterion at the source level: nothing in
    src/repro/ may touch the interpreter recursion limit."""
    src = Path(repro.__file__).resolve().parent
    offenders = [
        str(py)
        for py in sorted(src.rglob("*.py"))
        if "setrecursionlimit" in py.read_text(encoding="utf-8")
    ]
    assert offenders == []
