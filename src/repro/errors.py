"""The library-wide exception taxonomy.

Every error the library raises deliberately derives from
:class:`ReproError`, split by subsystem::

    ReproError
    ├── CircuitError        parse / construction / validation
    │   └── BenchParseError   (repro.circuit.bench)
    ├── ClassifyError       classification aborted (budget exhausted)
    └── HarnessError        supervised experiment execution
        ├── TaskTimeout       a pool task exceeded its wall-clock budget
        └── TaskCrashed       a pool worker died (crash / kill / OOM)

Callers that want "anything this library can throw" catch
:class:`ReproError`; subsystem code catches the narrow type.  For
backwards compatibility the circuit and classification errors also
subclass the builtin types they historically were (``ValueError`` and
``RuntimeError`` respectively), so pre-taxonomy ``except`` clauses keep
working.

This module is a leaf: it imports nothing from the rest of the library,
so any subsystem may import it without cycles.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every deliberate error in this library."""


class CircuitError(ReproError, ValueError):
    """Invalid circuit input: parse errors, bad construction, failed
    validation.  (Also a ``ValueError`` for backwards compatibility.)"""


class ClassifyError(ReproError, RuntimeError):
    """A classification pass aborted — e.g. ``max_accepted`` exhausted.
    (Also a ``RuntimeError`` for backwards compatibility.)"""


class HarnessError(ReproError):
    """Supervised experiment execution failed."""


class TaskTimeout(HarnessError):
    """A supervised task exceeded its wall-clock budget.

    The supervisor tears the pool down (the worker may be hung) and
    retries; this type surfaces in :class:`RowFailure` records and in
    retry bookkeeping.
    """

    def __init__(self, label: str, budget: float):
        super().__init__(
            f"task {label!r} exceeded its {budget:g}s wall-clock budget"
        )
        self.label = label
        self.budget = budget


class TaskCrashed(HarnessError):
    """A pool worker died before returning a result (killed process,
    ``BrokenProcessPool``, unpicklable payload...)."""

    def __init__(self, label: str, cause: str):
        super().__init__(f"worker running task {label!r} crashed: {cause}")
        self.label = label
        self.cause = cause
