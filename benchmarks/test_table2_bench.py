"""Table II bench: exact path counting — including the monsters.

The paper's Table II reports total logical path counts up to 5.7·10^7
and notes c6288 (1.9·10^20 paths) could not be classified at all.  Path
*counting* is linear-time big-integer DP, so the monsters are counted
here exactly; their CPU-times in the printed table read "(count only)".

Heu1/Heu2 CPU-times come from the Table-I bench (same pipeline, one
measurement) and are printed together at session end.
"""

import pytest

from repro.gen.suite import count_only_suite, table1_suite
from repro.paths.count import count_paths

_ALL = {c.name: c for c in table1_suite() + count_only_suite()}


@pytest.mark.parametrize("name", sorted(_ALL))
def test_exact_path_counting(benchmark, name):
    circuit = _ALL[name]
    counts = benchmark(count_paths, circuit)
    assert counts.total_logical == 2 * counts.total_physical
    assert counts.total_logical > 0


def test_monster_counts_are_beyond_enumeration(benchmark):
    """The c6288 role: the count-only circuits must exceed any plausible
    enumeration budget — that asymmetry is the paper's Table II story."""
    totals = benchmark.pedantic(
        lambda: {
            c.name: count_paths(c).total_logical for c in count_only_suite()
        },
        rounds=1, iterations=1,
    )
    assert totals["s6288-mult"] > 10**20
    assert totals["smid-mult"] > 10**7


def test_counting_scales_to_large_multipliers(benchmark):
    """Counting a 24x24 multiplier (far beyond 10^30 paths) stays fast."""
    from repro.gen.multiplier import array_multiplier

    circuit = array_multiplier(24)
    counts = benchmark.pedantic(
        count_paths, args=(circuit,), rounds=1, iterations=1
    )
    assert counts.total_logical > 10**30
